"""Tests for the simulator's tensor address mapping (repro.sim.address)."""

import numpy as np
import pytest

from repro.sim.address import INVALID_ADDRESS, TensorLayout


@pytest.fixture
def layout(small_conv_layer):
    return TensorLayout(small_conv_layer)


class TestLayout:
    def test_filter_region_follows_ifmap_and_is_line_aligned(self, layout):
        assert layout.filter_base >= layout.ifmap_bytes
        assert layout.filter_base % layout.line_bytes == 0
        assert layout.total_bytes == layout.filter_base + layout.filter_bytes

    def test_footprints_match_layer(self, layout, small_conv_layer):
        assert layout.ifmap_bytes == small_conv_layer.ifmap_elements * 4
        assert layout.filter_bytes == small_conv_layer.filter_elements * 4


class TestIfmapAddresses:
    def test_bchw_ordering(self, layout, small_conv_layer):
        layer = small_conv_layer
        batch = np.array([0, 0, 1])
        channel = np.array([0, 1, 0])
        row = np.array([0, 0, 0])
        col = np.array([1, 0, 0])
        addresses = layout.ifmap_addresses(batch, channel, row, col)
        assert addresses[0] == 1 * 4
        assert addresses[1] == layer.in_height * layer.in_width * 4
        assert addresses[2] == (layer.in_channels * layer.in_height
                                * layer.in_width) * 4

    def test_padding_positions_are_invalid(self, layout, small_conv_layer):
        layer = small_conv_layer
        coords = np.array([-1, layer.in_height, 0])
        addresses = layout.ifmap_addresses(
            np.zeros(3, dtype=int), np.zeros(3, dtype=int), coords,
            np.zeros(3, dtype=int))
        assert addresses[0] == INVALID_ADDRESS
        assert addresses[1] == INVALID_ADDRESS
        assert addresses[2] != INVALID_ADDRESS

    def test_addresses_within_ifmap_region(self, layout, small_conv_layer):
        layer = small_conv_layer
        rng = np.random.default_rng(0)
        batch = rng.integers(0, layer.batch, 100)
        channel = rng.integers(0, layer.in_channels, 100)
        row = rng.integers(0, layer.in_height, 100)
        col = rng.integers(0, layer.in_width, 100)
        addresses = layout.ifmap_addresses(batch, channel, row, col)
        assert np.all(addresses >= 0)
        assert np.all(addresses < layout.ifmap_bytes)

    def test_distinct_elements_have_distinct_addresses(self, layout, small_conv_layer):
        layer = small_conv_layer
        grid = np.indices((layer.batch, layer.in_channels,
                           layer.in_height, layer.in_width))
        addresses = layout.ifmap_addresses(grid[0], grid[1], grid[2], grid[3])
        assert np.unique(addresses).size == layer.ifmap_elements


class TestFilterAddresses:
    def test_k_is_the_inner_dimension(self, layout, small_conv_layer):
        layer = small_conv_layer
        k_total = layer.in_channels * layer.filter_pixels
        addresses = layout.filter_addresses(
            np.array([0, 0, 1]), np.array([0, 1, 0]))
        assert addresses[1] - addresses[0] == 4
        assert addresses[2] - addresses[0] == k_total * 4

    def test_out_of_range_invalid(self, layout, small_conv_layer):
        layer = small_conv_layer
        k_total = layer.in_channels * layer.filter_pixels
        addresses = layout.filter_addresses(
            np.array([layer.out_channels, 0]), np.array([0, k_total]))
        assert addresses[0] == INVALID_ADDRESS
        assert addresses[1] == INVALID_ADDRESS

    def test_addresses_within_filter_region(self, layout, small_conv_layer):
        layer = small_conv_layer
        k_total = layer.in_channels * layer.filter_pixels
        grid_n, grid_k = np.meshgrid(np.arange(layer.out_channels),
                                     np.arange(k_total), indexing="ij")
        addresses = layout.filter_addresses(grid_n, grid_k)
        assert np.all(addresses >= layout.filter_base)
        assert np.all(addresses < layout.total_bytes)
        assert np.unique(addresses).size == layer.filter_elements
