"""Tests for im2col tile address generation and warp coalescing."""

import numpy as np
import pytest

from repro.core.layer import ConvLayerConfig
from repro.core.tiling import build_grid
from repro.gpu import TESLA_V100, TITAN_XP
from repro.sim.address import INVALID_ADDRESS
from repro.sim.im2col import Im2colTraceGenerator


def make_generator(layer, gpu=TITAN_XP):
    grid = build_grid(layer)
    return Im2colTraceGenerator(layer, grid.tile, gpu), grid


class TestIfmapTile:
    def test_tile_shape_matches_blocking(self, small_conv_layer):
        gen, grid = make_generator(small_conv_layer)
        addresses = gen.ifmap_tile_addresses(0, 0)
        assert addresses.shape == (grid.tile.blk_m, grid.tile.blk_k)

    def test_rows_beyond_m_are_invalid(self, small_conv_layer):
        gen, grid = make_generator(small_conv_layer)
        last_cta = grid.ctas_m - 1
        addresses = gen.ifmap_tile_addresses(last_cta, 0)
        gemm = small_conv_layer.gemm_shape()
        valid_rows = gemm.m - last_cta * grid.tile.blk_m
        assert np.all(addresses[valid_rows:, :] == INVALID_ADDRESS)
        assert np.any(addresses[:valid_rows, :] != INVALID_ADDRESS)

    def test_pointwise_column_is_contiguous(self, small_pointwise_layer):
        """For a 1x1 conv each IFmap-matrix column is dense in memory."""
        gen, grid = make_generator(small_pointwise_layer)
        addresses = gen.ifmap_tile_addresses(0, 0)
        column = addresses[:, 0]
        valid = column[column != INVALID_ADDRESS]
        # within one image the addresses advance by exactly one element.
        deltas = np.diff(valid)
        per_image = (small_pointwise_layer.in_height
                     * small_pointwise_layer.in_width)
        assert np.all((deltas == 4) | (deltas == 4 * (
            per_image * (small_pointwise_layer.in_channels - 1) + 1)))

    def test_conv_column_follows_filter_traversal(self):
        """Eq. 2's access pattern: stride within a row, jump at row ends."""
        layer = ConvLayerConfig.square("c", 1, in_channels=1, in_size=8,
                                       out_channels=4, filter_size=3, padding=0)
        gen, grid = make_generator(layer)
        addresses = gen.ifmap_tile_addresses(0, 0)
        column = addresses[:layer.out_width, 0]
        # first output row: consecutive elements, stride 1 (4 bytes).
        assert np.all(np.diff(column[column != INVALID_ADDRESS]) == 4)

    def test_zero_padding_produces_invalid_entries(self, small_conv_layer):
        gen, _ = make_generator(small_conv_layer)
        # k=0 corresponds to filter position (0, 0), which reads the padded
        # top-left corner for the first output pixel.
        addresses = gen.ifmap_tile_addresses(0, 0)
        assert np.any(addresses == INVALID_ADDRESS)

    def test_access_counts_padding_exclusion(self, small_conv_layer):
        gen, grid = make_generator(small_conv_layer)
        access = gen.ifmap_tile_access(0, 0)
        total_slots = grid.tile.blk_m * grid.tile.blk_k
        assert 0 < access.elements <= total_slots


class TestFilterTile:
    def test_filter_tile_shape_and_uniqueness(self, small_conv_layer):
        gen, grid = make_generator(small_conv_layer)
        addresses = gen.filter_tile_addresses(0, 0)
        assert addresses.shape == (grid.tile.blk_n, grid.tile.blk_k)
        valid = addresses[addresses != INVALID_ADDRESS]
        assert np.unique(valid).size == valid.size

    def test_filter_requests_reflect_scattered_columns(self, reference_conv_layer):
        gen, grid = make_generator(reference_conv_layer)
        access = gen.filter_tile_access(0, 0)
        # 32 threads per warp load 32/blkK distant columns; with blkK=8 the
        # warps can never coalesce to a single request each.
        warps = (grid.tile.blk_n * grid.tile.blk_k) // 32
        assert access.l1_requests >= 2 * warps


class TestCoalescing:
    def test_dense_warp_loads_coalesce_on_pascal(self, small_pointwise_layer):
        gen, grid = make_generator(small_pointwise_layer)
        access = gen.ifmap_tile_access(0, 0)
        warps = (grid.tile.blk_m // 32) * grid.tile.blk_k
        # each warp loads 128 contiguous bytes: 1-2 requests depending on
        # alignment, never the fully-scattered worst case.
        assert warps <= access.l1_requests <= 2 * warps

    def test_sector_count_at_least_request_granularity(self, small_conv_layer):
        gen, _ = make_generator(small_conv_layer)
        access = gen.ifmap_tile_access(0, 0)
        assert access.l1_sectors >= access.l1_requests

    def test_volta_issues_more_requests_than_pascal(self, small_conv_layer):
        """32 B requests on Volta mean more requests for the same tile."""
        pascal_gen, _ = make_generator(small_conv_layer, TITAN_XP)
        volta_gen, _ = make_generator(small_conv_layer, TESLA_V100)
        pascal = pascal_gen.ifmap_tile_access(0, 0)
        volta = volta_gen.ifmap_tile_access(0, 0)
        assert volta.l1_requests >= pascal.l1_requests
        # ... but the sector fetch volume is granularity independent.
        assert volta.l1_sectors == pascal.l1_sectors

    def test_fetch_bytes_accounting_modes(self, small_conv_layer):
        gen, _ = make_generator(small_conv_layer)
        access = gen.ifmap_tile_access(0, 0)
        request_bytes = access.fetch_bytes("request", TITAN_XP.l1_request_bytes,
                                           TITAN_XP.sector_bytes)
        sector_bytes = access.fetch_bytes("sector", TITAN_XP.l1_request_bytes,
                                          TITAN_XP.sector_bytes)
        assert request_bytes == access.l1_requests * 128
        assert sector_bytes == access.l1_sectors * 32
        with pytest.raises(ValueError):
            access.fetch_bytes("bogus", 128, 32)

    def test_strided_layer_has_poor_coalescing(self, strided_conv_layer):
        gen, grid = make_generator(strided_conv_layer)
        access = gen.ifmap_tile_access(0, 4)
        warps = (grid.tile.blk_m // 32) * grid.tile.blk_k
        # stride 2 with a 7x7 filter skips elements, so each warp touches
        # noticeably more than one request worth of lines.
        assert access.l1_requests > 1.5 * warps


class TestBatchedGeneration:
    """The batched trace generator must match the scalar one tile for tile."""

    def assert_equivalent(self, layer, gpu=TITAN_XP):
        gen, grid = make_generator(layer, gpu)
        cta_ms = list(range(min(grid.ctas_m, 5)))
        cta_ns = list(range(min(grid.ctas_n, 3)))
        k_offsets = sorted({0,
                            (grid.main_loops_per_cta // 2) * grid.tile.blk_k,
                            (grid.main_loops_per_cta - 1) * grid.tile.blk_k})
        for k_offset in k_offsets:
            for cta_m, got in zip(cta_ms,
                                  gen.ifmap_tile_access_batch(cta_ms, k_offset)):
                ref = gen.ifmap_tile_access(cta_m, k_offset)
                assert got.l1_requests == ref.l1_requests
                assert got.l1_sectors == ref.l1_sectors
                assert got.elements == ref.elements
                assert np.array_equal(got.sectors, ref.sectors)
            for cta_n, got in zip(cta_ns,
                                  gen.filter_tile_access_batch(cta_ns, k_offset)):
                ref = gen.filter_tile_access(cta_n, k_offset)
                assert got.l1_requests == ref.l1_requests
                assert got.l1_sectors == ref.l1_sectors
                assert got.elements == ref.elements
                assert np.array_equal(got.sectors, ref.sectors)

    def test_padded_conv_matches_scalar(self, small_conv_layer):
        self.assert_equivalent(small_conv_layer)

    def test_pointwise_matches_scalar(self, small_pointwise_layer):
        self.assert_equivalent(small_pointwise_layer)

    def test_strided_matches_scalar_on_volta(self, strided_conv_layer):
        self.assert_equivalent(strided_conv_layer, gpu=TESLA_V100)

    def test_multi_k_cross_product_layout(self, small_conv_layer):
        """Tile index mi * num_k + ki addresses the (cta_m, k_offset) pair."""
        gen, grid = make_generator(small_conv_layer)
        k_offsets = [0, grid.tile.blk_k]
        batch = gen.ifmap_tile_batch([0, 1], k_offsets)
        assert batch.num_tiles == 4
        for mi, cta_m in enumerate([0, 1]):
            for ki, k_offset in enumerate(k_offsets):
                ref = gen.ifmap_tile_access(cta_m, k_offset)
                got = batch.tile(mi * len(k_offsets) + ki)
                assert np.array_equal(got.sectors, ref.sectors)
                assert got.l1_requests == ref.l1_requests

    def test_empty_batch(self, small_conv_layer):
        gen, _ = make_generator(small_conv_layer)
        assert gen.ifmap_tile_access_batch([], 0) == []
        assert gen.filter_tile_batch([], [0]).num_tiles == 0
