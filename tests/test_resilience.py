"""Unit tests for the shared failure types (repro.resilience)."""

import json

import pytest

from repro.resilience import (BACKOFF_CAP_SECONDS, FAILURE_KINDS,
                              SessionClosedError, SimulationError, TaskError,
                              TaskFailure, backoff_delay, cause_chain,
                              format_traceback, run_chunk)


class TestBackoffDelay:
    def test_exponential_growth(self):
        assert backoff_delay(1, 0.1) == pytest.approx(0.1)
        assert backoff_delay(2, 0.1) == pytest.approx(0.2)
        assert backoff_delay(3, 0.1) == pytest.approx(0.4)

    def test_capped(self):
        assert backoff_delay(30, 0.1) == BACKOFF_CAP_SECONDS
        assert backoff_delay(3, 0.1, cap=0.15) == 0.15

    def test_zero_base_and_round(self):
        assert backoff_delay(5, 0.0) == 0.0
        assert backoff_delay(0, 1.0) == 0.0


def _raise_with_cause():
    try:
        raise KeyError("inner")
    except KeyError as exc:
        raise ValueError("outer") from exc


class TestTaskFailure:
    def test_from_exception_captures_type_message_traceback(self):
        try:
            _raise_with_cause()
        except ValueError as exc:
            failure = TaskFailure.from_exception(exc, attempts=3)
        assert failure.kind == "error"
        assert failure.error_type == "ValueError"
        assert failure.message == "outer"
        assert failure.attempts == 3
        assert "_raise_with_cause" in failure.traceback
        assert failure.cause == ("ValueError: outer", "KeyError: 'inner'")

    def test_record_round_trip(self):
        try:
            _raise_with_cause()
        except ValueError as exc:
            failure = TaskFailure.from_exception(exc, attempts=2)
        record = failure.as_record()
        json.dumps(record)  # must be JSON-serializable as-is
        assert TaskFailure.from_record(record) == failure

    def test_minimal_record_defaults(self):
        failure = TaskFailure.from_record({})
        assert failure.kind == "error"
        assert failure.attempts == 1
        assert failure.traceback is None
        assert failure.cause == ()

    def test_str(self):
        failure = TaskFailure(kind="timeout", error_type="TimeoutError",
                              message="too slow")
        assert str(failure) == "[timeout] TimeoutError: too slow"

    def test_failure_kinds_cover_record_kinds(self):
        assert set(FAILURE_KINDS) == {"error", "timeout", "crash"}


class TestCauseChain:
    def test_cycle_guard_and_limit(self):
        exc = ValueError("a")
        exc.__cause__ = exc  # pathological self-cause
        assert cause_chain(exc) == ("ValueError: a",)
        chain = None
        for i in range(20):
            new = ValueError(str(i))
            new.__cause__ = chain
            chain = new
        assert len(cause_chain(chain)) == 8  # default limit

    def test_format_traceback_without_raise(self):
        assert "ValueError" in format_traceback(ValueError("x"))


def _double_or_fail(task):
    if task < 0:
        raise ValueError(f"bad task {task}")
    return task * 2


class TestRunChunk:
    def test_mixed_outcomes(self):
        outcomes = run_chunk((_double_or_fail, [1, -1, 3]))
        assert outcomes[0] == ("ok", 2)
        assert outcomes[2] == ("ok", 6)
        status, record = outcomes[1]
        assert status == "error"
        assert record["error_type"] == "ValueError"
        assert record["message"] == "bad task -1"
        assert "traceback" in record

    def test_empty_chunk(self):
        assert run_chunk((_double_or_fail, [])) == []


class TestExceptions:
    def test_task_error_carries_failures(self):
        failures = [TaskFailure(kind="error", error_type="ValueError",
                                message="boom")]
        err = TaskError(failures, context="map_tasks")
        assert err.failures == tuple(failures)
        assert "map_tasks failed for 1 work unit(s)" in str(err)
        assert "ValueError: boom" in str(err)

    def test_simulation_error_is_task_error(self):
        assert issubclass(SimulationError, TaskError)
        assert issubclass(SessionClosedError, RuntimeError)
