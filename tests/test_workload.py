"""Tests for the pass-aware GEMM workload IR and its lowering algebra."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layer import ConvLayerConfig
from repro.core.workload import (
    PASS_KINDS,
    TRAINING_PASSES,
    GemmWorkload,
    Im2colPattern,
    as_workload,
    expand_passes,
    lower_dgrad,
    lower_forward,
    lower_pass,
    lower_wgrad,
    normalize_passes,
    training_workloads,
)
from repro.networks.registry import PAPER_NETWORK_ORDER, get_network


def conv_layers():
    """Hypothesis strategy generating valid conv layer configurations."""
    return st.builds(
        lambda b, ci, size, co, f, s, p: ConvLayerConfig.square(
            "gen", b, in_channels=ci, in_size=max(size, f + 2 * 0),
            out_channels=co, filter_size=min(f, size), stride=s, padding=p),
        st.integers(1, 8), st.integers(1, 64), st.integers(3, 32),
        st.integers(1, 128), st.integers(1, 7), st.integers(1, 3),
        st.integers(0, 3))


class TestLowering:
    def test_forward_reproduces_layer_geometry(self, small_conv_layer):
        workload = lower_forward(small_conv_layer)
        assert workload.gemm == small_conv_layer.gemm_shape()
        assert workload.pass_kind == "forward"
        assert workload.a.role == "ifmap"
        assert workload.b.role == "filter"
        assert workload.out_elements == small_conv_layer.ofmap_elements
        assert workload.dtype_bytes == small_conv_layer.dtype_bytes
        assert workload.macs == small_conv_layer.macs

    def test_dgrad_swaps_n_and_k(self, small_conv_layer):
        forward = small_conv_layer.gemm_shape()
        dgrad = lower_dgrad(small_conv_layer).gemm
        assert (dgrad.m, dgrad.n, dgrad.k) == (forward.m, forward.k, forward.n)

    def test_wgrad_swaps_m_and_k(self, small_conv_layer):
        forward = small_conv_layer.gemm_shape()
        wgrad = lower_wgrad(small_conv_layer).gemm
        assert (wgrad.m, wgrad.n, wgrad.k) == (forward.n, forward.k, forward.m)

    def test_operand_bindings_per_pass(self, small_conv_layer):
        forward, dgrad, wgrad = training_workloads(small_conv_layer)
        # forward: im2col IFmap on M, gathered filter on N.
        assert (forward.a.l1_pattern, forward.b.l1_pattern) == ("im2col", "gather")
        # dgrad: dense dO on M, transposed filter on N; output is dI.
        assert dgrad.a.role == "ofmap_grad"
        assert dgrad.a.l1_pattern == "contiguous"
        assert dgrad.out_role == "ifmap_grad"
        assert dgrad.out_elements == small_conv_layer.ifmap_elements
        # wgrad: dO^T on M, im2col IFmap on N; output is dW.
        assert wgrad.b.role == "ifmap"
        assert wgrad.b.l2_reuse == "sliding"
        assert wgrad.out_role == "filter_grad"
        assert wgrad.out_elements == small_conv_layer.filter_elements

    def test_gradient_tensors_share_the_ofmap_footprint(self, small_conv_layer):
        _, dgrad, wgrad = training_workloads(small_conv_layer)
        assert dgrad.a.tensor_elements == small_conv_layer.ofmap_elements
        assert wgrad.a.tensor_elements == small_conv_layer.ofmap_elements

    def test_pass_names_are_distinguishable(self, small_conv_layer):
        names = {w.name for w in training_workloads(small_conv_layer)}
        assert names == {"small3x3", "small3x3:dgrad", "small3x3:wgrad"}

    def test_lower_pass_rejects_unknown(self, small_conv_layer):
        with pytest.raises(ValueError):
            lower_pass(small_conv_layer, "backward")

    def test_as_workload_passthrough_and_coercion(self, small_conv_layer):
        workload = lower_wgrad(small_conv_layer)
        assert as_workload(workload) is workload
        assert as_workload(small_conv_layer).pass_kind == "forward"
        with pytest.raises(TypeError):
            as_workload("conv1")

    def test_structural_key_includes_pass(self, small_conv_layer):
        keys = {w.structural_key() for w in training_workloads(small_conv_layer)}
        assert len(keys) == 3
        renamed = small_conv_layer.with_name("other")
        assert (lower_forward(renamed).structural_key()
                == lower_forward(small_conv_layer).structural_key())


class TestPassAlgebra:
    """Property tests: the three passes are swaps of one GEMM."""

    @settings(max_examples=60, deadline=None)
    @given(conv_layers())
    def test_macs_conserved_per_pass(self, layer):
        forward_macs = layer.macs
        for workload in training_workloads(layer):
            assert workload.macs == forward_macs

    @settings(max_examples=60, deadline=None)
    @given(conv_layers())
    def test_shapes_are_axis_swaps(self, layer):
        forward = layer.gemm_shape()
        dgrad = lower_dgrad(layer).gemm
        wgrad = lower_wgrad(layer).gemm
        assert {dgrad.m, dgrad.n, dgrad.k} == {forward.m, forward.n, forward.k}
        assert (wgrad.m, wgrad.n, wgrad.k) == (forward.n, forward.k, forward.m)

    @settings(max_examples=30, deadline=None)
    @given(conv_layers())
    def test_forward_pattern_matches_layer(self, layer):
        pattern = Im2colPattern.of_layer(layer)
        assert pattern.padded_width == layer.padded_width
        assert pattern.out_height == layer.out_height
        assert pattern.is_pointwise == layer.is_pointwise
        assert pattern.filter_pixels == layer.filter_pixels

    def test_training_step_macs_for_registered_networks(self):
        """A training step costs exactly 3x the forward MACs, per network."""
        for name in PAPER_NETWORK_ORDER:
            network = get_network(name, batch=16)
            for layer in network.unique_layers():
                step_macs = sum(w.macs for w in training_workloads(layer))
                assert step_macs == 3 * layer.macs, (name, layer.name)


class TestPassOptions:
    def test_normalize_and_expand(self):
        assert normalize_passes(None) == "forward"
        assert normalize_passes(" Training ") == "training"
        assert expand_passes("training") == TRAINING_PASSES
        assert expand_passes("wgrad") == ("wgrad",)
        with pytest.raises(ValueError):
            normalize_passes("backward")

    def test_pass_kind_validation(self, small_conv_layer):
        workload = lower_forward(small_conv_layer)
        with pytest.raises(ValueError):
            GemmWorkload(
                name="bad", pass_kind="sideways", gemm=workload.gemm,
                a=workload.a, b=workload.b, out_role="ofmap",
                out_elements=1, dtype_bytes=4, layer=small_conv_layer)
        assert set(PASS_KINDS) == {"forward", "dgrad", "wgrad"}
