"""Tests for the objective/frontier layer (repro.analysis.frontier)."""

import pytest

from repro.analysis.frontier import (
    OBJECTIVES,
    Objective,
    design_cost,
    dominates,
    pareto_frontier,
    resolve_objectives,
    scale_next_rows,
)
from repro.gpu import PAPER_DESIGN_OPTIONS, DesignOption, get_design_option


class TestObjectives:
    def test_known_objectives(self):
        assert set(OBJECTIVES) == {"throughput", "time", "dram", "cost"}

    def test_resolve_preserves_order(self):
        resolved = resolve_objectives(("cost", "throughput"))
        assert [obj.name for obj in resolved] == ["cost", "throughput"]

    def test_resolve_rejects_unknown(self):
        with pytest.raises(ValueError, match="unknown objective"):
            resolve_objectives(("throughput", "latency"))
        with pytest.raises(ValueError, match="at least one"):
            resolve_objectives(())

    def test_direction_validated(self):
        with pytest.raises(ValueError):
            Objective("x", "x", "sideways", "x")

    def test_oriented_flips_min_objectives(self):
        time = OBJECTIVES["time"]
        assert time.oriented(2.0) < time.oriented(1.0)
        throughput = OBJECTIVES["throughput"]
        assert throughput.oriented(2.0) > throughput.oriented(1.0)


class TestDominance:
    OBJS = (Objective("tput", "tput", "max", ""),
            Objective("cost", "cost", "min", ""))

    def test_strictly_better_dominates(self):
        assert dominates({"tput": 2, "cost": 1}, {"tput": 1, "cost": 2},
                         self.OBJS)

    def test_tradeoff_does_not_dominate(self):
        assert not dominates({"tput": 2, "cost": 2}, {"tput": 1, "cost": 1},
                             self.OBJS)
        assert not dominates({"tput": 1, "cost": 1}, {"tput": 2, "cost": 2},
                             self.OBJS)

    def test_equal_rows_do_not_dominate_each_other(self):
        row = {"tput": 1, "cost": 1}
        assert not dominates(row, dict(row), self.OBJS)


class TestParetoFrontier:
    OBJS = (Objective("tput", "tput", "max", ""),
            Objective("cost", "cost", "min", ""))

    def test_two_dimensional_frontier(self):
        rows = [
            {"tput": 1.0, "cost": 1.0},   # frontier (cheapest)
            {"tput": 2.0, "cost": 2.0},   # frontier (tradeoff)
            {"tput": 1.5, "cost": 3.0},   # dominated by row 1
            {"tput": 3.0, "cost": 2.5},   # frontier (fastest)
            {"tput": 0.5, "cost": 1.0},   # dominated by row 0
        ]
        assert pareto_frontier(rows, self.OBJS) == [0, 1, 3]

    def test_single_objective_reduces_to_argmax(self):
        rows = [{"tput": 1.0}, {"tput": 3.0}, {"tput": 2.0}]
        assert pareto_frontier(rows, self.OBJS[:1]) == [1]

    def test_three_dimensional_frontier(self):
        objs = self.OBJS + (Objective("dram", "dram", "min", ""),)
        rows = [
            {"tput": 1.0, "cost": 1.0, "dram": 5.0},
            {"tput": 1.0, "cost": 1.0, "dram": 4.0},  # dominates row 0
            {"tput": 2.0, "cost": 3.0, "dram": 6.0},
        ]
        assert pareto_frontier(rows, objs) == [1, 2]

    def test_duplicate_points_all_kept(self):
        rows = [{"tput": 1.0, "cost": 1.0}, {"tput": 1.0, "cost": 1.0}]
        assert pareto_frontier(rows, self.OBJS) == [0, 1]

    def test_empty_input(self):
        assert pareto_frontier([], self.OBJS) == []


class TestDesignCost:
    def test_baseline_costs_one(self):
        assert design_cost(DesignOption("identity")) == pytest.approx(1.0)

    def test_cost_monotone_in_every_resource(self):
        base = design_cost(DesignOption("identity"))
        for key in ("num_sm", "mac_bw", "regs", "smem_size", "smem_bw",
                    "l1_bw", "l2_bw", "dram_bw"):
            scaled = design_cost(DesignOption("x", **{key: 2.0}))
            assert scaled > base, key

    def test_cta_tile_is_free(self):
        assert design_cost(DesignOption("x", cta_tile_hw=256)) == \
            design_cost(DesignOption("x", cta_tile_hw=128))

    def test_balanced_option5_cheaper_than_bruteforce_option2(self):
        """The paper's headline: option 5 matches option 2's speedup with far
        fewer resources — the cost proxy must agree on 'fewer resources'."""
        assert design_cost(get_design_option("5")) < \
            design_cost(get_design_option("2"))

    def test_all_paper_options_cost_more_than_baseline(self):
        for option in PAPER_DESIGN_OPTIONS:
            assert design_cost(option) > 1.0


class TestScaleNextRows:
    def test_ranks_by_time_weighted_share(self):
        results = [
            {"time_s": 3.0, "bottlenecks": {"DRAM_BW": 0.9, "MAC_BW": 0.1}},
            {"time_s": 1.0, "bottlenecks": {"MAC_BW": 1.0}},
        ]
        rows = scale_next_rows(results)
        assert rows[0]["bottleneck"] == "DRAM_BW"
        assert rows[0]["scale_next"] == "dram_bw"
        assert rows[0]["time_share"] == pytest.approx(2.7 / 4.0)
        assert rows[1]["bottleneck"] == "MAC_BW"
        assert rows[1]["time_share"] == pytest.approx(1.3 / 4.0)

    def test_shares_sum_to_at_most_one(self):
        results = [{"time_s": 2.0,
                    "bottlenecks": {"L2_BW": 0.5, "DRAM_LAT": 0.5}}]
        rows = scale_next_rows(results)
        assert sum(row["time_share"] for row in rows) == pytest.approx(1.0)

    def test_empty_results(self):
        assert scale_next_rows([]) == []
        assert scale_next_rows([{"time_s": 0.0, "bottlenecks": {}}]) == []
