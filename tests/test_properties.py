"""Property-based tests (hypothesis) for the core models and substrates.

These check invariants the analytical model and the simulator must satisfy for
*any* well-formed convolution configuration, not just the paper's networks:
geometry consistency, traffic-hierarchy monotonicity, positivity of execution
times, cache bounds, and metric identities.
"""

import math

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.metrics import gmae
from repro.core.l1 import ifmap_mli, ifmap_request_ratio
from repro.core.layer import ConvLayerConfig
from repro.core.model import DeltaModel
from repro.core.tiling import active_ctas_per_sm, build_grid, select_cta_tile
from repro.gpu import TESLA_V100, TITAN_XP
from repro.sim.cache import LruCache, SetAssociativeCache

@st.composite
def conv_layers(draw):
    """Strategy producing valid (if sometimes unusual) convolution layers."""
    in_size = draw(st.integers(min_value=7, max_value=112))
    filter_size = draw(st.sampled_from(
        [size for size in (1, 3, 5, 7, 11) if size <= in_size]))
    return ConvLayerConfig.square(
        "prop",
        batch=draw(st.integers(min_value=1, max_value=64)),
        in_channels=draw(st.integers(min_value=1, max_value=512)),
        in_size=in_size,
        out_channels=draw(st.integers(min_value=1, max_value=512)),
        filter_size=filter_size,
        stride=draw(st.integers(min_value=1, max_value=4)),
        padding=draw(st.integers(min_value=0, max_value=3)),
    )


MODEL_SETTINGS = settings(max_examples=40, deadline=None,
                          suppress_health_check=[HealthCheck.filter_too_much])


class TestLayerGeometryProperties:
    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_output_fits_inside_padded_input(self, layer):
        assert 1 <= layer.out_height <= layer.padded_height
        assert 1 <= layer.out_width <= layer.padded_width

    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_gemm_dimensions_consistent_with_footprints(self, layer):
        gemm = layer.gemm_shape()
        assert gemm.m == layer.batch * layer.out_height * layer.out_width
        assert gemm.k * gemm.n == layer.filter_elements
        assert layer.macs == gemm.m * gemm.n * gemm.k

    @given(layer=conv_layers(), factor=st.integers(min_value=2, max_value=4))
    @MODEL_SETTINGS
    def test_batch_scaling_scales_gemm_height_only(self, layer, factor):
        scaled = layer.with_batch(layer.batch * factor)
        assert scaled.gemm_shape().m == factor * layer.gemm_shape().m
        assert scaled.gemm_shape().n == layer.gemm_shape().n
        assert scaled.gemm_shape().k == layer.gemm_shape().k


class TestTilingProperties:
    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_grid_covers_gemm_exactly_once(self, layer):
        grid = build_grid(layer)
        gemm = layer.gemm_shape()
        assert grid.ctas_m * grid.tile.blk_m >= gemm.m
        assert (grid.ctas_m - 1) * grid.tile.blk_m < gemm.m
        assert grid.ctas_n * grid.tile.blk_n >= gemm.n
        assert grid.main_loops_per_cta * grid.tile.blk_k >= gemm.k

    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_tile_selection_uses_profiled_shapes(self, layer):
        tile = select_cta_tile(layer.gemm_shape())
        assert (tile.blk_m, tile.blk_n, tile.blk_k) in {
            (128, 32, 4), (128, 64, 4), (128, 128, 8)}

    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_occupancy_is_positive_and_bounded(self, layer):
        tile = select_cta_tile(layer.gemm_shape())
        for gpu in (TITAN_XP, TESLA_V100):
            active = active_ctas_per_sm(tile, gpu)
            assert 1 <= active <= gpu.max_ctas_per_sm


class TestTrafficModelProperties:
    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_traffic_hierarchy_monotonic(self, layer):
        estimate = DeltaModel(TITAN_XP).traffic(layer)
        assert estimate.l1_bytes >= estimate.l2_bytes - 1e-6
        assert estimate.l2_bytes >= estimate.dram.load_bytes - 1e-6
        assert estimate.dram_bytes > 0

    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_l1_inefficiency_at_least_one(self, layer):
        assert ifmap_request_ratio(layer) >= 1.0
        assert ifmap_mli(layer, TITAN_XP) >= 1.0
        assert ifmap_mli(layer, TESLA_V100) >= 1.0

    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_execution_time_above_arithmetic_bound(self, layer):
        estimate = DeltaModel(TITAN_XP).estimate(layer)
        lower_bound = layer.macs / TITAN_XP.macs_per_second
        assert estimate.time_seconds >= 0.99 * lower_bound
        assert estimate.time_seconds > 0

    @given(layer=conv_layers())
    @MODEL_SETTINGS
    def test_candidate_times_all_positive(self, layer):
        estimate = DeltaModel(TITAN_XP).estimate(layer)
        assert all(value > 0 for value in estimate.candidates.values())


class TestCacheProperties:
    @given(sectors=st.lists(st.integers(min_value=0, max_value=200),
                            min_size=1, max_size=300),
           capacity=st.integers(min_value=1, max_value=64))
    @settings(max_examples=50, deadline=None)
    def test_lru_miss_count_bounds(self, sectors, capacity):
        cache = LruCache(capacity_bytes=capacity * 32, sector_bytes=32)
        misses = cache.access_many(sectors)
        unique = len(set(sectors))
        # every unique sector misses at least once (compulsory misses) and
        # misses can never exceed the total number of accesses.
        assert unique <= misses <= len(sectors)
        # a working set that fits in the cache only takes compulsory misses.
        if unique <= cache.capacity_sectors:
            assert misses == unique
        assert cache.occupancy <= cache.capacity_sectors

    @given(sectors=st.lists(st.integers(min_value=0, max_value=500),
                            min_size=1, max_size=300))
    @settings(max_examples=50, deadline=None)
    def test_set_associative_never_beats_unbounded(self, sectors):
        bounded = SetAssociativeCache(capacity_bytes=32 * 32, sector_bytes=32, ways=4)
        unbounded = LruCache(capacity_bytes=10**9, sector_bytes=32)
        assert bounded.access_many(sectors) >= unbounded.access_many(sectors)


class TestMetricProperties:
    @given(ratios=st.lists(st.floats(min_value=0.05, max_value=20.0),
                           min_size=1, max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_gmae_nonnegative_and_inversion_invariant(self, ratios):
        error = gmae(ratios)
        inverted = gmae([1.0 / r for r in ratios])
        assert error >= 0.0
        assert math.isclose(error, inverted, rel_tol=1e-9, abs_tol=1e-12)
