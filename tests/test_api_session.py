"""Tests for the session-based public API: Session, requests, batching."""


import pytest

from repro.analysis.validation import ValidationConfig, select_layers
from repro.api import (
    EstimateRequest,
    ExperimentRequest,
    Report,
    Session,
    SweepRequest,
    ValidateRequest,
    configure_default_session,
    current_session,
    default_session,
    reset_default_session,
    use_session,
)
from repro.experiments import fig13_perf_titanxp
from repro.gpu import TITAN_XP

#: the tiny scale every simulation-backed test here runs at.
TINY = dict(batch=4, max_ctas=40, layers_per_network=1)
TINY_CONFIG = ValidationConfig(**TINY)


class TestSessionPolicy:
    def test_jobs_must_be_positive(self):
        with pytest.raises(ValueError):
            Session(jobs=0)
        with pytest.raises(ValueError):
            Session().jobs = -1

    def test_precision_must_be_non_negative(self):
        with pytest.raises(ValueError):
            Session(precision=-1)

    def test_simulator_config_carries_engine_policy(self):
        session = Session(vectorized=False)
        assert session.simulator_config().vectorized is False
        assert session.simulator_config(max_ctas=7).max_ctas == 7

    def test_context_manager_closes_pool(self):
        with Session(jobs=2) as session:
            pass
        assert session._pool is None


class TestContextLocalSession:
    def test_current_falls_back_to_default(self):
        assert current_session() is default_session()

    def test_use_session_scopes_the_active_session(self):
        session = Session(jobs=2)
        with use_session(session):
            assert current_session() is session
            assert ValidationConfig().effective_jobs == 2
        assert current_session() is not session
        assert ValidationConfig().effective_jobs == 1

    def test_configure_default_session(self):
        configure_default_session(jobs=5, precision=4)
        assert default_session().jobs == 5
        assert default_session().precision == 4
        # the autouse fixture restores the policy afterwards

    def test_reset_default_session_makes_a_fresh_one(self):
        before = default_session()
        reset_default_session()
        after = default_session()
        assert after is not before
        assert after.jobs == 1


class TestDeprecatedGlobalShim:
    def test_set_simulation_defaults_warns_and_forwards(self):
        from repro.analysis.validation import set_simulation_defaults
        with pytest.warns(DeprecationWarning):
            set_simulation_defaults(jobs=3, sim_cache_dir="/tmp/shim-cache")
        assert default_session().jobs == 3
        assert default_session().sim_cache_dir == "/tmp/shim-cache"
        assert ValidationConfig().effective_jobs == 3
        assert ValidationConfig().effective_sim_cache_dir == "/tmp/shim-cache"

    def test_rejects_non_positive_jobs(self):
        from repro.analysis.validation import set_simulation_defaults
        with pytest.raises(ValueError):
            set_simulation_defaults(jobs=0)


class TestEstimateRequests:
    def test_estimate_produces_report(self):
        with Session() as session:
            report = session.run(EstimateRequest("alexnet", gpu="v100",
                                                 batch=32, unique=True))
        assert isinstance(report, Report)
        assert report.kind == "estimate"
        assert report.title == "AlexNet on V100 (batch 32)"
        # five unique convolutions plus the fc6-fc8 classifier tail.
        assert len(report.rows) == 8
        assert report.summary["total conv time (ms)"] > 0
        assert report.meta["gpu"] == "V100"

    def test_estimate_runs_no_simulation(self):
        with Session() as session:
            session.run(EstimateRequest("googlenet", batch=16))
            assert session.stats.sim_tasks == 0

    def test_unknown_request_type_raises(self):
        with Session() as session:
            with pytest.raises(TypeError):
                session.run(object())


class TestSweepRequests:
    def test_sweep_covers_the_cross_product(self):
        request = SweepRequest(networks=("alexnet", "vgg16"),
                               gpus=("titanxp", "v100"), batches=(8, 32))
        with Session() as session:
            report = session.run(request)
        assert report.kind == "sweep"
        assert len(report.rows) == 8
        assert session.stats.sim_tasks == 0
        combos = {(row["network"], row["gpu"], row["batch"])
                  for row in report.rows}
        assert ("AlexNet", "V100", 32) in combos

    def test_sweep_rejects_empty_axes(self):
        with pytest.raises(ValueError):
            SweepRequest(networks=())


class TestValidateRequests:
    def test_validate_report_shape(self):
        request = ValidateRequest(gpu="titanxp", networks=("alexnet",),
                                  **TINY)
        with Session() as session:
            report = session.run(request)
        assert report.kind == "validation"
        assert "model-vs-simulator validation on TITAN Xp" in report.title
        assert len(report.rows) == 1
        assert report.rows[0]["network"] == "AlexNet"
        assert "dram traffic GMAE" in report.summary

    def test_networks_filter_restricts_population(self):
        config = ValidationConfig(batch=8, layers_per_network=2,
                                  networks=("googlenet", "VGG16"))
        population = select_layers(config)
        assert {name for name, _ in population} == {"GoogLeNet", "VGG16"}


class TestBatchExecution:
    def test_run_many_dedupes_shared_units_over_one_pool(self):
        requests = [ExperimentRequest("fig13", **TINY),
                    ExperimentRequest("fig19", **TINY)]
        unique_layers = len({layer for _, layer in select_layers(TINY_CONFIG)})
        with Session(jobs=2) as session:
            reports = session.run_many(requests)
            # fig13 and fig19 validate the same population on the same GPU:
            # every unit simulates exactly once, over a single shared pool.
            assert session.stats.sim_tasks == unique_layers
            assert session.stats.pool_launches == 1
            assert session.stats.sim_memo_hits >= len(select_layers(TINY_CONFIG))
            # a follow-up batch on the same session re-simulates nothing and
            # launches no second pool.
            session.run_many([ExperimentRequest("fig12", **TINY)])
            assert session.stats.sim_tasks == unique_layers
            assert session.stats.pool_launches == 1
        assert [r.report_id for r in reports] == ["fig13", "fig19"]

    def test_config_sim_cache_dir_honored_by_session_path(self, tmp_path):
        config = ValidationConfig(sim_cache_dir=str(tmp_path), **TINY)
        with Session() as session:
            session.validation_report(TITAN_XP, config)
        assert list(tmp_path.glob("delta-sim-*.json"))

    def test_fig17_sims_share_the_session_memo(self):
        request = ExperimentRequest("fig17", max_ctas=30,
                                    options={"sweeps": {"batch": [2]}})
        with Session() as session:
            session.run(request)
            first = session.stats.sim_tasks
            assert first == 1
            session.run(request)
            assert session.stats.sim_tasks == first  # memoized, no re-sim

    def test_plan_follows_gpu_overrides_passed_via_options(self):
        from repro import TESLA_V100
        from repro.api.executor import plan_simulation_units
        request = ExperimentRequest("fig13", options={"gpu": TESLA_V100},
                                    **TINY)
        with Session() as session:
            units = plan_simulation_units(session, [request])
        assert units and all(gpu is TESLA_V100 for gpu, _, _ in units)

    def test_config_jobs_grows_the_shared_pool(self):
        # ValidationConfig(jobs=N) must actually get N workers even when the
        # session itself defaults to serial execution.
        with Session() as session:
            session.validation_report(TITAN_XP, ValidationConfig(jobs=2, **TINY))
            assert session.stats.pool_launches == 1
            assert session._pool_workers == 2

    def test_experiment_report_matches_legacy_run(self):
        request = ExperimentRequest("fig13", **TINY)
        with Session() as session:
            report = session.run(request)
        legacy = fig13_perf_titanxp.run(config=TINY_CONFIG, session=Session())
        assert report.summary == legacy.summary
        assert list(report.rows) == list(legacy.rows)
        assert report.to_experiment().render() == legacy.render()


class TestExperimentOverrides:
    def test_gpu_override_flows_into_the_result(self):
        request = ExperimentRequest("fig13", gpus="v100", **TINY)
        with Session() as session:
            report = session.run(request)
        assert report.summary["gpu"] == "V100"

    def test_network_override_restricts_validation(self):
        request = ExperimentRequest("fig13", networks=("alexnet",), **TINY)
        with Session() as session:
            report = session.run(request)
        assert {row["network"] for row in report.rows} == {"AlexNet"}

    def test_unsupported_override_raises_instead_of_ignoring(self):
        with Session() as session:
            with pytest.raises(ValueError):
                session.run(ExperimentRequest("tab01", networks=("alexnet",)))
            with pytest.raises(ValueError):
                session.run(ExperimentRequest("fig06", gpus=("v100",)))

    def test_unknown_option_raises(self):
        with Session() as session:
            with pytest.raises(TypeError):
                session.run(ExperimentRequest("tab01",
                                              options={"bogus": 1}))

    def test_options_pass_through_to_the_runner(self):
        request = ExperimentRequest(
            "fig06", options={"channel_counts": [8, 40, 80, 200]})
        with Session() as session:
            report = session.run(request)
        assert len(report.rows) == 4


class TestAllExperimentsRunThroughSession:
    """Acceptance: every registered experiment runs via ExperimentRequest."""

    FAST = ("tab01", "fig06", "fig16", "fig18")

    @pytest.mark.parametrize("experiment_id", FAST)
    def test_fast_experiments(self, experiment_id):
        with Session() as session:
            report = session.run(ExperimentRequest(experiment_id))
        assert report.report_id == experiment_id
        assert report.kind == "experiment"

    def test_simulation_backed_experiments(self):
        # one shared session: the validation population simulates once.
        overrides = dict(TINY)
        requests = [ExperimentRequest(experiment_id, gpus="titanxp",
                                      **overrides)
                    for experiment_id in ("fig11", "fig12", "fig13", "fig14",
                                          "fig15", "fig19", "fig20")]
        with Session() as session:
            reports = session.run_many(requests)
        assert [r.report_id for r in reports] == [
            "fig11", "fig12", "fig13", "fig14", "fig15", "fig19", "fig20"]
        unique_layers = len({layer for _, layer in select_layers(TINY_CONFIG)})
        assert session.stats.sim_tasks == unique_layers

    def test_direct_simulation_experiments(self):
        with Session() as session:
            fig04 = session.run(ExperimentRequest(
                "fig04", batch=4, max_ctas=40,
                options={"layer_names": ("3a_1x1",)}))
            assert len(fig04.rows) == 1
            fig17 = session.run(ExperimentRequest(
                "fig17", max_ctas=30,
                options={"sweeps": {"batch": [2, 4]}}))
            assert len(fig17.rows) == 2


class TestWorkUnitDedupe:
    """The executor's dedupe key is the layer's structural key + pass kind."""

    def test_same_structure_different_name_dedupes(self):
        from repro.core.layer import ConvLayerConfig
        from repro.sim.engine import SimulatorConfig
        layer_a = ConvLayerConfig.square("a", 1, 4, 8, 8, 3, padding=1)
        layer_b = layer_a.with_name("b")
        assert layer_a.structural_key() == layer_b.structural_key()
        config = SimulatorConfig(max_ctas=10)
        with Session() as session:
            session.simulate_many([(TITAN_XP, layer_a, config),
                                   (TITAN_XP, layer_b, config)])
            assert session.stats.sim_tasks == 1
            assert session.stats.sim_memo_hits == 1

    def test_pass_kind_distinguishes_units(self):
        from repro.core.layer import ConvLayerConfig
        from repro.sim.engine import SimulatorConfig
        layer = ConvLayerConfig.square("a", 1, 4, 8, 8, 3, padding=1)
        config = SimulatorConfig(max_ctas=10)
        with Session() as session:
            forward = session.simulate(TITAN_XP, layer, config)
            wgrad = session.simulate(TITAN_XP, layer, config,
                                     pass_kind="wgrad")
            assert session.stats.sim_tasks == 2
            assert forward.pass_kind == "forward"
            assert wgrad.pass_kind == "wgrad"
            # repeat requests hit the memo, per pass kind.
            session.simulate(TITAN_XP, layer, config, pass_kind="wgrad")
            assert session.stats.sim_tasks == 2

    def test_dtype_distinguishes_units(self):
        from repro.core.layer import ConvLayerConfig
        layer = ConvLayerConfig.square("a", 1, 4, 8, 8, 3, padding=1)
        assert layer.structural_key() != layer.with_dtype(2).structural_key()

    def test_network_dedupe_uses_the_same_key(self):
        from repro.core.layer import ConvLayerConfig
        from repro.networks.base import ConvNetwork
        layer = ConvLayerConfig.square("x", 1, 4, 8, 8, 3, padding=1)
        network = ConvNetwork(name="n", layers=(layer, layer.with_name("y")))
        assert len(network.unique_layers()) == 1
