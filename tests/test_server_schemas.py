"""The service's strict body-to-request deserialization layer."""

import json

import pytest

from repro.api import (DseRequest, EstimateRequest, ExperimentRequest,
                       SweepRequest, ValidateRequest)
from repro.server import BadRequest, parse_body
from repro.server.schemas import (parse_dse, parse_estimate, parse_experiment,
                                  parse_sweep, parse_validate)


def key_of(route, body):
    return parse_body(route, json.dumps(body).encode()).key


class TestParseBody:
    def test_unknown_route(self):
        with pytest.raises(BadRequest, match="unknown request route"):
            parse_body("teleport", b"{}")

    def test_invalid_json(self):
        with pytest.raises(BadRequest, match="not valid JSON"):
            parse_body("estimate", b"{network:")

    def test_non_object_body(self):
        with pytest.raises(BadRequest, match="must be a JSON object"):
            parse_body("estimate", b"[1, 2]")

    def test_empty_body_means_defaults(self):
        # sweep has defaults for everything; an empty body is a valid sweep.
        parsed = parse_body("sweep", b"")
        assert isinstance(parsed.request, SweepRequest)
        assert parsed.request.networks == ("alexnet", "vgg16", "googlenet",
                                           "resnet152")

    def test_empty_body_still_enforces_required_fields(self):
        with pytest.raises(BadRequest, match="'network' is required"):
            parse_body("estimate", b"")


class TestEstimate:
    def test_defaults(self):
        parsed = parse_estimate({"network": "alexnet"})
        request = parsed.request
        assert isinstance(request, EstimateRequest)
        assert (request.gpu, request.batch) == ("titanxp", 256)
        assert not parsed.as_job

    def test_unknown_field_rejected(self):
        with pytest.raises(BadRequest, match="bacth"):
            parse_estimate({"network": "alexnet", "bacth": 64})

    def test_unknown_network_rejected_at_parse_time(self):
        with pytest.raises(BadRequest, match="unknown network 'lenet9000'"):
            parse_estimate({"network": "lenet9000"})

    def test_unknown_gpu_rejected_at_parse_time(self):
        with pytest.raises(BadRequest, match="estimate"):
            parse_estimate({"network": "alexnet", "gpu": "rtx9090"})

    def test_type_errors_are_bad_requests(self):
        with pytest.raises(BadRequest, match="'batch' must be an integer"):
            parse_estimate({"network": "alexnet", "batch": "many"})
        with pytest.raises(BadRequest, match="'batch' must be an integer"):
            parse_estimate({"network": "alexnet", "batch": True})
        with pytest.raises(BadRequest, match="'unique' must be a boolean"):
            parse_estimate({"network": "alexnet", "unique": 1})

    def test_constructor_errors_become_bad_requests(self):
        with pytest.raises(BadRequest, match="estimate"):
            parse_estimate({"network": "alexnet", "batch": -4})
        with pytest.raises(BadRequest, match="estimate"):
            parse_estimate({"network": "alexnet", "passes": "sideways"})

    def test_job_flag(self):
        assert parse_estimate({"network": "alexnet", "job": True}).as_job
        with pytest.raises(BadRequest, match="'job' must be a boolean"):
            parse_estimate({"network": "alexnet", "job": "yes"})


class TestContentKeys:
    def test_normalization_shares_a_key(self):
        base = key_of("estimate", {"network": "alexnet"})
        assert key_of("estimate", {"network": "AlexNet"}) == base
        assert key_of("estimate", {"network": "alexnet",
                                   "gpu": "TitanXP"}) == base
        # explicit defaults normalize onto the omitted-field key.
        assert key_of("estimate", {"network": "alexnet", "gpu": "titanxp",
                                   "batch": 256, "unique": False}) == base

    def test_differing_requests_differ(self):
        base = key_of("estimate", {"network": "alexnet"})
        assert key_of("estimate", {"network": "alexnet",
                                   "batch": 64}) != base
        assert key_of("estimate", {"network": "vgg16"}) != base

    def test_job_flag_does_not_change_the_key(self):
        assert key_of("estimate", {"network": "alexnet", "job": True}) == \
            key_of("estimate", {"network": "alexnet"})

    def test_route_is_part_of_the_key(self):
        # same field values through different routes must never collide.
        assert key_of("validate", {"gpu": "titanxp"}) != \
            key_of("dse", {"gpu": "titanxp"})


class TestSweep:
    def test_defaults_match_cli(self):
        request = parse_sweep({}).request
        assert isinstance(request, SweepRequest)
        assert request.gpus == ("titanxp", "v100")
        assert request.batches == (64, 256)
        assert request.unique and request.paper_subset

    def test_scalar_promotes_to_list(self):
        request = parse_sweep({"networks": "alexnet", "batches": 32}).request
        assert request.networks == ("alexnet",)
        assert request.batches == (32,)

    def test_bad_batches(self):
        with pytest.raises(BadRequest, match="'batches'"):
            parse_sweep({"batches": ["a lot"]})
        with pytest.raises(BadRequest, match="'batches'"):
            parse_sweep({"batches": []})


class TestValidate:
    def test_defaults(self):
        request = parse_validate({}).request
        assert isinstance(request, ValidateRequest)
        assert (request.gpu, request.batch) == ("titanxp", 32)
        assert request.max_ctas == 180 and request.layers_per_network == 4

    def test_execution_policy_fields(self):
        request = parse_validate({"timeout": 2, "retries": 0}).request
        assert request.timeout == 2.0 and request.retries == 0

    def test_unknown_network_in_list(self):
        with pytest.raises(BadRequest, match="unknown network"):
            parse_validate({"networks": ["alexnet", "squeezenet"]})


class TestExperiment:
    def test_required_experiment_id(self):
        with pytest.raises(BadRequest, match="'experiment' is required"):
            parse_experiment({})

    def test_unknown_experiment(self):
        with pytest.raises(BadRequest, match="unknown experiment"):
            parse_experiment({"experiment": "table99"})

    def test_known_experiment(self):
        parsed = parse_experiment({"experiment": "tab01", "batch": 8})
        assert isinstance(parsed.request, ExperimentRequest)
        assert parsed.request.experiment == "tab01"


class TestDse:
    def test_default_space_is_the_stock_grid(self):
        parsed = parse_dse({})
        assert isinstance(parsed.request, DseRequest)
        assert parsed.request.gpu == "titanxp"
        assert len(list(parsed.request.space.points())) > 1

    def test_explicit_axes(self):
        parsed = parse_dse({"axes": {"num_sm": [1, 2], "cta_tile": 128}})
        points = list(parsed.request.space.points())
        assert len(points) == 2  # cta_tile scalar promoted, 2 x 1 grid

    def test_axes_must_be_an_object(self):
        with pytest.raises(BadRequest, match="'axes' must be a non-empty"):
            parse_dse({"axes": [1, 2]})
        with pytest.raises(BadRequest, match="'axes' must be a non-empty"):
            parse_dse({"axes": {}})

    def test_bad_axis_key(self):
        with pytest.raises(BadRequest, match="bad axis"):
            parse_dse({"axes": {"warp_speed": [1, 2]}})

    def test_multiple_networks_become_an_axis(self):
        parsed = parse_dse({"axes": {"num_sm": [1, 2]},
                            "networks": ["alexnet", "vgg16"]})
        assert len(list(parsed.request.space.points())) == 4

    def test_axes_change_the_key(self):
        assert key_of("dse", {"axes": {"num_sm": [1, 2]}}) != \
            key_of("dse", {"axes": {"num_sm": [1, 4]}})

    def test_unknown_driver_rejected(self):
        with pytest.raises(BadRequest, match="dse"):
            parse_dse({"driver": "simulated-annealing"})
