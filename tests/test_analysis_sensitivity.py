"""Tests for the sensitivity sweeps (Fig. 17 harness)."""

import pytest

from repro.analysis.sensitivity import (
    DEFAULT_SWEEPS,
    reference_layer,
    run_all_sweeps,
    run_sweep,
)
from repro.gpu import TITAN_XP
from repro.sim.engine import SimulatorConfig


FAST_SIM = SimulatorConfig(max_ctas=30)


class TestReferenceLayer:
    def test_matches_paper_appendix_configuration(self):
        layer = reference_layer()
        assert layer.in_channels == 256
        assert layer.in_height == 13
        assert layer.out_channels == 128
        assert layer.filter_height == 3
        assert layer.stride == 1


class TestSweeps:
    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValueError):
            run_sweep("unknown", TITAN_XP, values=[1, 2])

    def test_output_channel_sweep_tracks_cta_tile_width(self):
        sweep = run_sweep("out_channels", TITAN_XP, values=[32, 64, 128],
                          base=reference_layer(batch=4),
                          simulator_config=FAST_SIM)
        widths = [point.cta_tile_width for point in sweep.points]
        assert widths == [32, 64, 128]

    def test_ratios_reasonable_for_feature_size_sweep(self):
        sweep = run_sweep("feature_size", TITAN_XP, values=[8, 16],
                          base=reference_layer(batch=4),
                          simulator_config=FAST_SIM)
        for level in ("l1", "l2", "dram"):
            for value in sweep.ratios(level):
                assert 0.2 < value < 5.0

    def test_batch_sweep_has_stable_ratios(self):
        """Fig. 17d: the mini-batch size barely affects the model accuracy."""
        sweep = run_sweep("batch", TITAN_XP, values=[4, 8, 16],
                          base=reference_layer(batch=4),
                          simulator_config=FAST_SIM)
        dram_ratios = sweep.ratios("dram")
        assert max(dram_ratios) / min(dram_ratios) < 1.5

    def test_rows_structure(self):
        sweep = run_sweep("in_channels", TITAN_XP, values=[16, 64],
                          base=reference_layer(batch=4),
                          simulator_config=FAST_SIM)
        rows = sweep.rows()
        assert len(rows) == 2
        assert {"value", "l1_ratio", "l2_ratio", "dram_ratio"} <= set(rows[0])

    def test_run_all_sweeps_covers_default_parameters(self):
        tiny = {name: values[:1] for name, values in DEFAULT_SWEEPS.items()}
        results = run_all_sweeps(TITAN_XP, sweeps=tiny,
                                 simulator_config=FAST_SIM)
        assert set(results) == set(DEFAULT_SWEEPS)
        assert all(len(sweep.points) == 1 for sweep in results.values())
