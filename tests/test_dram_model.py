"""Tests for the DRAM traffic model (Section IV-C, Eq. 10)."""

import pytest

from repro.core.dram import (
    DramModelOptions,
    effective_ifmap_elements,
    estimate_dram_traffic,
)
from repro.core.layer import ConvLayerConfig
from repro.core.tiling import build_grid


class TestEffectiveIfmap:
    def test_includes_zero_padding(self, small_conv_layer):
        elements = effective_ifmap_elements(small_conv_layer)
        layer = small_conv_layer
        assert elements == (layer.batch * layer.in_channels
                            * layer.padded_height * layer.padded_width)

    def test_strided_pointwise_excludes_untouched_positions(self):
        layer = ConvLayerConfig.square("p", 4, in_channels=64, in_size=28,
                                       out_channels=128, filter_size=1, stride=2)
        touched = effective_ifmap_elements(layer)
        assert touched == 4 * 64 * 14 * 14
        assert touched < layer.ifmap_elements


class TestDramTraffic:
    def test_eq10_single_cta_column_reads_ifmap_once(self):
        layer = ConvLayerConfig.square("c", 32, in_channels=96, in_size=28,
                                       out_channels=128, filter_size=3, padding=1)
        grid = build_grid(layer)
        assert grid.ctas_n == 1
        traffic = estimate_dram_traffic(layer, grid)
        assert traffic.ifmap_bytes == pytest.approx(
            effective_ifmap_elements(layer) * 4)
        assert traffic.filter_bytes == pytest.approx(layer.filter_elements * 4)

    def test_eq10_multiple_cta_columns_reread_ifmap(self):
        layer = ConvLayerConfig.square("c", 32, in_channels=96, in_size=28,
                                       out_channels=384, filter_size=3, padding=1)
        grid = build_grid(layer)
        assert grid.ctas_n == 3
        traffic = estimate_dram_traffic(layer, grid)
        assert traffic.ifmap_bytes == pytest.approx(
            3 * effective_ifmap_elements(layer) * 4)

    def test_row_scheduling_ablation_rereads_filters(self):
        layer = ConvLayerConfig.square("c", 32, in_channels=96, in_size=28,
                                       out_channels=128, filter_size=3, padding=1)
        grid = build_grid(layer)
        column = estimate_dram_traffic(layer, grid)
        row = estimate_dram_traffic(layer, grid,
                                    DramModelOptions(scheduling="row"))
        assert row.filter_bytes == pytest.approx(column.filter_bytes * grid.ctas_m)
        assert row.ifmap_bytes == pytest.approx(column.ifmap_bytes / grid.ctas_n)

    def test_column_scheduling_wins_for_tall_gemm(self):
        # The paper's argument: for the tall-and-skinny im2col GEMM the
        # column-wise order produces far less DRAM traffic.
        layer = ConvLayerConfig.square("c", 64, in_channels=64, in_size=56,
                                       out_channels=64, filter_size=3, padding=1)
        grid = build_grid(layer)
        column = estimate_dram_traffic(layer, grid)
        row = estimate_dram_traffic(layer, grid,
                                    DramModelOptions(scheduling="row"))
        assert column.total_bytes < row.total_bytes

    def test_output_write_option_adds_ofmap(self, small_conv_layer):
        grid = build_grid(small_conv_layer)
        loads_only = estimate_dram_traffic(small_conv_layer, grid)
        with_writes = estimate_dram_traffic(
            small_conv_layer, grid, DramModelOptions(include_output_write=True))
        assert with_writes.total_bytes == pytest.approx(
            loads_only.total_bytes + small_conv_layer.ofmap_bytes)
        assert loads_only.output_bytes == 0.0

    def test_load_bytes_excludes_writes(self, small_conv_layer):
        grid = build_grid(small_conv_layer)
        traffic = estimate_dram_traffic(
            small_conv_layer, grid, DramModelOptions(include_output_write=True))
        assert traffic.load_bytes == pytest.approx(
            traffic.ifmap_bytes + traffic.filter_bytes)
