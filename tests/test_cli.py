"""Tests for the command line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "alexnet" in output
        assert "fig16" in output
        assert "V100" in output

    def test_fast_experiment_command(self, capsys):
        assert main(["experiment", "tab01"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "TITAN Xp" in output

    def test_validate_command(self, capsys, tmp_path):
        assert main(["validate", "--gpu", "titanxp", "--batch", "2",
                     "--max-ctas", "30", "--layers-per-network", "1",
                     "--sim-cache", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "model-vs-simulator validation on TITAN Xp" in output
        assert "dram traffic GMAE" in output
        assert list(tmp_path.glob("delta-sim-*.json"))

    def test_validate_parser_accepts_jobs(self):
        args = build_parser().parse_args(["validate", "--jobs", "3"])
        assert args.jobs == 3

    def test_estimate_command(self, capsys):
        assert main(["estimate", "--network", "alexnet", "--gpu", "v100",
                     "--batch", "32", "--unique"]) == 0
        output = capsys.readouterr().out
        assert "AlexNet on V100" in output
        assert "total conv time" in output
        assert "conv5" in output

    def test_estimate_paper_subset(self, capsys):
        assert main(["estimate", "--network", "googlenet", "--gpu", "titanxp",
                     "--batch", "16", "--unique", "--paper-subset"]) == 0
        output = capsys.readouterr().out
        assert "GoogLeNet on TITAN Xp" in output

    def test_sweep_command(self, capsys):
        assert main(["sweep", "--networks", "alexnet", "--gpus", "titanxp",
                     "v100", "--batches", "16"]) == 0
        output = capsys.readouterr().out
        assert "model sweep" in output
        assert "AlexNet" in output and "V100" in output

    def test_sweep_paper_subset_is_toggleable(self):
        args = build_parser().parse_args(["sweep", "--no-paper-subset"])
        assert args.paper_subset is False
        assert build_parser().parse_args(["sweep"]).paper_subset is True

    def test_bad_network_name_is_isolated_error(self, capsys):
        assert main(["estimate", "--network", "nonesuch"]) == 1
        assert "EstimateRequest failed" in capsys.readouterr().out

    def test_bad_network_name_json_error_report(self, capsys):
        """The CI fault-injection smoke: a bad network under --format json
        exits nonzero and still prints a machine-readable error report."""
        assert main(["estimate", "--network", "nonesuch",
                     "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "error"
        assert "nonesuch" in payload["summary"]["message"]
        assert payload["meta"]["request"] == "EstimateRequest"
        assert payload["meta"]["traceback"]

    def test_timeout_and_retries_flags_configure_session(self):
        args = build_parser().parse_args(
            ["validate", "--timeout", "2.5", "--retries", "0"])
        assert args.timeout == 2.5
        assert args.retries == 0
        with pytest.raises(SystemExit):  # argparse usage error stays exit 2
            build_parser().parse_args(["validate", "--timeout", "soon"])

    def test_non_positive_timeout_rejected(self, capsys):
        assert main(["validate", "--timeout", "-1"]) == 1
        assert "timeout" in capsys.readouterr().out

    def test_non_positive_jobs_rejected(self, capsys):
        # default mode isolates the error into a kind="error" report + exit 1
        assert main(["experiment", "tab01", "--jobs", "0"]) == 1
        assert "jobs must be positive" in capsys.readouterr().out
        # --strict re-raises instead
        with pytest.raises(ValueError):
            main(["experiment", "tab01", "--jobs", "0", "--strict"])


class TestJsonOutput:
    def test_list_format_json(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "alexnet" in payload["networks"]
        # the paper-subset variants are listed explicitly.
        assert set(payload["paper_subset_variants"]) == {"alexnet", "vgg16",
                                                         "googlenet",
                                                         "resnet152"}
        gpu_names = {gpu["name"] for gpu in payload["gpus"]}
        assert gpu_names == {"TITAN Xp", "P100", "V100"}
        ids = {exp["id"] for exp in payload["experiments"]}
        assert {"tab01", "fig11", "fig20"} <= ids

    def test_experiment_format_json(self, capsys):
        assert main(["experiment", "tab01", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report_id"] == "tab01"
        assert len(payload["rows"]) == 3

    def test_estimate_format_json(self, capsys):
        assert main(["estimate", "--network", "alexnet", "--gpu", "v100",
                     "--batch", "8", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "estimate"
        assert payload["summary"]["total conv time (ms)"] > 0

    def test_validate_format_json(self, capsys, tmp_path):
        assert main(["validate", "--gpu", "titanxp", "--batch", "2",
                     "--max-ctas", "30", "--layers-per-network", "1",
                     "--networks", "alexnet", "--sim-cache", str(tmp_path),
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "validation"
        assert payload["meta"]["networks"] == ["alexnet"]
        assert len(payload["rows"]) == 1

    def test_experiment_override_flags(self, capsys):
        assert main(["experiment", "fig13", "--gpus", "v100", "--networks",
                     "alexnet", "--batch", "4", "--max-ctas", "40",
                     "--layers-per-network", "1"]) == 0
        output = capsys.readouterr().out
        assert "V100" in output
        assert "AlexNet" in output


class TestPassFlag:
    def test_estimate_training_pass(self, capsys):
        assert main(["estimate", "--network", "alexnet", "--batch", "32",
                     "--unique", "--pass", "training"]) == 0
        output = capsys.readouterr().out
        assert "training step" in output
        assert "wgrad" in output
        assert "total step time" in output

    def test_estimate_training_json(self, capsys):
        assert main(["estimate", "--network", "alexnet", "--batch", "32",
                     "--pass", "training", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["passes"] == "training"
        passes = {row["pass"] for row in payload["rows"]}
        assert passes == {"forward", "dgrad", "wgrad"}

    def test_estimate_single_backward_pass(self, capsys):
        assert main(["estimate", "--network", "alexnet", "--batch", "32",
                     "--unique", "--pass", "dgrad"]) == 0
        assert "dgrad pass" in capsys.readouterr().out

    def test_sweep_accepts_pass(self, capsys):
        assert main(["sweep", "--networks", "alexnet", "--gpus", "titanxp",
                     "--batches", "32", "--pass", "training"]) == 0
        assert "training" in capsys.readouterr().out

    def test_invalid_pass_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["estimate", "--network", "alexnet",
                                       "--pass", "sideways"])

    def test_training_experiment_via_cli(self, capsys):
        assert main(["experiment", "training", "--batch", "32",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report_id"] == "training"
        assert payload["rows"]


class TestDseCommand:
    def test_dse_with_explicit_axes(self, capsys):
        assert main(["dse", "--networks", "alexnet", "--batches", "16",
                     "--axis", "num_sm=1,2", "--axis", "dram_bw=1,1.5"]) == 0
        output = capsys.readouterr().out
        assert "design-space exploration on TITAN Xp" in output
        assert "what to scale next" in output

    def test_dse_format_json(self, capsys, tmp_path):
        store = str(tmp_path / "sweep.jsonl")
        assert main(["dse", "--networks", "alexnet", "--batches", "16",
                     "--axis", "num_sm=1,2", "--axis", "mac_bw=1,4",
                     "--store", store, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "dse"
        assert payload["summary"]["frontier size"] >= 1
        assert payload["meta"]["store_path"] == store
        assert payload["rows"]
        for row in payload["rows"]:
            assert {"design", "speedup", "cost"} <= set(row)

    def test_dse_random_driver_with_budget(self, capsys):
        assert main(["dse", "--networks", "alexnet", "--batches", "16",
                     "--driver", "random", "--budget", "6", "--seed", "3",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["points planned"] == 6
        assert payload["meta"]["driver"] == "random"
        assert payload["meta"]["seed"] == 3

    def test_dse_store_resume_via_cli(self, capsys, tmp_path):
        store = str(tmp_path / "sweep.jsonl")
        args = ["dse", "--networks", "alexnet", "--batches", "16",
                "--axis", "num_sm=1,2,4", "--store", store,
                "--format", "json"]
        assert main(args) == 0
        first = json.loads(capsys.readouterr().out)
        assert main(args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["summary"]["points evaluated"] > 0
        assert second["summary"]["points evaluated"] == 0
        assert second["rows"] == first["rows"]

    def test_dse_rejects_unknown_objective(self, capsys):
        assert main(["dse", "--networks", "alexnet", "--batches", "16",
                     "--axis", "num_sm=1,2", "--objectives", "speed"]) == 1
        assert "unknown objective" in capsys.readouterr().out
        with pytest.raises(ValueError, match="unknown objective"):
            main(["dse", "--networks", "alexnet", "--batches", "16",
                  "--axis", "num_sm=1,2", "--objectives", "speed",
                  "--strict"])

    def test_dse_rejects_malformed_axis(self, capsys):
        assert main(["dse", "--networks", "alexnet",
                     "--axis", "num_sm"]) == 1
        assert "malformed axis" in capsys.readouterr().out
        with pytest.raises(ValueError, match="malformed axis"):
            main(["dse", "--networks", "alexnet", "--axis", "num_sm",
                  "--strict"])
