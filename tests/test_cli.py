"""Tests for the command line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_experiment_choices_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        assert "alexnet" in output
        assert "fig16" in output
        assert "V100" in output

    def test_fast_experiment_command(self, capsys):
        assert main(["experiment", "tab01"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output
        assert "TITAN Xp" in output

    def test_validate_command(self, capsys, tmp_path):
        assert main(["validate", "--gpu", "titanxp", "--batch", "2",
                     "--max-ctas", "30", "--layers-per-network", "1",
                     "--sim-cache", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "model-vs-simulator validation on TITAN Xp" in output
        assert "dram traffic GMAE" in output
        assert list(tmp_path.glob("delta-sim-*.json"))

    def test_validate_parser_accepts_jobs(self):
        args = build_parser().parse_args(["validate", "--jobs", "3"])
        assert args.jobs == 3

    def test_estimate_command(self, capsys):
        assert main(["estimate", "--network", "alexnet", "--gpu", "v100",
                     "--batch", "32", "--unique"]) == 0
        output = capsys.readouterr().out
        assert "AlexNet on V100" in output
        assert "total conv time" in output
        assert "conv5" in output

    def test_estimate_paper_subset(self, capsys):
        assert main(["estimate", "--network", "googlenet", "--gpu", "titanxp",
                     "--batch", "16", "--unique", "--paper-subset"]) == 0
        output = capsys.readouterr().out
        assert "GoogLeNet on TITAN Xp" in output
