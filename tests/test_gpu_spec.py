"""Tests for repro.gpu: device specs, derived quantities and scaling."""

import dataclasses

import pytest

from repro.gpu import (
    GIGA,
    TESLA_P100,
    TESLA_V100,
    TITAN_XP,
    GpuSpec,
    all_devices,
    get_device,
)


class TestDeviceTable:
    """Table I values must match the paper."""

    def test_titan_xp_table_one(self):
        assert TITAN_XP.num_sm == 30
        assert TITAN_XP.fp32_flops == pytest.approx(12134 * GIGA)
        assert TITAN_XP.l2_size == 3 * 1024 * 1024
        assert TITAN_XP.l1_request_bytes == 128

    def test_p100_table_one(self):
        assert TESLA_P100.num_sm == 56
        assert TESLA_P100.fp32_flops == pytest.approx(8602 * GIGA)
        assert TESLA_P100.l2_size == 4 * 1024 * 1024

    def test_v100_table_one(self):
        assert TESLA_V100.num_sm == 84
        assert TESLA_V100.fp32_flops == pytest.approx(14837 * GIGA)
        assert TESLA_V100.l2_size == 6 * 1024 * 1024
        # the paper found 32 B L1 requests match Volta measurements best.
        assert TESLA_V100.l1_request_bytes == 32

    def test_lookup_by_name_case_insensitive(self):
        assert get_device("TiTaN Xp") is TITAN_XP
        assert get_device("v100") is TESLA_V100

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_device("a100")

    def test_all_devices_order(self):
        assert [gpu.name for gpu in all_devices()] == ["TITAN Xp", "P100", "V100"]


class TestDerivedQuantities:
    def test_macs_per_second_is_half_of_flops(self, any_gpu):
        assert any_gpu.macs_per_second == pytest.approx(any_gpu.fp32_flops / 2)

    def test_per_cycle_bandwidths_consistent(self, any_gpu):
        assert any_gpu.l1_bw_bytes_per_cycle == pytest.approx(
            any_gpu.l1_bw_per_sm / any_gpu.core_clock_hz)
        assert any_gpu.dram_bw_bytes_per_cycle > 0

    def test_sector_partitioning(self, any_gpu):
        assert any_gpu.sectors_per_line == any_gpu.line_bytes // any_gpu.sector_bytes
        assert any_gpu.l1_request_bytes % any_gpu.sector_bytes == 0

    def test_smem_bandwidths_positive(self, any_gpu):
        assert any_gpu.smem_st_bw_per_sm > 0
        assert any_gpu.smem_ld_bw_per_sm >= any_gpu.smem_st_bw_per_sm


class TestValidation:
    def test_rejects_nonpositive_sm_count(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TITAN_XP, num_sm=0)

    def test_rejects_misaligned_request_size(self):
        with pytest.raises(ValueError):
            dataclasses.replace(TITAN_XP, l1_request_bytes=48)


class TestScaling:
    def test_identity_scaling_changes_nothing(self):
        assert TITAN_XP.scaled() == TITAN_XP

    def test_scaling_sm_count_also_scales_total_macs(self):
        scaled = TITAN_XP.scaled(num_sm=2.0)
        assert scaled.num_sm == 60
        assert scaled.fp32_flops == pytest.approx(2 * TITAN_XP.fp32_flops)
        # per-SM MAC rate is unchanged when only the SM count scales.
        assert scaled.macs_per_cycle_per_sm == pytest.approx(
            TITAN_XP.macs_per_cycle_per_sm)

    def test_scaling_mac_bw_only_changes_per_sm_rate(self):
        scaled = TITAN_XP.scaled(mac_bw=4.0)
        assert scaled.num_sm == TITAN_XP.num_sm
        assert scaled.macs_per_cycle_per_sm == pytest.approx(
            4 * TITAN_XP.macs_per_cycle_per_sm)

    def test_scaling_memory_resources(self):
        scaled = TITAN_XP.scaled(dram_bw=2.0, l2_bw=1.5, smem_size=2.0)
        assert scaled.dram_bw == pytest.approx(2 * TITAN_XP.dram_bw)
        assert scaled.l2_bw == pytest.approx(1.5 * TITAN_XP.l2_bw)
        assert scaled.smem_bytes == 2 * TITAN_XP.smem_bytes

    def test_unknown_scaling_key_rejected(self):
        with pytest.raises(ValueError):
            TITAN_XP.scaled(tensor_cores=2.0)

    def test_with_name(self):
        renamed = TITAN_XP.with_name("TITAN Xp 2x")
        assert renamed.name == "TITAN Xp 2x"
        assert renamed.num_sm == TITAN_XP.num_sm
