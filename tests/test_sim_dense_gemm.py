"""Dense-GEMM simulator tests: address decomposition + engine equivalence.

Mirrors the conv equivalence suite for the GEMM-native lowering: the trace
generator's separable dense address decomposition is checked against a
brute-force per-element reference, and the vectorized engine must produce
bit-identical ``SimTraffic`` to the scalar reference loop on linear and
batched-GEMM workloads for all three training passes.
"""

import math

import numpy as np
import pytest

from repro.core.layer import BatchedGemmLayerConfig, LinearLayerConfig
from repro.core.tiling import build_grid
from repro.core.workload import TRAINING_PASSES, lower_pass
from repro.gpu.devices import TITAN_XP
from repro.sim.address import INVALID_ADDRESS
from repro.sim.engine import ConvLayerSimulator, SimulatorConfig
from repro.sim.im2col import GemmTraceGenerator

LINEAR = LinearLayerConfig("fc", batch=140, in_features=70, out_features=150)
BATCHED = BatchedGemmLayerConfig("bgemm", batch=2, groups_per_sample=2,
                                 m=100, n=70, k=40)


def _naive_dense_addresses(workload, trace, operand, own_values, k_values):
    """Per-element dense address reference (no separability assumed)."""
    gemm = workload.gemm
    dtype = workload.dtype_bytes
    pass_kind = workload.pass_kind
    tile = trace.tile
    rows = gemm.m if operand == "a" else gemm.n
    blk = tile.blk_m if operand == "a" else tile.blk_n
    padded = math.ceil(rows / blk) * blk
    base = trace.layout.a_base if operand == "a" else trace.layout.b_base
    out = np.full((own_values.size, k_values.size), INVALID_ADDRESS,
                  dtype=np.int64)
    for i, own in enumerate(own_values):
        group, row = ((own // padded, own % padded) if workload.groups > 1
                      else (0, own))
        if row >= rows or group >= workload.groups:
            continue
        for j, k in enumerate(k_values):
            if k >= gemm.k:
                continue
            if operand == "a":
                offset = (row * gemm.k + k if pass_kind in ("forward", "dgrad")
                          else k * gemm.m + row)
                stride = gemm.m * gemm.k
            else:
                offset = (row * gemm.k + k if pass_kind == "forward"
                          else k * gemm.n + row)
                stride = gemm.n * gemm.k
            out[i, j] = base + (group * stride + offset) * dtype
    return out


@pytest.mark.parametrize("layer", [LINEAR, BATCHED],
                         ids=["linear", "batched"])
@pytest.mark.parametrize("pass_kind", TRAINING_PASSES)
def test_dense_tile_addresses_match_reference(layer, pass_kind):
    workload = lower_pass(layer, pass_kind)
    grid = build_grid(workload)
    trace = GemmTraceGenerator(workload, grid.tile, TITAN_XP)
    tile = grid.tile
    # every K offset, including the final (partial) K tile whose tail lanes
    # must be predicated off, not wrapped into aliased addresses.
    k_offsets = [loop * tile.blk_k for loop in range(grid.main_loops_per_cta)]
    for cta_m in range(grid.groups * grid.ctas_m):
        own = cta_m * tile.blk_m + np.arange(tile.blk_m)
        for k_offset in k_offsets:
            k = k_offset + np.arange(tile.blk_k)
            expected = _naive_dense_addresses(workload, trace, "a", own, k)
            assert np.array_equal(trace.a_tile_addresses(cta_m, k_offset),
                                  expected)
    for cta_n in range(grid.groups * grid.ctas_n):
        own = cta_n * tile.blk_n + np.arange(tile.blk_n)
        for k_offset in k_offsets:
            k = k_offset + np.arange(tile.blk_k)
            expected = _naive_dense_addresses(workload, trace, "b", own, k)
            assert np.array_equal(trace.b_tile_addresses(cta_n, k_offset),
                                  expected)


@pytest.mark.parametrize("layer", [LINEAR, BATCHED],
                         ids=["linear", "batched"])
@pytest.mark.parametrize("pass_kind", TRAINING_PASSES)
def test_dense_batched_trace_matches_scalar_tiles(layer, pass_kind):
    """The batched fast path reproduces the per-tile access records."""
    workload = lower_pass(layer, pass_kind)
    grid = build_grid(workload)
    trace = GemmTraceGenerator(workload, grid.tile, TITAN_XP)
    coords = list(range(grid.groups * grid.ctas_m))
    k_offsets = [loop * grid.tile.blk_k
                 for loop in range(grid.main_loops_per_cta)]
    batch = trace.a_tile_batch(coords, k_offsets)
    for position, coord in enumerate(coords):
        for loop, k_offset in enumerate(k_offsets):
            scalar = trace.a_tile_access(coord, k_offset)
            tile = batch.tile(position * len(k_offsets) + loop)
            assert tile.l1_requests == scalar.l1_requests
            assert tile.l1_sectors == scalar.l1_sectors
            assert tile.elements == scalar.elements
            assert np.array_equal(tile.sectors, scalar.sectors)


@pytest.mark.parametrize("layer", [LINEAR, BATCHED],
                         ids=["linear", "batched"])
@pytest.mark.parametrize("pass_kind", TRAINING_PASSES)
def test_vectorized_engine_bit_identical_on_dense_traces(layer, pass_kind):
    """Acceptance: vectorized == scalar SimTraffic on dense GEMMs, all passes."""
    workload = lower_pass(layer, pass_kind)
    vectorized = ConvLayerSimulator(
        TITAN_XP, SimulatorConfig(max_ctas=None)).run(workload)
    scalar = ConvLayerSimulator(
        TITAN_XP, SimulatorConfig(max_ctas=None, vectorized=False)).run(workload)
    for field in ("l1_bytes", "l2_bytes", "dram_bytes", "dram_ifmap_bytes",
                  "dram_filter_bytes", "l1_requests"):
        assert (getattr(vectorized.traffic, field)
                == getattr(scalar.traffic, field)), field
    assert vectorized.time_seconds == scalar.time_seconds
    assert vectorized.simulated_ctas == scalar.simulated_ctas
    assert vectorized.scale_factor == scalar.scale_factor


class TestBatchedGrouping:
    def test_grid_scales_by_groups(self):
        workload = lower_pass(BATCHED, "forward")
        grid = build_grid(workload)
        per_instance = grid.ctas_m * grid.ctas_n
        assert grid.groups == BATCHED.groups
        assert grid.num_ctas == BATCHED.groups * per_instance

    def test_group_slices_are_disjoint(self):
        """Different instances of a batched GEMM touch disjoint addresses."""
        workload = lower_pass(BATCHED, "forward")
        grid = build_grid(workload)
        trace = GemmTraceGenerator(workload, grid.tile, TITAN_XP)
        per_group = {}
        for group in range(grid.groups):
            addresses = set()
            for local_m in range(grid.ctas_m):
                tile_addresses = trace.a_tile_addresses(
                    group * grid.ctas_m + local_m, 0)
                addresses.update(
                    tile_addresses[tile_addresses != INVALID_ADDRESS].tolist())
            per_group[group] = addresses
        for group in range(1, grid.groups):
            assert not (per_group[0] & per_group[group])

    def test_sim_traffic_scales_with_groups(self):
        """2x the instances means exactly 2x the compulsory DRAM traffic."""
        small = BatchedGemmLayerConfig("bg1", batch=1, groups_per_sample=2,
                                       m=64, n=64, k=32)
        double = BatchedGemmLayerConfig("bg2", batch=2, groups_per_sample=2,
                                        m=64, n=64, k=32)
        config = SimulatorConfig(max_ctas=None)
        sim = ConvLayerSimulator(TITAN_XP, config)
        one = sim.run(lower_pass(small, "forward"))
        two = sim.run(lower_pass(double, "forward"))
        assert two.traffic.dram_bytes == pytest.approx(
            2 * one.traffic.dram_bytes)
