"""Unit tests for the context-local span API and chrome-trace export.

Covers the tracer-absent fast path, the shallow/deep split, nesting and
parent links, worker-span adoption (re-parenting), the per-request timing
breakdown, and the shape of ``Trace.to_chrome()`` output.  End-to-end trace
plumbing (CLI ``--trace``, traced jobs, pool piggybacking) is covered by
the CLI/server tests and CI's chrome-trace validation job.
"""

import json
import os

from repro.obs import spans as obs_spans
from repro.obs.spans import Span, Tracer


class TestFastPath:
    def test_trace_without_tracer_yields_none(self):
        assert obs_spans.active_tracer() is None
        with obs_spans.trace("anything", detail=1) as span:
            assert span is None
        with obs_spans.trace_deep("anything") as span:
            assert span is None

    def test_no_tracer_means_no_state_leak(self):
        with obs_spans.trace("outer"):
            with obs_spans.trace_deep("inner"):
                pass
        assert obs_spans.current_span_id() is None
        assert not obs_spans.deep_tracing()


class TestGranularity:
    def test_shallow_tracer_skips_deep_spans(self):
        tracer = Tracer(deep=False)
        with obs_spans.install_tracer(tracer):
            assert not obs_spans.deep_tracing()
            with obs_spans.trace("request") as shallow:
                assert shallow is not None
                with obs_spans.trace_deep("per-unit") as deep:
                    assert deep is None
        assert [s.name for s in tracer.spans] == ["request"]

    def test_deep_tracer_records_both(self):
        tracer = Tracer(deep=True)
        with obs_spans.install_tracer(tracer):
            assert obs_spans.deep_tracing()
            with obs_spans.trace("request"):
                with obs_spans.trace_deep("per-unit"):
                    pass
        assert [s.name for s in tracer.spans] == ["request", "per-unit"]


class TestNesting:
    def test_parent_links_follow_lexical_nesting(self):
        tracer = Tracer(deep=True)
        with obs_spans.install_tracer(tracer):
            with obs_spans.trace("root") as root:
                with obs_spans.trace("child") as child:
                    with obs_spans.trace_deep("grandchild") as grand:
                        assert obs_spans.current_span_id() == grand.span_id
                assert obs_spans.current_span_id() == root.span_id
        assert root.parent is None
        assert child.parent == root.span_id
        assert grand.parent == child.span_id
        # every span is closed, with end >= start.
        for span in tracer.spans:
            assert span.end is not None and span.end >= span.start
            assert span.duration_ms >= 0.0

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with obs_spans.install_tracer(tracer):
            with obs_spans.trace("root") as root:
                with obs_spans.trace("first") as a:
                    pass
                with obs_spans.trace("second") as b:
                    pass
        assert a.parent == b.parent == root.span_id

    def test_attrs_are_kept_verbatim(self):
        tracer = Tracer()
        with obs_spans.install_tracer(tracer):
            with obs_spans.trace("sim", workload="conv1", wave=3) as span:
                pass
        assert span.attrs == {"workload": "conv1", "wave": 3}


class TestSerialization:
    def test_span_dict_roundtrip(self):
        span = Span(span_id="123-4", name="unit", start=100.0, end=100.5,
                    pid=123, tid=7, parent="123-1", attrs={"k": "v"})
        assert Span.from_dict(span.as_dict()) == span

    def test_open_span_roundtrips_with_null_end(self):
        span = Span(span_id="1-1", name="open", start=5.0)
        clone = Span.from_dict(json.loads(json.dumps(span.as_dict())))
        assert clone.end is None
        assert clone.duration_ms == 0.0


class TestAdoption:
    def test_worker_roots_are_reparented(self):
        tracer = Tracer(deep=True)
        worker = [
            Span(span_id="999-1", name="task:sim", start=1.0, end=2.0,
                 pid=999).as_dict(),
            Span(span_id="999-2", name="task:sim", start=2.0, end=3.0,
                 pid=999, parent="999-1").as_dict(),
        ]
        tracer.adopt(worker, parent="1-1")
        by_id = {s.span_id: s for s in tracer.spans}
        # the worker's root hangs off the coordinator span; nested worker
        # spans keep their own parent links untouched.
        assert by_id["999-1"].parent == "1-1"
        assert by_id["999-2"].parent == "999-1"


class TestRequestTrace:
    def test_installs_private_shallow_tracer_when_none(self):
        assert obs_spans.active_tracer() is None
        with obs_spans.request_trace("request:Estimate") as rt:
            assert obs_spans.active_tracer() is rt.tracer
            assert not rt.tracer.deep
            with obs_spans.trace("simulate"):
                pass
            with obs_spans.trace("simulate"):
                pass
            with obs_spans.trace("frontier"):
                pass
        assert obs_spans.active_tracer() is None
        timing = rt.timing()
        assert timing["total_ms"] >= 0.0
        # phases aggregate direct children by name.
        assert set(timing["phases"]) == {"simulate", "frontier"}
        assert timing["phases"]["simulate"] >= 0.0

    def test_nested_spans_do_not_count_as_phases(self):
        with obs_spans.request_trace("request") as rt:
            with obs_spans.trace("outer"):
                with obs_spans.trace("inner"):
                    pass
        assert set(rt.timing()["phases"]) == {"outer"}

    def test_reuses_an_installed_deep_tracer(self):
        tracer = Tracer(deep=True)
        with obs_spans.install_tracer(tracer):
            with obs_spans.request_trace("request") as rt:
                assert rt.tracer is tracer
                with obs_spans.trace_deep("unit"):
                    pass
            # the surrounding tracer stays installed after the request.
            assert obs_spans.active_tracer() is tracer
        assert {s.name for s in tracer.spans} == {"request", "unit"}

    def test_elapsed_timing_shape(self):
        import time
        timing = obs_spans.elapsed_timing(time.perf_counter())
        assert timing["phases"] == {}
        assert timing["total_ms"] >= 0.0


class TestChromeExport:
    def _trace(self):
        with obs_spans.collect_trace(deep=True) as trace:
            with obs_spans.trace("root", kind="test"):
                with obs_spans.trace_deep("leaf"):
                    pass
        return trace

    def test_collect_trace_survives_context_exit(self):
        trace = self._trace()
        assert len(trace) == 2
        assert [s.name for s in trace.spans] == ["root", "leaf"]

    def test_chrome_shape(self):
        payload = self._trace().to_chrome()
        assert payload["displayTimeUnit"] == "ms"
        assert payload["otherData"]["spans"] == 2
        events = payload["traceEvents"]
        metas = [e for e in events if e["ph"] == "M"]
        spans = [e for e in events if e["ph"] == "X"]
        assert [m["name"] for m in metas] == ["process_name"]
        assert metas[0]["pid"] == os.getpid()
        assert "coordinator" in metas[0]["args"]["name"]
        assert len(spans) == 2
        ids = {e["args"]["span_id"] for e in spans}
        for event in spans:
            assert event["cat"] == "repro"
            assert event["ts"] >= 0.0 and event["dur"] >= 0.0
            parent = event["args"].get("parent")
            assert parent is None or parent in ids
        # timestamps are rebased so the earliest span opens at t=0.
        assert min(e["ts"] for e in spans) == 0.0
        assert json.dumps(payload)  # JSON-serializable end to end

    def test_unclosed_span_is_flagged_not_dropped(self):
        tracer = Tracer()
        tracer.begin("still-open", None, {})
        payload = obs_spans.Trace(tracer).to_chrome()
        (event,) = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert event["args"]["unclosed"] is True
        assert event["dur"] == 0.0

    def test_foreign_pid_gets_a_worker_process_name(self):
        tracer = Tracer()
        tracer.adopt([Span(span_id="424242-1", name="task", start=1.0,
                           end=2.0, pid=424242).as_dict()], parent=None)
        payload = obs_spans.Trace(tracer).to_chrome()
        metas = {e["pid"]: e["args"]["name"]
                 for e in payload["traceEvents"] if e["ph"] == "M"}
        assert metas[424242] == "repro worker-424242"

    def test_empty_trace_exports_cleanly(self):
        payload = obs_spans.Trace(Tracer()).to_chrome()
        assert payload["traceEvents"] == []
        assert payload["otherData"]["spans"] == 0
