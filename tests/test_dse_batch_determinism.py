"""DSE driver determinism across evaluation modes.

``explore(..., eval_mode="batch")`` and ``eval_mode="task"`` must leave
*byte-identical* result stores behind: same keys, same serialized metrics,
same frontier — for every driver, including the successive-halving driver
whose proxy scoring also runs through the batched path in batch mode.  A
divergence here would silently fork resumed sweeps depending on which mode
first populated the store.
"""

import json

import pytest

from repro.dse import (ExhaustiveDriver, RandomDriver, ResultStore,
                       SuccessiveHalvingDriver, explore, grid)
from repro.gpu.devices import TITAN_XP

SPACE = grid({"num_sm": (1, 1.5, 2, 3), "mac_bw": (1, 2, 4),
              "l2_bw": (1, 2), "dram_bw": (1, 1.5, 2),
              "cta_tile": (128, 256)},
             network="alexnet", batch=8)

DRIVERS = [
    pytest.param(lambda: ExhaustiveDriver(), id="exhaustive"),
    pytest.param(lambda: RandomDriver(budget=24, seed=7), id="random"),
    pytest.param(lambda: SuccessiveHalvingDriver(budget=6, eta=3, rungs=2,
                                                 seed=7),
                 id="halving"),
]


def _store_lines(path):
    with open(path, encoding="utf-8") as handle:
        return [line.rstrip("\n") for line in handle if line.strip()]


@pytest.mark.parametrize("make_driver", DRIVERS)
def test_store_contents_identical_across_eval_modes(make_driver, tmp_path):
    explorations = {}
    stores = {}
    for mode in ("batch", "task"):
        path = tmp_path / f"{mode}.jsonl"
        explorations[mode] = explore(
            SPACE, driver=make_driver(), base_gpu=TITAN_XP,
            store=ResultStore(path), eval_mode=mode)
        stores[mode] = _store_lines(path)

    # same store bytes, line for line, in the same append order.
    assert stores["batch"] == stores["task"]
    assert stores["batch"]

    batch, task = explorations["batch"], explorations["task"]
    assert batch.stats.evaluated == task.stats.evaluated > 0
    assert [r.key for r in batch.results] == [r.key for r in task.results]
    assert json.dumps(batch.frontier_rows(), sort_keys=True) == \
        json.dumps(task.frontier_rows(), sort_keys=True)


@pytest.mark.parametrize("make_driver", DRIVERS)
def test_cross_mode_resume_reuses_other_modes_store(make_driver, tmp_path):
    """A store written by one mode fully satisfies a resume in the other."""
    path = tmp_path / "sweep.jsonl"
    first = explore(SPACE, driver=make_driver(), base_gpu=TITAN_XP,
                    store=ResultStore(path), eval_mode="batch")
    resumed = explore(SPACE, driver=make_driver(), base_gpu=TITAN_XP,
                      store=ResultStore(path), eval_mode="task")
    assert resumed.stats.evaluated == 0
    # the implicit baseline point can be a store hit without being a
    # driver-planned result, so compare hits against the first run's.
    assert resumed.stats.store_hits == first.stats.store_hits + \
        first.stats.evaluated
    assert all(result.cached for result in resumed.results)
    assert [r.key for r in resumed.results] == [r.key for r in first.results]
    assert json.dumps(resumed.frontier_rows(), sort_keys=True) == \
        json.dumps(first.frontier_rows(), sort_keys=True)
