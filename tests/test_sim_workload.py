"""Simulator tests for backward-pass (dgrad/wgrad) GEMM workloads.

The trace generator and engine consume the same workload IR as the analytic
model; these tests check the backward-pass address streams are well formed,
that the batched fast path matches the scalar generator tile for tile, and
that the vectorized engine stays bit-identical to the scalar reference loop
on every training pass.
"""

import numpy as np
import pytest

from repro.core.tiling import build_grid
from repro.core.workload import lower_pass, training_workloads
from repro.gpu import TESLA_V100, TITAN_XP
from repro.sim.address import INVALID_ADDRESS, WorkloadLayout
from repro.sim.engine import ConvLayerSimulator, SimulatorConfig
from repro.sim.im2col import GemmTraceGenerator


def make_generator(workload, gpu=TITAN_XP):
    grid = build_grid(workload)
    return GemmTraceGenerator(workload, grid.tile, gpu), grid


class TestWorkloadLayout:
    def test_forward_layout_matches_tensor_layout(self, small_conv_layer):
        from repro.sim.address import TensorLayout
        forward = lower_pass(small_conv_layer, "forward")
        layout = WorkloadLayout(forward, 128)
        seed = TensorLayout(small_conv_layer, 128)
        assert layout.a_base == seed.ifmap_base
        assert layout.b_base == seed.filter_base
        assert layout.total_bytes == seed.total_bytes

    def test_backward_layouts_are_disjoint(self, small_conv_layer):
        for pass_kind in ("dgrad", "wgrad"):
            layout = WorkloadLayout(lower_pass(small_conv_layer, pass_kind), 128)
            assert layout.a_base == 0
            assert layout.b_base >= layout.a_bytes
            assert layout.total_bytes == layout.b_base + layout.b_bytes


class TestBackwardAddresses:
    def test_dgrad_addresses_in_operand_ranges(self, small_conv_layer):
        workload = lower_pass(small_conv_layer, "dgrad")
        gen, grid = make_generator(workload)
        a = gen.a_tile_addresses(0, 0)
        b = gen.b_tile_addresses(0, 0)
        layout = gen.layout
        a_valid = a[a != INVALID_ADDRESS]
        b_valid = b[b != INVALID_ADDRESS]
        assert a_valid.size and b_valid.size
        assert a_valid.min() >= layout.a_base
        assert a_valid.max() < layout.a_base + layout.a_bytes
        assert b_valid.min() >= layout.b_base
        assert b_valid.max() < layout.b_base + layout.b_bytes

    def test_dgrad_has_no_padding_predication(self, small_conv_layer):
        """dO and W are dense tensors: every in-range slot is a real load."""
        workload = lower_pass(small_conv_layer, "dgrad")
        gen, grid = make_generator(workload)
        a = gen.a_tile_addresses(0, 0)
        gemm = workload.gemm
        rows = min(grid.tile.blk_m, gemm.m)
        cols = min(grid.tile.blk_k, gemm.k)
        assert np.all(a[:rows, :cols] != INVALID_ADDRESS)

    def test_dgrad_a_columns_are_contiguous(self, small_conv_layer):
        """Within one output row of one image, dO loads are unit stride."""
        workload = lower_pass(small_conv_layer, "dgrad")
        gen, _ = make_generator(workload)
        column = gen.a_tile_addresses(0, 0)[:small_conv_layer.out_width, 0]
        assert np.all(np.diff(column) == small_conv_layer.dtype_bytes)

    def test_wgrad_b_respects_padding(self, small_conv_layer):
        """The wgrad B operand is the im2col input: padded slots predicate off."""
        workload = lower_pass(small_conv_layer, "wgrad")
        gen, _ = make_generator(workload)
        addresses = gen.b_tile_addresses(0, 0)
        assert np.any(addresses == INVALID_ADDRESS)
        valid = addresses[addresses != INVALID_ADDRESS]
        layout = gen.layout
        assert valid.min() >= layout.b_base
        assert valid.max() < layout.b_base + layout.b_bytes

    def test_wgrad_tile_shapes(self, small_conv_layer):
        workload = lower_pass(small_conv_layer, "wgrad")
        gen, grid = make_generator(workload)
        assert gen.a_tile_addresses(0, 0).shape == (grid.tile.blk_m,
                                                    grid.tile.blk_k)
        assert gen.b_tile_addresses(0, 0).shape == (grid.tile.blk_n,
                                                    grid.tile.blk_k)


class TestBatchedBackwardGeneration:
    """The batched path must match the scalar one for every pass."""

    @pytest.mark.parametrize("pass_kind", ["forward", "dgrad", "wgrad"])
    def test_batch_matches_scalar(self, small_conv_layer, pass_kind):
        workload = lower_pass(small_conv_layer, pass_kind)
        gen, grid = make_generator(workload)
        cta_ms = list(range(min(grid.ctas_m, 4)))
        cta_ns = list(range(min(grid.ctas_n, 3)))
        k_offsets = sorted({0, (grid.main_loops_per_cta - 1) * grid.tile.blk_k})
        for k_offset in k_offsets:
            for cta_m, got in zip(cta_ms,
                                  gen.a_tile_access_batch(cta_ms, k_offset)):
                ref = gen.a_tile_access(cta_m, k_offset)
                assert got.l1_requests == ref.l1_requests
                assert got.l1_sectors == ref.l1_sectors
                assert got.elements == ref.elements
                assert np.array_equal(got.sectors, ref.sectors)
            for cta_n, got in zip(cta_ns,
                                  gen.b_tile_access_batch(cta_ns, k_offset)):
                ref = gen.b_tile_access(cta_n, k_offset)
                assert got.l1_requests == ref.l1_requests
                assert got.l1_sectors == ref.l1_sectors
                assert got.elements == ref.elements
                assert np.array_equal(got.sectors, ref.sectors)

    def test_strided_wgrad_on_volta(self, strided_conv_layer):
        workload = lower_pass(strided_conv_layer, "wgrad")
        gen, grid = make_generator(workload, TESLA_V100)
        batch = gen.b_tile_batch([0], [0])
        ref = gen.b_tile_access(0, 0)
        assert batch.tile(0).l1_requests == ref.l1_requests
        assert np.array_equal(batch.tile(0).sectors, ref.sectors)


class TestBackwardEngine:
    @pytest.mark.parametrize("pass_kind", ["forward", "dgrad", "wgrad"])
    def test_vectorized_matches_reference(self, small_conv_layer, pass_kind):
        workload = lower_pass(small_conv_layer, pass_kind)
        vec = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(max_ctas=60)).run(workload)
        ref = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(max_ctas=60, vectorized=False)).run(workload)
        assert vec.traffic == ref.traffic
        assert vec.time_seconds == ref.time_seconds
        assert vec.pass_kind == pass_kind

    def test_training_pass_traffic_is_positive_and_ordered(self, small_conv_layer):
        sim = ConvLayerSimulator(TITAN_XP, SimulatorConfig(max_ctas=60))
        for workload in training_workloads(small_conv_layer):
            result = sim.run(workload)
            traffic = result.traffic
            assert traffic.l1_bytes > 0
            assert traffic.l2_bytes > 0
            assert traffic.dram_bytes > 0
            # the hierarchy filters traffic: L1 >= L2 >= DRAM.
            assert traffic.l1_bytes >= traffic.l2_bytes >= traffic.dram_bytes

    def test_layer_entry_point_still_simulates_forward(self, small_conv_layer):
        sim = ConvLayerSimulator(TITAN_XP, SimulatorConfig(max_ctas=60))
        via_layer = sim.run(small_conv_layer)
        via_workload = sim.run(lower_pass(small_conv_layer, "forward"))
        assert via_layer.traffic == via_workload.traffic
        assert via_layer.pass_kind == "forward"
