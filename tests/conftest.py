"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import TESLA_P100, TESLA_V100, TITAN_XP, faults
from repro.api.session import default_session
from repro.core.layer import ConvLayerConfig


@pytest.fixture(autouse=True)
def _no_leaked_faults(monkeypatch):
    """No fault-injection plan bleeds into (or out of) any test."""
    monkeypatch.delenv(faults.ENV_VAR, raising=False)


@pytest.fixture(autouse=True)
def _stable_session_policy():
    """Keep the default session's execution policy from bleeding across tests.

    The memoized simulation results deliberately survive (they are pure
    values and sharing them keeps the suite fast); only the mutable policy
    knobs are snapshotted and restored.
    """
    session = default_session()
    policy = (session.jobs, session.sim_cache_dir, session.vectorized,
              session.precision, session.timeout, session.retries,
              session.retry_backoff)
    yield
    (session.jobs, session.sim_cache_dir, session.vectorized,
     session.precision, session.timeout, session.retries,
     session.retry_backoff) = policy


@pytest.fixture
def titan_xp():
    return TITAN_XP


@pytest.fixture
def p100():
    return TESLA_P100


@pytest.fixture
def v100():
    return TESLA_V100


@pytest.fixture(params=[TITAN_XP, TESLA_P100, TESLA_V100],
                ids=["titanxp", "p100", "v100"])
def any_gpu(request):
    """Parametrized fixture covering all three evaluated devices."""
    return request.param


@pytest.fixture
def small_conv_layer():
    """A 3x3 convolution small enough for exhaustive simulation in tests."""
    return ConvLayerConfig.square(
        "small3x3", batch=2, in_channels=8, in_size=14,
        out_channels=16, filter_size=3, stride=1, padding=1)


@pytest.fixture
def small_pointwise_layer():
    """A 1x1 convolution small enough for exhaustive simulation in tests."""
    return ConvLayerConfig.square(
        "small1x1", batch=2, in_channels=16, in_size=14,
        out_channels=32, filter_size=1, stride=1, padding=0)


@pytest.fixture
def strided_conv_layer():
    """A strided large-filter layer (AlexNet-conv1 like, scaled down)."""
    return ConvLayerConfig.square(
        "strided7x7", batch=2, in_channels=3, in_size=56,
        out_channels=32, filter_size=7, stride=2, padding=3)


@pytest.fixture
def reference_conv_layer():
    """The paper's sensitivity-study reference layer at a small batch."""
    return ConvLayerConfig.square(
        "reference", batch=8, in_channels=256, in_size=13,
        out_channels=128, filter_size=3, stride=1, padding=1)
