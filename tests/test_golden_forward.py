"""Golden regression: forward-pass estimates are bit-identical to the
pre-refactor model.

The convolution entries of ``golden_forward_estimates.json`` were generated
by the seed (pre-workload-IR) ``DeltaModel`` on every registered CNN's unique
layers at batch 32 for TITAN Xp and V100; the workload IR lowers the forward
pass onto exactly the same geometry, so every number must match to the last
bit — any deviation means a refactor changed the model, not just its
plumbing.  The GEMM-native entries (the CNNs' FC tails, ``mlp`` and
``bert-base``) pin the dense lowering the same way.
"""

import json
import os

import pytest

from repro.core.model import DeltaModel
from repro.core.workload import lower_forward
from repro.gpu.devices import get_device
from repro.networks.registry import get_network

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_forward_estimates.json")

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)


def _cases():
    for gpu_name in ("titanxp", "v100"):
        for net_name in ("alexnet", "vgg16", "googlenet", "resnet152",
                         "mlp", "bert-base"):
            yield gpu_name, net_name


@pytest.mark.parametrize("gpu_name,net_name", list(_cases()))
def test_forward_estimates_bit_identical(gpu_name, net_name):
    gpu = get_device(gpu_name)
    model = DeltaModel(gpu)
    network = get_network(net_name, batch=32)
    for layer in network.unique_layers():
        key = f"{gpu.name}|{net_name}/{layer.name}|b{layer.batch}"
        golden = GOLDEN[key]
        estimate = model.estimate(layer)
        assert estimate.time_seconds == golden["time_seconds"], key
        assert estimate.bottleneck.value == golden["bottleneck"], key
        assert estimate.traffic.l1_bytes == golden["l1_bytes"], key
        assert estimate.traffic.l2_bytes == golden["l2_bytes"], key
        assert estimate.traffic.dram_bytes == golden["dram_bytes"], key
        assert estimate.active_ctas == golden["active_ctas"], key
        assert estimate.ctas_per_sm == golden["ctas_per_sm"], key


def test_explicit_forward_lowering_matches_layer_entry_point(titan_xp):
    """model.estimate(layer) and model.estimate(lower_forward(layer)) agree."""
    model = DeltaModel(titan_xp)
    network = get_network("alexnet", batch=32)
    for layer in network.unique_layers():
        via_layer = model.estimate(layer)
        via_workload = model.estimate(lower_forward(layer))
        assert via_layer.time_seconds == via_workload.time_seconds
        assert via_layer.traffic.l1_bytes == via_workload.traffic.l1_bytes
        assert via_layer.traffic.dram_bytes == via_workload.traffic.dram_bytes


def test_golden_population_is_complete():
    """Every golden entry is checked (no silently dropped layers)."""
    seen = set()
    for gpu_name, net_name in _cases():
        gpu = get_device(gpu_name)
        network = get_network(net_name, batch=32)
        for layer in network.unique_layers():
            seen.add(f"{gpu.name}|{net_name}/{layer.name}|b{layer.batch}")
    assert seen == set(GOLDEN)
