"""Tests for the DRAM channel model and the CTA scheduler."""

import pytest

from repro.core.layer import ConvLayerConfig
from repro.core.tiling import build_grid
from repro.gpu import TITAN_XP
from repro.sim.dram import DramChannel
from repro.sim.scheduler import CtaScheduler, cta_order


class TestDramChannel:
    def test_byte_accounting(self):
        channel = DramChannel(TITAN_XP)
        channel.read(1000)
        channel.write(500)
        assert channel.bytes_read == 1000
        assert channel.total_bytes == 1500
        channel.reset()
        assert channel.total_bytes == 0

    def test_negative_bytes_rejected(self):
        channel = DramChannel(TITAN_XP)
        with pytest.raises(ValueError):
            channel.read(-1)
        with pytest.raises(ValueError):
            channel.write(-1)

    def test_unloaded_latency_is_flat(self):
        channel = DramChannel(TITAN_XP)
        idle = channel.latency_cycles(0.0)
        light = channel.latency_cycles(0.05 * TITAN_XP.dram_bw)
        assert idle == pytest.approx(TITAN_XP.lat_dram_cycles)
        assert light == pytest.approx(idle, rel=0.05)

    def test_latency_explodes_near_saturation(self):
        channel = DramChannel(TITAN_XP)
        half = channel.latency_cycles(0.5 * TITAN_XP.dram_bw)
        near = channel.latency_cycles(0.99 * TITAN_XP.dram_bw)
        assert near > 2 * half
        assert near > 2 * TITAN_XP.lat_dram_cycles

    def test_latency_monotonic_in_load(self):
        channel = DramChannel(TITAN_XP)
        loads = [f * TITAN_XP.dram_bw for f in (0.0, 0.2, 0.4, 0.6, 0.8, 0.95)]
        latencies = [channel.latency_cycles(load) for load in loads]
        assert latencies == sorted(latencies)

    def test_transfer_time(self):
        channel = DramChannel(TITAN_XP)
        assert channel.transfer_seconds(TITAN_XP.dram_bw) == pytest.approx(1.0)
        with pytest.raises(ValueError):
            channel.transfer_seconds(-1)


@pytest.fixture
def grid():
    layer = ConvLayerConfig.square("sched", 8, in_channels=32, in_size=28,
                                   out_channels=192, filter_size=3, padding=1)
    return build_grid(layer)


class TestCtaOrder:
    def test_column_order_walks_rows_first(self, grid):
        order = cta_order(grid, "column")
        assert order[0] == (0, 0)
        assert order[1] == (1, 0)
        assert order[grid.ctas_m] == (0, 1)
        assert len(order) == grid.num_ctas

    def test_row_order_walks_columns_first(self, grid):
        order = cta_order(grid, "row")
        assert order[0] == (0, 0)
        assert order[1] == (0, 1)

    def test_unknown_order_rejected(self, grid):
        with pytest.raises(ValueError):
            cta_order(grid, "diagonal")


class TestCtaScheduler:
    def test_round_robin_sm_assignment(self, grid):
        scheduler = CtaScheduler(grid, TITAN_XP)
        scheduled = scheduler.schedule()
        sms = [sm for sm, _, _ in scheduled[:TITAN_XP.num_sm]]
        assert sms == list(range(TITAN_XP.num_sm))

    def test_waves_cover_all_ctas_exactly_once(self, grid):
        scheduler = CtaScheduler(grid, TITAN_XP)
        seen = []
        for wave in scheduler.waves():
            seen.extend((m, n) for _, m, n in wave.ctas)
        assert len(seen) == grid.num_ctas
        assert len(set(seen)) == grid.num_ctas

    def test_wave_size_is_active_ctas_times_sms(self, grid):
        scheduler = CtaScheduler(grid, TITAN_XP)
        assert scheduler.wave_size == (scheduler.active_ctas_per_sm
                                       * TITAN_XP.num_sm)
        first_wave = next(iter(scheduler.waves()))
        assert first_wave.num_ctas <= scheduler.wave_size

    def test_max_waves_limit(self, grid):
        scheduler = CtaScheduler(grid, TITAN_XP)
        limited = list(scheduler.waves(max_waves=2))
        assert len(limited) == min(2, scheduler.num_waves)

    def test_per_sm_grouping(self, grid):
        scheduler = CtaScheduler(grid, TITAN_XP)
        wave = next(iter(scheduler.waves()))
        groups = wave.per_sm()
        assert sum(len(ctas) for ctas in groups.values()) == wave.num_ctas
        assert all(0 <= sm < TITAN_XP.num_sm for sm in groups)
