"""Tests for the accuracy metrics and table rendering helpers."""

import math

import pytest

from repro.analysis.metrics import (
    AccuracySummary,
    geometric_mean,
    gmae,
    mean,
    ratio,
    stdev,
)
from repro.analysis.tables import format_cell, render_series, render_table


class TestBasicStatistics:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_mean_and_stdev(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert mean(values) == pytest.approx(2.5)
        assert stdev(values) == pytest.approx(math.sqrt(1.25))

    def test_ratio_guards_zero(self):
        assert ratio(2.0, 4.0) == pytest.approx(0.5)
        with pytest.raises(ZeroDivisionError):
            ratio(1.0, 0.0)


class TestGmae:
    def test_perfect_predictions_have_zero_error(self):
        assert gmae([1.0, 1.0, 1.0]) == pytest.approx(0.0)

    def test_symmetric_in_over_and_under_prediction(self):
        assert gmae([2.0]) == pytest.approx(gmae([0.5]))
        assert gmae([1.25]) == pytest.approx(gmae([0.8]))

    def test_known_value(self):
        # ratios 1.1 and 1/1.1 both fold to 1.1 -> GMAE = 10%.
        assert gmae([1.1, 1 / 1.1]) == pytest.approx(0.1)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            gmae([])


class TestAccuracySummary:
    def test_from_ratios(self):
        summary = AccuracySummary.from_ratios([0.9, 1.0, 1.1, 1.2])
        assert summary.count == 4
        assert summary.min_ratio == 0.9
        assert summary.max_ratio == 1.2
        assert 0.0 < summary.gmae < 0.2

    def test_describe_mentions_gmae(self):
        summary = AccuracySummary.from_ratios([1.0, 1.05])
        assert "GMAE" in summary.describe()

    def test_rejects_empty_or_nonpositive(self):
        with pytest.raises(ValueError):
            AccuracySummary.from_ratios([])
        with pytest.raises(ValueError):
            AccuracySummary.from_ratios([-1.0, 0.0])


class TestTableRendering:
    def test_render_table_alignment_and_content(self):
        rows = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 20.0}]
        text = render_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "1.500" in text and "20.000" in text
        assert len(lines) == 4  # header, rule, 2 rows

    def test_render_table_empty(self):
        assert render_table([]) == "(empty table)"

    def test_render_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = render_table(rows, columns=["b"])
        assert "b" in text and "a" not in text.splitlines()[0]

    def test_format_cell_scientific_for_extremes(self):
        assert "e" in format_cell(1.0e9)
        assert "e" in format_cell(1.0e-6)
        assert format_cell(3.14159, precision=2) == "3.14"
        assert format_cell("text") == "text"
        assert format_cell(0.0) == "0"

    def test_render_series(self):
        text = render_series("speedup", [(1, 1.9), (2, 3.4)],
                             headers=("option", "speedup"))
        assert text.startswith("speedup")
        assert "3.400" in text
