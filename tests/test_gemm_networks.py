"""End-to-end coverage of the GEMM-native networks and the CNN FC-tail fix.

Acceptance tests for the conv-free lowering path: ``mlp`` and ``bert-base``
run through every public surface (estimate / sweep / validate / dse, via both
the Session API and the CLI), the CNNs' training-step totals now include
their FC classifier tails, and the corrected ``TrainingStepEstimate`` numbers
are regression-pinned.
"""

import json

import pytest

from repro import DeltaModel, TITAN_XP
from repro.api import (DseRequest, EstimateRequest, Session, SweepRequest,
                       ValidateRequest)
from repro.cli import main
from repro.core.layer import (BatchedGemmLayerConfig, ConvLayerConfig,
                              LinearLayerConfig)
from repro.dse.space import grid
from repro.networks import bert_base, get_network, mlp

#: corrected training-step totals (TITAN Xp, batch 32) after the FC-tail fix:
#: network -> (total step seconds, (layer, pass) record count).
TRAINING_STEP_PINS = {
    "alexnet": (0.031161313421754187, 24),
    "vgg16": (0.7548292030434097, 48),
    "googlenet": (0.1798723302433289, 174),
    "resnet152": (0.5631946703092826, 468),
    "mlp": (0.004585650826968928, 12),
    "bert-base": (0.8436101858029812, 288),
}


class TestFcTailFix:
    """Satellite: CNN training steps no longer drop their FC layers."""

    @pytest.mark.parametrize("net_name,tail", [
        ("alexnet", ("fc6", "fc7", "fc8")),
        ("vgg16", ("fc14", "fc15", "fc16")),
        ("googlenet", ("fc",)),
        ("resnet152", ("fc",)),
    ])
    def test_cnns_carry_their_fc_tails(self, net_name, tail):
        network = get_network(net_name, batch=8)
        names = [layer.name for layer in network.gemm_layers()]
        for fc_name in tail:
            assert fc_name in names
            assert isinstance(network.layer(fc_name), LinearLayerConfig)
        # the conv subset stays what the paper evaluates.
        assert all(isinstance(layer, ConvLayerConfig)
                   for layer in network.conv_layers())

    def test_paper_subsets_stay_conv_only(self):
        for net_name in ("alexnet", "vgg16", "googlenet", "resnet152"):
            subset = get_network(net_name, batch=8, paper_subset=True)
            assert all(isinstance(layer, ConvLayerConfig)
                       for layer in subset.gemm_layers()), net_name

    @pytest.mark.parametrize("net_name", sorted(TRAINING_STEP_PINS))
    def test_training_step_totals_pinned(self, net_name):
        """Regression pin: corrected step totals including the FC tails."""
        expected_seconds, expected_records = TRAINING_STEP_PINS[net_name]
        network = get_network(net_name, batch=32)
        step = DeltaModel(TITAN_XP).estimate_training_step(network)
        assert len(step.records) == expected_records
        assert step.total_time_seconds == expected_seconds

    def test_fc_tail_time_is_counted(self):
        """The step total strictly exceeds the conv-only total."""
        model = DeltaModel(TITAN_XP)
        network = get_network("alexnet", batch=32)
        from repro.core.training import estimate_training_step
        full = model.estimate_training_step(network)
        conv_only = estimate_training_step(model, network.conv_layers(),
                                           name=network.name)
        assert full.total_time_seconds > conv_only.total_time_seconds


class TestGemmNetworkDefinitions:
    def test_mlp_is_pure_linear(self):
        network = mlp(batch=16)
        assert len(network.gemm_layers()) == 4
        assert network.conv_layers() == []
        assert all(isinstance(layer, LinearLayerConfig) for layer in network)

    def test_bert_base_structure(self):
        network = bert_base(batch=2)
        assert len(network.gemm_layers()) == 12 * 8
        kinds = {type(layer) for layer in network}
        assert kinds == {LinearLayerConfig, BatchedGemmLayerConfig}
        scores = network.layer("enc1_attn_scores")
        assert scores.groups == 2 * 12
        assert (scores.m, scores.n, scores.k) == (512, 512, 64)
        # all twelve encoders are structurally identical, and the q/k/v/out
        # projections share one configuration: 5 unique GEMMs.
        assert len(network.unique_layers()) == 5

    def test_bert_macs_match_closed_form(self):
        batch, seq, hidden, ffn, heads = 2, 512, 768, 3072, 12
        network = bert_base(batch=batch)
        per_layer = (4 * seq * hidden * hidden    # q/k/v/out projections
                     + 2 * seq * seq * hidden     # scores + context
                     + 2 * seq * hidden * ffn)    # ffn1 + ffn2
        assert network.total_macs == 12 * batch * per_layer


class TestSessionSurfaces:
    """mlp / bert-base through estimate, sweep, validate and dse requests."""

    def test_estimate_request(self):
        with Session() as session:
            report = session.run(EstimateRequest("bert-base", batch=2,
                                                 unique=True,
                                                 passes="training"))
        assert report.summary["total step time (ms)"] > 0
        assert {row["pass"] for row in report.rows} == {"forward", "dgrad",
                                                        "wgrad"}

    def test_sweep_request(self):
        with Session() as session:
            report = session.run(SweepRequest(networks=("mlp", "bert-base"),
                                              gpus=("titanxp",),
                                              batches=(2,)))
        networks = {row["network"] for row in report.rows}
        assert networks == {"MLP", "BERT-base"}
        assert all(row["total_time_ms"] > 0 for row in report.rows)

    def test_validate_request_runs_simulator_on_dense_gemms(self):
        """The trace-driven simulator backs mlp validation end to end."""
        with Session() as session:
            report = session.run(ValidateRequest(
                gpu="titanxp", batch=2, max_ctas=24, layers_per_network=2,
                networks=("mlp",)))
        assert len(report.rows) == 2
        for row in report.rows:
            assert row["network"] == "MLP"
            for level in ("l1", "l2", "dram"):
                assert row[f"{level}_ratio"] > 0

    def test_validate_request_covers_bert_attention(self):
        """Batched attention GEMMs simulate through the validation path."""
        with Session() as session:
            report = session.run(ValidateRequest(
                gpu="titanxp", batch=1, max_ctas=16, layers_per_network=6,
                networks=("bert-base",)))
        names = {row["layer"] for row in report.rows}
        assert "enc1_attn_scores" in names
        for row in report.rows:
            assert row["time_ratio"] > 0

    def test_dse_request(self):
        space = grid({"num_sm": (1, 2)}, network="mlp", batch=4)
        with Session() as session:
            report = session.run(DseRequest(space=space, gpu="titanxp",
                                            objectives=("throughput", "cost")))
        assert report.summary["points evaluated"] >= 2
        assert report.rows and all(row["network"] == "mlp"
                                   for row in report.rows)


class TestCliSurfaces:
    def test_estimate_cli_json(self, capsys):
        assert main(["estimate", "--network", "bert-base", "--batch", "2",
                     "--unique", "--pass", "training", "--format",
                     "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["network"] == "BERT-base"
        assert payload["summary"]["total step time (ms)"] > 0

    def test_sweep_cli_json(self, capsys):
        assert main(["sweep", "--networks", "mlp", "--gpus", "titanxp",
                     "--batches", "4", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["rows"][0]["network"] == "MLP"

    def test_validate_cli_json(self, capsys):
        assert main(["validate", "--gpu", "titanxp", "--batch", "2",
                     "--max-ctas", "16", "--layers-per-network", "1",
                     "--networks", "mlp", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "validation"
        assert payload["rows"]

    def test_dse_cli_json(self, capsys):
        assert main(["dse", "--networks", "mlp", "--batches", "4",
                     "--axis", "num_sm=1,2", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "dse"
        assert payload["summary"]["frontier size"] >= 1

    def test_transformer_experiment_cli_json(self, capsys):
        assert main(["experiment", "transformer", "--batch", "2",
                     "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["report_id"] == "transformer"
        row = payload["rows"][0]
        assert row["step_ms"] == pytest.approx(
            row["forward_ms"] + row["dgrad_ms"] + row["wgrad_ms"])
        assert 0 < row["attention_share"] < 1
