"""Tests for the L1 traffic model (Section IV-A, Eq. 2-4)."""

import pytest

from repro.core.l1 import (
    estimate_l1_traffic,
    filter_mli,
    ifmap_mli,
    ifmap_request_ratio,
)
from repro.core.layer import ConvLayerConfig
from repro.core.tiling import build_grid
from repro.gpu import TESLA_V100, TITAN_XP


class TestIfmapRequestRatio:
    def test_pointwise_stride_one_is_dense(self):
        layer = ConvLayerConfig.square("p", 1, in_channels=8, in_size=14,
                                       out_channels=8, filter_size=1)
        assert ifmap_request_ratio(layer) == 1.0

    def test_eq2_matches_paper_example(self):
        # 3x3 filter, stride 1, 4x4 IFmap with pad 1 (the paper's Fig. 5 example):
        # ratio = (4 + 2) * 1 / (4 + 2 - 3 + 1) = 6 / 4 = 1.5
        layer = ConvLayerConfig.square("f5", 1, in_channels=1, in_size=4,
                                       out_channels=1, filter_size=3, padding=1)
        assert ifmap_request_ratio(layer) == pytest.approx(1.5)

    def test_stride_increases_ratio(self):
        dense = ConvLayerConfig.square("s1", 1, in_channels=3, in_size=56,
                                       out_channels=8, filter_size=3, padding=1)
        strided = ConvLayerConfig.square("s2", 1, in_channels=3, in_size=56,
                                         out_channels=8, filter_size=3,
                                         stride=2, padding=1)
        assert ifmap_request_ratio(strided) > ifmap_request_ratio(dense)

    def test_ratio_at_least_one(self, small_conv_layer, strided_conv_layer):
        assert ifmap_request_ratio(small_conv_layer) >= 1.0
        assert ifmap_request_ratio(strided_conv_layer) >= 1.0


class TestIfmapMli:
    def test_pascal_3x3_rounds_to_two_requests(self):
        layer = ConvLayerConfig.square("c", 1, in_channels=64, in_size=56,
                                       out_channels=64, filter_size=3, padding=1)
        assert ifmap_mli(layer, TITAN_XP) == pytest.approx(2.0)

    def test_pascal_pointwise_is_fully_coalesced(self):
        layer = ConvLayerConfig.square("p", 1, in_channels=64, in_size=56,
                                       out_channels=64, filter_size=1)
        assert ifmap_mli(layer, TITAN_XP) == pytest.approx(1.0)

    def test_volta_finer_granularity_reduces_inefficiency(self):
        layer = ConvLayerConfig.square("c", 1, in_channels=64, in_size=56,
                                       out_channels=64, filter_size=3, padding=1)
        assert ifmap_mli(layer, TESLA_V100) < ifmap_mli(layer, TITAN_XP)
        assert ifmap_mli(layer, TESLA_V100) == pytest.approx(1.25)

    def test_alexnet_conv1_has_high_inefficiency(self):
        layer = ConvLayerConfig.square("conv1", 1, in_channels=3, in_size=224,
                                       out_channels=64, filter_size=11,
                                       stride=4, padding=2)
        assert ifmap_mli(layer, TITAN_XP) >= 4.0


class TestFilterMli:
    def test_paper_constants_for_pascal(self):
        assert filter_mli(8, TITAN_XP) == pytest.approx(2.0)
        assert filter_mli(4, TITAN_XP) == pytest.approx(2.75)

    def test_analytic_derivation_close_to_paper_constants(self):
        derived_8 = filter_mli(8, TITAN_XP, use_paper_constants=False)
        derived_4 = filter_mli(4, TITAN_XP, use_paper_constants=False)
        assert derived_8 == pytest.approx(2.0, rel=0.10)
        assert derived_4 == pytest.approx(2.75, rel=0.05)

    def test_invalid_blk_k_rejected(self):
        with pytest.raises(ValueError):
            filter_mli(0, TITAN_XP)

    def test_filter_loads_less_efficient_than_dense(self):
        assert filter_mli(4, TITAN_XP) > 1.0
        assert filter_mli(8, TESLA_V100, use_paper_constants=False) >= 1.0


class TestL1TrafficTotals:
    def test_eq4_paper_mode_counts_each_matrix_once(self, small_conv_layer):
        grid = build_grid(small_conv_layer)
        traffic = estimate_l1_traffic(small_conv_layer, grid, TITAN_XP,
                                      replication="paper")
        gemm = small_conv_layer.gemm_shape()
        expected_ifmap = gemm.m * gemm.k * traffic.mli_ifmap * 4
        expected_filter = gemm.n * gemm.k * traffic.mli_filter * 4
        assert traffic.ifmap_bytes == pytest.approx(expected_ifmap)
        assert traffic.filter_bytes == pytest.approx(expected_filter)

    def test_per_cta_mode_scales_with_grid(self, small_conv_layer):
        grid = build_grid(small_conv_layer)
        per_cta = estimate_l1_traffic(small_conv_layer, grid, TITAN_XP,
                                      replication="per-cta")
        paper = estimate_l1_traffic(small_conv_layer, grid, TITAN_XP,
                                    replication="paper")
        # per-CTA counting can only add traffic (filter tiles reloaded per row).
        assert per_cta.total_bytes >= paper.total_bytes

    def test_unknown_replication_mode_rejected(self, small_conv_layer):
        grid = build_grid(small_conv_layer)
        with pytest.raises(ValueError):
            estimate_l1_traffic(small_conv_layer, grid, TITAN_XP,
                                replication="bogus")

    def test_l1_traffic_exceeds_compulsory_footprint(self, reference_conv_layer):
        grid = build_grid(reference_conv_layer)
        traffic = estimate_l1_traffic(reference_conv_layer, grid, TITAN_XP)
        compulsory = reference_conv_layer.ifmap_bytes + reference_conv_layer.filter_bytes
        assert traffic.total_bytes > compulsory
