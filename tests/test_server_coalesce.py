"""Server-wide dedupe and request coalescing — the exactly-once guarantees.

The cache unit tests drive :class:`CoalescingCache` directly on an event
loop; the integration tests fire genuinely concurrent HTTP requests at a
:class:`ServerThread` and pin the exactly-once behavior with fault-injection
tickets: a ``times=1`` hang at the ``"serve"`` seam holds the single
execution open so every concurrent identical request provably lands in the
coalescing window, and the ticket files record how many executions reached
the seam at all.
"""

import asyncio
import glob
import http.client
import json
import os
import threading

from repro import faults
from repro.api import Report, Session
from repro.server import CoalescingCache, ServerThread, create_app


def make_report(title="r"):
    return Report(kind="estimate", title=title)


def error_report():
    return Report.from_error(RuntimeError("boom"))


class TestCoalescingCacheUnit:
    def test_memoizes_completed_reports(self):
        async def scenario():
            cache = CoalescingCache()
            calls = []

            async def execute():
                calls.append(1)
                return make_report()

            first = await cache.run("k", execute)
            second = await cache.run("k", execute)
            assert first is second
            assert len(calls) == 1
            assert cache.stats.memo_hits == 1
            assert cache.stats.executed == 1

        asyncio.run(scenario())

    def test_concurrent_callers_share_one_execution(self):
        async def scenario():
            cache = CoalescingCache()
            started = asyncio.Event()
            release = asyncio.Event()
            calls = []

            async def execute():
                calls.append(1)
                started.set()
                await release.wait()
                return make_report()

            first = asyncio.ensure_future(cache.run("k", execute))
            await started.wait()
            others = [asyncio.ensure_future(cache.run("k", execute))
                      for _ in range(4)]
            await asyncio.sleep(0)  # let the waiters reach the in-flight map
            release.set()
            reports = await asyncio.gather(first, *others)
            assert len(calls) == 1
            assert all(report is reports[0] for report in reports)
            assert cache.stats.executed == 1
            assert cache.stats.coalesced == 4

        asyncio.run(scenario())

    def test_exception_reaches_every_waiter(self):
        async def scenario():
            cache = CoalescingCache()
            started = asyncio.Event()
            release = asyncio.Event()

            async def execute():
                started.set()
                await release.wait()
                raise RuntimeError("shared failure")

            first = asyncio.ensure_future(cache.run("k", execute))
            await started.wait()
            second = asyncio.ensure_future(cache.run("k", execute))
            await asyncio.sleep(0)
            release.set()
            results = await asyncio.gather(first, second,
                                           return_exceptions=True)
            assert all(isinstance(r, RuntimeError) for r in results)
            # a failed execution is not memoized: the next run retries.
            assert cache.lookup("k") is None
            assert len(cache) == 0

        asyncio.run(scenario())

    def test_error_reports_are_not_memoized(self):
        async def scenario():
            cache = CoalescingCache()
            reports = [error_report(), make_report()]

            async def execute():
                return reports.pop(0)

            first = await cache.run("k", execute)
            assert first.kind == "error"
            second = await cache.run("k", execute)
            assert second.kind == "estimate"
            assert cache.stats.executed == 2

        asyncio.run(scenario())

    def test_lru_eviction(self):
        async def scenario():
            cache = CoalescingCache(max_entries=2)

            async def execute():
                return make_report()

            for key in ("a", "b", "c"):
                await cache.run(key, execute)
            assert cache.lookup("a") is None  # oldest evicted
            assert cache.lookup("c") is not None
            assert cache.stats.evictions == 1

        asyncio.run(scenario())

    def test_zero_entries_disables_the_memo(self):
        async def scenario():
            cache = CoalescingCache(max_entries=0)

            async def execute():
                return make_report()

            await cache.run("k", execute)
            assert cache.lookup("k") is None
            assert len(cache) == 0

        asyncio.run(scenario())


def _post(host, port, route, body, out, index):
    conn = http.client.HTTPConnection(host, port, timeout=120)
    try:
        conn.request("POST", f"/v1/{route}", body=json.dumps(body),
                     headers={"Content-Type": "application/json"})
        response = conn.getresponse()
        out[index] = (response.status, response.read())
    finally:
        conn.close()


def _concurrent_posts(server, route, body, count):
    results = [None] * count
    threads = [threading.Thread(target=_post,
                                args=(server.host, server.port, route, body,
                                      results, index))
               for index in range(count)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=180)
    assert all(result is not None for result in results)
    return results


class TestServerCoalescing:
    def test_identical_concurrent_requests_execute_exactly_once(
            self, tmp_path):
        """Five concurrent identical estimates: one execution, five bodies.

        The ``times=1`` hang at the "serve" seam keeps the single execution
        in flight long enough that every other request provably arrives
        inside the coalescing window, and the consumed tickets double-check
        that exactly one execution reached the seam.
        """
        session = Session()
        app = create_app(session)
        body = {"network": "alexnet", "batch": 8, "unique": True}
        state_dir = str(tmp_path / "faults")
        with ServerThread(app) as server:
            with faults.injected(
                    faults.hang(site="serve", seconds=1.5, times=1),
                    state_dir=state_dir):
                results = _concurrent_posts(server, "estimate", body, 5)
        statuses = {status for status, _ in results}
        bodies = {payload for _, payload in results}
        assert statuses == {200}
        assert len(bodies) == 1  # every caller got the same bytes
        assert session.stats.requests_run == 1
        assert app.cache.stats.executed == 1
        assert (app.cache.stats.coalesced
                + app.cache.stats.memo_hits) == 4
        # the seam fired once: exactly one hang ticket was claimed.
        assert len(glob.glob(os.path.join(state_dir, "fault-*"))) == 1

    def test_crash_during_coalesced_request_fails_all_waiters(
            self, tmp_path):
        """A worker crash inside the one shared execution fails every waiter
        with the structured ``kind="crash"`` failure record — and is not
        memoized, so a later retry executes afresh."""
        session = Session(jobs=2)
        session.retries = 0
        app = create_app(session)
        # two work units, so the jobs=2 session fans out over a real pool
        # (a single serial unit would fire the crash in-process instead).
        body = {"networks": ["alexnet"], "batch": 4, "max_ctas": 20,
                "layers_per_network": 2}
        state_dir = str(tmp_path / "faults")
        with ServerThread(app) as server:
            with faults.injected(
                    faults.hang(site="serve", seconds=1.5, times=1),
                    faults.crash(site="sim"),
                    state_dir=state_dir):
                results = _concurrent_posts(server, "validate", body, 3)
        payloads = [json.loads(raw) for _, raw in results]
        assert {status for status, _ in results} == {500}
        for payload in payloads:
            assert payload["kind"] == "error"
            kinds = {record["kind"] for record in
                     payload["meta"]["failures"]}
            assert "crash" in kinds
        assert app.cache.stats.executed == 1
        assert app.cache.stats.coalesced == 2
        # the failure was not memoized; the key will re-execute next time.
        assert len(app.cache) == 0
        session.close()
