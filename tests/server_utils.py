"""In-process ASGI test client for the estimation service tests.

Calls the app directly with a synthetic scope — no socket, no thread — so
route tests stay fast and deterministic.  The socket path itself is covered
by the ``ServerThread``-based tests.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Optional, Tuple


async def asgi_request(app, method: str, path: str,
                       body: Optional[dict] = None,
                       raw_body: Optional[bytes] = None
                       ) -> Tuple[int, Dict[str, str], bytes]:
    """One request against ``app``; returns (status, headers, body bytes)."""
    payload = raw_body if raw_body is not None else (
        json.dumps(body).encode() if body is not None else b"")
    scope = {
        "type": "http",
        "asgi": {"version": "3.0"},
        "http_version": "1.1",
        "method": method,
        "path": path,
        "raw_path": path.encode(),
        "query_string": b"",
        "headers": [],
        "server": ("127.0.0.1", 0),
        "client": ("127.0.0.1", 0),
    }
    messages = [{"type": "http.request", "body": payload,
                 "more_body": False}]

    async def receive():
        if messages:
            return messages.pop(0)
        return {"type": "http.disconnect"}

    status = 0
    headers: Dict[str, str] = {}
    chunks = []

    async def send(message):
        nonlocal status
        if message["type"] == "http.response.start":
            status = message["status"]
            headers.update({name.decode(): value.decode()
                            for name, value in message.get("headers", [])})
        elif message["type"] == "http.response.body":
            chunks.append(message.get("body", b""))

    await app(scope, receive, send)
    return status, headers, b"".join(chunks)


def request(app, method: str, path: str, body: Optional[dict] = None,
            raw_body: Optional[bytes] = None
            ) -> Tuple[int, Dict[str, str], bytes]:
    """Synchronous wrapper: run one request on a fresh event loop."""
    return asyncio.run(asgi_request(app, method, path, body=body,
                                    raw_body=raw_body))


def json_request(app, method: str, path: str, body: Optional[dict] = None,
                 raw_body: Optional[bytes] = None) -> Tuple[int, dict]:
    """Like :func:`request`, decoding the response body as JSON."""
    status, _, raw = request(app, method, path, body=body, raw_body=raw_body)
    return status, json.loads(raw)
