"""Tests for the decorator-based network/GPU/experiment registries."""

from dataclasses import replace

import pytest

from repro.api import (
    available_experiments,
    available_networks,
    get_device,
    get_network,
    register_experiment,
    register_gpu,
    register_network,
    unregister_experiment,
    unregister_gpu,
    unregister_network,
)
from repro.experiments import make_result
from repro.experiments.registry import get_experiment_spec
from repro.gpu import TITAN_XP, GpuSpec, all_devices
from repro.networks import ConvNetwork
from repro.core.layer import ConvLayerConfig


def _tiny_network(batch: int) -> ConvNetwork:
    layer = ConvLayerConfig.square("only", batch, in_channels=8, in_size=14,
                                   out_channels=16, filter_size=3, padding=1)
    return ConvNetwork(name="TinyNet", layers=(layer,))


class TestNetworkRegistry:
    def test_decorator_registers_and_duplicate_raises(self):
        try:
            decorated = register_network("tinynet")(_tiny_network)
            assert decorated is _tiny_network
            assert "tinynet" in available_networks()
            assert get_network("tinynet", batch=4).name == "TinyNet"
            with pytest.raises(ValueError):
                register_network("tinynet")(_tiny_network)
        finally:
            unregister_network("tinynet")
        assert "tinynet" not in available_networks()

    def test_paper_subset_falls_back_to_full_network(self):
        # alexnet has no dedicated subset: both variants are identical.
        full = get_network("alexnet", batch=8)
        subset = get_network("alexnet", batch=8, paper_subset=True)
        assert [layer.name for layer in full.conv_layers()] == \
            [layer.name for layer in subset.conv_layers()]

    def test_unknown_network_raises(self):
        with pytest.raises(KeyError):
            get_network("nope")


class TestGpuRegistry:
    def test_decorator_on_factory_and_duplicate_alias_raises(self):
        try:
            @register_gpu("testgpu", "test gpu")
            def _build() -> GpuSpec:
                return replace(TITAN_XP, name="TestGPU")
            assert get_device("testgpu") is get_device("test gpu")
            assert get_device("TESTGPU") in all_devices()
            with pytest.raises(ValueError):
                register_gpu("testgpu")(replace(TITAN_XP, name="Other"))
        finally:
            unregister_gpu("testgpu")
        with pytest.raises(KeyError):
            get_device("testgpu")
        with pytest.raises(KeyError):
            get_device("test gpu")  # unregister drops every alias

    def test_direct_call_style_registration(self):
        spec = replace(TITAN_XP, name="CallStyle")
        try:
            returned = register_gpu("callstyle")(spec)
            assert returned is spec
            assert get_device("callstyle") is spec
        finally:
            unregister_gpu("callstyle")
        assert not any(g is spec for g in all_devices())

    def test_equal_valued_copy_is_a_distinct_catalog_entry(self):
        # identity, not equality: a copy of a built-in spec registered under
        # a new alias must appear in (and vanish from) the catalog without
        # disturbing the built-in.
        copy = replace(TITAN_XP)
        assert copy == TITAN_XP
        before = len(all_devices())
        try:
            register_gpu("myxp")(copy)
            assert len(all_devices()) == before + 1
            assert any(g is copy for g in all_devices())
        finally:
            unregister_gpu("myxp")
        assert len(all_devices()) == before
        assert any(g is TITAN_XP for g in all_devices())
        assert get_device("titanxp") is TITAN_XP

    def test_register_requires_alias_and_spec(self):
        with pytest.raises(ValueError):
            register_gpu()
        with pytest.raises(TypeError):
            register_gpu("notaspec")(object())


class TestExperimentRegistry:
    def test_decorator_registers_and_duplicate_raises(self):
        def runner():
            return make_result("zztest", "registry test")
        try:
            register_experiment("zztest", title="registry test",
                                fast=True)(runner)
            assert "zztest" in available_experiments()
            spec = get_experiment_spec("zztest")
            assert spec.fast and spec.runner is runner
            with pytest.raises(ValueError):
                register_experiment("zztest", title="dup")(runner)
        finally:
            unregister_experiment("zztest")
        assert "zztest" not in available_experiments()

    def test_all_paper_experiments_carry_metadata(self):
        validation_backed = {"fig11", "fig12", "fig13", "fig14", "fig15",
                             "fig19", "fig20"}
        for experiment_id in validation_backed:
            spec = get_experiment_spec(experiment_id)
            assert spec.uses_validation
            assert spec.default_gpus
        for experiment_id in ("tab01", "fig06", "fig16", "fig18"):
            assert get_experiment_spec(experiment_id).fast

    def test_unknown_experiment_raises(self):
        with pytest.raises(KeyError):
            get_experiment_spec("fig99")
