"""Tests for the model-vs-simulator validation harness."""

import pytest

from repro.analysis.validation import (
    MEMORY_LEVELS,
    ValidationConfig,
    select_layers,
    validate_gpu,
    validate_layer,
)
from repro.core.bottleneck import Bottleneck
from repro.core.layer import ConvLayerConfig
from repro.gpu import TITAN_XP
from repro.sim.engine import SimulatorConfig


TINY_CONFIG = ValidationConfig(batch=4, max_ctas=40, layers_per_network=1)


class TestLayerSelection:
    def test_layers_per_network_cap(self):
        selected = select_layers(ValidationConfig(batch=8, layers_per_network=2))
        per_network = {}
        for network, _ in selected:
            per_network[network] = per_network.get(network, 0) + 1
        assert all(count <= 2 for count in per_network.values())
        assert len(per_network) == 4

    def test_unrestricted_selection_returns_full_suite(self):
        full = select_layers(ValidationConfig(batch=8, layers_per_network=None))
        capped = select_layers(ValidationConfig(batch=8, layers_per_network=1))
        assert len(full) > len(capped)

    def test_batch_propagates(self):
        selected = select_layers(ValidationConfig(batch=4, layers_per_network=1))
        assert all(layer.batch == 4 for _, layer in selected)


class TestValidateLayer:
    def test_record_fields_consistent(self):
        layer = ConvLayerConfig.square("v", 2, in_channels=16, in_size=14,
                                       out_channels=32, filter_size=3, padding=1)
        record = validate_layer("Toy", layer, TITAN_XP,
                                simulator_config=SimulatorConfig(max_ctas=30))
        assert record.network == "Toy"
        assert set(record.model_traffic) == set(MEMORY_LEVELS)
        assert record.model_time > 0 and record.measured_time > 0
        assert isinstance(record.bottleneck, Bottleneck)
        assert record.time_ratio == pytest.approx(
            record.model_time / record.measured_time)
        row = record.as_row()
        assert row["layer"] == "v" and row["gpu"] == TITAN_XP.name

    def test_ratios_are_finite_and_reasonable(self):
        layer = ConvLayerConfig.square("v", 2, in_channels=16, in_size=14,
                                       out_channels=32, filter_size=3, padding=1)
        record = validate_layer("Toy", layer, TITAN_XP,
                                simulator_config=SimulatorConfig(max_ctas=30))
        for level in MEMORY_LEVELS:
            assert 0.1 < record.traffic_ratio(level) < 10.0
        assert 0.1 < record.time_ratio < 10.0


class TestValidateGpu:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_gpu(TITAN_XP, TINY_CONFIG)

    def test_one_record_per_selected_layer(self, report):
        assert len(report.records) == len(select_layers(TINY_CONFIG))

    def test_summaries_available_per_level(self, report):
        for level in MEMORY_LEVELS:
            summary = report.traffic_summary(level)
            assert summary.count == len(report.records)
            assert summary.gmae >= 0.0

    def test_time_summary_and_rows(self, report):
        assert report.time_summary().count == len(report.records)
        rows = report.rows()
        assert len(rows) == len(report.records)
        assert all("time_ratio" in row for row in rows)

    def test_bottleneck_counts_cover_all_records(self, report):
        assert sum(report.bottleneck_counts().values()) == len(report.records)

    def test_explicit_layer_population(self):
        layer = ConvLayerConfig.square("only", 2, in_channels=8, in_size=14,
                                       out_channels=16, filter_size=3, padding=1)
        report = validate_gpu(TITAN_XP, TINY_CONFIG, layers=[("X", layer)])
        assert len(report.records) == 1
        assert report.records[0].layer.name == "only"
