"""Tests for the model-vs-simulator validation harness."""

import json
import os

import pytest

from repro.analysis.validation import (
    MEMORY_LEVELS,
    ValidationConfig,
    select_layers,
    simulate_layer,
    validate_gpu,
    validate_layer,
)
from repro.core.bottleneck import Bottleneck
from repro.core.layer import ConvLayerConfig
from repro.gpu import TITAN_XP
from repro.sim.engine import SimulatorConfig


TINY_CONFIG = ValidationConfig(batch=4, max_ctas=40, layers_per_network=1)


class TestLayerSelection:
    def test_layers_per_network_cap(self):
        selected = select_layers(ValidationConfig(batch=8, layers_per_network=2))
        per_network = {}
        for network, _ in selected:
            per_network[network] = per_network.get(network, 0) + 1
        assert all(count <= 2 for count in per_network.values())
        assert len(per_network) == 4

    def test_unrestricted_selection_returns_full_suite(self):
        full = select_layers(ValidationConfig(batch=8, layers_per_network=None))
        capped = select_layers(ValidationConfig(batch=8, layers_per_network=1))
        assert len(full) > len(capped)

    def test_batch_propagates(self):
        selected = select_layers(ValidationConfig(batch=4, layers_per_network=1))
        assert all(layer.batch == 4 for _, layer in selected)


class TestValidateLayer:
    def test_record_fields_consistent(self):
        layer = ConvLayerConfig.square("v", 2, in_channels=16, in_size=14,
                                       out_channels=32, filter_size=3, padding=1)
        record = validate_layer("Toy", layer, TITAN_XP,
                                simulator_config=SimulatorConfig(max_ctas=30))
        assert record.network == "Toy"
        assert set(record.model_traffic) == set(MEMORY_LEVELS)
        assert record.model_time > 0 and record.measured_time > 0
        assert isinstance(record.bottleneck, Bottleneck)
        assert record.time_ratio == pytest.approx(
            record.model_time / record.measured_time)
        row = record.as_row()
        assert row["layer"] == "v" and row["gpu"] == TITAN_XP.name

    def test_ratios_are_finite_and_reasonable(self):
        layer = ConvLayerConfig.square("v", 2, in_channels=16, in_size=14,
                                       out_channels=32, filter_size=3, padding=1)
        record = validate_layer("Toy", layer, TITAN_XP,
                                simulator_config=SimulatorConfig(max_ctas=30))
        for level in MEMORY_LEVELS:
            assert 0.1 < record.traffic_ratio(level) < 10.0
        assert 0.1 < record.time_ratio < 10.0


class TestValidateGpu:
    @pytest.fixture(scope="class")
    def report(self):
        return validate_gpu(TITAN_XP, TINY_CONFIG)

    def test_one_record_per_selected_layer(self, report):
        assert len(report.records) == len(select_layers(TINY_CONFIG))

    def test_summaries_available_per_level(self, report):
        for level in MEMORY_LEVELS:
            summary = report.traffic_summary(level)
            assert summary.count == len(report.records)
            assert summary.gmae >= 0.0

    def test_time_summary_and_rows(self, report):
        assert report.time_summary().count == len(report.records)
        rows = report.rows()
        assert len(rows) == len(report.records)
        assert all("time_ratio" in row for row in rows)

    def test_bottleneck_counts_cover_all_records(self, report):
        assert sum(report.bottleneck_counts().values()) == len(report.records)

    def test_explicit_layer_population(self):
        layer = ConvLayerConfig.square("only", 2, in_channels=8, in_size=14,
                                       out_channels=16, filter_size=3, padding=1)
        report = validate_gpu(TITAN_XP, TINY_CONFIG, layers=[("X", layer)])
        assert len(report.records) == 1
        assert report.records[0].layer.name == "only"


def _record_key(record):
    return (record.network, record.layer.name,
            tuple(sorted(record.measured_traffic.items())),
            record.measured_time)


class TestParallelValidation:
    def test_process_pool_matches_serial(self):
        serial = validate_gpu(TITAN_XP, replace_jobs(TINY_CONFIG, 1))
        parallel = validate_gpu(TITAN_XP, replace_jobs(TINY_CONFIG, 2))
        assert ([_record_key(r) for r in serial.records]
                == [_record_key(r) for r in parallel.records])

    def test_jobs_must_be_positive(self):
        from repro.analysis.validation import set_simulation_defaults
        with pytest.raises(ValueError):
            set_simulation_defaults(jobs=0)

    def test_effective_jobs_defaults_to_serial(self):
        assert ValidationConfig().effective_jobs >= 1


def replace_jobs(config: ValidationConfig, jobs: int) -> ValidationConfig:
    from dataclasses import replace
    return replace(config, jobs=jobs)


class TestSimulationDiskCache:
    LAYER = ConvLayerConfig.square("cached", 2, in_channels=8, in_size=14,
                                   out_channels=16, filter_size=3, padding=1)

    def test_cache_roundtrip_is_exact(self, tmp_path):
        config = SimulatorConfig(max_ctas=30)
        fresh = simulate_layer(TITAN_XP, self.LAYER, config,
                               cache_dir=str(tmp_path))
        files = [name for name in os.listdir(tmp_path)
                 if name.startswith("delta-sim-")]
        assert len(files) == 1
        cached = simulate_layer(TITAN_XP, self.LAYER, config,
                                cache_dir=str(tmp_path))
        assert cached.traffic == fresh.traffic
        assert cached.time_seconds == fresh.time_seconds
        assert cached.simulated_ctas == fresh.simulated_ctas
        assert cached.scale_factor == fresh.scale_factor

    def test_cached_result_is_actually_loaded(self, tmp_path):
        """Poisoning the stored record must show up in the next run."""
        config = SimulatorConfig(max_ctas=30)
        simulate_layer(TITAN_XP, self.LAYER, config, cache_dir=str(tmp_path))
        (path,) = [tmp_path / name for name in os.listdir(tmp_path)]
        record = json.loads(path.read_text())
        record["traffic"]["dram_bytes"] = 12345.0
        path.write_text(json.dumps(record))
        poisoned = simulate_layer(TITAN_XP, self.LAYER, config,
                                  cache_dir=str(tmp_path))
        assert poisoned.traffic.dram_bytes == 12345.0

    def test_key_depends_on_simulator_config(self, tmp_path):
        simulate_layer(TITAN_XP, self.LAYER, SimulatorConfig(max_ctas=30),
                       cache_dir=str(tmp_path))
        simulate_layer(TITAN_XP, self.LAYER, SimulatorConfig(max_ctas=20),
                       cache_dir=str(tmp_path))
        assert len(os.listdir(tmp_path)) == 2

    def test_validate_gpu_uses_cache_dir(self, tmp_path):
        from dataclasses import replace
        config = replace(TINY_CONFIG, sim_cache_dir=str(tmp_path))
        validate_gpu(TITAN_XP, config, layers=[("X", self.LAYER)])
        assert len(os.listdir(tmp_path)) == 1
