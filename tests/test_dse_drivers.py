"""Tests for the DSE search drivers, including the seeded-determinism
regression contract: identical seed + space => identical point sequence,
independent of the session's ``jobs`` setting."""

import pytest

from repro.api import Session
from repro.gpu import TITAN_XP
from repro.dse import (
    ExhaustiveDriver,
    RandomDriver,
    SuccessiveHalvingDriver,
    build_driver,
    driver_names,
    explore,
    grid,
)


@pytest.fixture(scope="module")
def space():
    return grid({"num_sm": (1, 2, 4), "mac_bw": (1, 2, 4),
                 "dram_bw": (1, 1.5, 2), "cta_tile": (128, 256)},
                network="alexnet", batch=32)


class TestExhaustiveDriver:
    def test_covers_every_point_in_order(self, space):
        planned = ExhaustiveDriver().plan(space)
        assert [p.point_hash() for p in planned] == [
            p.point_hash() for p in space.points()]

    def test_limit_caps_the_plan(self, space):
        assert len(ExhaustiveDriver(limit=5).plan(space)) == 5


class TestRandomDriver:
    def test_budget_respected(self, space):
        assert len(RandomDriver(budget=7, seed=0).plan(space)) == 7

    def test_budget_above_space_returns_all(self, space):
        assert len(RandomDriver(budget=10_000, seed=0).plan(space)) == len(space)

    def test_sampling_without_replacement(self, space):
        planned = RandomDriver(budget=20, seed=5).plan(space)
        hashes = [p.point_hash() for p in planned]
        assert len(set(hashes)) == len(hashes)

    def test_identical_seed_enumerates_identical_points(self, space):
        """Satellite regression: seed + space fully determine the sequence."""
        for seed in (0, 1, 1234):
            first = RandomDriver(budget=12, seed=seed).plan(space)
            second = RandomDriver(budget=12, seed=seed).plan(space)
            assert [p.point_hash() for p in first] == [
                p.point_hash() for p in second]

    def test_different_seeds_differ(self, space):
        a = RandomDriver(budget=12, seed=0).plan(space)
        b = RandomDriver(budget=12, seed=99).plan(space)
        assert [p.point_hash() for p in a] != [p.point_hash() for p in b]

    def test_selection_independent_of_jobs(self, space):
        """The same seeded sweep evaluates the same points (with identical
        metrics) whether the session fans out over 1 or 3 workers."""
        driver = RandomDriver(budget=10, seed=21)
        with Session(jobs=1) as serial, Session(jobs=3) as parallel:
            a = explore(space, driver=driver, session=serial)
            b = explore(space, driver=driver, session=parallel)
        assert [r.point.point_hash() for r in a.results] == [
            r.point.point_hash() for r in b.results]
        for ra, rb in zip(a.results, b.results):
            assert ra.metrics == rb.metrics
        assert a.frontier == b.frontier

    def test_non_positive_budget_rejected(self):
        with pytest.raises(ValueError):
            RandomDriver(budget=0)


class TestSuccessiveHalvingDriver:
    def test_pool_shrinks_to_budget(self, space):
        driver = SuccessiveHalvingDriver(budget=4, eta=4, rungs=2, seed=0)
        result = explore(space, driver=driver, base_gpu=TITAN_XP)
        assert len(result.results) == 4
        assert result.stats.proxy_evaluations > 0
        # full evaluations: 4 survivors + 1 workload baseline.
        assert result.stats.evaluated <= 5

    def test_survivors_are_good_designs(self, space):
        """Cheap-first refinement keeps high-throughput candidates: every
        survivor must beat the space's median exhaustive throughput."""
        exhaustive = explore(space, driver=ExhaustiveDriver(),
                             objectives=("throughput",))
        throughputs = sorted(
            float(r.metrics["throughput_tflops"]) for r in exhaustive.results)
        median = throughputs[len(throughputs) // 2]
        adaptive = explore(
            space, driver=SuccessiveHalvingDriver(budget=4, seed=0),
            objectives=("throughput",))
        for result in adaptive.results:
            assert float(result.metrics["throughput_tflops"]) >= median

    def test_deterministic_across_runs(self, space):
        driver = SuccessiveHalvingDriver(budget=4, seed=7)
        a = explore(space, driver=driver)
        b = explore(space, driver=driver)
        assert [r.point.point_hash() for r in a.results] == [
            r.point.point_hash() for r in b.results]

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            SuccessiveHalvingDriver(budget=0)
        with pytest.raises(ValueError):
            SuccessiveHalvingDriver(budget=4, eta=1)
        with pytest.raises(ValueError):
            SuccessiveHalvingDriver(budget=4, rungs=0)


class TestBuildDriver:
    def test_names(self):
        assert driver_names() == ("grid", "random", "halving")

    def test_grid_variants(self):
        assert isinstance(build_driver("grid"), ExhaustiveDriver)
        assert build_driver("exhaustive", budget=3).limit == 3

    def test_random_requires_budget(self):
        with pytest.raises(ValueError, match="budget"):
            build_driver("random")
        driver = build_driver("random", budget=5, seed=9)
        assert isinstance(driver, RandomDriver)
        assert (driver.budget, driver.seed) == (5, 9)

    def test_halving_requires_budget(self):
        with pytest.raises(ValueError, match="budget"):
            build_driver("halving")
        assert isinstance(build_driver("halving", budget=4),
                          SuccessiveHalvingDriver)

    def test_unknown_driver(self):
        with pytest.raises(ValueError, match="unknown driver"):
            build_driver("simulated-annealing")
