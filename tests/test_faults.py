"""The deterministic fault-injection harness, and the recovery paths it proves.

Covers the `repro.faults` machinery itself (specs, ticket claiming, file
faults) and the acceptance scenarios of the resilience layer: a killed worker
mid-``simulate_many`` recovers bit-identically, a crashing design point is
recorded and resumed past, a corrupt sim-cache entry is quarantined and
re-simulated identically, a straggler is cancelled by the wall-clock timeout,
and a flaky task succeeds on retry N.
"""

import glob
import json
import os

import pytest

from repro import faults
from repro.analysis.validation import (QUARANTINE_SUFFIX, _sim_cache_key,
                                       _sim_cache_path, simulate_layer)
from repro.api import Session, SimulationError, ValidateRequest
from repro.dse import ExhaustiveDriver, ResultStore, explore, grid
from repro.gpu.devices import TITAN_XP
from repro.networks.registry import get_network
from repro.resilience import TaskFailure
from repro.sim.engine import SimulatorConfig

TINY = dict(batch=4, max_ctas=40, layers_per_network=1)

SIM_CONFIG = SimulatorConfig(max_ctas=20)


def _tiny_units(count=3):
    layers = get_network("alexnet", batch=4).unique_layers()[:count]
    return [(TITAN_XP, layer, SIM_CONFIG) for layer in layers]


# ----------------------------------------------------------------------
# The harness itself
# ----------------------------------------------------------------------

class TestFaultSpecs:
    def test_kind_validated(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultSpec(site="sim", kind="explode")

    def test_times_validated(self):
        with pytest.raises(ValueError, match="times must be positive"):
            faults.FaultSpec(site="sim", kind="crash", times=0)

    def test_constructors(self):
        assert faults.crash(site="sim").kind == "crash"
        assert faults.hang(seconds=5.0).hang_seconds == 5.0
        flaky = faults.flaky(site="dse", failures=3)
        assert (flaky.kind, flaky.times) == ("error", 3)


class TestPlanInstallation:
    def test_install_and_clear(self, tmp_path):
        assert not faults.active()
        faults.install([faults.crash()], state_dir=str(tmp_path))
        assert faults.active()
        faults.clear()
        assert not faults.active()

    def test_injected_context_manager_clears_on_exit(self, tmp_path):
        with faults.injected(faults.flaky(), state_dir=str(tmp_path)):
            assert faults.active()
        assert not faults.active()

    def test_no_plan_fire_is_noop(self):
        faults.fire("sim", "anything")  # must not raise


class TestFire:
    def test_error_spec_fires_exactly_times(self, tmp_path):
        with faults.injected(faults.flaky(site="sim", failures=2),
                             state_dir=str(tmp_path)):
            for _ in range(2):
                with pytest.raises(faults.InjectedFault):
                    faults.fire("sim", "task")
            faults.fire("sim", "task")  # tickets exhausted: spec retired

    def test_site_filter(self, tmp_path):
        with faults.injected(faults.flaky(site="dse"),
                             state_dir=str(tmp_path)):
            faults.fire("sim", "task")  # wrong site: no-op
            with pytest.raises(faults.InjectedFault):
                faults.fire("dse", "task")

    def test_match_filter(self, tmp_path):
        with faults.injected(faults.flaky(site="*", match="conv2"),
                             state_dir=str(tmp_path)):
            faults.fire("sim", "titanxp/conv1/forward")
            with pytest.raises(faults.InjectedFault):
                faults.fire("sim", "titanxp/conv2/forward")

    def test_tickets_shared_across_specs_independently(self, tmp_path):
        with faults.injected(faults.flaky(site="sim"),
                             faults.flaky(site="dse"),
                             state_dir=str(tmp_path)):
            with pytest.raises(faults.InjectedFault):
                faults.fire("sim", "a")
            with pytest.raises(faults.InjectedFault):
                faults.fire("dse", "b")

    def test_vanished_state_dir_fails_safe(self, tmp_path):
        state = tmp_path / "gone"
        faults.install([faults.flaky()], state_dir=str(state))
        os.rmdir(state)
        faults.fire("sim", "task")  # cannot claim a ticket: must not fire
        faults.clear()


class TestFileFaults:
    def test_corrupt_file_is_deterministic_and_never_json(self, tmp_path):
        a = tmp_path / "a.json"
        b = tmp_path / "b.json"
        a.write_text("{}")
        b.write_text("{}")
        faults.corrupt_file(str(a), seed=3)
        faults.corrupt_file(str(b), seed=3)
        assert a.read_bytes() == b.read_bytes()
        with pytest.raises(ValueError):
            json.loads(a.read_bytes().decode("utf-8", errors="replace"))

    def test_tear_file_keeps_prefix(self, tmp_path):
        path = tmp_path / "t.jsonl"
        path.write_bytes(b"0123456789")
        faults.tear_file(str(path), keep_bytes=4)
        assert path.read_bytes() == b"0123"
        with pytest.raises(ValueError):
            faults.tear_file(str(path), keep_bytes=-1)


# ----------------------------------------------------------------------
# Acceptance: worker crash mid-simulate_many recovers bit-identically
# ----------------------------------------------------------------------

class TestCrashRecovery:
    def test_killed_worker_yields_bit_identical_results(self, tmp_path):
        with Session(jobs=2) as clean_session:
            clean = clean_session.run(ValidateRequest(gpu="titanxp", **TINY))

        with faults.injected(faults.crash(site="sim"),
                             state_dir=str(tmp_path)):
            with Session(jobs=2, retry_backoff=0.01) as session:
                recovered = session.run(ValidateRequest(gpu="titanxp", **TINY))
                assert session.stats.pool_recoveries >= 1
                assert session.stats.task_retries >= 1

        # content identity: meta["timing"] is the only run-to-run delta.
        assert recovered.content_json() == clean.content_json()

    def test_crash_budget_exhaustion_is_a_structured_failure(self, tmp_path):
        units = _tiny_units(2)
        with faults.injected(faults.crash(site="sim", times=5),
                             state_dir=str(tmp_path)):
            with Session(jobs=2, retries=1, retry_backoff=0.01) as session:
                outcomes = session.simulate_many(units, strict=False)
        failures = [o for o in outcomes if isinstance(o, TaskFailure)]
        assert failures
        assert all(f.kind == "crash" for f in failures)
        assert all(f.attempts == 2 for f in failures)  # 1 try + 1 retry

    def test_strict_crash_exhaustion_raises_simulation_error(self, tmp_path):
        with faults.injected(faults.crash(site="sim", times=8),
                             state_dir=str(tmp_path)):
            with Session(jobs=2, retries=1, retry_backoff=0.01) as session:
                with pytest.raises(SimulationError):
                    session.simulate_many(_tiny_units(2))


# ----------------------------------------------------------------------
# Acceptance: flaky task succeeds on retry N
# ----------------------------------------------------------------------

class TestFlakyRetry:
    def test_flaky_task_succeeds_within_budget(self, tmp_path):
        with Session(jobs=2) as clean_session:
            clean = clean_session.simulate_many(_tiny_units())
        with faults.injected(faults.flaky(site="sim", failures=2),
                             state_dir=str(tmp_path)):
            with Session(jobs=2, retries=2, retry_backoff=0.01) as session:
                recovered = session.simulate_many(_tiny_units())
                assert session.stats.task_retries >= 2
        assert [r.traffic for r in recovered] == [r.traffic for r in clean]

    def test_flaky_serial_path_retries_too(self, tmp_path):
        with faults.injected(faults.flaky(site="sim", failures=1),
                             state_dir=str(tmp_path)):
            with Session(jobs=1, retry_backoff=0.0) as session:
                results = session.simulate_many(_tiny_units(1))
                assert session.stats.task_retries == 1
        assert results[0].traffic.dram_bytes > 0


# ----------------------------------------------------------------------
# Acceptance: straggler cancelled by the wall-clock timeout
# ----------------------------------------------------------------------

class TestTimeouts:
    def test_straggler_cancelled_and_reported(self, tmp_path):
        units = _tiny_units(3)
        hang_layer = units[0][1].name
        with faults.injected(
                faults.hang(site="sim", match=hang_layer, seconds=60),
                state_dir=str(tmp_path)):
            with Session(jobs=2, timeout=3.0, retry_backoff=0.01) as session:
                outcomes = session.simulate_many(units, strict=False)
                assert session.stats.task_timeouts == 1
                assert session.stats.pool_recoveries >= 1
        assert isinstance(outcomes[0], TaskFailure)
        assert outcomes[0].kind == "timeout"
        assert "wall-clock timeout" in outcomes[0].message
        # the healthy units still completed
        assert all(not isinstance(o, TaskFailure) for o in outcomes[1:])


# ----------------------------------------------------------------------
# Acceptance: DSE records the crashing point and resumes past it
# ----------------------------------------------------------------------

class TestDseFaultIsolation:
    SPACE = grid({"num_sm": (1, 2), "mac_bw": (1, 2)},
                 network="alexnet", batch=8)

    def test_crashing_point_recorded_and_resumed_past(self, tmp_path):
        store_path = str(tmp_path / "sweep.jsonl")
        # pin the crash to one specific point; it fires on every retry, so
        # that point permanently fails while every other point completes.
        # The batched path retries at two levels — the whole chunk first,
        # then the per-point scalar fallback — so the ticket budget covers
        # both ladders: 2 * (retries + 1) fires.
        with faults.injected(
                faults.crash(site="dse", match="num_sm=2,mac_bw=2", times=12),
                state_dir=str(tmp_path / "state")):
            with Session(jobs=2, retries=2, retry_backoff=0.01) as session:
                with ResultStore(store_path) as store:
                    first = explore(self.SPACE, driver=ExhaustiveDriver(),
                                    store=store, session=session)
        assert first.stats.failed == 1
        assert len(first.failures) == 1
        failure = first.failures[0]
        assert failure.point.name == "num_sm=2,mac_bw=2"
        assert failure.failure.kind == "crash"
        assert not failure.cached
        assert len(first.results) == len(self.SPACE) - 1

        # resume with no faults installed: the failure record is replayed
        # from disk, not re-evaluated, and everything else is a store hit.
        with Session(jobs=2) as session:
            with ResultStore(store_path) as store:
                resumed = explore(self.SPACE, driver=ExhaustiveDriver(),
                                  store=store, session=session)
        assert resumed.stats.evaluated == 0
        assert resumed.stats.skipped_failures == 1
        assert len(resumed.failures) == 1
        assert resumed.failures[0].cached
        assert {r.point.name for r in resumed.results} == \
            {r.point.name for r in first.results}

    def test_error_point_isolated_without_store(self, tmp_path):
        with faults.injected(
                faults.flaky(site="dse", match="num_sm=2,mac_bw=2",
                             failures=5),
                state_dir=str(tmp_path)):
            with Session(jobs=2, retries=1, retry_backoff=0.01) as session:
                exploration = explore(self.SPACE, session=session)
        assert len(exploration.failures) == 1
        assert exploration.failures[0].failure.error_type == "InjectedFault"
        assert exploration.failures[0].failure.attempts == 2
        rows = exploration.failure_rows()
        assert rows[0]["design"] == "num_sm=2,mac_bw=2"
        assert rows[0]["kind"] == "error"


# ----------------------------------------------------------------------
# Acceptance: corrupt sim-cache entry quarantined and re-simulated
# ----------------------------------------------------------------------

class TestCacheQuarantine:
    def _entry(self, cache_dir):
        layer = get_network("alexnet", batch=4).unique_layers()[0]
        path = _sim_cache_path(
            str(cache_dir), _sim_cache_key(TITAN_XP, layer, SIM_CONFIG))
        return layer, path

    def test_corrupt_entry_quarantined_and_resimulated(self, tmp_path):
        layer, path = self._entry(tmp_path)
        clean = simulate_layer(TITAN_XP, layer, SIM_CONFIG,
                               cache_dir=str(tmp_path))
        assert os.path.exists(path)
        faults.corrupt_file(path, seed=11)
        recovered = simulate_layer(TITAN_XP, layer, SIM_CONFIG,
                                   cache_dir=str(tmp_path))
        assert recovered.traffic == clean.traffic
        assert recovered.time_seconds == clean.time_seconds
        quarantined = glob.glob(str(tmp_path / f"*{QUARANTINE_SUFFIX}"))
        assert quarantined == [path + QUARANTINE_SUFFIX]
        # the slot was re-written with a clean entry
        with open(path, "r", encoding="utf-8") as handle:
            assert "traffic" in json.load(handle)

    def test_truncated_entry_quarantined(self, tmp_path):
        layer, path = self._entry(tmp_path)
        clean = simulate_layer(TITAN_XP, layer, SIM_CONFIG,
                               cache_dir=str(tmp_path))
        faults.tear_file(path, keep_bytes=7)
        recovered = simulate_layer(TITAN_XP, layer, SIM_CONFIG,
                                   cache_dir=str(tmp_path))
        assert recovered.traffic == clean.traffic
        assert os.path.exists(path + QUARANTINE_SUFFIX)

    def test_missing_entry_is_not_quarantined(self, tmp_path):
        layer, path = self._entry(tmp_path)
        simulate_layer(TITAN_XP, layer, SIM_CONFIG, cache_dir=str(tmp_path))
        os.remove(path)
        simulate_layer(TITAN_XP, layer, SIM_CONFIG, cache_dir=str(tmp_path))
        assert glob.glob(str(tmp_path / f"*{QUARANTINE_SUFFIX}")) == []
