"""Equivalence tests: vectorized cache kernels vs the scalar reference.

Both cache classes expose a scalar ``access`` and a batched ``access_block``
over one shared replacement state.  These tests check, against an independent
OrderedDict model of LRU replacement, that

* the scalar path, the block path, and arbitrary interleavings of the two
  produce bit-identical hit masks,
* statistics stay exact under batched updates, and
* adversarial reuse patterns around the capacity boundary are classified
  exactly.

Streams are drawn with hypothesis so duplicates inside one block, repeats
across blocks, and capacity-straddling working sets all occur.
"""

from collections import OrderedDict

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.sim.cache import (LruCache, SetAssociativeCache,
                             SetAssociativeCacheBank)

SECTOR = 32

CACHE_SETTINGS = settings(max_examples=60, deadline=None,
                          suppress_health_check=[HealthCheck.too_slow])


class LruModel:
    """Independent OrderedDict model of fully associative LRU."""

    def __init__(self, capacity_sectors: int) -> None:
        self.capacity = capacity_sectors
        self.entries: "OrderedDict[int, None]" = OrderedDict()

    def access(self, sector: int) -> bool:
        if sector in self.entries:
            self.entries.move_to_end(sector)
            return True
        self.entries[sector] = None
        if len(self.entries) > self.capacity:
            self.entries.popitem(last=False)
        return False


class SetAssocModel:
    """Independent OrderedDict model of set-indexed LRU."""

    def __init__(self, num_sets: int, ways: int) -> None:
        self.num_sets = num_sets
        self.ways = ways
        self.sets = [OrderedDict() for _ in range(num_sets)]

    def access(self, sector: int) -> bool:
        entries = self.sets[sector % self.num_sets]
        if sector in entries:
            entries.move_to_end(sector)
            return True
        entries[sector] = None
        if len(entries) > self.ways:
            entries.popitem(last=False)
        return False


@st.composite
def sector_streams(draw):
    """A stream plus block boundaries; small universes force heavy reuse."""
    universe = draw(st.integers(min_value=1, max_value=96))
    length = draw(st.integers(min_value=1, max_value=300))
    stream = draw(st.lists(st.integers(min_value=0, max_value=universe - 1),
                           min_size=length, max_size=length))
    num_cuts = draw(st.integers(min_value=0, max_value=5))
    cuts = sorted(draw(st.lists(st.integers(min_value=0, max_value=length),
                                min_size=num_cuts, max_size=num_cuts)))
    return np.asarray(stream, dtype=np.int64), cuts


def run_blocks(cache, stream, cuts, scalar_on_odd=False):
    results = []
    for index, block in enumerate(np.split(stream, cuts)):
        if scalar_on_odd and index % 2 == 1:
            results.extend(cache.access(int(sector)) for sector in block)
        else:
            results.extend(cache.access_block(block).tolist())
    return np.asarray(results, dtype=bool)


class TestLruEquivalence:
    @given(data=sector_streams(), capacity=st.integers(1, 48))
    @CACHE_SETTINGS
    def test_block_matches_model_and_scalar(self, data, capacity):
        stream, cuts = data
        model = LruModel(capacity)
        expected = np.asarray([model.access(int(s)) for s in stream])

        scalar = LruCache(capacity * SECTOR, SECTOR)
        scalar_hits = np.asarray([scalar.access(int(s)) for s in stream])
        assert np.array_equal(scalar_hits, expected)

        blocked = LruCache(capacity * SECTOR, SECTOR)
        assert np.array_equal(run_blocks(blocked, stream, cuts), expected)
        assert blocked.stats.accesses == stream.size
        assert blocked.stats.misses == int(np.count_nonzero(~expected))
        assert blocked.occupancy == len(model.entries)

    @given(data=sector_streams(), capacity=st.integers(1, 48))
    @CACHE_SETTINGS
    def test_dense_universe_path_identical(self, data, capacity):
        stream, cuts = data
        dense = LruCache(capacity * SECTOR, SECTOR,
                         sector_universe=int(stream.max()) + 1)
        sparse = LruCache(capacity * SECTOR, SECTOR)
        assert np.array_equal(run_blocks(dense, stream, cuts),
                              run_blocks(sparse, stream, cuts))

    @given(data=sector_streams(), capacity=st.integers(1, 48))
    @CACHE_SETTINGS
    def test_interleaved_scalar_and_block_calls(self, data, capacity):
        stream, cuts = data
        model = LruModel(capacity)
        expected = np.asarray([model.access(int(s)) for s in stream])
        mixed = LruCache(capacity * SECTOR, SECTOR)
        assert np.array_equal(
            run_blocks(mixed, stream, cuts, scalar_on_odd=True), expected)

    @pytest.mark.parametrize("capacity", [1, 2, 7, 64])
    @pytest.mark.parametrize("delta", [-1, 0, 1, 8])
    def test_cyclic_working_set_at_capacity_boundary(self, capacity, delta):
        """Adversarial reuse: cyclic sweeps straddling the capacity knee."""
        working_set = capacity + delta
        if working_set <= 0:
            pytest.skip("degenerate working set")
        stream = np.tile(np.arange(working_set), 25)
        model = LruModel(capacity)
        expected = np.asarray([model.access(int(s)) for s in stream])
        cache = LruCache(capacity * SECTOR, SECTOR)
        assert np.array_equal(cache.access_block(stream), expected)
        # LRU cannot exploit cyclic reuse beyond its capacity.
        if delta > 0:
            assert not cache.access_block(np.arange(working_set)).any()

    def test_access_many_delegates_to_block(self):
        cache = LruCache(4 * SECTOR, SECTOR)
        misses = cache.access_many([1, 2, 3, 1, 2, 3])
        assert misses == 3
        assert cache.stats.accesses == 6
        assert cache.stats.misses == 3


class TestSetAssociativeEquivalence:
    @given(data=sector_streams(), ways=st.integers(1, 8),
           sets=st.integers(1, 12))
    @CACHE_SETTINGS
    def test_block_matches_model_and_scalar(self, data, ways, sets):
        stream, cuts = data
        cache = SetAssociativeCache(sets * ways * SECTOR, SECTOR, ways=ways)
        model = SetAssocModel(cache.num_sets, cache.ways)
        expected = np.asarray([model.access(int(s)) for s in stream])

        scalar = SetAssociativeCache(sets * ways * SECTOR, SECTOR, ways=ways)
        scalar_hits = np.asarray([scalar.access(int(s)) for s in stream])
        assert np.array_equal(scalar_hits, expected)

        assert np.array_equal(run_blocks(cache, stream, cuts), expected)
        assert cache.stats.accesses == stream.size
        assert cache.stats.misses == int(np.count_nonzero(~expected))

    @given(data=sector_streams(), ways=st.integers(1, 8),
           sets=st.integers(1, 12))
    @CACHE_SETTINGS
    def test_interleaved_scalar_and_block_calls(self, data, ways, sets):
        stream, cuts = data
        cache = SetAssociativeCache(sets * ways * SECTOR, SECTOR, ways=ways)
        model = SetAssocModel(cache.num_sets, cache.ways)
        expected = np.asarray([model.access(int(s)) for s in stream])
        assert np.array_equal(
            run_blocks(cache, stream, cuts, scalar_on_odd=True), expected)

    @pytest.mark.parametrize("ways", [1, 2, 8])
    def test_way_conflict_thrash(self, ways):
        """Adversarial: a conflict set one larger than the ways thrashes."""
        cache = SetAssociativeCache(4 * ways * SECTOR, SECTOR, ways=ways)
        conflict = np.arange(ways + 1) * cache.num_sets  # all map to set 0
        stream = np.tile(conflict, 20)
        model = SetAssocModel(cache.num_sets, cache.ways)
        expected = np.asarray([model.access(int(s)) for s in stream])
        assert np.array_equal(cache.access_block(stream), expected)
        assert not expected[ways + 1:].any()  # pure miss thrash

    def test_access_many_delegates_to_block(self):
        cache = SetAssociativeCache(1024, SECTOR, ways=4)
        misses = cache.access_many([5, 5, 6, 7, 5])
        assert misses == 3
        assert cache.stats.accesses == 5
        assert cache.stats.misses == 3


class TestCacheBank:
    @given(data=sector_streams(), ways=st.integers(1, 4),
           sets=st.integers(1, 6), num_caches=st.integers(1, 4))
    @CACHE_SETTINGS
    def test_bank_matches_independent_caches(self, data, ways, sets,
                                             num_caches):
        stream, cuts = data
        capacity = sets * ways * SECTOR
        rng = np.random.default_rng(stream.size)
        owners = rng.integers(0, num_caches, stream.size)

        singles = [SetAssociativeCache(capacity, SECTOR, ways=ways)
                   for _ in range(num_caches)]
        expected = np.asarray([singles[int(c)].access(int(s))
                               for c, s in zip(owners, stream)])

        bank = SetAssociativeCacheBank(num_caches, capacity, SECTOR,
                                       ways=ways)
        got = np.concatenate(
            [bank.access_block(owner_block, block)
             for owner_block, block in zip(np.split(owners, cuts),
                                           np.split(stream, cuts))])
        assert np.array_equal(got, expected)
        assert bank.stats.accesses == stream.size
        assert bank.stats.misses == int(np.count_nonzero(~expected))

    def test_bank_rejects_mismatched_lengths(self):
        bank = SetAssociativeCacheBank(2, 1024, SECTOR)
        with pytest.raises(ValueError):
            bank.access_block([0], [1, 2])
