"""Golden regression: backward-pass (dgrad/wgrad) estimates are pinned.

``golden_backward_estimates.json`` pins the dgrad and wgrad estimates of
every registered network's unique layers at batch 32 on TITAN Xp and V100 —
the conv cases lock the pass-aware lowering of PR 3, the GEMM-native cases
(FC tails, ``mlp``, ``bert-base``) the dense lowering.  Any deviation means
the backward-pass model changed, not just its plumbing.
"""

import json
import os

import pytest

from repro.core.model import DeltaModel
from repro.core.workload import lower_pass
from repro.gpu.devices import get_device
from repro.networks.registry import get_network

GOLDEN_PATH = os.path.join(os.path.dirname(__file__),
                           "golden_backward_estimates.json")

with open(GOLDEN_PATH, "r", encoding="utf-8") as _handle:
    GOLDEN = json.load(_handle)

BACKWARD_PASSES = ("dgrad", "wgrad")


def _cases():
    for gpu_name in ("titanxp", "v100"):
        for net_name in ("alexnet", "vgg16", "googlenet", "resnet152",
                         "mlp", "bert-base"):
            yield gpu_name, net_name


@pytest.mark.parametrize("gpu_name,net_name", list(_cases()))
def test_backward_estimates_bit_identical(gpu_name, net_name):
    gpu = get_device(gpu_name)
    model = DeltaModel(gpu)
    network = get_network(net_name, batch=32)
    for layer in network.unique_layers():
        for pass_kind in BACKWARD_PASSES:
            key = (f"{gpu.name}|{net_name}/{layer.name}|b{layer.batch}"
                   f"|{pass_kind}")
            golden = GOLDEN[key]
            estimate = model.estimate(lower_pass(layer, pass_kind))
            assert estimate.time_seconds == golden["time_seconds"], key
            assert estimate.bottleneck.value == golden["bottleneck"], key
            assert estimate.traffic.l1_bytes == golden["l1_bytes"], key
            assert estimate.traffic.l2_bytes == golden["l2_bytes"], key
            assert estimate.traffic.dram_bytes == golden["dram_bytes"], key
            assert estimate.active_ctas == golden["active_ctas"], key
            assert estimate.ctas_per_sm == golden["ctas_per_sm"], key


def test_golden_population_is_complete():
    """Every golden entry is checked (no silently dropped layers/passes)."""
    seen = set()
    for gpu_name, net_name in _cases():
        gpu = get_device(gpu_name)
        network = get_network(net_name, batch=32)
        for layer in network.unique_layers():
            for pass_kind in BACKWARD_PASSES:
                seen.add(f"{gpu.name}|{net_name}/{layer.name}"
                         f"|b{layer.batch}|{pass_kind}")
    assert seen == set(GOLDEN)
