"""Job lifecycle: submission, coalescing, polling, NDJSON event streams."""

import asyncio
import http.client
import json

import pytest

from repro.api import Report, Session
from repro.server import Job, JobManager, ServerThread, create_app
from server_utils import asgi_request


def make_report(kind="sweep", title="done"):
    return Report(kind=kind, title=title)


class TestJobManagerUnit:
    def test_lifecycle_and_events(self):
        async def scenario():
            manager = JobManager()
            release = asyncio.Event()

            async def execute(job: Job) -> Report:
                job.post({"event": "progress", "done": 1, "total": 1})
                await release.wait()
                return make_report()

            job, coalesced = manager.submit("sweep", "key-1", execute)
            assert not coalesced
            assert job.status == "running"
            assert job.describe()["events_url"].endswith("/events")
            assert "report_url" not in job.describe()
            release.set()
            events = [event async for event in job.stream_events()]
            assert [e["event"] for e in events] == \
                ["started", "progress", "done"]
            assert job.status == "done"
            assert job.describe()["report_url"] == \
                f"/v1/jobs/{job.job_id}/report"

        asyncio.run(scenario())

    def test_same_key_coalesces_onto_the_running_job(self):
        async def scenario():
            manager = JobManager()
            release = asyncio.Event()

            async def execute(job: Job) -> Report:
                await release.wait()
                return make_report()

            first, coalesced_first = manager.submit("sweep", "k", execute)
            second, coalesced_second = manager.submit("sweep", "k", execute)
            assert second is first
            assert (coalesced_first, coalesced_second) == (False, True)
            release.set()
            await asyncio.sleep(0.05)
            # once finished, the same key starts a fresh job.
            third, coalesced_third = manager.submit("sweep", "k", execute)
            assert third is not first and not coalesced_third
            release.set()
            async for _ in third.stream_events():
                pass

        asyncio.run(scenario())

    def test_executor_exception_becomes_an_error_report(self):
        async def scenario():
            manager = JobManager()

            async def execute(job: Job) -> Report:
                raise RuntimeError("the job blew up")

            job, _ = manager.submit("sweep", "k", execute)
            events = [event async for event in job.stream_events()]
            assert events[-1]["status"] == "error"
            assert job.report.kind == "error"
            assert "the job blew up" in job.report.meta["error_message"]

        asyncio.run(scenario())

    def test_finished_jobs_are_trimmed(self):
        async def scenario():
            manager = JobManager(max_finished=2)

            async def execute(job: Job) -> Report:
                return make_report()

            jobs = [manager.submit("sweep", f"k{i}", execute)[0]
                    for i in range(4)]
            for job in jobs:
                async for _ in job.stream_events():
                    pass
            await asyncio.sleep(0.05)
            assert len(manager) == 2
            assert manager.get(jobs[0].job_id) is None
            assert manager.get(jobs[-1].job_id) is jobs[-1]

        asyncio.run(scenario())

    def test_late_subscriber_replays_the_full_history(self):
        async def scenario():
            manager = JobManager()

            async def execute(job: Job) -> Report:
                job.post({"event": "progress", "done": 1, "total": 1})
                return make_report()

            job, _ = manager.submit("sweep", "k", execute)
            async for _ in job.stream_events():
                pass
            replay = [event async for event in job.stream_events()]
            assert [e["event"] for e in replay] == \
                ["started", "progress", "done"]

        asyncio.run(scenario())


@pytest.fixture
def server():
    session = Session()
    app = create_app(session)
    with ServerThread(app) as running:
        yield running, app
    session.close()


def _http(server, method, path, body=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=120)
    try:
        conn.request(method, path,
                     body=json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


class TestJobRoutes:
    def test_job_request_roundtrip_with_progress_stream(self, server):
        running, app = server
        status, raw = _http(running, "POST", "/v1/sweep",
                            body={"networks": ["alexnet"],
                                  "gpus": ["titanxp"],
                                  "batches": [16, 32], "job": True})
        assert status == 202
        submitted = json.loads(raw)
        assert submitted["status"] == "running"
        job_id = submitted["job_id"]

        # stream the NDJSON events to completion.
        conn = http.client.HTTPConnection(running.host, running.port,
                                          timeout=120)
        try:
            conn.request("GET", submitted["events_url"])
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == \
                "application/x-ndjson"
            events = []
            while True:
                line = response.readline()
                if not line:
                    break
                events.append(json.loads(line))
        finally:
            conn.close()
        names = [event["event"] for event in events]
        assert names[0] == "started" and names[-1] == "done"
        progress = [e for e in events if e["event"] == "progress"]
        assert progress, "sweep must emit per-combination progress"
        assert progress[-1]["done"] == progress[-1]["total"] == 2
        assert events[-1]["status"] == "done"

        # poll + report, and the report matches a synchronous run.
        status, raw = _http(running, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        assert json.loads(raw)["status"] == "done"
        status, job_body = _http(running, "GET", f"/v1/jobs/{job_id}/report")
        assert status == 200
        status, sync_body = _http(running, "POST", "/v1/sweep",
                                  body={"networks": ["alexnet"],
                                        "gpus": ["titanxp"],
                                        "batches": [16, 32]})
        assert status == 200
        assert job_body == sync_body  # one execution, shared via the memo
        assert app.session.stats.requests_run == 1

    def test_unknown_job_is_structured_404(self, server):
        running, _ = server
        status, raw = _http(running, "GET", "/v1/jobs/job-999999")
        assert status == 404
        assert json.loads(raw)["kind"] == "error"
        status, raw = _http(running, "GET", "/v1/jobs/job-999999/events")
        assert status == 404
        status, raw = _http(running, "GET", "/v1/jobs/job-000001/bogus")
        assert status == 404

    def test_jobs_index_lists_submissions(self, server):
        running, _ = server
        _http(running, "POST", "/v1/sweep",
              body={"networks": ["alexnet"], "gpus": ["titanxp"],
                    "batches": [16], "job": True})
        status, raw = _http(running, "GET", "/v1/jobs")
        assert status == 200
        listed = json.loads(raw)["jobs"]
        assert len(listed) == 1 and listed[0]["route"] == "sweep"

    def test_bad_job_body_is_rejected_before_submission(self, server):
        running, app = server
        status, raw = _http(running, "POST", "/v1/sweep",
                            body={"networks": ["nope"], "job": True})
        assert status == 400
        assert json.loads(raw)["kind"] == "error"
        status, raw = _http(running, "GET", "/v1/jobs")
        assert json.loads(raw)["jobs"] == []  # nothing was submitted


class TestJobErrorRoutes:
    def test_error_job_report_is_5xx(self):
        session = Session()
        app = create_app(session)

        async def scenario():
            async def execute(job):
                return Report.from_error(RuntimeError("late failure"))

            app.jobs = JobManager()
            job, _ = app.jobs.submit("sweep", "k", execute)
            async for _ in job.stream_events():
                pass
            status, payload = await _asgi_json(
                app, "GET", f"/v1/jobs/{job.job_id}/report")
            assert status == 500
            assert payload["kind"] == "error"

        asyncio.run(scenario())
        session.close()


async def _asgi_json(app, method, path):
    status, _, raw = await asgi_request(app, method, path)
    return status, json.loads(raw)
