"""Tests for the resumable DSE result store: content keys, JSONL durability,
and the interrupted-sweep -> rerun -> zero re-evaluations contract."""

import json

import pytest

from repro.dse import (
    ExhaustiveDriver,
    ResultStore,
    StoreLockedError,
    explore,
    grid,
    is_failure_record,
    store_key,
    workload_fingerprint,
)
from repro.dse.space import DesignPoint
from repro.gpu import TITAN_XP, DesignOption, get_device
from repro.resilience import TaskFailure


@pytest.fixture()
def space():
    return grid({"num_sm": (1, 2), "mac_bw": (1, 2), "dram_bw": (1, 1.5)},
                network="alexnet", batch=16)


class TestResultStore:
    def test_put_get_roundtrip(self, tmp_path):
        store = ResultStore(str(tmp_path / "sweep.jsonl"))
        store.put("k1", {"time_s": 0.1234567890123456789, "layers": 5})
        assert store.get("k1") == {"time_s": 0.1234567890123456789, "layers": 5}
        assert "k1" in store
        assert len(store) == 1
        store.close()

    def test_floats_roundtrip_exactly_through_disk(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        value = 0.1 + 0.2  # a float with an awkward shortest repr
        with ResultStore(path) as store:
            store.put("k", {"time_s": value,
                            "bottlenecks": {"DRAM_BW": 1.0 / 3.0}})
        reloaded = ResultStore(path)
        record = reloaded.get("k")
        assert record["time_s"] == value
        assert record["bottlenecks"]["DRAM_BW"] == 1.0 / 3.0

    def test_in_memory_store_without_path(self):
        store = ResultStore()
        store.put("k", {"x": 1})
        assert store.get("k") == {"x": 1}
        assert store.path is None

    def test_duplicate_put_is_ignored(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        with ResultStore(path) as store:
            store.put("k", {"x": 1})
            store.put("k", {"x": 2})
        assert ResultStore(path).get("k") == {"x": 1}
        with open(path) as handle:
            assert len(handle.readlines()) == 1

    def test_truncated_trailing_line_tolerated(self, tmp_path):
        """A process killed mid-append leaves a partial line; the store must
        load every complete record and keep accepting new ones."""
        path = tmp_path / "sweep.jsonl"
        with ResultStore(str(path)) as store:
            store.put("k1", {"x": 1})
            store.put("k2", {"x": 2})
        text = path.read_text()
        path.write_text(text + '{"key": "k3", "metr')  # torn write
        reloaded = ResultStore(str(path))
        assert len(reloaded) == 2
        assert reloaded.corrupt_lines == 1
        reloaded.put("k3", {"x": 3})
        reloaded.close()
        final = ResultStore(str(path))
        assert final.get("k3") == {"x": 3}

    def test_creates_parent_directories(self, tmp_path):
        path = tmp_path / "nested" / "dir" / "sweep.jsonl"
        with ResultStore(str(path)) as store:
            store.put("k", {"x": 1})
        assert path.exists()


class TestDurability:
    def test_truncation_at_every_offset_of_final_record(self, tmp_path):
        """A kill can tear the final append at *any* byte.  Whatever the cut,
        every earlier record survives, the torn tail is dropped (or, when the
        cut only removed the newline, still parses), and the store keeps
        accepting appends that later load cleanly."""
        path = tmp_path / "sweep.jsonl"
        with ResultStore(str(path)) as store:
            store.put("k1", {"x": 1})
            store.put("k2", {"x": 2})
            store.put("k3", {"x": 3})
        blob = path.read_bytes()
        prefix_len = blob.index(b'"k3"')  # cut somewhere inside record 3
        prefix_len = blob.rfind(b"\n", 0, prefix_len) + 1

        for offset in range(prefix_len, len(blob)):
            path.write_bytes(blob[:offset])
            reloaded = ResultStore(str(path))
            assert reloaded.get("k1") == {"x": 1}
            assert reloaded.get("k2") == {"x": 2}
            assert reloaded.corrupt_lines <= 1
            assert ("k3" in reloaded) == (reloaded.corrupt_lines == 0
                                          and offset > prefix_len)
            reloaded.put("k4", {"x": 4})
            reloaded.close()
            recovered = ResultStore(str(path))
            assert recovered.get("k4") == {"x": 4}
            assert recovered.get("k1") == {"x": 1}
            # the torn debris (if any) stays quarantined on its own line
            # and keeps counting as exactly one corrupt line forever.
            assert recovered.corrupt_lines == reloaded.corrupt_lines

    def test_second_concurrent_writer_is_rejected(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        first = ResultStore(path)
        first.put("k1", {"x": 1})  # first append takes the writer lock
        second = ResultStore(path)
        assert second.get("k1") == {"x": 1}  # reading is fine
        with pytest.raises(StoreLockedError, match="locked by another"):
            second.put("k2", {"x": 2})
        first.close()
        third = ResultStore(path)
        third.put("k3", {"x": 3})  # lock released with the handle
        third.close()

    def test_failure_records_round_trip(self, tmp_path):
        path = str(tmp_path / "sweep.jsonl")
        failure = TaskFailure(kind="crash", error_type="BrokenProcessPool",
                              message="worker died", attempts=3)
        with ResultStore(path) as store:
            store.put("ok", {"x": 1})
            store.put_failure("bad", failure.as_record(),
                              descriptor={"network": "alexnet"})
        reloaded = ResultStore(path)
        assert not is_failure_record(reloaded.get("ok"))
        record = reloaded.get("bad")
        assert is_failure_record(record)
        assert TaskFailure.from_record(record["failure"]) == failure
        assert set(reloaded.failures()) == {"bad"}
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        assert set(lines[1]) == {"key", "point", "failure"}


class TestStoreKey:
    def test_key_ignores_names_but_not_content(self):
        a = DesignPoint(option=DesignOption("a", num_sm=2.0), network="alexnet",
                        batch=16)
        b = DesignPoint(option=DesignOption("b", num_sm=2.0), network="alexnet",
                        batch=16)
        assert store_key(TITAN_XP, a, True) == store_key(TITAN_XP, b, True)
        c = DesignPoint(option=DesignOption("a", num_sm=4.0), network="alexnet",
                        batch=16)
        assert store_key(TITAN_XP, a, True) != store_key(TITAN_XP, c, True)

    def test_key_depends_on_baseline_gpu_and_layer_selection(self):
        point = DesignPoint(option=DesignOption("a", num_sm=2.0),
                            network="alexnet", batch=16)
        assert store_key(TITAN_XP, point, True) != store_key(
            get_device("v100"), point, True)
        assert store_key(TITAN_XP, point, True) != store_key(
            TITAN_XP, point, False)

    def test_workload_fingerprint_tracks_structure(self):
        a = DesignPoint(option=DesignOption("a"), network="alexnet", batch=16)
        b = DesignPoint(option=DesignOption("a"), network="alexnet", batch=32)
        assert workload_fingerprint(a, True) != workload_fingerprint(b, True)
        c = DesignPoint(option=DesignOption("a"), network="alexnet", batch=16,
                        passes="training")
        assert workload_fingerprint(a, True) != workload_fingerprint(c, True)


class TestResumableSweep:
    def test_interrupted_sweep_resumes_with_zero_reevaluations(self, tmp_path,
                                                               space):
        """Kill mid-sweep (simulated by a capped first run), rerun the full
        sweep: the store answers everything already evaluated and only the
        remainder runs; a third run re-evaluates nothing at all."""
        path = str(tmp_path / "sweep.jsonl")

        # "killed" first run: only 3 of the 8 points get evaluated (the
        # identity point leads the enumeration, so the implicit speedup
        # baseline dedupes against it and costs nothing extra).
        with ResultStore(path) as store:
            partial = explore(space, driver=ExhaustiveDriver(limit=3),
                              store=store)
        assert partial.stats.evaluated == 3

        with ResultStore(path) as store:
            full = explore(space, driver=ExhaustiveDriver(), store=store)
        assert full.stats.store_hits == 3
        assert full.stats.evaluated == len(space) - 3

        with ResultStore(path) as store:
            rerun = explore(space, driver=ExhaustiveDriver(), store=store)
        assert rerun.stats.evaluated == 0
        assert rerun.stats.store_hits == len(space)
        assert all(result.cached for result in rerun.results)

        for a, b in zip(full.results, rerun.results):
            assert a.metrics == b.metrics
        assert full.frontier == rerun.frontier

    def test_store_lines_carry_point_descriptors(self, tmp_path, space):
        path = str(tmp_path / "sweep.jsonl")
        with ResultStore(path) as store:
            explore(space, driver=ExhaustiveDriver(limit=2), store=store,
                    include_baseline=False)
        with open(path) as handle:
            lines = [json.loads(line) for line in handle]
        assert len(lines) == 2
        for line in lines:
            assert set(line) == {"key", "point", "metrics"}
            assert line["point"]["network"] == "alexnet"
            assert "time_s" in line["metrics"]
