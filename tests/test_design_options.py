"""Tests for repro.gpu.design_options (Fig. 16a)."""

import pytest

from repro.gpu import PAPER_DESIGN_OPTIONS, TITAN_XP, DesignOption, get_design_option


class TestDesignOptionTable:
    def test_nine_options_defined(self):
        assert len(PAPER_DESIGN_OPTIONS) == 9
        assert [opt.name for opt in PAPER_DESIGN_OPTIONS] == [str(i) for i in range(1, 10)]

    def test_lookup_by_name(self):
        assert get_design_option("5").mac_bw == 4.0
        with pytest.raises(KeyError):
            get_design_option("10")

    def test_option1_and_2_scale_sm_count(self):
        assert get_design_option("1").num_sm == 2.0
        assert get_design_option("2").num_sm == 4.0

    def test_options_7_to_9_use_larger_cta_tiles(self):
        for name in ("7", "8", "9"):
            assert get_design_option(name).cta_tile_hw == 256
        for name in ("1", "2", "3", "4", "5", "6"):
            assert get_design_option(name).cta_tile_hw == 128

    def test_option9_has_highest_dram_bandwidth(self):
        dram_bw = {opt.name: opt.dram_bw for opt in PAPER_DESIGN_OPTIONS}
        assert max(dram_bw, key=dram_bw.get) == "9"


class TestDesignOptionApply:
    def test_apply_option2_quadruples_sms(self):
        scaled = get_design_option("2").apply(TITAN_XP)
        assert scaled.num_sm == 120
        assert scaled.dram_bw == pytest.approx(2 * TITAN_XP.dram_bw)
        assert "TITAN Xp" in scaled.name and "2" in scaled.name

    def test_apply_option4_keeps_memory_unchanged(self):
        scaled = get_design_option("4").apply(TITAN_XP)
        assert scaled.dram_bw == TITAN_XP.dram_bw
        assert scaled.l2_bw == TITAN_XP.l2_bw
        assert scaled.fp32_flops == pytest.approx(4 * TITAN_XP.fp32_flops)

    def test_as_row_contains_all_resource_columns(self):
        row = get_design_option("6").as_row()
        for column in ("NSM", "MACBW/SM", "L2BW", "DRAMBW", "CTA tile H,W"):
            assert column in row

    def test_custom_option_defaults_to_identity(self):
        option = DesignOption(name="custom")
        scaled = option.apply(TITAN_XP)
        assert scaled.num_sm == TITAN_XP.num_sm
        assert scaled.fp32_flops == TITAN_XP.fp32_flops
