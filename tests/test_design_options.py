"""Tests for repro.gpu.design_options (Fig. 16a)."""

import dataclasses

import pytest

from repro.gpu import PAPER_DESIGN_OPTIONS, TITAN_XP, DesignOption, get_design_option


class TestDesignOptionTable:
    def test_nine_options_defined(self):
        assert len(PAPER_DESIGN_OPTIONS) == 9
        assert [opt.name for opt in PAPER_DESIGN_OPTIONS] == [str(i) for i in range(1, 10)]

    def test_lookup_by_name(self):
        assert get_design_option("5").mac_bw == 4.0
        with pytest.raises(KeyError):
            get_design_option("10")

    def test_option1_and_2_scale_sm_count(self):
        assert get_design_option("1").num_sm == 2.0
        assert get_design_option("2").num_sm == 4.0

    def test_options_7_to_9_use_larger_cta_tiles(self):
        for name in ("7", "8", "9"):
            assert get_design_option(name).cta_tile_hw == 256
        for name in ("1", "2", "3", "4", "5", "6"):
            assert get_design_option(name).cta_tile_hw == 128

    def test_option9_has_highest_dram_bandwidth(self):
        dram_bw = {opt.name: opt.dram_bw for opt in PAPER_DESIGN_OPTIONS}
        assert max(dram_bw, key=dram_bw.get) == "9"


class TestDesignOptionApply:
    def test_apply_option2_quadruples_sms(self):
        scaled = get_design_option("2").apply(TITAN_XP)
        assert scaled.num_sm == 120
        assert scaled.dram_bw == pytest.approx(2 * TITAN_XP.dram_bw)
        assert "TITAN Xp" in scaled.name and "2" in scaled.name

    def test_apply_option4_keeps_memory_unchanged(self):
        scaled = get_design_option("4").apply(TITAN_XP)
        assert scaled.dram_bw == TITAN_XP.dram_bw
        assert scaled.l2_bw == TITAN_XP.l2_bw
        assert scaled.fp32_flops == pytest.approx(4 * TITAN_XP.fp32_flops)

    def test_as_row_contains_all_resource_columns(self):
        row = get_design_option("6").as_row()
        for column in ("NSM", "MACBW/SM", "L2BW", "DRAMBW", "CTA tile H,W"):
            assert column in row

    def test_custom_option_defaults_to_identity(self):
        option = DesignOption(name="custom")
        scaled = option.apply(TITAN_XP)
        assert scaled.num_sm == TITAN_XP.num_sm
        assert scaled.fp32_flops == TITAN_XP.fp32_flops


class TestApplyInvariants:
    """Invariants of the DesignOption.apply / GpuSpec.scaled lowering path
    every DSE design point flows through."""

    #: (option field, GpuSpec fields it is allowed to change).
    SCALED_FIELDS = {
        "num_sm": ("num_sm", "fp32_flops"),
        "mac_bw": ("fp32_flops",),
        "regs": ("register_file_bytes",),
        "smem_size": ("smem_bytes",),
        "smem_bw": ("smem_st_bytes_per_cycle", "smem_ld_bytes_per_cycle"),
        "l1_bw": ("l1_bw_per_sm",),
        "l2_bw": ("l2_bw",),
        "dram_bw": ("dram_bw",),
    }

    def test_each_multiplier_only_touches_its_own_fields(self):
        for key, touched in self.SCALED_FIELDS.items():
            option = DesignOption(name=f"only-{key}", **{key: 2.0})
            scaled = option.apply(TITAN_XP)
            for field in dataclasses.fields(TITAN_XP):
                if field.name == "name" or field.name in touched:
                    continue
                assert getattr(scaled, field.name) == \
                    getattr(TITAN_XP, field.name), (key, field.name)

    def test_unscaled_fields_preserved_by_paper_options(self):
        untouchable = ("core_clock_hz", "l2_size", "l1_size",
                       "l1_request_bytes", "sector_bytes", "line_bytes",
                       "lat_l1_cycles", "lat_l2_cycles", "lat_dram_cycles",
                       "lat_smem_cycles", "max_ctas_per_sm")
        for option in PAPER_DESIGN_OPTIONS:
            scaled = option.apply(TITAN_XP)
            for name in untouchable:
                assert getattr(scaled, name) == getattr(TITAN_XP, name), \
                    (option.name, name)

    def test_name_suffixed_with_option_name(self):
        for option in PAPER_DESIGN_OPTIONS:
            scaled = option.apply(TITAN_XP)
            assert scaled.name == f"{TITAN_XP.name} [{option.name}]"

    def test_apply_is_deterministic(self):
        for option in PAPER_DESIGN_OPTIONS:
            assert option.apply(TITAN_XP) == option.apply(TITAN_XP)

    def test_identity_apply_changes_nothing_but_the_name(self):
        identity = DesignOption(name="id")
        scaled = identity.apply(TITAN_XP)
        assert scaled.with_name(TITAN_XP.name) == TITAN_XP
        # re-applying the identity is idempotent up to the name suffix.
        again = identity.apply(scaled)
        assert again.with_name(TITAN_XP.name) == TITAN_XP

    def test_scaled_with_no_multipliers_is_identity(self):
        assert TITAN_XP.scaled() == TITAN_XP

    def test_scaled_with_unit_multipliers_is_identity(self):
        unit = TITAN_XP.scaled(num_sm=1.0, mac_bw=1.0, regs=1.0,
                               smem_size=1.0, smem_bw=1.0, l1_bw=1.0,
                               l2_bw=1.0, dram_bw=1.0, l2_size=1.0)
        assert unit == TITAN_XP

    def test_scaled_composes_multiplicatively(self):
        once = TITAN_XP.scaled(dram_bw=4.0)
        twice = TITAN_XP.scaled(dram_bw=2.0).scaled(dram_bw=2.0)
        assert twice.dram_bw == pytest.approx(once.dram_bw)

    def test_scaled_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown scaling keys"):
            TITAN_XP.scaled(tensor_cores=2.0)
