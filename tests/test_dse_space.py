"""Tests for the declarative DSE search spaces (repro.dse.space)."""

import pytest

from repro.dse.space import (
    AXIS_KEYS,
    Axis,
    DesignPoint,
    axis,
    default_space,
    grid,
    parse_axis,
    space_from_options,
    union,
    zip_axes,
)
from repro.gpu import PAPER_DESIGN_OPTIONS, DesignOption


class TestAxis:
    def test_gpu_axis_values_coerced_to_float(self):
        ax = axis("num_sm", 1, 2, 4)
        assert ax.values == (1.0, 2.0, 4.0)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="unknown axis"):
            Axis("warp_size", (1.0,))

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError, match="at least one value"):
            Axis("num_sm", ())

    def test_non_positive_multiplier_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            Axis("dram_bw", (1.0, 0.0))

    def test_passes_axis_normalized(self):
        ax = Axis("passes", ("Forward", "TRAINING"))
        assert ax.values == ("forward", "training")
        with pytest.raises(ValueError):
            Axis("passes", ("sideways",))

    def test_every_documented_key_accepted(self):
        for key in AXIS_KEYS:
            values = {"network": ("alexnet",), "passes": ("forward",)}.get(
                key, (2,))
            Axis(key, values)


class TestGridSpace:
    def test_size_is_product_of_axis_lengths(self):
        space = grid({"num_sm": (1, 2), "dram_bw": (1, 1.5, 2)})
        assert len(space) == 6
        assert len(space.points()) == 6

    def test_enumeration_is_deterministic(self):
        space = grid({"num_sm": (1, 2), "mac_bw": (1, 2, 4),
                      "cta_tile": (128, 256)})
        first = [p.point_hash() for p in space.points()]
        second = [p.point_hash() for p in space.points()]
        assert first == second

    def test_points_lower_through_design_option(self):
        space = grid({"num_sm": (2,), "dram_bw": (1.5,)})
        point = space.points()[0]
        assert isinstance(point.option, DesignOption)
        assert point.option.num_sm == 2.0
        assert point.option.dram_bw == 1.5
        assert point.name == "num_sm=2,dram_bw=1.5"

    def test_identity_point_named_baseline(self):
        point = grid({"num_sm": (1.0,)}).points()[0]
        assert point.name == "baseline"

    def test_workload_axes_expand(self):
        space = grid({"num_sm": (1, 2), "network": ("alexnet", "vgg16"),
                      "batch": (32, 64)})
        assert len(space) == 8
        networks = {p.network for p in space.points()}
        assert networks == {"alexnet", "vgg16"}

    def test_duplicate_axes_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            grid([axis("num_sm", 1, 2), axis("num_sm", 4)])

    def test_empty_axes_rejected(self):
        with pytest.raises(ValueError, match="at least one axis"):
            grid({})


class TestZipSpace:
    def test_one_point_per_column(self):
        space = zip_axes({"num_sm": (1, 2, 4), "dram_bw": (1, 1.5, 2)})
        assert len(space) == 3
        point = space.points()[1]
        assert point.option.num_sm == 2.0
        assert point.option.dram_bw == 1.5

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="equal lengths"):
            zip_axes({"num_sm": (1, 2), "dram_bw": (1, 1.5, 2)})


class TestUnionSpace:
    def test_concatenates_in_order(self):
        a = grid({"num_sm": (2,)})
        b = grid({"mac_bw": (4,)})
        merged = union(a, b)
        assert [p.name for p in merged.points()] == ["num_sm=2", "mac_bw=4"]

    def test_dedupes_by_content(self):
        a = grid({"num_sm": (1, 2)})
        b = grid({"num_sm": (2, 4)})
        merged = union(a, b)
        assert len(merged.points()) == 3

    def test_or_operator(self):
        merged = grid({"num_sm": (2,)}) | grid({"mac_bw": (4,)})
        assert len(merged.points()) == 2

    def test_nested_unions_flatten(self):
        merged = union(union(grid({"num_sm": (2,)}), grid({"mac_bw": (4,)})),
                       grid({"dram_bw": (2,)}))
        assert len(merged.spaces) == 3


class TestDesignPoint:
    def test_point_hash_ignores_option_name(self):
        a = DesignPoint(option=DesignOption("a", num_sm=2.0))
        b = DesignPoint(option=DesignOption("b", num_sm=2.0))
        assert a.point_hash() == b.point_hash()

    def test_point_hash_sensitive_to_design_and_workload(self):
        base = DesignPoint(option=DesignOption("x", num_sm=2.0))
        assert base.point_hash() != DesignPoint(
            option=DesignOption("x", num_sm=4.0)).point_hash()
        assert base.point_hash() != DesignPoint(
            option=DesignOption("x", num_sm=2.0), batch=128).point_hash()
        assert base.point_hash() != DesignPoint(
            option=DesignOption("x", num_sm=2.0), passes="wgrad").point_hash()

    def test_baseline_point_shares_workload(self):
        point = DesignPoint(option=DesignOption("x", mac_bw=4.0),
                            network="alexnet", batch=32, passes="training")
        baseline = point.baseline_point()
        assert baseline.workload_signature() == point.workload_signature()
        assert baseline.option.mac_bw == 1.0


class TestHelpers:
    def test_space_from_options_preserves_order_and_names(self):
        space = space_from_options(PAPER_DESIGN_OPTIONS, network="resnet152",
                                   batch=256)
        assert [p.name for p in space.points()] == [
            opt.name for opt in PAPER_DESIGN_OPTIONS]

    def test_default_space_has_documented_size(self):
        assert len(default_space(networks=("alexnet",), batches=(32,))) == 162
        assert len(default_space(networks=("alexnet", "vgg16"),
                                 batches=(32,))) == 324

    def test_parse_axis(self):
        ax = parse_axis("num_sm=1,2,4")
        assert ax.key == "num_sm"
        assert ax.values == (1.0, 2.0, 4.0)
        assert parse_axis("cta_tile=128,256").values == (128, 256)

    def test_parse_axis_malformed(self):
        with pytest.raises(ValueError, match="malformed axis"):
            parse_axis("num_sm")
        with pytest.raises(ValueError, match="malformed axis"):
            parse_axis("num_sm=")
