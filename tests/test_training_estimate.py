"""Tests for training-step aggregation, pass-aware requests and dtype flow."""

import json

import pytest

from repro import TITAN_XP, DeltaModel
from repro.api import EstimateRequest, Report, Session, SweepRequest
from repro.core.training import estimate_training_step
from repro.core.tiling import active_ctas_per_sm, build_grid
from repro.core.workload import TRAINING_PASSES, lower_forward
from repro.networks import alexnet


class TestTrainingStepEstimate:
    def test_per_pass_totals_sum_to_step_total(self):
        model = DeltaModel(TITAN_XP)
        step = model.estimate_training_step(alexnet(batch=32))
        assert step.passes == TRAINING_PASSES
        times = step.time_by_pass
        assert step.total_time_seconds == pytest.approx(sum(times.values()))
        for level in ("l1", "l2", "dram"):
            assert step.total_traffic_bytes(level) == pytest.approx(
                sum(step.traffic_by_pass(level).values()))

    def test_records_cover_every_layer_and_pass(self):
        network = alexnet(batch=32)
        step = DeltaModel(TITAN_XP).estimate_training_step(network)
        assert len(step.records) == len(network.gemm_layers()) * 3
        assert {record.pass_kind for record in step.records} == set(TRAINING_PASSES)
        assert step.network == network.name
        assert step.batch == 32

    def test_step_macs_triple_forward(self):
        network = alexnet(batch=32)
        step = DeltaModel(TITAN_XP).estimate_training_step(network)
        assert step.total_macs == 3 * network.total_macs

    def test_backward_passes_add_time(self):
        model = DeltaModel(TITAN_XP)
        network = alexnet(batch=32)
        forward_only = estimate_training_step(model, network,
                                              passes=("forward",))
        full = model.estimate_training_step(network)
        assert full.total_time_seconds > forward_only.total_time_seconds

    def test_empty_layer_list_rejected(self):
        with pytest.raises(ValueError):
            estimate_training_step(DeltaModel(TITAN_XP), [])


class TestTrainingRequests:
    def test_estimate_request_training_report_round_trips(self):
        with Session() as session:
            report = session.run(EstimateRequest("alexnet", batch=32,
                                                 passes="training"))
        assert report.meta["passes"] == "training"
        assert "training step" in report.title
        assert {row["pass"] for row in report.rows} == set(TRAINING_PASSES)
        assert report.summary["total step time (ms)"] == pytest.approx(
            sum(row["time_ms"] for row in report.rows))
        restored = Report.from_json(report.to_json())
        assert restored.to_dict() == report.to_dict()

    def test_single_backward_pass_request(self):
        with Session() as session:
            report = session.run(EstimateRequest("alexnet", batch=32,
                                                 passes="wgrad"))
        assert "wgrad pass" in report.title
        assert all(row["pass"] == "wgrad" for row in report.rows)

    def test_forward_request_rows_unchanged(self):
        """Default requests keep the seed row schema (no pass column)."""
        with Session() as session:
            report = session.run(EstimateRequest("alexnet", batch=32))
        assert all("pass" not in row for row in report.rows)
        assert report.meta["passes"] == "forward"

    def test_invalid_passes_rejected(self):
        with pytest.raises(ValueError):
            EstimateRequest("alexnet", passes="sideways")
        with pytest.raises(ValueError):
            SweepRequest(passes="sideways")

    def test_sweep_with_training_passes(self):
        request = SweepRequest(networks=("alexnet",), gpus=("titanxp",),
                               batches=(32,), passes="training")
        with Session() as session:
            training = session.run(request)
            forward = session.run(SweepRequest(networks=("alexnet",),
                                               gpus=("titanxp",),
                                               batches=(32,)))
        assert training.rows[0]["passes"] == "training"
        assert (training.rows[0]["total_time_ms"]
                > forward.rows[0]["total_time_ms"])
        restored = Report.from_json(training.to_json())
        assert restored.to_dict() == training.to_dict()

    def test_training_experiment_runs_fast(self):
        from repro.api import ExperimentRequest
        with Session() as session:
            report = session.run(ExperimentRequest("training",
                                                   gpus=("titanxp",),
                                                   batch=32))
        assert report.report_id == "training"
        row = report.rows[0]
        assert row["step_ms"] == pytest.approx(
            row["forward_ms"] + row["dgrad_ms"] + row["wgrad_ms"])
        json.loads(report.to_json())


class TestDtypePlumbing:
    """Satellite: dtype_bytes flows through every byte computation."""

    def test_fp16_traffic_scales(self, small_conv_layer):
        model = DeltaModel(TITAN_XP)
        fp32 = model.traffic(small_conv_layer)
        fp16 = model.traffic(small_conv_layer.with_dtype(2))
        # DRAM and L2 traffic are footprint x dtype: exactly half.
        assert fp16.dram_bytes == pytest.approx(fp32.dram_bytes / 2)
        assert fp16.l2_bytes == pytest.approx(fp32.l2_bytes / 2)
        # L1 traffic halves per element but the MLI factors change with the
        # warp footprint; it must still shrink meaningfully.
        assert fp16.l1_bytes < fp32.l1_bytes

    def test_fp16_time_improves(self):
        model = DeltaModel(TITAN_XP)
        network = alexnet(batch=32)
        for layer in network.unique_layers():
            fp32 = model.estimate(layer)
            fp16 = model.estimate(layer.with_dtype(2))
            assert fp16.time_seconds < fp32.time_seconds, layer.name

    def test_fp16_occupancy_not_worse(self, reference_conv_layer):
        tile = build_grid(reference_conv_layer).tile
        assert (active_ctas_per_sm(tile, TITAN_XP, dtype_bytes=2)
                >= active_ctas_per_sm(tile, TITAN_XP, dtype_bytes=4))

    def test_workload_carries_layer_dtype(self, small_conv_layer):
        fp16_layer = small_conv_layer.with_dtype(2)
        workload = lower_forward(fp16_layer)
        assert workload.dtype_bytes == 2
        estimate = DeltaModel(TITAN_XP).estimate(workload)
        assert estimate.workload.dtype_bytes == 2

    def test_fp16_training_step_scales(self):
        model = DeltaModel(TITAN_XP)
        fp32_net = alexnet(batch=32)
        fp16_net = fp32_net.__class__(
            name=fp32_net.name,
            layers=tuple(layer.with_dtype(2) for layer in fp32_net.layers))
        fp32 = model.estimate_training_step(fp32_net)
        fp16 = model.estimate_training_step(fp16_net)
        assert fp16.total_traffic_bytes("dram") == pytest.approx(
            fp32.total_traffic_bytes("dram") / 2)
        assert fp16.total_time_seconds < fp32.total_time_seconds
