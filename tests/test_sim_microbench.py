"""Tests for the DRAM latency/bandwidth micro-benchmark (Fig. 18)."""

import pytest

from repro.gpu import TESLA_P100, TESLA_V100, TITAN_XP
from repro.sim.microbench import measure_dram_latency_curve


class TestLatencyCurve:
    def test_curve_shape_flat_then_rising(self, any_gpu):
        curve = measure_dram_latency_curve(any_gpu)
        latencies = [point.latency_cycles for point in curve.points]
        assert latencies == sorted(latencies)
        assert latencies[-1] > 2 * latencies[0]

    def test_unloaded_latency_matches_spec(self, any_gpu):
        curve = measure_dram_latency_curve(any_gpu)
        assert curve.unloaded_latency_cycles == pytest.approx(
            any_gpu.lat_dram_cycles)

    def test_effective_bandwidth_close_to_spec(self, any_gpu):
        curve = measure_dram_latency_curve(any_gpu)
        assert curve.effective_bandwidth == pytest.approx(any_gpu.dram_bw, rel=0.25)

    def test_paper_annotations_titan_xp(self):
        """Paper: ~500 cycles and ~430 GB/s for TITAN Xp."""
        curve = measure_dram_latency_curve(TITAN_XP)
        assert curve.unloaded_latency_cycles == pytest.approx(500, rel=0.1)
        assert 350 < curve.effective_bandwidth_gbps < 520

    def test_paper_annotations_v100(self):
        """Paper: ~500 cycles and ~850 GB/s for V100."""
        curve = measure_dram_latency_curve(TESLA_V100)
        assert 700 < curve.effective_bandwidth_gbps < 1050

    def test_ordering_across_devices(self):
        """V100 > P100 > TITAN Xp effective bandwidth, as in the paper."""
        bandwidths = [measure_dram_latency_curve(gpu).effective_bandwidth
                      for gpu in (TITAN_XP, TESLA_P100, TESLA_V100)]
        assert bandwidths[0] < bandwidths[1] < bandwidths[2]

    def test_series_export(self):
        curve = measure_dram_latency_curve(TITAN_XP, num_points=16)
        series = curve.as_series()
        assert len(series) == 16
        assert series[0][0] == pytest.approx(0.0)

    def test_invalid_point_count_rejected(self):
        with pytest.raises(ValueError):
            measure_dram_latency_curve(TITAN_XP, num_points=1)
