"""Tests for repro.core.layer: layer geometry and im2col GEMM shapes."""

import pytest

from repro.core.layer import ConvLayerConfig, GemmShape


class TestConvLayerConfig:
    def test_output_dimensions_stride_one(self):
        layer = ConvLayerConfig.square("l", 1, in_channels=3, in_size=32,
                                       out_channels=8, filter_size=3, padding=1)
        assert layer.out_height == 32
        assert layer.out_width == 32

    def test_output_dimensions_stride_two(self):
        layer = ConvLayerConfig.square("l", 1, in_channels=3, in_size=224,
                                       out_channels=64, filter_size=7,
                                       stride=2, padding=3)
        assert layer.out_height == 112
        assert layer.out_width == 112

    def test_alexnet_conv1_dimensions(self):
        layer = ConvLayerConfig.square("conv1", 1, in_channels=3, in_size=224,
                                       out_channels=64, filter_size=11,
                                       stride=4, padding=2)
        assert layer.out_height == 55

    def test_padded_dimensions(self):
        layer = ConvLayerConfig.square("l", 1, in_channels=1, in_size=4,
                                       out_channels=1, filter_size=3, padding=1)
        assert layer.padded_height == 6
        assert layer.padded_width == 6

    def test_gemm_shape(self):
        layer = ConvLayerConfig.square("l", 32, in_channels=64, in_size=28,
                                       out_channels=128, filter_size=3, padding=1)
        gemm = layer.gemm_shape()
        assert gemm.m == 32 * 28 * 28
        assert gemm.n == 128
        assert gemm.k == 64 * 9

    def test_macs_match_direct_convolution_formula(self):
        layer = ConvLayerConfig.square("l", 4, in_channels=16, in_size=14,
                                       out_channels=32, filter_size=3, padding=1)
        direct = (layer.batch * layer.out_channels * layer.out_height
                  * layer.out_width * layer.in_channels
                  * layer.filter_height * layer.filter_width)
        assert layer.macs == direct
        assert layer.flops == 2 * direct

    def test_footprints_in_elements_and_bytes(self):
        layer = ConvLayerConfig.square("l", 2, in_channels=4, in_size=8,
                                       out_channels=6, filter_size=3, padding=1)
        assert layer.ifmap_elements == 2 * 4 * 8 * 8
        assert layer.filter_elements == 6 * 4 * 3 * 3
        assert layer.ofmap_elements == 2 * 6 * 8 * 8
        assert layer.ifmap_bytes == layer.ifmap_elements * 4
        assert layer.filter_bytes == layer.filter_elements * 4

    def test_pointwise_detection(self):
        conv1x1 = ConvLayerConfig.square("p", 1, in_channels=8, in_size=8,
                                         out_channels=8, filter_size=1)
        conv3x3 = ConvLayerConfig.square("c", 1, in_channels=8, in_size=8,
                                         out_channels=8, filter_size=3, padding=1)
        assert conv1x1.is_pointwise
        assert not conv3x3.is_pointwise

    def test_fully_connected_constructor(self):
        fc = ConvLayerConfig.fully_connected("fc", batch=32, in_features=4096,
                                             out_features=1000)
        gemm = fc.gemm_shape()
        assert gemm.m == 32
        assert gemm.n == 1000
        assert gemm.k == 4096
        assert fc.is_pointwise

    def test_with_batch_returns_new_layer(self):
        layer = ConvLayerConfig.square("l", 32, in_channels=4, in_size=8,
                                       out_channels=4, filter_size=3, padding=1)
        rescaled = layer.with_batch(8)
        assert rescaled.batch == 8
        assert layer.batch == 32
        assert rescaled.gemm_shape().m == layer.gemm_shape().m // 4

    def test_arithmetic_intensity_positive(self):
        layer = ConvLayerConfig.square("l", 8, in_channels=64, in_size=14,
                                       out_channels=64, filter_size=3, padding=1)
        assert layer.arithmetic_intensity() > 1.0

    def test_describe_contains_name_and_shape(self):
        layer = ConvLayerConfig.square("myconv", 2, in_channels=3, in_size=8,
                                       out_channels=4, filter_size=3, padding=1)
        text = layer.describe()
        assert "myconv" in text
        assert "3x3" in text

    @pytest.mark.parametrize("field,value", [
        ("batch", 0), ("in_channels", 0), ("in_height", -1),
        ("out_channels", 0), ("filter_height", 0), ("stride", 0),
    ])
    def test_invalid_dimensions_rejected(self, field, value):
        kwargs = dict(name="bad", batch=1, in_channels=3, in_height=8,
                      in_width=8, out_channels=4, filter_height=3,
                      filter_width=3, stride=1, padding=1)
        kwargs[field] = value
        with pytest.raises(ValueError):
            ConvLayerConfig(**kwargs)

    def test_negative_padding_rejected(self):
        with pytest.raises(ValueError):
            ConvLayerConfig.square("bad", 1, in_channels=1, in_size=8,
                                   out_channels=1, filter_size=3, padding=-1)

    def test_filter_larger_than_padded_input_rejected(self):
        with pytest.raises(ValueError):
            ConvLayerConfig.square("bad", 1, in_channels=1, in_size=4,
                                   out_channels=1, filter_size=7, padding=0)


class TestGemmShape:
    def test_matrix_element_counts(self):
        gemm = GemmShape(m=100, n=20, k=30)
        assert gemm.ifmap_matrix_elements == 3000
        assert gemm.filter_matrix_elements == 600
        assert gemm.ofmap_matrix_elements == 2000
        assert gemm.macs == 60000

    def test_aspect_ratio_tall_and_skinny(self):
        layer = ConvLayerConfig.square("l", 256, in_channels=64, in_size=56,
                                       out_channels=64, filter_size=3, padding=1)
        assert layer.gemm_shape().aspect_ratio > 1000

    def test_invalid_dimensions_rejected(self):
        with pytest.raises(ValueError):
            GemmShape(m=0, n=1, k=1)
