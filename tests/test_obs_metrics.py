"""Unit tests for the metrics registry, Prometheus exposition, and StatsView.

The stats classes themselves (SessionStats, CacheStats, CoalesceStats,
ExplorationStats) are exercised by the layer tests that own them; here we
pin the registry contract they are all built on, plus the context-local
counter sink that carries hot-path counts across the process pool.
"""

import pickle

import pytest

from repro.api.session import SessionStats
from repro.obs import metrics as obs_metrics
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               StatsView, render_prometheus)


class TestCounter:
    def test_monotonic(self):
        counter = Counter("repro_test_total")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5
        with pytest.raises(ValueError, match="gauge"):
            counter.inc(-1)

    def test_samples(self):
        counter = Counter("repro_test_total", labels=(("route", "/"),))
        counter.inc(2)
        assert counter.samples() == \
            [("repro_test_total", (("route", "/"),), 2)]


class TestGauge:
    def test_up_and_down(self):
        gauge = Gauge("repro_test_active")
        gauge.set(3)
        gauge.inc()
        gauge.dec(2)
        assert gauge.samples() == [("repro_test_active", (), 2)]

    def test_callback_wins_over_stored_value(self):
        gauge = Gauge("repro_test_active", fn=lambda: 7)
        gauge.set(99)
        assert gauge.samples() == [("repro_test_active", (), 7)]


class TestHistogram:
    def test_cumulative_buckets(self):
        hist = Histogram("repro_test_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 0.5, 5.0, 50.0):
            hist.observe(value)
        samples = dict(((name, labels), value)
                       for name, labels, value in hist.samples())
        assert samples[("repro_test_seconds_bucket", (("le", "0.1"),))] == 1
        assert samples[("repro_test_seconds_bucket", (("le", "1"),))] == 3
        assert samples[("repro_test_seconds_bucket", (("le", "10"),))] == 4
        assert samples[("repro_test_seconds_bucket", (("le", "+Inf"),))] == 5
        assert samples[("repro_test_seconds_count", ())] == 5
        assert samples[("repro_test_seconds_sum", ())] == pytest.approx(56.05)

    def test_default_buckets_are_sorted(self):
        hist = Histogram("repro_test_seconds")
        assert hist.buckets == tuple(sorted(hist.buckets))


class TestRegistry:
    def test_get_or_create_returns_the_same_instance(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", "help text")
        b = registry.counter("repro_x_total")
        assert a is b
        assert a.help == "help text"

    def test_label_children_are_distinct_instances(self):
        registry = MetricsRegistry()
        a = registry.counter("repro_x_total", labels={"route": "/a"})
        b = registry.counter("repro_x_total", labels={"route": "/b"})
        assert a is not b
        # label order does not matter: the frozen key is sorted.
        c = registry.histogram("repro_y", labels={"b": "2", "a": "1"})
        d = registry.histogram("repro_y", labels={"a": "1", "b": "2"})
        assert c is d

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("repro_x_total")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("repro_x_total")

    def test_gauge_callback_can_be_bound_late(self):
        registry = MetricsRegistry()
        registry.gauge("repro_x_active")
        gauge = registry.gauge("repro_x_active", fn=lambda: 11)
        assert gauge.samples()[0][2] == 11


class TestRenderPrometheus:
    def test_text_format(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total", "things done").inc(3)
        registry.gauge("repro_b_active", "in flight").set(1)
        text = render_prometheus([registry])
        lines = text.splitlines()
        assert "# HELP repro_a_total things done" in lines
        assert "# TYPE repro_a_total counter" in lines
        assert "repro_a_total 3" in lines
        assert "# TYPE repro_b_active gauge" in lines
        assert text.endswith("\n")

    def test_headers_emitted_once_across_registries(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("repro_a_total", "things").inc(1)
        second.counter("repro_a_total").inc(2)
        text = render_prometheus([first, second])
        assert text.count("# TYPE repro_a_total counter") == 1
        # both instances' samples survive the merge.
        assert text.count("repro_a_total ") >= 2

    def test_kind_conflict_across_registries_raises(self):
        first, second = MetricsRegistry(), MetricsRegistry()
        first.counter("repro_a_total")
        second.gauge("repro_a_total")
        with pytest.raises(ValueError, match="both"):
            render_prometheus([first, second])

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("repro_a_total",
                         labels={"route": 'say "hi"\nback\\slash'}).inc()
        text = render_prometheus([registry])
        assert r'route="say \"hi\"\nback\\slash"' in text

    def test_histogram_exposition(self):
        registry = MetricsRegistry()
        registry.histogram("repro_a_seconds", "latency",
                           buckets=(0.5,)).observe(0.1)
        text = render_prometheus([registry])
        assert '# TYPE repro_a_seconds histogram' in text
        assert 'repro_a_seconds_bucket{le="0.5"} 1' in text
        assert 'repro_a_seconds_bucket{le="+Inf"} 1' in text
        assert 'repro_a_seconds_count 1' in text


class TestCounterSink:
    def test_no_sink_is_a_noop(self):
        obs_metrics.count("sim_cache_hits")  # must not raise

    def test_sink_collects_and_resets(self):
        sink = {}
        with obs_metrics.count_into(sink):
            obs_metrics.count("hits")
            obs_metrics.count("hits", 2)
            obs_metrics.count("misses")
        assert sink == {"hits": 3, "misses": 1}
        obs_metrics.count("hits")  # sink uninstalled: no effect
        assert sink["hits"] == 3

    def test_nested_sinks_restore_the_outer_one(self):
        outer, inner = {}, {}
        with obs_metrics.count_into(outer):
            with obs_metrics.count_into(inner):
                obs_metrics.count("x")
            obs_metrics.count("x")
        assert inner == {"x": 1}
        assert outer == {"x": 1}


class _DemoStats(StatsView):
    _AREA = "demo"
    _FIELDS = {"hits": "cache hits", "misses": "cache misses"}


class TestStatsView:
    def test_attribute_compatibility(self):
        stats = _DemoStats()
        assert stats.hits == 0
        stats.hits += 1
        stats.misses = 5
        assert (stats.hits, stats.misses) == (1, 5)
        assert stats.as_dict() == {"hits": 1, "misses": 5}

    def test_keyword_construction(self):
        assert _DemoStats(hits=2).as_dict() == {"hits": 2, "misses": 0}

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="nope"):
            _DemoStats().nope

    def test_counters_follow_the_naming_scheme(self):
        stats = _DemoStats(hits=3)
        names = {metric.name for metric in stats.registry.collect()}
        assert names == {"repro_demo_hits", "repro_demo_misses"}
        text = render_prometheus([stats.registry])
        assert "repro_demo_hits 3" in text
        assert "# HELP repro_demo_hits cache hits" in text

    def test_equality_and_repr(self):
        assert _DemoStats(hits=1) == _DemoStats(hits=1)
        assert _DemoStats(hits=1) != _DemoStats(hits=2)
        assert repr(_DemoStats(hits=1)) == "_DemoStats(hits=1, misses=0)"

    def test_pickle_roundtrip(self):
        stats = _DemoStats(hits=4, misses=2)
        clone = pickle.loads(pickle.dumps(stats))
        assert clone == stats
        clone.hits += 1  # independent registries after the roundtrip
        assert stats.hits == 4

    def test_instances_have_private_registries(self):
        a, b = _DemoStats(), _DemoStats()
        a.hits += 1
        assert b.hits == 0

    def test_session_stats_is_a_stats_view(self):
        stats = SessionStats(requests_run=2)
        assert isinstance(stats, StatsView)
        assert stats.requests_run == 2
        assert "repro_session_requests_run" in \
            render_prometheus([stats.registry])
