"""Tests for the DSE orchestrator (repro.dse.runner) and its API surface:
fig16-on-DSE bit-identity, point evaluation semantics, session integration
and the DseRequest execution path."""

import pytest

from repro.api import DseRequest, Session
from repro.core.scaling import ScalingStudy
from repro.dse import (
    DesignPoint,
    confirm_frontier,
    evaluate_point,
    explore,
    grid,
    space_from_options,
)
from repro.experiments.fig16_scaling import run as run_fig16
from repro.gpu import PAPER_DESIGN_OPTIONS, TITAN_XP, DesignOption
from repro.networks import resnet152


@pytest.fixture(scope="module")
def small_space():
    return grid({"num_sm": (1, 2), "mac_bw": (1, 4), "dram_bw": (1, 2)},
                network="alexnet", batch=16)


class TestFig16Equivalence:
    """Acceptance: the DSE-backed fig16 reproduces the hand-enumerated
    ScalingStudy bit for bit."""

    @pytest.fixture(scope="class")
    def legacy(self):
        layers = resnet152(batch=64).gemm_layers()
        return ScalingStudy(baseline=TITAN_XP).run(layers)

    @pytest.fixture(scope="class")
    def dse_result(self):
        return run_fig16(batch=64)

    def test_speedups_bit_identical(self, legacy, dse_result):
        rows = [row for row in dse_result.rows if "speedup" in row]
        assert len(rows) == len(legacy) == 9
        for old, row in zip(legacy, rows):
            assert row["option"] == old.option.name
            assert row["speedup"] == old.speedup
            assert row["total_time_ms"] == old.total_time_seconds * 1e3

    def test_bottleneck_distributions_bit_identical(self, legacy, dse_result):
        bottleneck_rows = [row for row in dse_result.rows
                           if "speedup" not in row and "NSM" not in row]
        for old, row in zip(legacy, bottleneck_rows):
            expected = {key.value: value
                        for key, value in old.bottleneck_distribution.items()}
            assert {k: v for k, v in row.items() if k != "option"} == expected

    def test_series_and_summary_shape_preserved(self, dse_result):
        assert "speedup vs TITAN Xp" in dse_result.series
        assert len(dse_result.series["speedup vs TITAN Xp"]) == 9
        assert dse_result.summary["best_option"] == "9"
        assert dse_result.summary["layers"] == 156


class TestEvaluatePoint:
    def test_identity_point_matches_direct_model(self):
        from repro.core.model import DeltaModel
        from repro.networks import alexnet
        point = DesignPoint(option=DesignOption("baseline"),
                            network="alexnet", batch=16)
        metrics = evaluate_point(TITAN_XP, point, unique=False)
        model = DeltaModel(TITAN_XP)
        expected = sum(model.estimate(layer).time_seconds
                       for layer in alexnet(batch=16).gemm_layers())
        assert metrics["time_s"] == expected

    def test_training_pass_evaluates_three_gemms_per_layer(self):
        point = DesignPoint(option=DesignOption("baseline"),
                            network="alexnet", batch=16, passes="training")
        metrics = evaluate_point(TITAN_XP, point, unique=True)
        assert metrics["gemms"] == 3 * metrics["layers"]

    def test_metrics_contract(self):
        point = DesignPoint(option=DesignOption("x", num_sm=2.0),
                            network="alexnet", batch=16)
        metrics = evaluate_point(TITAN_XP, point)
        for key in ("time_s", "throughput_tflops", "dram_gb", "l2_gb",
                    "resource_cost", "layers", "gemms", "bottlenecks"):
            assert key in metrics
        assert metrics["time_s"] > 0
        assert sum(metrics["bottlenecks"].values()) == pytest.approx(1.0)

    def test_layer_stride_subsamples(self):
        point = DesignPoint(option=DesignOption("baseline"),
                            network="vgg16", batch=16)
        full = evaluate_point(TITAN_XP, point, unique=True)
        proxy = evaluate_point(TITAN_XP, point, unique=True, layer_stride=4)
        assert proxy["layers"] < full["layers"]
        assert proxy["time_s"] < full["time_s"]


class TestExplore:
    def test_exhaustive_explore_shape(self, small_space):
        result = explore(small_space)
        assert len(result.results) == len(small_space)
        assert result.stats.planned == len(small_space)
        assert 0 < len(result.frontier) <= len(small_space)
        for index in result.frontier:
            assert result.results[index].metrics["time_s"] > 0

    def test_speedup_against_identity_baseline(self, small_space):
        result = explore(small_space)
        by_name = {r.point.name: r for r in result.results}
        assert result.speedup(by_name["baseline"]) == pytest.approx(1.0)
        assert result.speedup(by_name["num_sm=2,mac_bw=4,dram_bw=2"]) > 1.0

    def test_frontier_rows_ranked_by_primary_objective(self, small_space):
        result = explore(small_space, objectives=("throughput", "cost"))
        rows = result.frontier_rows()
        tputs = [row["TFLOP/s"] for row in rows]
        assert tputs == sorted(tputs, reverse=True)
        assert rows[0]["rank"] == 1

    def test_without_baseline(self, small_space):
        result = explore(small_space, include_baseline=False)
        assert result.baselines == {}
        assert all("speedup" not in row for row in result.frontier_rows())

    def test_session_memo_dedupes_across_explores(self, small_space):
        with Session() as session:
            first = explore(small_space, session=session)
            second = explore(small_space, session=session)
        assert first.stats.evaluated > 0
        assert second.stats.evaluated == 0
        # the identity point is part of the grid, so the implicit baseline
        # shares its key: one memo hit per unique content key.
        assert second.stats.memo_hits == len(small_space)
        assert session.stats.dse_points == first.stats.evaluated
        assert session.stats.dse_memo_hits == second.stats.memo_hits


class TestConfirmFrontier:
    def test_attaches_simulator_ratio_to_top_points(self, small_space):
        with Session() as session:
            result = explore(small_space, session=session)
            confirmed = confirm_frontier(result, session, top=1, max_ctas=10)
        attached = [r for r in confirmed.results if r.confirmation is not None]
        assert len(attached) == 1
        record = attached[0].confirmation
        assert record["sim_time_s"] > 0
        assert record["model_time_s"] > 0
        assert record["sim_model_ratio"] == pytest.approx(
            record["sim_time_s"] / record["model_time_s"])

    def test_zero_top_is_noop(self, small_space):
        result = explore(small_space)
        assert confirm_frontier(result, None, top=0) is result

    def test_confirmation_simulates_the_points_cta_tile(self, monkeypatch):
        """The simulator must run the same kernel family the design declares
        (a 256-tile frontier point simulated with the 128-tile kernel would
        'confirm' the wrong design)."""
        space = grid({"mac_bw": (4,), "cta_tile": (256,)},
                     network="alexnet", batch=8)
        with Session() as session:
            result = explore(space, session=session)
            captured = {}
            original = session.simulate

            def spy(gpu, layer, config=None, pass_kind="forward"):
                captured["config"] = config
                return original(gpu, layer, config, pass_kind=pass_kind)

            monkeypatch.setattr(session, "simulate", spy)
            confirm_frontier(result, session, top=1, max_ctas=8)
        assert captured["config"].cta_tile_hw == 256


class TestDseRequest:
    def test_request_validation(self, small_space):
        with pytest.raises(TypeError, match="SearchSpace"):
            DseRequest(space="not a space")
        with pytest.raises(ValueError, match="unknown driver"):
            DseRequest(space=small_space, driver="genetic")
        with pytest.raises(ValueError, match="requires a budget"):
            DseRequest(space=small_space, driver="random")
        with pytest.raises(ValueError, match="unknown objective"):
            DseRequest(space=small_space, objectives=("speed",))

    def test_session_run_produces_dse_report(self, small_space, tmp_path):
        store = str(tmp_path / "sweep.jsonl")
        request = DseRequest(space=small_space, store_path=store)
        with Session() as session:
            report = session.run(request)
        assert report.kind == "dse"
        assert report.summary["frontier size"] == len(report.rows)
        assert report.meta["space_size"] == len(small_space)
        assert report.meta["store_path"] == store
        assert report.children  # the what-to-scale-next sub-report
        assert report.children[0].kind == "dse-recommendations"
        # the report round-trips through JSON like every other report kind.
        from repro.api import Report
        clone = Report.from_json(report.to_json())
        assert clone.rows == report.rows

    def test_store_makes_second_request_free(self, small_space, tmp_path):
        store = str(tmp_path / "sweep.jsonl")
        request = DseRequest(space=small_space, store_path=store)
        with Session() as session:
            session.run(request)
        with Session() as fresh_session:
            report = fresh_session.run(request)
        assert report.summary["points evaluated"] == 0
        assert report.summary["store hits"] == len(small_space)


class TestDseExperiment:
    def test_registered_and_runs(self):
        from repro.experiments.registry import get_experiment_spec
        spec = get_experiment_spec("dse")
        assert spec.fast
        result = spec.runner(network="alexnet", batch=16,
                             space=grid({"num_sm": (1, 2), "dram_bw": (1, 2)},
                                        network="alexnet", batch=16))
        assert result.experiment_id == "dse"
        assert result.summary["frontier size"] >= 1
        assert any("scale_next" in row for row in result.rows)

    def test_fig16_space_reusable_through_experiment_request(self):
        """The nine-column paper table runs as a DSE space end to end."""
        from repro.api import ExperimentRequest
        space = space_from_options(PAPER_DESIGN_OPTIONS, network="alexnet",
                                   batch=16)
        with Session() as session:
            report = session.run(ExperimentRequest(
                "dse", options={"space": space, "network": "alexnet",
                                "batch": 16}))
        assert report.kind == "experiment"
        assert report.summary["space points"] == 9
