"""JSON round-trip tests for Report and ExperimentResult."""

import json
import math

import pytest

from repro.api import (
    EstimateRequest,
    ExperimentRequest,
    Report,
    Session,
    ValidateRequest,
)
from repro.experiments import ExperimentResult
from repro.experiments.registry import run_experiment


def assert_numerically_equal(left, right, path="$"):
    """Deep equality where floats compare exactly and NaN == NaN."""
    assert type(left) is type(right), f"{path}: {type(left)} != {type(right)}"
    if isinstance(left, dict):
        assert left.keys() == right.keys(), path
        for key in left:
            assert_numerically_equal(left[key], right[key], f"{path}.{key}")
    elif isinstance(left, (list, tuple)):
        assert len(left) == len(right), path
        for index, (a, b) in enumerate(zip(left, right)):
            assert_numerically_equal(a, b, f"{path}[{index}]")
    elif isinstance(left, float):
        assert (math.isnan(left) and math.isnan(right)) or left == right, path
    else:
        assert left == right, path


#: three experiments whose serialized output the round-trip tests cover —
#: a spec table (ints/strings), a tile sweep (bools) and the scaling study
#: (floats and per-option series).
ROUND_TRIP_EXPERIMENTS = ("tab01", "fig06", "fig16")


class TestExperimentResultRoundTrip:
    @pytest.mark.parametrize("experiment_id", ROUND_TRIP_EXPERIMENTS)
    def test_to_json_parses_back_numerically_equal(self, experiment_id):
        result = run_experiment(experiment_id)
        parsed = ExperimentResult.from_json(result.to_json())
        assert parsed.experiment_id == result.experiment_id
        assert_numerically_equal(parsed.to_dict(), result.to_dict())
        # the parsed result renders to the identical text report.
        assert parsed.render() == result.render()

    def test_payload_is_plain_data(self):
        payload = run_experiment("tab01").to_dict()
        # json.dumps with default= disabled would raise on non-plain types.
        json.dumps(payload)


class TestReportRoundTrip:
    @pytest.mark.parametrize("experiment_id", ROUND_TRIP_EXPERIMENTS)
    def test_experiment_reports(self, experiment_id):
        with Session() as session:
            report = session.run(ExperimentRequest(experiment_id))
        parsed = Report.from_json(report.to_json())
        assert_numerically_equal(parsed.to_dict(), report.to_dict())
        assert parsed.render() == report.render()

    def test_estimate_report(self):
        with Session() as session:
            report = session.run(EstimateRequest("vgg16", gpu="p100",
                                                 batch=16, unique=True))
        parsed = Report.from_json(report.to_json(indent=2))
        assert_numerically_equal(parsed.to_dict(), report.to_dict())

    def test_validation_report(self):
        request = ValidateRequest(gpu="titanxp", batch=2, max_ctas=30,
                                  layers_per_network=1,
                                  networks=("alexnet",))
        with Session() as session:
            report = session.run(request)
        parsed = Report.from_json(report.to_json())
        assert_numerically_equal(parsed.to_dict(), report.to_dict())

    def test_error_report_round_trips_bit_identically(self):
        """A failure report — traceback, cause chain and all — survives
        to_json/from_json with byte-identical serialization."""
        request = EstimateRequest("alexnet", batch=8)
        try:
            try:
                raise KeyError("missing layer")
            except KeyError as inner:
                raise ValueError("estimation failed") from inner
        except ValueError as exc:
            report = Report.from_error(exc, request=request)
        assert report.kind == "error"
        assert report.title == ("EstimateRequest failed: ValueError: "
                                "estimation failed")
        assert report.summary == {"error": "ValueError",
                                  "message": "estimation failed"}
        assert report.meta["cause"] == ["ValueError: estimation failed",
                                        "KeyError: 'missing layer'"]
        assert "test_api_report" in report.meta["traceback"]
        assert report.meta["request"] == "EstimateRequest"

        text = report.to_json()
        parsed = Report.from_json(text)
        assert parsed.to_json() == text  # bit-identical
        assert_numerically_equal(parsed.to_dict(), report.to_dict())
        assert parsed.render() == report.render()

    def test_error_report_from_session_run_many(self):
        with Session() as session:
            [report] = session.run_many([EstimateRequest("no-such-net")])
        assert report.kind == "error"
        text = report.to_json()
        assert Report.from_json(text).to_json() == text

    def test_schema_version_checked(self):
        payload = Report(kind="estimate", title="x").to_dict()
        payload["schema_version"] = 999
        with pytest.raises(ValueError):
            Report.from_dict(payload)

    def test_experiment_bridge(self):
        result = run_experiment("tab01")
        report = Report.from_experiment(result)
        assert report.report_id == "tab01"
        narrowed = report.to_experiment()
        assert_numerically_equal(narrowed.to_dict(), result.to_dict())
        with pytest.raises(ValueError):
            Report(kind="sweep", title="not an experiment").to_experiment()

    def test_text_render_matches_legacy_experiment_render(self):
        """CLI text output is unchanged by the Report wrapper."""
        result = run_experiment("fig16")
        assert Report.from_experiment(result).render(precision=3) == \
            result.render(precision=3)
