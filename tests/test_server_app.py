"""Route behavior of the service app: payloads, errors, CLI bit-identity."""

import json

import pytest

from repro.api import Session
from repro.api.report import Report
from repro.cli import main
from repro.server import create_app
from server_utils import json_request, request


@pytest.fixture
def app():
    application = create_app(Session())
    yield application
    application.session.close()


class TestPlumbing:
    def test_healthz(self, app):
        status, payload = json_request(app, "GET", "/healthz")
        assert (status, payload) == (200, {"status": "ok"})

    def test_unknown_route_is_structured_404(self, app):
        status, payload = json_request(app, "GET", "/v2/everything")
        assert status == 404
        assert payload["kind"] == "error"
        assert "/v1/" in payload["meta"]["error_message"]

    def test_wrong_method_is_structured_405(self, app):
        status, payload = json_request(app, "POST", "/healthz", body={})
        assert status == 405
        assert payload["kind"] == "error"
        status, payload = json_request(app, "GET", "/v1/estimate")
        assert status == 405
        assert "use POST" in payload["meta"]["error_message"]

    def test_trailing_slash_is_tolerated(self, app):
        status, _ = json_request(app, "GET", "/v1/networks/")
        assert status == 200


class TestRegistries:
    def test_networks(self, app):
        status, payload = json_request(app, "GET", "/v1/networks")
        assert status == 200
        assert "alexnet" in payload["networks"]
        assert set(payload["paper_subset_variants"]) <= \
            set(payload["networks"])

    def test_gpus(self, app):
        status, payload = json_request(app, "GET", "/v1/gpus")
        assert status == 200
        names = {gpu["name"] for gpu in payload["gpus"]}
        assert "TITAN Xp" in names

    def test_experiments(self, app):
        status, payload = json_request(app, "GET", "/v1/experiments")
        assert status == 200
        ids = {spec["id"] for spec in payload["experiments"]}
        assert "tab01" in ids

    def test_registries_match_cli_list(self, app, capsys):
        main(["list", "--format", "json"])
        cli = json.loads(capsys.readouterr().out)
        _, networks = json_request(app, "GET", "/v1/networks")
        _, gpus = json_request(app, "GET", "/v1/gpus")
        _, experiments = json_request(app, "GET", "/v1/experiments")
        assert networks["networks"] == cli["networks"]
        assert gpus["gpus"] == cli["gpus"]
        assert experiments["experiments"] == cli["experiments"]


class TestEstimateRoute:
    def test_body_matches_cli_json_content(self, app, capsys):
        exit_code = main(["estimate", "--network", "alexnet", "--batch",
                          "32", "--format", "json"])
        assert exit_code == 0
        cli_bytes = capsys.readouterr().out.encode()
        status, _, server_bytes = request(
            app, "POST", "/v1/estimate",
            body={"network": "alexnet", "batch": 32})
        assert status == 200
        # identical content; only the volatile meta["timing"] block differs.
        cli_report = Report.from_json(cli_bytes.decode())
        server_report = Report.from_json(server_bytes.decode())
        assert server_report.content_json(indent=2) \
            == cli_report.content_json(indent=2)
        for report in (cli_report, server_report):
            timing = report.meta["timing"]
            assert timing["total_ms"] >= 0
            assert "phases" in timing

    def test_repeat_hits_the_request_memo(self, app):
        body = {"network": "alexnet", "batch": 32}
        _, _, first = request(app, "POST", "/v1/estimate", body=body)
        _, _, second = request(app, "POST", "/v1/estimate", body=body)
        assert first == second
        assert app.cache.stats.executed == 1
        assert app.cache.stats.memo_hits == 1
        assert app.session.stats.requests_run == 1


class TestStats:
    def test_shape(self, app):
        request(app, "POST", "/v1/estimate",
                body={"network": "alexnet", "batch": 32})
        status, payload = json_request(app, "GET", "/v1/stats")
        assert status == 200
        session = payload["session"]
        # the full resilience counters from the session are surfaced.
        for counter in ("requests_run", "pool_recoveries", "task_retries",
                        "task_failures", "task_timeouts"):
            assert counter in session
        assert session["requests_run"] == 1
        server = payload["server"]
        assert server["request_cache"]["executed"] == 1
        assert server["memo_entries"] == 1
        assert payload["policy"]["jobs"] == 1
        # the sim-cache and DSE counters are surfaced as their own sections.
        assert payload["sim_cache"] == {"hits": 0, "misses": 0}
        assert payload["dse"] == {"points": 0, "memo_hits": 0}


# every POST route must turn a malformed body into a structured 400 — never
# a bare 500 traceback.  One regression per route.
BAD_BODIES = [
    ("estimate", {"network": "made-up-net"}),
    ("sweep", {"batches": ["not-a-number"]}),
    ("validate", {"gpu": "rtx9090"}),
    ("experiment", {"experiment": "fig99"}),
    ("dse", {"axes": {"warp_speed": [1]}}),
]


class TestStructuredErrors:
    @pytest.mark.parametrize("route,body", BAD_BODIES,
                             ids=[route for route, _ in BAD_BODIES])
    def test_bad_body_is_structured_400(self, app, route, body):
        status, payload = json_request(app, "POST", f"/v1/{route}",
                                       body=body)
        assert status == 400
        assert payload["kind"] == "error"
        assert payload["meta"]["error_type"] == "BadRequest"
        assert route in payload["meta"]["error_message"]

    @pytest.mark.parametrize("route", sorted(r for r, _ in BAD_BODIES))
    def test_invalid_json_is_structured_400(self, app, route):
        status, payload = json_request(app, "POST", f"/v1/{route}",
                                       raw_body=b"{nope")
        assert status == 400
        assert payload["kind"] == "error"
        assert "not valid JSON" in payload["meta"]["error_message"]

    def test_error_body_shape_matches_cli_error_report(self, app, capsys):
        exit_code = main(["estimate", "--network", "made-up-net",
                          "--format", "json"])
        assert exit_code == 1
        cli = json.loads(capsys.readouterr().out)
        _, payload = json_request(app, "POST", "/v1/estimate",
                                  body={"network": "made-up-net"})
        assert payload["kind"] == cli["kind"] == "error"
        assert set(payload["meta"]) >= {"error_type", "error_message"}
