"""Tests for the per-figure experiment modules and their registry."""

import pytest

from repro.analysis.validation import ValidationConfig
from repro.experiments import (
    ExperimentResult,
    available_experiments,
    get_experiment,
    run_experiment,
)
from repro.experiments import (
    fig04_miss_rates,
    fig06_cta_tile,
    fig11_traffic_accuracy,
    fig12_prior_traffic,
    fig13_perf_titanxp,
    fig15_perf_distribution,
    fig16_scaling,
    fig18_dram_microbench,
    fig19_cycles,
    fig20_traffic_absolute,
    tab01_specs,
)
from repro.gpu import TITAN_XP

#: a deliberately tiny validation configuration so experiment tests run fast.
TINY = ValidationConfig(batch=4, max_ctas=40, layers_per_network=1)


class TestRegistry:
    def test_all_paper_items_registered(self):
        expected = {"tab01", "fig04", "fig06", "fig11", "fig12", "fig13",
                    "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
                    "fig20", "training", "transformer", "dse"}
        assert set(available_experiments()) == expected

    def test_lookup_unknown_raises(self):
        with pytest.raises(KeyError):
            get_experiment("fig99")

    def test_run_experiment_dispatches(self):
        result = run_experiment("tab01")
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "tab01"


class TestFastExperiments:
    def test_tab01_lists_three_devices(self):
        result = tab01_specs.run()
        assert len(result.rows) == 3
        names = {row["Specification"] for row in result.rows}
        assert names == {"TITAN Xp", "P100", "V100"}

    def test_fig06_tile_width_monotonic_in_channels(self):
        result = fig06_cta_tile.run(channel_counts=[8, 40, 80, 200])
        widths = [row["blk_n"] for row in result.rows]
        assert widths == sorted(widths)
        assert result.summary["tile_widths_used"] == "32, 64, 128"

    def test_fig16_scaling_shape(self):
        result = fig16_scaling.run(batch=32)
        speedups = dict(result.series["speedup vs TITAN Xp"])
        # conventional 4x-SM scaling beats 2x-SM scaling; balanced option 5 is
        # competitive; the aggressive option 9 is the best or near-best.
        assert speedups["2"] > speedups["1"] > 1.0
        assert speedups["9"] >= speedups["5"]
        assert result.summary["best_speedup"] >= speedups["2"]

    def test_fig18_bandwidth_ordering(self):
        result = fig18_dram_microbench.run(num_points=24)
        bw = {row["gpu"]: row["effective_bandwidth_gbps"] for row in result.rows}
        assert bw["TITAN Xp"] < bw["P100"] < bw["V100"]
        assert result.series  # latency curves present

    def test_render_produces_text(self):
        text = tab01_specs.run().render()
        assert "Table I" in text
        assert "TITAN Xp" in text


class TestSimulationBackedExperiments:
    """Each experiment runs on a tiny layer population to stay fast."""

    def test_fig04_miss_rate_spread(self):
        result = fig04_miss_rates.run(batch=4, max_ctas=40,
                                      layer_names=("3a_1x1", "3a_3x3"))
        assert len(result.rows) == 2
        assert all(0 <= row["L1 miss rate"] <= 1 for row in result.rows)
        assert result.summary["l2_miss_rate_max"] <= 1.0

    def test_fig11_ratios_near_unity(self):
        result = fig11_traffic_accuracy.run(devices=[TITAN_XP], config=TINY)
        for row in result.rows:
            for level in ("l1", "l2", "dram"):
                assert 0.2 < row[f"{level}_ratio"] < 5.0
        assert f"{TITAN_XP.name} DRAM GMAE" in result.summary

    def test_fig12_prior_model_overpredicts(self):
        result = fig12_prior_traffic.run(config=TINY)
        assert (result.summary["prior_dram_geomean_ratio"]
                > result.summary["delta_dram_geomean_ratio"])
        assert result.summary["prior_overprediction_vs_delta_dram"] > 2.0

    def test_fig13_time_accuracy_and_bottlenecks(self):
        result = fig13_perf_titanxp.run(config=TINY)
        assert 0.0 <= result.summary["time_gmae"] < 1.5
        assert result.summary["layers"] == len(result.rows)
        assert all(row["model_ms"] > 0 for row in result.rows)

    def test_fig15_prior_models_overpredict_time(self):
        result = fig15_perf_distribution.run(devices=[TITAN_XP], config=TINY,
                                             miss_rates=(0.5, 1.0))
        assert result.summary["MR1.0 mean_ratio"] >= result.summary["MR0.5 mean_ratio"]
        assert result.summary["MR1.0 mean_ratio"] > 1.0

    def test_fig19_cycles_have_wide_dynamic_range(self):
        result = fig19_cycles.run(config=TINY)
        assert result.summary["dynamic_range"] > 1.0
        assert all(row["measured_cycles"] > 0 for row in result.rows)

    def test_fig20_absolute_traffic_consistency(self):
        result = fig20_traffic_absolute.run(config=TINY)
        for row in result.rows:
            assert row["l1_measured_gb"] >= row["l2_measured_gb"]
            assert row["l1_model_gb"] >= row["l2_model_gb"]
