"""Tests for the sector-granularity cache models (repro.sim.cache)."""

import pytest

from repro.sim.cache import CacheStats, LruCache, SetAssociativeCache


class TestLruCache:
    def test_cold_miss_then_hit(self):
        cache = LruCache(capacity_bytes=1024, sector_bytes=32)
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.stats.accesses == 2
        assert cache.stats.misses == 1

    def test_capacity_in_sectors(self):
        cache = LruCache(capacity_bytes=128, sector_bytes=32)
        assert cache.capacity_sectors == 4

    def test_lru_eviction_order(self):
        cache = LruCache(capacity_bytes=4 * 32, sector_bytes=32)
        for sector in range(4):
            cache.access(sector)
        cache.access(0)          # refresh sector 0
        cache.access(100)        # evicts sector 1 (the LRU entry)
        assert cache.access(0) is True
        assert cache.access(1) is False

    def test_occupancy_never_exceeds_capacity(self):
        cache = LruCache(capacity_bytes=8 * 32, sector_bytes=32)
        for sector in range(1000):
            cache.access(sector)
        assert cache.occupancy == 8

    def test_access_many_counts_misses(self):
        cache = LruCache(capacity_bytes=1024, sector_bytes=32)
        misses = cache.access_many([1, 2, 3, 1, 2, 3])
        assert misses == 3
        assert cache.stats.miss_rate == pytest.approx(0.5)

    def test_reset_clears_state(self):
        cache = LruCache(capacity_bytes=1024, sector_bytes=32)
        cache.access_many(range(10))
        cache.reset()
        assert cache.occupancy == 0
        assert cache.stats.accesses == 0
        assert cache.access(3) is False

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            LruCache(capacity_bytes=0, sector_bytes=32)


class TestSetAssociativeCache:
    def test_hit_after_fill(self):
        cache = SetAssociativeCache(capacity_bytes=1024, sector_bytes=32, ways=4)
        assert cache.access(7) is False
        assert cache.access(7) is True

    def test_way_conflict_eviction(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 32, sector_bytes=32, ways=2)
        # num_sets = 2; sectors 0, 2, 4 all map to set 0 with 2 ways.
        cache.access(0)
        cache.access(2)
        cache.access(4)           # evicts 0
        assert cache.access(0) is False
        assert cache.access(4) is True

    def test_fully_associative_degenerate_case(self):
        cache = SetAssociativeCache(capacity_bytes=4 * 32, sector_bytes=32, ways=16)
        assert cache.num_sets == 1
        assert cache.ways == 4

    def test_occupancy_bounded_by_capacity(self):
        cache = SetAssociativeCache(capacity_bytes=16 * 32, sector_bytes=32, ways=4)
        for sector in range(500):
            cache.access(sector)
        assert cache.occupancy <= 16

    def test_invalid_ways_rejected(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(capacity_bytes=1024, sector_bytes=32, ways=0)

    def test_reset(self):
        cache = SetAssociativeCache(capacity_bytes=1024, sector_bytes=32)
        cache.access_many(range(20))
        cache.reset()
        assert cache.occupancy == 0
        assert cache.stats.accesses == 0


class TestCacheStats:
    def test_hits_and_miss_rate(self):
        stats = CacheStats(accesses=10, misses=4)
        assert stats.hits == 6
        assert stats.miss_rate == pytest.approx(0.4)

    def test_empty_stats_miss_rate_zero(self):
        assert CacheStats().miss_rate == 0.0

    def test_merge(self):
        merged = CacheStats(10, 4).merge(CacheStats(5, 1))
        assert merged.accesses == 15
        assert merged.misses == 5


class TestStreamingBehaviour:
    def test_working_set_larger_than_cache_thrashes(self):
        cache = LruCache(capacity_bytes=64 * 32, sector_bytes=32)
        # Two sequential passes over a working set 4x the capacity: LRU keeps
        # evicting the data before it is reused, so the second pass misses too.
        working_set = list(range(256))
        cache.access_many(working_set)
        second_pass_misses = cache.access_many(working_set)
        assert second_pass_misses == len(working_set)

    def test_working_set_smaller_than_cache_hits(self):
        cache = LruCache(capacity_bytes=512 * 32, sector_bytes=32)
        working_set = list(range(256))
        cache.access_many(working_set)
        assert cache.access_many(working_set) == 0
