"""Tests for the performance model (Section V, Eq. 14-18 and Fig. 10 cases)."""


import pytest

from repro.core.bottleneck import Bottleneck
from repro.core.layer import ConvLayerConfig
from repro.core.model import DeltaModel
from repro.core.performance import PerformanceModel
from repro.gpu import TESLA_V100, TITAN_XP
from repro.networks import alexnet, resnet152, vgg16


@pytest.fixture
def xp_model():
    return PerformanceModel(gpu=TITAN_XP)


class TestExecutionEstimate:
    def test_time_positive_and_cycles_consistent(self, xp_model, reference_conv_layer):
        estimate = xp_model.estimate(reference_conv_layer)
        assert estimate.time_seconds > 0
        assert estimate.cycles == pytest.approx(
            estimate.time_seconds * TITAN_XP.core_clock_hz)

    def test_time_never_below_arithmetic_lower_bound(self, xp_model):
        """No layer can run faster than its MACs at peak throughput."""
        for layer in vgg16(batch=64).unique_layers():
            estimate = xp_model.estimate(layer)
            lower_bound = layer.macs / TITAN_XP.macs_per_second
            assert estimate.time_seconds >= lower_bound * 0.99, layer.name

    def test_mac_efficiency_bounded(self, xp_model, reference_conv_layer):
        estimate = xp_model.estimate(reference_conv_layer)
        assert 0.0 < estimate.mac_efficiency <= 1.0
        assert estimate.throughput_tflops <= TITAN_XP.fp32_flops / 1e12 * 1.001

    def test_reported_time_is_max_of_candidates(self, xp_model, reference_conv_layer):
        estimate = xp_model.estimate(reference_conv_layer)
        assert estimate.time_seconds == pytest.approx(max(estimate.candidates.values()))
        assert estimate.candidates[estimate.bottleneck] == pytest.approx(
            estimate.time_seconds)

    def test_all_bottleneck_candidates_evaluated(self, xp_model, reference_conv_layer):
        estimate = xp_model.estimate(reference_conv_layer)
        assert set(estimate.candidates) == set(Bottleneck)

    def test_active_ctas_positive_and_bounded(self, xp_model, reference_conv_layer):
        estimate = xp_model.estimate(reference_conv_layer)
        assert 1 <= estimate.active_ctas <= TITAN_XP.max_ctas_per_sm
        assert estimate.ctas_per_sm >= estimate.active_ctas


class TestBottleneckIdentification:
    def test_compute_bound_dominates_high_reuse_layers(self, xp_model):
        """The paper finds ~90% of layers are MAC-throughput bound on TITAN Xp."""
        layers = vgg16(batch=256).unique_layers() + resnet152(batch=256).unique_layers()
        bottlenecks = [xp_model.estimate(layer).bottleneck for layer in layers]
        mac_bound = sum(1 for b in bottlenecks if b == Bottleneck.MAC_BW)
        assert mac_bound / len(bottlenecks) > 0.6

    def test_scaling_only_compute_shifts_bottleneck_to_memory(self):
        layer = ConvLayerConfig.square("c", 256, in_channels=96, in_size=28,
                                       out_channels=128, filter_size=3, padding=1)
        base = PerformanceModel(gpu=TITAN_XP).estimate(layer)
        scaled_gpu = TITAN_XP.scaled(mac_bw=8.0)
        scaled = PerformanceModel(gpu=scaled_gpu).estimate(layer)
        assert base.bottleneck == Bottleneck.MAC_BW
        assert scaled.bottleneck != Bottleneck.MAC_BW
        assert scaled.bottleneck.is_memory_bound or scaled.bottleneck == Bottleneck.SMEM_BW

    def test_tiny_grid_exposes_dram_latency(self):
        """With very few CTAs the load latency cannot be hidden (case 2)."""
        layer = ConvLayerConfig.square("tiny", 1, in_channels=64, in_size=14,
                                       out_channels=32, filter_size=3, padding=1)
        estimate = PerformanceModel(gpu=TITAN_XP).estimate(layer)
        assert estimate.bottleneck in (Bottleneck.DRAM_LAT, Bottleneck.DRAM_BW,
                                       Bottleneck.SMEM_BW, Bottleneck.MAC_BW)
        # the latency candidate must at least have been considered and be
        # competitive for such a small grid.
        assert estimate.candidates[Bottleneck.DRAM_LAT] > 0

    def test_memory_bound_classification_helper(self):
        assert Bottleneck.DRAM_BW.is_memory_bound
        assert Bottleneck.L2_BW.is_memory_bound
        assert not Bottleneck.MAC_BW.is_memory_bound
        assert not Bottleneck.SMEM_BW.is_memory_bound


class TestCrossGpuBehaviour:
    def test_faster_gpu_runs_compute_bound_layers_faster(self):
        layer = vgg16(batch=256).layer("conv8")
        time_xp = PerformanceModel(gpu=TITAN_XP).estimate(layer).time_seconds
        time_v100 = PerformanceModel(gpu=TESLA_V100).estimate(layer).time_seconds
        assert time_v100 < time_xp

    def test_total_network_time_scales_with_batch(self):
        model = DeltaModel(TITAN_XP)
        small = model.total_time(alexnet(batch=64).conv_layers())
        large = model.total_time(alexnet(batch=256).conv_layers())
        assert 3.0 < large / small < 5.0

    def test_estimate_layers_and_total_time_consistent(self):
        model = DeltaModel(TITAN_XP)
        layers = alexnet(batch=64).conv_layers()
        estimates = model.estimate_layers(layers)
        assert model.total_time(layers) == pytest.approx(
            sum(e.time_seconds for e in estimates))

    def test_for_gpu_returns_new_model(self):
        model = DeltaModel(TITAN_XP)
        v100_model = model.for_gpu(TESLA_V100)
        assert v100_model.gpu is TESLA_V100
        assert model.gpu is TITAN_XP


class TestExternalTrafficInjection:
    def test_estimate_accepts_precomputed_traffic(self, xp_model, reference_conv_layer):
        traffic = DeltaModel(TITAN_XP).traffic(reference_conv_layer)
        estimate = xp_model.estimate(reference_conv_layer, traffic=traffic)
        assert estimate.traffic is traffic

    def test_more_traffic_cannot_be_faster(self, reference_conv_layer):
        """Injecting inflated traffic must not reduce the predicted time."""
        model = PerformanceModel(gpu=TITAN_XP.scaled(mac_bw=16.0))
        delta_traffic = DeltaModel(TITAN_XP.scaled(mac_bw=16.0)).traffic(
            reference_conv_layer)
        from repro.core.baselines import FixedMissRateTrafficModel
        naive_traffic = FixedMissRateTrafficModel(
            TITAN_XP.scaled(mac_bw=16.0)).estimate(reference_conv_layer)
        accurate = model.estimate(reference_conv_layer, traffic=delta_traffic)
        naive = model.estimate(reference_conv_layer, traffic=naive_traffic)
        assert naive.time_seconds >= accurate.time_seconds
