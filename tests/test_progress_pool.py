"""Progress-observer behavior under the pool executor.

The observer is context-local (:mod:`repro.api.progress`); these tests pin
the contract the streaming-jobs server relies on: events arrive in work-unit
completion order with a consistent total, a raising observer is dropped
without failing the request it watches, the observer survives the
``asyncio.to_thread`` hop the server uses, and injected worker crashes
(``repro.faults``) still drive the count to completion while the pool
recovers underneath.
"""

import asyncio
import threading

from repro import faults
from repro.api import Session, observe_progress

TASKS = list(range(6))


def _square(task):
    return task * task


def _square_with_fault_seam(task):
    faults.fire("progress-pool", f"task-{task}")
    return task * task


def _events_are_ordered(events, total):
    assert events, "fan-out must emit progress"
    assert {e["stage"] for e in events} == {"tasks"}
    assert all(e["total"] == total for e in events)
    dones = [e["done"] for e in events]
    assert dones == sorted(dones), "done counts must never regress"
    assert dones[-1] == total


class TestOrderedEvents:
    def test_serial_path_emits_one_event_per_unit(self):
        events = []
        with Session(jobs=1) as session:
            with observe_progress(events.append):
                results = session.map_tasks(_square, TASKS)
        assert results == [t * t for t in TASKS]
        assert [e["done"] for e in events] == list(range(1, len(TASKS) + 1))
        _events_are_ordered(events, len(TASKS))

    def test_pool_path_counts_monotonically_to_total(self):
        events = []
        with Session(jobs=2) as session:
            with observe_progress(events.append):
                results = session.map_tasks(_square, TASKS)
        assert results == [t * t for t in TASKS]
        # chunks finish in any order, but the resolved count only grows.
        _events_are_ordered(events, len(TASKS))

    def test_events_fire_on_the_calling_thread(self):
        seen = set()
        with Session(jobs=2) as session:
            with observe_progress(
                    lambda event: seen.add(threading.get_ident())):
                session.map_tasks(_square, TASKS)
        # the observer is a plain callback on the coordinating thread, so
        # server-side bridges may touch request state without locking.
        assert seen == {threading.get_ident()}


class TestObserverIsolation:
    def test_raising_observer_never_fails_the_request(self):
        calls = []

        def explode(event):
            calls.append(event)
            raise RuntimeError("observer bug")

        with Session(jobs=2) as session:
            with observe_progress(explode):
                results = session.map_tasks(_square, TASKS)
                # the broken observer was dropped after its first event;
                # later fan-outs in the same extent stay silent.
                session.map_tasks(_square, TASKS[:2])
        assert results == [t * t for t in TASKS]
        assert len(calls) == 1

    def test_observer_scope_ends_with_the_context(self):
        events = []
        with Session(jobs=1) as session:
            with observe_progress(events.append):
                session.map_tasks(_square, TASKS[:2])
            emitted_inside = len(events)
            session.map_tasks(_square, TASKS[:2])
        assert emitted_inside == 2
        assert len(events) == 2  # nothing observed outside the block


class TestThreadHop:
    def test_observer_crosses_asyncio_to_thread(self):
        # the server installs the observer on the event-loop side and runs
        # the blocking request in a worker thread; contextvars must carry
        # the observer across that hop.
        events = []

        async def scenario():
            with Session(jobs=2) as session:
                with observe_progress(events.append):
                    return await asyncio.to_thread(
                        session.map_tasks, _square, TASKS)

        results = asyncio.run(scenario())
        assert results == [t * t for t in TASKS]
        _events_are_ordered(events, len(TASKS))


class TestCrashIsolation:
    def test_worker_crash_still_drives_the_count_home(self, tmp_path):
        events = []
        with faults.injected(
                faults.crash(site="progress-pool", match="task-3"),
                state_dir=str(tmp_path)):
            with Session(jobs=2) as session:
                with observe_progress(events.append):
                    results = session.map_tasks(_square_with_fault_seam,
                                                TASKS)
                assert session.stats.pool_recoveries >= 1
        # the crashed unit was retried on a fresh pool and every task
        # produced its result; the observer saw the full count regardless.
        assert results == [t * t for t in TASKS]
        _events_are_ordered(events, len(TASKS))
