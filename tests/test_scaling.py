"""Tests for the GPU resource scaling study (Section VII-C, Fig. 16)."""

import pytest

from repro.core.scaling import ScalingStudy
from repro.gpu import PAPER_DESIGN_OPTIONS, TITAN_XP, get_design_option
from repro.networks import resnet152


@pytest.fixture(scope="module")
def resnet_layers():
    # A reduced batch keeps the analytical evaluation fast while preserving
    # the compute/memory balance of each layer.
    return resnet152(batch=64).conv_layers()


@pytest.fixture(scope="module")
def study_results(resnet_layers):
    study = ScalingStudy(baseline=TITAN_XP)
    return study.run(resnet_layers)


class TestScalingStudy:
    def test_one_result_per_option(self, study_results):
        assert len(study_results) == len(PAPER_DESIGN_OPTIONS)

    def test_all_speedups_positive(self, study_results):
        assert all(result.speedup > 0 for result in study_results)

    def test_option2_beats_option1(self, study_results):
        speedups = {r.option.name: r.speedup for r in study_results}
        assert speedups["2"] > speedups["1"] > 1.0

    def test_compute_only_scaling_saturates(self, study_results):
        """Options 3-4 only add MAC throughput; the paper finds ~2x headroom."""
        speedups = {r.option.name: r.speedup for r in study_results}
        assert speedups["4"] < 2.6
        assert speedups["4"] < speedups["2"]

    def test_balanced_option5_close_to_option2(self, study_results):
        speedups = {r.option.name: r.speedup for r in study_results}
        assert speedups["5"] == pytest.approx(speedups["2"], rel=0.25)

    def test_option9_is_among_the_best(self, study_results):
        speedups = {r.option.name: r.speedup for r in study_results}
        best = max(speedups.values())
        assert speedups["9"] >= 0.8 * best
        assert speedups["9"] > speedups["5"]

    def test_bottleneck_distribution_sums_to_one(self, study_results):
        for result in study_results:
            distribution = result.bottleneck_distribution
            assert sum(distribution.values()) == pytest.approx(1.0)
            assert all(0 <= share <= 1 for share in distribution.values())

    def test_compute_only_options_become_memory_bound(self, study_results):
        """Scaling MACs without memory shifts layers to memory bottlenecks."""
        by_name = {r.option.name: r for r in study_results}
        memory_share_opt4 = sum(
            share for key, share in by_name["4"].bottleneck_distribution.items()
            if key.is_memory_bound)
        memory_share_opt1 = sum(
            share for key, share in by_name["1"].bottleneck_distribution.items()
            if key.is_memory_bound)
        assert memory_share_opt4 > memory_share_opt1

    def test_bottleneck_counts_match_layer_count(self, study_results, resnet_layers):
        for result in study_results:
            assert sum(result.bottleneck_counts.values()) == len(resnet_layers)

    def test_baseline_result_has_unit_speedup(self, resnet_layers):
        study = ScalingStudy(baseline=TITAN_XP)
        baseline = study.baseline_result(resnet_layers)
        assert baseline.speedup == 1.0
        assert baseline.total_time_seconds > 0

    def test_empty_workload_rejected(self):
        with pytest.raises(ValueError):
            ScalingStudy(baseline=TITAN_XP).run([])

    def test_subset_of_options_supported(self, resnet_layers):
        study = ScalingStudy(baseline=TITAN_XP,
                             options=(get_design_option("2"),))
        results = study.run(resnet_layers[:9])
        assert len(results) == 1
        assert results[0].option.name == "2"
