"""Tests for the prior-work fixed-miss-rate baselines (Section III, Fig. 12/15)."""

import pytest

from repro.core.baselines import (
    PAPER_MISS_RATES,
    FixedMissRateModel,
    FixedMissRateTrafficModel,
)
from repro.core.model import DeltaModel
from repro.gpu import TITAN_XP
from repro.networks import googlenet


class TestFixedMissRateTraffic:
    def test_miss_rate_one_sends_all_l1_traffic_to_dram(self, reference_conv_layer):
        prior = FixedMissRateTrafficModel(TITAN_XP, l1_miss_rate=1.0,
                                          l2_miss_rate=1.0)
        estimate = prior.estimate(reference_conv_layer)
        assert estimate.l2_bytes == pytest.approx(estimate.l1_bytes)
        assert estimate.dram_bytes == pytest.approx(estimate.l1_bytes)

    def test_fractional_miss_rates_scale_traffic(self, reference_conv_layer):
        prior = FixedMissRateTrafficModel(TITAN_XP, l1_miss_rate=0.5,
                                          l2_miss_rate=0.5)
        estimate = prior.estimate(reference_conv_layer)
        assert estimate.l2_bytes == pytest.approx(0.5 * estimate.l1_bytes)
        assert estimate.dram_bytes == pytest.approx(0.25 * estimate.l1_bytes)

    def test_l1_traffic_matches_delta(self, reference_conv_layer):
        """The L1 request stream is a property of the kernel, not the cache."""
        prior = FixedMissRateTrafficModel(TITAN_XP)
        delta = DeltaModel(TITAN_XP)
        assert prior.estimate(reference_conv_layer).l1_bytes == pytest.approx(
            delta.traffic(reference_conv_layer).l1_bytes)

    def test_invalid_miss_rate_rejected(self):
        with pytest.raises(ValueError):
            FixedMissRateTrafficModel(TITAN_XP, l1_miss_rate=1.5)
        with pytest.raises(ValueError):
            FixedMissRateTrafficModel(TITAN_XP, l2_miss_rate=-0.1)

    def test_prior_model_overpredicts_dram_for_reuse_heavy_layers(self):
        """The core Fig. 12 claim: orders of magnitude more DRAM traffic."""
        layer = googlenet(batch=256).layer("3a_3x3")
        prior = FixedMissRateTrafficModel(TITAN_XP).estimate(layer)
        delta = DeltaModel(TITAN_XP).traffic(layer)
        assert prior.dram_bytes / delta.dram_bytes > 10.0


class TestFixedMissRatePerformance:
    def test_prior_model_never_faster_than_delta(self, reference_conv_layer):
        delta_time = DeltaModel(TITAN_XP).estimate(reference_conv_layer).time_seconds
        for miss_rate in PAPER_MISS_RATES:
            prior_time = FixedMissRateModel(
                TITAN_XP, miss_rate=miss_rate).estimate(reference_conv_layer).time_seconds
            assert prior_time >= delta_time * 0.999

    def test_higher_miss_rate_predicts_longer_or_equal_time(self, reference_conv_layer):
        times = [FixedMissRateModel(TITAN_XP, miss_rate=mr).estimate(
            reference_conv_layer).time_seconds for mr in PAPER_MISS_RATES]
        assert times == sorted(times)

    def test_paper_miss_rates_cover_expected_sweep(self):
        assert tuple(PAPER_MISS_RATES) == (0.3, 0.5, 0.7, 1.0)

    def test_traffic_accessor(self, reference_conv_layer):
        model = FixedMissRateModel(TITAN_XP, miss_rate=0.7)
        traffic = model.traffic(reference_conv_layer)
        assert traffic.l2_bytes == pytest.approx(0.7 * traffic.l1_bytes)
