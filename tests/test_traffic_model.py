"""Tests for the combined traffic model facade (repro.core.traffic)."""

import pytest

from repro.core.dram import DramModelOptions
from repro.core.l2 import L2ModelOptions
from repro.core.layer import ConvLayerConfig
from repro.core.traffic import TrafficModel
from repro.gpu import TESLA_V100, TITAN_XP
from repro.networks import googlenet


@pytest.fixture
def model():
    return TrafficModel(gpu=TITAN_XP)


class TestTrafficHierarchy:
    def test_traffic_shrinks_up_the_hierarchy(self, model, reference_conv_layer):
        estimate = model.estimate(reference_conv_layer)
        assert estimate.l1_bytes >= estimate.l2_bytes >= estimate.dram.load_bytes

    def test_hierarchy_invariant_across_networks(self, model):
        for layer in googlenet(batch=32).unique_layers():
            estimate = model.estimate(layer)
            assert estimate.l1_bytes >= estimate.l2_bytes >= estimate.dram.load_bytes, layer.name

    def test_miss_rates_bounded(self, model, reference_conv_layer):
        estimate = model.estimate(reference_conv_layer)
        assert 0.0 <= estimate.l1_miss_rate <= 1.0
        assert 0.0 <= estimate.l2_miss_rate <= 1.0

    def test_level_lookup(self, model, reference_conv_layer):
        estimate = model.estimate(reference_conv_layer)
        assert estimate.level_bytes("l1") == estimate.l1_bytes
        assert estimate.level_bytes("DRAM") == estimate.dram_bytes
        with pytest.raises(ValueError):
            estimate.level_bytes("l3")

    def test_per_loop_volumes_consistent_with_totals(self, model,
                                                     reference_conv_layer):
        estimate = model.estimate(reference_conv_layer)
        loops = estimate.total_main_loops
        assert estimate.l1_bytes_per_loop * loops == pytest.approx(estimate.l1_bytes)
        assert estimate.dram_bytes_per_loop * loops == pytest.approx(estimate.dram_bytes)


class TestTrafficScalingBehaviour:
    def test_dram_traffic_scales_linearly_with_batch(self, model):
        small = ConvLayerConfig.square("b", 16, in_channels=96, in_size=28,
                                       out_channels=128, filter_size=3, padding=1)
        large = small.with_batch(64)
        ratio = model.estimate(large).dram_bytes / model.estimate(small).dram_bytes
        # IFmap traffic scales 4x with the batch; the (batch-independent)
        # filter traffic keeps the overall ratio slightly below 4.
        assert 3.5 < ratio <= 4.0

    def test_l1_traffic_insensitive_to_request_size_for_dense_loads(self):
        layer = ConvLayerConfig.square("p", 16, in_channels=256, in_size=14,
                                       out_channels=256, filter_size=1)
        pascal = TrafficModel(gpu=TITAN_XP).estimate(layer)
        volta = TrafficModel(gpu=TESLA_V100).estimate(layer)
        # 1x1 IFmap loads are dense, so only the filter MLI differs slightly.
        assert pascal.l1.ifmap_bytes == pytest.approx(volta.l1.ifmap_bytes)

    def test_conv_reuse_gives_lower_miss_rate_than_pointwise(self, model):
        conv = ConvLayerConfig.square("c", 32, in_channels=96, in_size=28,
                                      out_channels=128, filter_size=3, padding=1)
        pointwise = ConvLayerConfig.square("p", 32, in_channels=96, in_size=28,
                                           out_channels=128, filter_size=1)
        assert model.estimate(conv).l1_miss_rate < model.estimate(pointwise).l1_miss_rate

    def test_options_are_honoured(self, reference_conv_layer):
        base = TrafficModel(gpu=TITAN_XP)
        rowwise = TrafficModel(gpu=TITAN_XP,
                               dram_options=DramModelOptions(scheduling="row"))
        clamped = TrafficModel(gpu=TITAN_XP,
                               l2_options=L2ModelOptions(channel_span_mode="at-least-one"))
        assert (rowwise.estimate(reference_conv_layer).dram.filter_bytes
                > base.estimate(reference_conv_layer).dram.filter_bytes)
        assert (clamped.estimate(reference_conv_layer).l2_bytes
                >= base.estimate(reference_conv_layer).l2_bytes)

    def test_miss_rate_ranges_match_fig4_spread(self, model):
        """GoogLeNet layers should show a wide spread of miss rates (Fig. 4)."""
        l1_rates = []
        l2_rates = []
        for layer in googlenet(batch=256).unique_layers():
            estimate = model.estimate(layer)
            l1_rates.append(estimate.l1_miss_rate)
            l2_rates.append(estimate.l2_miss_rate)
        assert max(l1_rates) - min(l1_rates) > 0.3
        assert max(l2_rates) - min(l2_rates) > 0.5
