"""Property-based pass-algebra tests over conv and GEMM-native lowerings.

The training-pass algebra must hold for *every* layer geometry, not just the
registered networks: dgrad swaps N<->K, wgrad swaps M<->K, MACs are conserved
across all three passes, and operand byte totals follow ``elements x
dtype_bytes``.  Hypothesis drives randomized conv, linear and batched-GEMM
geometries through the lowering and checks the algebra on each.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.layer import (BatchedGemmLayerConfig, ConvLayerConfig,
                              LinearLayerConfig)
from repro.core.workload import (TRAINING_PASSES, lower_pass,
                                 training_workloads)

_SETTINGS = dict(max_examples=60, deadline=None)


@st.composite
def conv_layers(draw):
    filter_size = draw(st.sampled_from((1, 3, 5, 7, 11)))
    stride = draw(st.integers(1, 3))
    padding = draw(st.integers(0, filter_size // 2))
    # the padded input must be at least as large as the filter.
    in_size = draw(st.integers(max(1, filter_size - 2 * padding), 64))
    return ConvLayerConfig.square(
        "prop_conv",
        batch=draw(st.integers(1, 16)),
        in_channels=draw(st.integers(1, 96)),
        in_size=in_size,
        out_channels=draw(st.integers(1, 128)),
        filter_size=filter_size,
        stride=stride,
        padding=padding,
    )


@st.composite
def linear_layers(draw):
    return LinearLayerConfig(
        "prop_linear",
        batch=draw(st.integers(1, 64)),
        in_features=draw(st.integers(1, 2048)),
        out_features=draw(st.integers(1, 2048)),
        rows_per_sample=draw(st.sampled_from((1, 1, 16, 128))),
        dtype_bytes=draw(st.sampled_from((2, 4))),
    )


@st.composite
def batched_layers(draw):
    return BatchedGemmLayerConfig(
        "prop_batched",
        batch=draw(st.integers(1, 8)),
        groups_per_sample=draw(st.integers(1, 16)),
        m=draw(st.integers(1, 512)),
        n=draw(st.integers(1, 512)),
        k=draw(st.integers(1, 128)),
        dtype_bytes=draw(st.sampled_from((2, 4))),
    )


def any_layer():
    return st.one_of(conv_layers(), linear_layers(), batched_layers())


class TestPassSwaps:
    @given(layer=any_layer())
    @settings(**_SETTINGS)
    def test_dgrad_swaps_n_and_k(self, layer):
        forward = lower_pass(layer, "forward").gemm
        dgrad = lower_pass(layer, "dgrad").gemm
        assert (dgrad.m, dgrad.n, dgrad.k) == (forward.m, forward.k, forward.n)

    @given(layer=any_layer())
    @settings(**_SETTINGS)
    def test_wgrad_swaps_m_and_k(self, layer):
        forward = lower_pass(layer, "forward").gemm
        wgrad = lower_pass(layer, "wgrad").gemm
        assert (wgrad.m, wgrad.n, wgrad.k) == (forward.n, forward.k, forward.m)

    @given(layer=any_layer())
    @settings(**_SETTINGS)
    def test_macs_conserved_across_passes(self, layer):
        workloads = training_workloads(layer)
        assert [w.pass_kind for w in workloads] == list(TRAINING_PASSES)
        assert {w.macs for w in workloads} == {layer.macs}
        assert sum(w.macs for w in workloads) == 3 * layer.macs


class TestOperandAccounting:
    @given(layer=st.one_of(linear_layers(), batched_layers()))
    @settings(**_SETTINGS)
    def test_dense_operand_tensors_cover_their_matrices(self, layer):
        """Dense operands back [groups, rows, K] tensors exactly."""
        for workload in training_workloads(layer):
            gemm = workload.gemm
            assert workload.a.tensor_elements == workload.groups * gemm.m * gemm.k
            assert workload.b.tensor_elements == workload.groups * gemm.n * gemm.k
            assert workload.out_elements == workload.groups * gemm.m * gemm.n
            assert workload.a.dram_elements == float(workload.a.tensor_elements)
            assert workload.b.dram_elements == float(workload.b.tensor_elements)

    @given(layer=any_layer())
    @settings(**_SETTINGS)
    def test_byte_totals_follow_dtype(self, layer):
        """Operand byte footprints are elements x dtype_bytes at every width."""
        for workload in training_workloads(layer):
            dtype = workload.dtype_bytes
            assert dtype == layer.dtype_bytes
            a_bytes = workload.a.tensor_elements * dtype
            b_bytes = workload.b.tensor_elements * dtype
            out_bytes = workload.out_elements * dtype
            assert a_bytes > 0 and b_bytes > 0 and out_bytes > 0
            if hasattr(layer, "with_dtype") and dtype == 4:
                half = training_workloads(layer.with_dtype(2))
                for wide, narrow in zip(training_workloads(layer), half):
                    assert (narrow.a.tensor_elements
                            == wide.a.tensor_elements)
                    assert narrow.dtype_bytes * 2 == wide.dtype_bytes

    @given(layer=any_layer())
    @settings(**_SETTINGS)
    def test_io_tensors_swap_roles_across_passes(self, layer):
        """The forward output's size equals each gradient pass's A operand."""
        forward = lower_pass(layer, "forward")
        dgrad = lower_pass(layer, "dgrad")
        wgrad = lower_pass(layer, "wgrad")
        # dgrad and wgrad both read the output gradient (same tensor size).
        assert dgrad.a.tensor_elements == forward.out_elements
        assert wgrad.a.tensor_elements == forward.out_elements
        # dgrad produces the input gradient; wgrad the weight gradient.
        assert dgrad.out_elements == forward.a.tensor_elements
        assert wgrad.out_elements == forward.b.tensor_elements


class TestNetworkAlgebra:
    """The algebra holds for every registered network's unique layers."""

    @pytest.mark.parametrize("net_name", ["alexnet", "vgg16", "googlenet",
                                          "resnet152", "mlp", "bert-base"])
    def test_step_macs_triple_forward(self, net_name):
        from repro.networks import get_network
        network = get_network(net_name, batch=4)
        for layer in network.unique_layers():
            workloads = training_workloads(layer)
            assert {w.macs for w in workloads} == {layer.macs}, layer.name
