"""Tests for the benchmark CNN definitions (repro.networks)."""

import pytest

from repro.core.layer import ConvLayerConfig
from repro.networks import (
    ConvNetwork,
    alexnet,
    available_networks,
    get_network,
    googlenet,
    googlenet_paper_subset,
    paper_benchmark_suite,
    resnet152,
    resnet152_paper_subset,
    vgg16,
)


class TestAlexNet:
    def test_five_conv_layers(self):
        assert len(alexnet().conv_layers()) == 5

    def test_conv1_configuration(self):
        conv1 = alexnet(batch=256).layer("conv1")
        assert conv1.in_channels == 3
        assert conv1.filter_height == 11
        assert conv1.stride == 4
        assert conv1.out_height == 55

    def test_feature_map_chain(self):
        net = alexnet()
        assert net.layer("conv2").in_height == 27
        assert net.layer("conv3").in_height == 13


class TestVgg16:
    def test_thirteen_conv_layers(self):
        assert len(vgg16().conv_layers()) == 13

    def test_all_filters_are_3x3_stride_1(self):
        for layer in vgg16().conv_layers():
            assert layer.filter_height == 3
            assert layer.stride == 1
            assert layer.padding == 1

    def test_unique_subset_smaller_than_full(self):
        net = vgg16()
        unique = net.unique_layers()
        assert len(unique) < len(net.gemm_layers())
        # 9 unique convolutions plus the three classifier FC layers.
        assert len(unique) == 12

    def test_total_flops_in_expected_range(self):
        # VGG16 convolutions are ~30.7 GFLOP for a single 224x224 image.
        net = vgg16(batch=1)
        assert net.total_flops == pytest.approx(30.7e9, rel=0.05)


class TestGoogLeNet:
    def test_stem_and_inception_layers_present(self):
        net = googlenet()
        names = {layer.name for layer in net}
        assert "conv1" in names and "conv2_3x3" in names
        assert "3a_3x3" in names and "5b_5x5" in names

    def test_inception_3a_branch_channels(self):
        net = googlenet()
        assert net.layer("3a_1x1").out_channels == 64
        assert net.layer("3a_3x3").in_channels == 96
        assert net.layer("3a_3x3").out_channels == 128
        assert net.layer("3a_5x5").filter_height == 5

    def test_paper_subset_restricted_to_evaluated_modules(self):
        subset = googlenet_paper_subset()
        for layer in subset:
            module = layer.name.split("_")[0]
            assert module in ("conv1", "conv2", "3a", "4b", "4e", "5a")
        assert not any("pool_proj" in layer.name for layer in subset)

    def test_inception_output_channels_consistent(self):
        """Each module's input channels must match the previous module's output."""
        net = googlenet()
        assert net.layer("3b_1x1").in_channels == 256   # 64+128+32+32
        assert net.layer("4a_1x1").in_channels == 480   # 128+192+96+64
        assert net.layer("4e_1x1").in_channels == 528
        assert net.layer("5a_1x1").in_channels == 832


class TestResNet152:
    def test_conv_layer_count(self):
        # 1 stem + 3*(50 blocks) + 4 projection shortcuts = 155 conv layers.
        assert len(resnet152().conv_layers()) == 155

    def test_bottleneck_channel_pattern(self):
        net = resnet152()
        assert net.layer("conv2_1_a").out_channels == 64
        assert net.layer("conv2_1_c").out_channels == 256
        assert net.layer("conv5_1_c").out_channels == 2048

    def test_downsampling_strides(self):
        net = resnet152()
        assert net.layer("conv3_1_b").stride == 2
        assert net.layer("conv3_2_b").stride == 1
        assert net.layer("conv2_1_b").stride == 1

    def test_feature_sizes_per_stage(self):
        net = resnet152()
        assert net.layer("conv2_1_b").out_height == 56
        assert net.layer("conv3_1_b").out_height == 28
        assert net.layer("conv4_1_b").out_height == 14
        assert net.layer("conv5_1_b").out_height == 7

    def test_paper_subset_names(self):
        subset = resnet152_paper_subset()
        names = [layer.name for layer in subset]
        assert names[0] == "conv1"
        assert "conv4_2_a" in names
        assert len(names) == 24


class TestNetworkContainer:
    def test_with_batch_propagates(self):
        net = vgg16(batch=256).with_batch(32)
        assert all(layer.batch == 32 for layer in net)

    def test_layer_lookup_missing_raises(self):
        with pytest.raises(KeyError):
            alexnet().layer("conv99")

    def test_unique_layers_preserve_order_and_dedupe(self):
        layers = (
            ConvLayerConfig.square("a", 1, in_channels=3, in_size=8,
                                   out_channels=4, filter_size=3, padding=1),
            ConvLayerConfig.square("b", 1, in_channels=3, in_size=8,
                                   out_channels=4, filter_size=3, padding=1),
            ConvLayerConfig.square("c", 1, in_channels=4, in_size=8,
                                   out_channels=4, filter_size=3, padding=1),
        )
        net = ConvNetwork(name="toy", layers=layers)
        unique = net.unique_layers()
        assert [layer.name for layer in unique] == ["a", "c"]

    def test_empty_network_rejected(self):
        with pytest.raises(ValueError):
            ConvNetwork(name="empty", layers=())

    def test_describe_mentions_every_layer(self):
        text = alexnet().describe()
        for index in range(1, 6):
            assert f"conv{index}" in text


class TestRegistry:
    def test_available_networks(self):
        assert set(available_networks()) == {"alexnet", "vgg16", "googlenet",
                                             "resnet152", "mlp", "bert-base"}

    def test_get_network_case_insensitive(self):
        assert get_network("AlexNet").name == "AlexNet"
        assert get_network("RESNET152", batch=32).layers[0].batch == 32

    def test_get_network_unknown_raises(self):
        with pytest.raises(KeyError):
            get_network("lenet")

    def test_paper_benchmark_suite_covers_all_networks(self):
        suite = paper_benchmark_suite(batch=32)
        networks = {name for name, _ in suite}
        assert networks == {"AlexNet", "VGG16", "GoogLeNet", "ResNet152"}
        assert all(layer.batch == 32 for _, layer in suite)

    def test_paper_benchmark_suite_unique_flag(self):
        unique = paper_benchmark_suite(batch=16, unique=True)
        full = paper_benchmark_suite(batch=16, unique=False)
        assert len(unique) < len(full)
