"""Tests for the trace-driven convolution simulator (repro.sim.engine)."""

import pytest

from repro.core.layer import ConvLayerConfig
from repro.core.model import DeltaModel
from repro.gpu import TITAN_XP
from repro.sim.engine import ConvLayerSimulator, SimResult, SimulatorConfig


def _traffic_tuple(result: SimResult):
    traffic = result.traffic
    return (traffic.l1_bytes, traffic.l2_bytes, traffic.dram_bytes,
            traffic.dram_ifmap_bytes, traffic.dram_filter_bytes,
            traffic.l1_requests, result.time_seconds, result.simulated_ctas,
            result.scale_factor)


@pytest.fixture(scope="module")
def simulator():
    return ConvLayerSimulator(TITAN_XP, SimulatorConfig(max_ctas=60))


@pytest.fixture(scope="module")
def tiny_result(simulator):
    layer = ConvLayerConfig.square("tiny", 2, in_channels=8, in_size=14,
                                   out_channels=16, filter_size=3, padding=1)
    return simulator.run(layer)


class TestTrafficMeasurement:
    def test_traffic_hierarchy_monotonic(self, tiny_result):
        traffic = tiny_result.traffic
        assert traffic.l1_bytes >= traffic.l2_bytes >= traffic.dram_bytes > 0

    def test_miss_rates_bounded(self, tiny_result):
        assert 0 < tiny_result.traffic.l1_miss_rate <= 1.0
        assert 0 < tiny_result.traffic.l2_miss_rate <= 1.0

    def test_dram_traffic_at_least_compulsory(self, simulator):
        """DRAM reads can never be below the touched footprint of the data."""
        layer = ConvLayerConfig.square("c", 2, in_channels=16, in_size=14,
                                       out_channels=32, filter_size=3, padding=1)
        result = simulator.run(layer)
        footprint = layer.ifmap_bytes + layer.filter_bytes
        assert result.traffic.dram_bytes >= 0.7 * footprint
        assert result.traffic.dram_bytes <= 3.0 * footprint

    def test_dram_split_sums_to_total(self, tiny_result):
        traffic = tiny_result.traffic
        assert traffic.dram_bytes == pytest.approx(
            traffic.dram_ifmap_bytes + traffic.dram_filter_bytes)

    def test_level_lookup(self, tiny_result):
        traffic = tiny_result.traffic
        assert traffic.level_bytes("L1") == traffic.l1_bytes
        with pytest.raises(ValueError):
            traffic.level_bytes("l4")

    def test_time_and_cycles_positive(self, tiny_result):
        assert tiny_result.time_seconds > 0
        assert tiny_result.cycles == pytest.approx(
            tiny_result.time_seconds * TITAN_XP.core_clock_hz)


class TestSamplingAndExtrapolation:
    def test_full_simulation_when_grid_is_small(self, tiny_result):
        assert tiny_result.simulated_ctas == tiny_result.grid.num_ctas
        assert tiny_result.scale_factor == pytest.approx(1.0)

    def test_sampled_simulation_extrapolates(self):
        layer = ConvLayerConfig.square("big", 64, in_channels=16, in_size=28,
                                       out_channels=64, filter_size=3, padding=1)
        sampled = ConvLayerSimulator(TITAN_XP, SimulatorConfig(max_ctas=30)).run(layer)
        assert sampled.simulated_ctas < sampled.grid.num_ctas
        assert sampled.scale_factor > 1.0
        # extrapolated traffic should be in the same ballpark as a larger sample.
        fuller = ConvLayerSimulator(TITAN_XP, SimulatorConfig(max_ctas=120)).run(layer)
        assert sampled.traffic.l1_bytes == pytest.approx(fuller.traffic.l1_bytes,
                                                         rel=0.2)
        assert sampled.traffic.dram_bytes == pytest.approx(fuller.traffic.dram_bytes,
                                                           rel=0.5)

    def test_accounting_mode_changes_l1_only(self):
        layer = ConvLayerConfig.square("acct", 2, in_channels=8, in_size=14,
                                       out_channels=16, filter_size=3, padding=1)
        sector = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(max_ctas=60, l1_accounting="sector")).run(layer)
        request = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(max_ctas=60, l1_accounting="request")).run(layer)
        assert request.traffic.l1_bytes >= sector.traffic.l1_bytes
        assert request.traffic.dram_bytes == pytest.approx(
            sector.traffic.dram_bytes)


#: SimTraffic values captured from the pre-vectorization (seed) engine; the
#: vectorized pipeline and the scalar reference path must reproduce every
#: field bit-for-bit.  Tuple order matches :func:`_traffic_tuple`.
GOLDEN_CASES = {
    "small3x3_sector": (
        dict(batch=2, in_channels=8, in_size=14, out_channels=16,
             filter_size=3, padding=1),
        dict(max_ctas=60),
        (171776.0, 34432.0, 17152.0, 12544.0, 4608.0, 2926.0,
         6.371645772953439e-06, 4, 1.0),
    ),
    "small3x3_request": (
        dict(batch=2, in_channels=8, in_size=14, out_channels=16,
             filter_size=3, padding=1),
        dict(max_ctas=60, l1_accounting="request"),
        (374528.0, 34432.0, 17152.0, 12544.0, 4608.0, 2926.0,
         6.371645772953439e-06, 4, 1.0),
    ),
    "pointwise_row_sched": (
        dict(batch=2, in_channels=16, in_size=14, out_channels=32,
             filter_size=1, padding=0),
        dict(max_ctas=60, scheduling="row"),
        (45056.0, 34560.0, 27136.0, 25088.0, 2048.0, 648.0,
         2.1842964026642524e-06, 4, 1.0),
    ),
    "strided_setassoc_l2": (
        dict(batch=2, in_channels=3, in_size=56, out_channels=32,
             filter_size=7, stride=2, padding=3),
        dict(max_ctas=60, l2_fully_associative=False),
        (2600864.0, 363072.0, 94080.0, 75264.0, 18816.0, 42337.0,
         1.3074582931172688e-05, 13, 1.0),
    ),
    "reference_sampled": (
        dict(batch=8, in_channels=256, in_size=13, out_channels=128,
             filter_size=3, padding=1),
        dict(max_ctas=30),
        (27767808.0, 14777376.0, 2564096.0, 1384448.0, 1179648.0, 602856.0,
         0.00018858559657192666, 11, 1.0),
    ),
}


class TestGoldenTraffic:
    """Pin SimTraffic against the pre-rewrite engine, bit for bit."""

    @pytest.mark.parametrize("case", sorted(GOLDEN_CASES))
    def test_vectorized_engine_matches_seed(self, case):
        layer_kwargs, config_kwargs, expected = GOLDEN_CASES[case]
        layer = ConvLayerConfig.square(case, **layer_kwargs)
        result = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(vectorized=True, **config_kwargs)
        ).run(layer)
        assert _traffic_tuple(result) == expected

    @pytest.mark.parametrize("case", sorted(GOLDEN_CASES))
    def test_reference_engine_matches_seed(self, case):
        layer_kwargs, config_kwargs, expected = GOLDEN_CASES[case]
        layer = ConvLayerConfig.square(case, **layer_kwargs)
        result = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(vectorized=False, **config_kwargs)
        ).run(layer)
        assert _traffic_tuple(result) == expected

    def test_vectorized_equals_reference_on_multi_wave_grid(self):
        """A grid larger than one wave exercises cross-wave cache state."""
        layer = ConvLayerConfig.square("multiwave", 8, in_channels=16,
                                       in_size=28, out_channels=160,
                                       filter_size=3, padding=1)
        fast = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(max_ctas=150)).run(layer)
        slow = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(max_ctas=150, vectorized=False)
        ).run(layer)
        assert _traffic_tuple(fast) == _traffic_tuple(slow)


class TestSimulatorConfigValidation:
    def test_valid_config_accepted(self):
        SimulatorConfig(max_ctas=None, l1_accounting="request",
                        scheduling="row", l1_ways=4, l2_ways=8,
                        cta_tile_hw=256)

    @pytest.mark.parametrize("kwargs", [
        dict(l1_accounting="bytes"),
        dict(scheduling="diagonal"),
        dict(l1_ways=0),
        dict(l1_ways=-2),
        dict(l2_ways=0),
        dict(cta_tile_hw=0),
        dict(max_ctas=0),
        dict(max_ctas=-5),
    ])
    def test_invalid_config_rejected_eagerly(self, kwargs):
        with pytest.raises(ValueError):
            SimulatorConfig(**kwargs)


class TestAgainstAnalyticalModel:
    """The simulator is independent of the model but must agree on the shape."""

    @pytest.mark.parametrize("filter_size,padding", [(1, 0), (3, 1)])
    def test_model_within_factor_of_simulation(self, filter_size, padding):
        layer = ConvLayerConfig.square("cmp", 4, in_channels=64, in_size=14,
                                       out_channels=64,
                                       filter_size=filter_size, padding=padding)
        sim = ConvLayerSimulator(TITAN_XP, SimulatorConfig(max_ctas=90)).run(layer)
        model = DeltaModel(TITAN_XP).traffic(layer)
        for level in ("l1", "l2", "dram"):
            ratio = model.level_bytes(level) / sim.traffic.level_bytes(level)
            assert 0.3 < ratio < 3.5, (level, ratio)

    def test_reuse_heavy_layer_has_lower_l2_share_than_pointwise(self):
        conv = ConvLayerConfig.square("c", 4, in_channels=32, in_size=28,
                                      out_channels=64, filter_size=3, padding=1)
        pointwise = ConvLayerConfig.square("p", 4, in_channels=32, in_size=28,
                                           out_channels=64, filter_size=1)
        simulator = ConvLayerSimulator(TITAN_XP, SimulatorConfig(max_ctas=60))
        conv_result = simulator.run(conv)
        pw_result = simulator.run(pointwise)
        assert conv_result.traffic.l1_miss_rate < pw_result.traffic.l1_miss_rate

    def test_row_scheduling_increases_dram_traffic(self):
        """The paper's column-wise scheduling assumption is the favourable one."""
        layer = ConvLayerConfig.square("s", 8, in_channels=16, in_size=28,
                                       out_channels=160, filter_size=3, padding=1)
        column = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(max_ctas=None, scheduling="column")).run(layer)
        row = ConvLayerSimulator(
            TITAN_XP, SimulatorConfig(max_ctas=None, scheduling="row")).run(layer)
        assert row.traffic.dram_bytes >= column.traffic.dram_bytes * 0.95
