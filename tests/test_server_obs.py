"""Server-side observability: /metrics exposition and traced jobs.

The registry/exposition mechanics live in ``test_obs_metrics.py``; here we
pin the HTTP surface: the Prometheus route's shape and coverage, the
``"trace": true`` job flag (chrome trace attached to the poll payload, never
served from the memo), and the 400 for a trace on a synchronous request.
"""

import http.client
import json
import re
import time

import pytest

from repro.api import Session
from repro.server import ServerThread, create_app
from server_utils import json_request, request

SAMPLE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? "
                    r"[0-9eE+.\-]+$")
COMMENT = re.compile(r"^# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]*( .*)?$")


@pytest.fixture
def app():
    application = create_app(Session())
    yield application
    application.session.close()


class TestMetricsRoute:
    def test_exposition_shape_and_coverage(self, app):
        status, _, _ = request(app, "POST", "/v1/estimate",
                               body={"network": "alexnet", "batch": 32})
        assert status == 200
        status, headers, raw = request(app, "GET", "/metrics")
        assert status == 200
        assert headers["content-type"] == \
            "text/plain; version=0.0.4; charset=utf-8"
        text = raw.decode("utf-8")
        assert text.endswith("\n")
        series = []
        for line in text.splitlines():
            if line.startswith("#"):
                assert COMMENT.match(line), line
            else:
                assert SAMPLE.match(line), line
                series.append(line.split("{")[0].split(" ")[0])
        # the stack-wide criterion: a healthy scrape after one request
        # carries at least 20 distinct series across all layers.
        assert len(set(series)) >= 20
        for prefix in ("repro_server_", "repro_session_",
                       "repro_coalesce_", "repro_jobs_"):
            assert any(name.startswith(prefix) for name in set(series)), \
                f"no {prefix}* series in exposition"

    def test_counters_reflect_traffic(self, app):
        request(app, "GET", "/healthz")
        body = {"network": "alexnet", "batch": 32}
        request(app, "POST", "/v1/estimate", body=body)
        request(app, "POST", "/v1/estimate", body=body)  # memo hit
        _, _, raw = request(app, "GET", "/metrics")
        text = raw.decode("utf-8")

        def value(name):
            for line in text.splitlines():
                if line.startswith(name + " "):
                    return float(line.split(" ")[1])
            raise AssertionError(f"{name} not exposed")

        assert value("repro_server_requests") == 4  # incl. this scrape
        assert value("repro_session_requests_run") == 1
        assert value("repro_coalesce_memo_hits") == 1
        assert value("repro_jobs_submitted") == 0

    def test_request_latency_histogram_labels_routes(self, app):
        request(app, "GET", "/healthz")
        request(app, "GET", "/v1/jobs/job-000042")  # unbounded id, bounded label
        _, _, raw = request(app, "GET", "/metrics")
        text = raw.decode("utf-8")
        assert 'repro_server_request_seconds_bucket{route="/healthz",' \
            'le="+Inf"}' in text
        assert 'route="/v1/jobs/{id}"' in text
        assert "job-000042" not in text

    def test_stats_route_surfaces_sim_cache_and_dse_sections(self, app):
        status, payload = json_request(app, "GET", "/v1/stats")
        assert status == 200
        assert payload["sim_cache"] == {"hits": 0, "misses": 0}
        assert payload["dse"] == {"points": 0, "memo_hits": 0}


class TestTraceFlagValidation:
    def test_trace_without_job_is_structured_400(self, app):
        status, payload = json_request(
            app, "POST", "/v1/estimate",
            body={"network": "alexnet", "batch": 32, "trace": True})
        assert status == 400
        assert payload["kind"] == "error"
        message = payload["meta"]["error_message"]
        assert '"job": true' in message and "timing" in message

    def test_trace_false_is_tolerated_synchronously(self, app):
        status, _ = json_request(
            app, "POST", "/v1/estimate",
            body={"network": "alexnet", "batch": 32, "trace": False})
        assert status == 200


@pytest.fixture
def server():
    session = Session()
    app = create_app(session)
    with ServerThread(app) as running:
        yield running, app
    session.close()


def _http(server, method, path, body=None):
    conn = http.client.HTTPConnection(server.host, server.port, timeout=120)
    try:
        conn.request(method, path,
                     body=json.dumps(body) if body is not None else None)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


def _poll_until_done(running, job_id, deadline=120.0):
    start = time.monotonic()
    while time.monotonic() - start < deadline:
        status, raw = _http(running, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        payload = json.loads(raw)
        if payload["status"] in ("done", "error"):
            return payload
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} never finished")


class TestTracedJobs:
    def test_traced_job_attaches_a_chrome_trace(self, server):
        running, app = server
        status, raw = _http(running, "POST", "/v1/estimate",
                            body={"network": "alexnet", "batch": 32,
                                  "job": True, "trace": True})
        assert status == 202
        payload = _poll_until_done(running, json.loads(raw)["job_id"])
        assert payload["status"] == "done"
        trace = payload["trace"]
        assert trace["displayTimeUnit"] == "ms"
        events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        names = {e["name"] for e in events}
        assert any(name.startswith("request:") for name in names)
        assert "model.estimate" in names

    def test_untraced_job_poll_has_no_trace_key(self, server):
        running, _ = server
        status, raw = _http(running, "POST", "/v1/estimate",
                            body={"network": "alexnet", "batch": 32,
                                  "job": True})
        assert status == 202
        payload = _poll_until_done(running, json.loads(raw)["job_id"])
        assert payload["status"] == "done"
        assert "trace" not in payload

    def test_traced_job_bypasses_the_request_memo(self, server):
        running, app = server
        body = {"network": "alexnet", "batch": 32}
        status, first = _http(running, "POST", "/v1/estimate", body=body)
        assert status == 200
        status, raw = _http(running, "POST", "/v1/estimate",
                            body=dict(body, job=True, trace=True))
        assert status == 202
        payload = _poll_until_done(running, json.loads(raw)["job_id"])
        # a memoized answer would have no spans: the traced job re-executed
        # even though the same request was already cached.
        assert payload["trace"]["traceEvents"]
        assert app.session.stats.requests_run == 2
        # and the report it returns matches the synchronous one in content.
        status, report = _http(
            running, "GET",
            f"/v1/jobs/{payload['job_id']}/report")
        assert status == 200
        sync, job = json.loads(first), json.loads(report)
        for item in (sync, job):
            item["meta"].pop("timing", None)
        assert sync == job
