"""Tests for the GEMM main-loop execution streams (Section V, Eq. 11-13)."""

import pytest

from repro.core.streams import bandwidth_times, compute_stream_times, cs_time, sas_time
from repro.core.traffic import TrafficModel
from repro.gpu import TESLA_V100, TITAN_XP


@pytest.fixture
def traffic(reference_conv_layer):
    return TrafficModel(gpu=TITAN_XP).estimate(reference_conv_layer)


class TestStreamTimes:
    def test_all_stream_times_positive(self, traffic):
        streams = compute_stream_times(traffic, TITAN_XP)
        assert streams.cs > 0 and streams.sas > 0 and streams.gls > 0
        assert streams.l1_bw > 0 and streams.l2_bw > 0 and streams.dram_bw > 0

    def test_gls_is_max_of_per_level_terms(self, traffic):
        streams = compute_stream_times(traffic, TITAN_XP)
        assert streams.gls == pytest.approx(
            max(streams.gls_l1, streams.gls_l2, streams.gls_dram))

    def test_gls_includes_pipeline_latency(self, traffic):
        streams = compute_stream_times(traffic, TITAN_XP)
        min_latency = TITAN_XP.lat_l1_cycles / TITAN_XP.core_clock_hz
        assert streams.gls >= min_latency

    def test_eq13_compute_time_formula(self, traffic):
        tile = traffic.grid.tile
        expected = tile.macs_per_loop / (TITAN_XP.macs_per_second / TITAN_XP.num_sm)
        assert cs_time(tile, TITAN_XP) == pytest.approx(expected)

    def test_eq12_smem_time_formula(self, traffic):
        tile = traffic.grid.tile
        store = (tile.blk_m + tile.blk_n) * tile.blk_k * 4
        load = (tile.warp_m + tile.warp_n) * tile.blk_k * tile.num_warps * 4
        expected = (store / TITAN_XP.smem_st_bw_per_sm
                    + load / TITAN_XP.smem_ld_bw_per_sm)
        assert sas_time(tile, TITAN_XP, 4) == pytest.approx(expected)

    def test_bandwidth_times_shared_across_sms(self, traffic):
        l1, l2, dram = bandwidth_times(traffic, TITAN_XP)
        # L2 and DRAM are divided among SMs, so their per-loop transfer time
        # uses the per-SM share of the device bandwidth.
        assert l2 == pytest.approx(
            traffic.l2_bytes_per_loop / (TITAN_XP.l2_bw / TITAN_XP.num_sm))
        assert dram == pytest.approx(
            traffic.dram_bytes_per_loop / (TITAN_XP.dram_bw / TITAN_XP.num_sm))
        assert l1 == pytest.approx(traffic.l1_bytes_per_loop / TITAN_XP.l1_bw_per_sm)

    def test_compute_or_smem_is_max(self, traffic):
        streams = compute_stream_times(traffic, TITAN_XP)
        assert streams.compute_or_smem == max(streams.cs, streams.sas)

    def test_cs_time_inversely_proportional_to_device_throughput(
            self, reference_conv_layer):
        traffic_xp = TrafficModel(gpu=TITAN_XP).estimate(reference_conv_layer)
        traffic_v100 = TrafficModel(gpu=TESLA_V100).estimate(reference_conv_layer)
        cs_xp = compute_stream_times(traffic_xp, TITAN_XP).cs
        cs_v100 = compute_stream_times(traffic_v100, TESLA_V100).cs
        # Device-level MAC rate implied by the per-SM CS time must match the
        # peak FLOP ratio of the two GPUs (same CTA tile on both).
        rate_xp = TITAN_XP.num_sm / cs_xp
        rate_v100 = TESLA_V100.num_sm / cs_v100
        assert rate_v100 / rate_xp == pytest.approx(
            TESLA_V100.fp32_flops / TITAN_XP.fp32_flops, rel=1e-6)
