"""Tests for repro.core.tiling: CTA tile selection, grids and occupancy."""

import math

import pytest

from repro.core.layer import ConvLayerConfig, GemmShape
from repro.core.tiling import (
    CtaTile,
    GemmGrid,
    active_ctas_per_sm,
    build_grid,
    cta_batch_size,
    ctas_per_sm,
    select_cta_tile,
    waves,
)
from repro.gpu import TITAN_XP


class TestSelectCtaTile:
    """The selection must follow the profiled lookup of Fig. 6."""

    @pytest.mark.parametrize("co,expected_n,expected_k", [
        (16, 32, 4), (32, 32, 4), (33, 64, 4), (64, 64, 4),
        (65, 128, 8), (128, 128, 8), (192, 128, 8), (384, 128, 8),
    ])
    def test_tile_width_follows_output_channels(self, co, expected_n, expected_k):
        gemm = GemmShape(m=100000, n=co, k=576)
        tile = select_cta_tile(gemm)
        assert tile.blk_m == 128
        assert tile.blk_n == expected_n
        assert tile.blk_k == expected_k

    def test_large_tile_family(self):
        tile = select_cta_tile(GemmShape(m=100000, n=512, k=576), tile_hw=256)
        assert tile.blk_m == 256 and tile.blk_n == 256 and tile.blk_k == 8

    def test_unsupported_tile_family_rejected(self):
        with pytest.raises(ValueError):
            select_cta_tile(GemmShape(m=128, n=128, k=64), tile_hw=512)


class TestCtaTile:
    def test_warp_count_and_threads(self):
        tile = CtaTile(blk_m=128, blk_n=128, blk_k=8, warp_m=64, warp_n=32)
        assert tile.num_warps == 8
        assert tile.threads == 256

    def test_per_loop_volumes(self):
        tile = CtaTile(blk_m=128, blk_n=64, blk_k=4, warp_m=64, warp_n=32)
        assert tile.input_elements_per_loop == (128 + 64) * 4
        assert tile.macs_per_loop == 128 * 64 * 4
        assert tile.output_elements == 128 * 64

    def test_smem_footprint_is_double_buffered(self):
        tile = CtaTile(blk_m=128, blk_n=128, blk_k=8, warp_m=64, warp_n=32)
        assert tile.smem_bytes_per_cta() == 2 * (128 + 128) * 8 * 4

    def test_warp_tile_must_divide_cta_tile(self):
        with pytest.raises(ValueError):
            CtaTile(blk_m=128, blk_n=128, blk_k=8, warp_m=48, warp_n=32)


class TestGemmGrid:
    def test_grid_dimensions_round_up(self):
        layer = ConvLayerConfig.square("l", 256, in_channels=64, in_size=28,
                                       out_channels=192, filter_size=3, padding=1)
        grid = build_grid(layer)
        gemm = layer.gemm_shape()
        assert grid.ctas_m == math.ceil(gemm.m / 128)
        assert grid.ctas_n == math.ceil(192 / 128)
        assert grid.num_ctas == grid.ctas_m * grid.ctas_n

    def test_main_loop_count(self):
        layer = ConvLayerConfig.square("l", 32, in_channels=96, in_size=28,
                                       out_channels=128, filter_size=3, padding=1)
        grid = build_grid(layer)
        assert grid.main_loops_per_cta == math.ceil(96 * 9 / 8)
        assert grid.total_main_loops == grid.num_ctas * grid.main_loops_per_cta

    def test_im2col_grid_is_tall(self):
        layer = ConvLayerConfig.square("l", 256, in_channels=64, in_size=56,
                                       out_channels=64, filter_size=3, padding=1)
        grid = build_grid(layer)
        assert grid.aspect_ratio > 100


class TestOccupancy:
    def test_at_least_one_active_cta(self):
        tile = select_cta_tile(GemmShape(m=1 << 20, n=128, k=1024))
        assert active_ctas_per_sm(tile, TITAN_XP) >= 1

    def test_narrow_tile_allows_more_active_ctas(self):
        wide = select_cta_tile(GemmShape(m=1 << 20, n=128, k=1024))
        narrow = select_cta_tile(GemmShape(m=1 << 20, n=32, k=1024))
        assert (active_ctas_per_sm(narrow, TITAN_XP)
                >= active_ctas_per_sm(wide, TITAN_XP))

    def test_ctas_per_sm_uses_most_loaded_sm(self):
        layer = ConvLayerConfig.square("l", 8, in_channels=16, in_size=14,
                                       out_channels=32, filter_size=3, padding=1)
        grid = build_grid(layer)
        assert ctas_per_sm(grid, TITAN_XP) == math.ceil(grid.num_ctas / TITAN_XP.num_sm)

    def test_wave_count_consistent_with_batch_size(self):
        layer = ConvLayerConfig.square("l", 64, in_channels=64, in_size=28,
                                       out_channels=128, filter_size=3, padding=1)
        grid = build_grid(layer)
        batch = cta_batch_size(grid.tile, TITAN_XP)
        assert waves(grid, TITAN_XP) == math.ceil(grid.num_ctas / batch)
