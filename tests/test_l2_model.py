"""Tests for the L2 traffic model (Section IV-B, Eq. 5-9)."""

import pytest

from repro.core.l2 import (
    L2ModelOptions,
    average_horizontal_distance,
    average_vertical_distance,
    estimate_l2_traffic,
    filter_tile_elements,
    horizontal_distance,
    ifmap_tile_unique_elements,
    vertical_distance,
)
from repro.core.layer import ConvLayerConfig
from repro.core.tiling import build_grid
from repro.gpu import TITAN_XP


@pytest.fixture
def conv3x3():
    return ConvLayerConfig.square("c", 32, in_channels=96, in_size=28,
                                  out_channels=128, filter_size=3, padding=1)


class TestDistances:
    def test_eq5_vertical_distance(self, conv3x3):
        grid = build_grid(conv3x3)
        # DIST_V = blkM * (Wi + 2P) * S / (Wi + 2P - Wf + 1) = 128 * 30 / 28
        assert vertical_distance(conv3x3, grid.tile) == pytest.approx(128 * 30 / 28)

    def test_eq6_average_vertical_distance(self, conv3x3):
        grid = build_grid(conv3x3)
        dist_v = vertical_distance(conv3x3, grid.tile)
        expected = dist_v * grid.tile.blk_k / 9
        assert average_vertical_distance(conv3x3, grid.tile) == pytest.approx(expected)

    def test_eq6_at_least_one_option_clamps(self, conv3x3):
        grid = build_grid(conv3x3)
        paper = average_vertical_distance(conv3x3, grid.tile)
        clamped = average_vertical_distance(
            conv3x3, grid.tile, L2ModelOptions(channel_span_mode="at-least-one"))
        assert clamped >= paper
        assert clamped == pytest.approx(vertical_distance(conv3x3, grid.tile))

    def test_eq7_horizontal_distance_nonnegative(self, conv3x3,
                                                  strided_conv_layer):
        for layer in (conv3x3, strided_conv_layer):
            grid = build_grid(layer)
            assert horizontal_distance(layer, grid.tile) >= 0.0

    def test_eq8_adds_extra_samples_for_small_features(self):
        small = ConvLayerConfig.square("s", 32, in_channels=256, in_size=12,
                                       out_channels=128, filter_size=3, padding=1)
        large = ConvLayerConfig.square("l", 32, in_channels=256, in_size=56,
                                       out_channels=128, filter_size=3, padding=1)
        small_grid = build_grid(small)
        large_grid = build_grid(large)
        small_amplification = (average_horizontal_distance(small, small_grid.tile)
                               / max(1e-9, horizontal_distance(small, small_grid.tile)))
        large_amplification = (average_horizontal_distance(large, large_grid.tile)
                               / max(1e-9, horizontal_distance(large, large_grid.tile)))
        assert small_amplification > large_amplification

    def test_pointwise_distances_equal_tile_dimensions(self, small_pointwise_layer):
        grid = build_grid(small_pointwise_layer)
        assert vertical_distance(small_pointwise_layer, grid.tile) == grid.tile.blk_m
        assert horizontal_distance(small_pointwise_layer, grid.tile) == grid.tile.blk_k


class TestTileFootprints:
    def test_reuse_shrinks_unique_footprint(self, conv3x3):
        grid = build_grid(conv3x3)
        unique = ifmap_tile_unique_elements(conv3x3, grid.tile)
        tile_elements = grid.tile.blk_m * grid.tile.blk_k
        assert 0 < unique < tile_elements

    def test_pointwise_tile_has_no_reuse(self, small_pointwise_layer):
        grid = build_grid(small_pointwise_layer)
        unique = ifmap_tile_unique_elements(small_pointwise_layer, grid.tile)
        expected = grid.tile.blk_m * min(grid.tile.blk_k,
                                         small_pointwise_layer.gemm_shape().k)
        assert unique == pytest.approx(expected)

    def test_filter_tile_clipped_to_gemm_dimensions(self):
        layer = ConvLayerConfig.square("tiny", 2, in_channels=4, in_size=8,
                                       out_channels=8, filter_size=3, padding=1)
        grid = build_grid(layer)
        elements = filter_tile_elements(layer, grid.tile)
        assert elements == 8 * grid.tile.blk_k  # Co=8 < blkN


class TestL2Totals:
    def test_eq9_total_scales_with_loops_and_ctas(self, conv3x3):
        grid = build_grid(conv3x3)
        traffic = estimate_l2_traffic(conv3x3, grid, TITAN_XP)
        per_loop = traffic.elements_per_loop * conv3x3.dtype_bytes
        assert traffic.total_bytes == pytest.approx(
            per_loop * grid.main_loops_per_cta * grid.num_ctas)

    def test_l2_traffic_below_l1_matrix_volume(self, conv3x3):
        # with im2col reuse the unique-per-tile volume is far below the
        # replicated matrix volume streamed through L1.
        grid = build_grid(conv3x3)
        traffic = estimate_l2_traffic(conv3x3, grid, TITAN_XP)
        ifmap_matrix_bytes = conv3x3.gemm_shape().ifmap_matrix_elements * 4
        assert traffic.ifmap_bytes < ifmap_matrix_bytes

    def test_sector_quantization_only_increases_traffic(self, conv3x3):
        grid = build_grid(conv3x3)
        plain = estimate_l2_traffic(conv3x3, grid, TITAN_XP)
        quantized = estimate_l2_traffic(conv3x3, grid, TITAN_XP,
                                        L2ModelOptions(quantize_to_sectors=True))
        assert quantized.total_bytes >= plain.total_bytes

    def test_larger_feature_means_less_relative_reuse(self):
        # A 1x1 layer has no intra-tile reuse, so its per-loop unique footprint
        # should be larger than a same-K 3x3 layer's.
        conv1x1 = ConvLayerConfig.square("p", 32, in_channels=288, in_size=28,
                                         out_channels=128, filter_size=1)
        conv3x3 = ConvLayerConfig.square("c", 32, in_channels=32, in_size=28,
                                         out_channels=128, filter_size=3, padding=1)
        g1, g3 = build_grid(conv1x1), build_grid(conv3x3)
        u1 = ifmap_tile_unique_elements(conv1x1, g1.tile)
        u3 = ifmap_tile_unique_elements(conv3x3, g3.tile)
        assert u1 > u3
