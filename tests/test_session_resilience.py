"""Session-level resilience: policy knobs, lifecycle gating, error isolation.

The injected-fault recovery paths (crashes, hangs, flaky retries) live in
``test_faults.py``; this file covers the fault-free surface of the same
layer: policy validation, ``SessionClosedError`` semantics (including the
close-vs-fan-out race), ``map_tasks`` failure isolation, and the ``run_many``
per-request error isolation with batch dedupe intact.
"""

import threading

import pytest

from repro.api import (EstimateRequest, Session, SessionClosedError,
                       TaskError, ValidateRequest)
from repro.resilience import TaskFailure

TINY = dict(batch=4, max_ctas=40, layers_per_network=1)


class TestPolicyValidation:
    def test_timeout_must_be_positive(self):
        with pytest.raises(ValueError, match="timeout"):
            Session(timeout=0)
        with pytest.raises(ValueError, match="timeout"):
            Session(timeout=-1.5)
        assert Session(timeout=None).timeout is None
        assert Session(timeout=2.5).timeout == 2.5

    def test_retries_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retries"):
            Session(retries=-1)
        assert Session(retries=0).retries == 0

    def test_retry_backoff_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retry_backoff"):
            Session(retry_backoff=-0.1)

    def test_setters_validate_too(self):
        session = Session()
        with pytest.raises(ValueError):
            session.timeout = -1
        with pytest.raises(ValueError):
            session.retries = -1
        session.timeout = 5.0
        session.timeout = None
        assert session.retries == 2  # default retry budget

    def test_repr_shows_policy(self):
        assert "timeout=1.5" in repr(Session(timeout=1.5, retries=0))


class TestClosedSession:
    def test_fan_out_raises_after_close(self):
        session = Session(jobs=2)
        session.close()
        assert session.closed
        with pytest.raises(SessionClosedError):
            session.map_tasks(abs, [1, 2, 3])
        with pytest.raises(SessionClosedError):
            session.run(ValidateRequest(gpu="titanxp", **TINY))

    def test_close_is_idempotent(self):
        session = Session(jobs=2)
        session.close()
        session.close()

    def test_pure_analytic_requests_survive_close(self):
        # only fan-out is gated; memoized/analytic work stays available.
        with Session() as session:
            pass
        report = session.run(EstimateRequest("alexnet", batch=8))
        assert report.kind == "estimate"

    def test_close_race_with_pool_launch(self):
        """A thread closing the session while another fans out must yield
        SessionClosedError (or a clean result), never a leaked new pool."""
        for _ in range(5):
            session = Session(jobs=2)
            barrier = threading.Barrier(2)
            errors = []

            def fan_out():
                barrier.wait()
                try:
                    session.map_tasks(abs, [1, -2, 3])
                except SessionClosedError:
                    errors.append("closed")

            def close():
                barrier.wait()
                session.close()

            threads = [threading.Thread(target=fan_out),
                       threading.Thread(target=close)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert session._pool is None
            assert session._retired_pools == []


def _fail_on_negative(task):
    if task < 0:
        raise ValueError(f"negative task {task}")
    return task * 10


class TestMapTasksIsolation:
    def test_strict_raises_task_error(self):
        with Session(jobs=1) as session:
            with pytest.raises(TaskError) as excinfo:
                session.map_tasks(_fail_on_negative, [1, -2, 3])
        assert len(excinfo.value.failures) == 1
        assert excinfo.value.failures[0].error_type == "ValueError"

    def test_return_failures_keeps_alignment(self):
        with Session(jobs=2, retries=0) as session:
            outcomes = session.map_tasks(_fail_on_negative, [1, -2, 3],
                                         return_failures=True)
        assert outcomes[0] == 10
        assert outcomes[2] == 30
        failure = outcomes[1]
        assert isinstance(failure, TaskFailure)
        assert failure.kind == "error"
        assert failure.message == "negative task -2"
        assert failure.attempts == 1

    def test_ordinary_errors_are_retried_to_budget(self):
        with Session(jobs=1, retries=3, retry_backoff=0.0) as session:
            outcomes = session.map_tasks(_fail_on_negative, [-1],
                                         return_failures=True)
            assert session.stats.task_retries == 3
            assert session.stats.task_failures == 1
        assert outcomes[0].attempts == 4  # 1 try + 3 retries


class TestRunManyErrorIsolation:
    def test_one_bad_request_does_not_poison_the_batch(self):
        good = ValidateRequest(gpu="titanxp", networks=("alexnet",), **TINY)
        bad = EstimateRequest("not-a-network", batch=8)

        with Session(jobs=2) as solo:
            solo.run(good)
            dedupe_baseline = solo.stats.sim_tasks

        with Session(jobs=2) as session:
            reports = session.run_many([good, bad, good])
            # the two identical validate requests shared one sim pass.
            assert session.stats.sim_tasks == dedupe_baseline

        assert [r.kind for r in reports] == ["validation", "error",
                                             "validation"]
        error = reports[1]
        assert "EstimateRequest failed" in error.title
        assert error.meta["request"] == "EstimateRequest"
        assert error.summary["error"]
        # the healthy reports are intact and identical in content (only the
        # volatile meta["timing"] block differs between executions).
        assert reports[0].content_json() == reports[2].content_json()
