"""The ``repro serve`` subcommand: flags, ready line, clean signal shutdown."""

import json
import os
import signal
import subprocess
import sys
import urllib.error
import urllib.request

import pytest

from repro.cli import build_parser

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


class TestServeParser:
    def test_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert (args.host, args.port) == ("127.0.0.1", 8421)
        assert args.max_memo == 1024
        assert args.jobs is None and args.sim_cache is None
        assert args.timeout is None and args.retries is None

    def test_simulation_flags_are_shared(self):
        args = build_parser().parse_args(
            ["serve", "--port", "0", "--jobs", "4", "--sim-cache", "/tmp/c",
             "--timeout", "30", "--retries", "1"])
        assert args.jobs == 4 and args.sim_cache == "/tmp/c"
        assert args.timeout == 30.0 and args.retries == 1


def _spawn_server(*extra_args):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.Popen(
        [sys.executable, "-c",
         "from repro.cli import main; import sys; sys.exit(main(sys.argv[1:]))",
         "serve", "--port", "0", *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env, text=True)


@pytest.mark.parametrize("signum", [signal.SIGINT, signal.SIGTERM],
                         ids=["sigint", "sigterm"])
def test_serve_subprocess_shuts_down_cleanly(signum):
    """The served API answers over a real socket and exits 0 on signal."""
    proc = _spawn_server()
    try:
        ready = proc.stdout.readline().strip()
        assert ready.startswith("listening on http://"), ready
        base = ready.split(" ")[-1]
        with urllib.request.urlopen(base + "/healthz", timeout=30) as reply:
            assert reply.status == 200
        request = urllib.request.Request(
            base + "/v1/estimate",
            data=json.dumps({"network": "alexnet", "batch": 16,
                             "unique": True}).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request, timeout=120) as reply:
            payload = json.loads(reply.read())
        assert payload["kind"] == "estimate"
        proc.send_signal(signum)
        assert proc.wait(timeout=30) == 0
        assert proc.stderr.read() == ""
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)


def test_serve_structured_errors_over_the_wire():
    """Malformed bodies come back 400 with a structured report body."""
    proc = _spawn_server()
    try:
        ready = proc.stdout.readline().strip()
        base = ready.split(" ")[-1]
        request = urllib.request.Request(
            base + "/v1/estimate", data=b"{not json",
            headers={"Content-Type": "application/json"})
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=30)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["kind"] == "error"
        assert payload["meta"]["error_type"] == "BadRequest"
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=30) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
