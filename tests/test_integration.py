"""End-to-end integration tests spanning model, simulator and analysis layers."""

import pytest

from repro import DeltaModel, TESLA_V100, TITAN_XP
from repro.analysis.metrics import AccuracySummary
from repro.analysis.validation import MEMORY_LEVELS, ValidationConfig, validate_gpu
from repro.core.baselines import FixedMissRateTrafficModel
from repro.core.scaling import ScalingStudy
from repro.gpu import get_design_option
from repro.networks import googlenet, resnet152, vgg16


class TestModelVsSimulatorEndToEnd:
    """The headline claim: DeLTA tracks the measured traffic and time."""

    @pytest.fixture(scope="class")
    def report(self):
        config = ValidationConfig(batch=8, max_ctas=60, layers_per_network=2)
        return validate_gpu(TITAN_XP, config)

    def test_traffic_accuracy_within_small_factors(self, report):
        for level in MEMORY_LEVELS:
            summary = report.traffic_summary(level)
            assert summary.gmae < 1.2, (level, summary.describe())

    def test_dram_estimates_are_the_most_accurate(self, report):
        """The paper finds DRAM traffic is modeled most tightly."""
        dram = report.traffic_summary("dram")
        l2 = report.traffic_summary("l2")
        assert dram.gmae <= l2.gmae + 0.05

    def test_execution_time_tracked_within_factor_two(self, report):
        summary = report.time_summary()
        assert summary.gmae < 1.0
        assert 0.3 < summary.mean_ratio < 2.5

    def test_delta_beats_prior_methodology_end_to_end(self, report):
        """Fig. 12's conclusion holds on the same measured reference."""
        prior = FixedMissRateTrafficModel(TITAN_XP)
        delta_errors = []
        prior_errors = []
        for record in report.records:
            measured = record.measured_traffic["dram"]
            if measured <= 0:
                continue
            delta_errors.append(record.traffic_ratio("dram"))
            prior_errors.append(prior.estimate(record.layer).dram_bytes / measured)
        delta_gmae = AccuracySummary.from_ratios(delta_errors).gmae
        prior_gmae = AccuracySummary.from_ratios(prior_errors).gmae
        assert prior_gmae > 3 * delta_gmae


class TestWholeNetworkEstimation:
    def test_vgg_slowest_of_the_four_networks(self):
        """VGG16 has by far the most conv FLOPs, so it must take the longest."""
        model = DeltaModel(TITAN_XP)
        times = {
            "vgg16": model.total_time(vgg16(batch=64).conv_layers()),
            "googlenet": model.total_time(googlenet(batch=64).conv_layers()),
            "resnet152": model.total_time(resnet152(batch=64).conv_layers()),
        }
        assert times["vgg16"] > times["googlenet"]
        assert times["vgg16"] > times["resnet152"] * 0.9

    def test_v100_faster_than_titanxp_on_every_network(self):
        xp = DeltaModel(TITAN_XP)
        v100 = DeltaModel(TESLA_V100)
        for factory in (vgg16, googlenet, resnet152):
            layers = factory(batch=64).unique_layers()
            assert v100.total_time(layers) < xp.total_time(layers)

    def test_scaling_study_consistent_with_bottleneck_analysis(self):
        """Design options that relieve the dominant bottleneck must help."""
        layers = resnet152(batch=64).unique_layers()
        study = ScalingStudy(baseline=TITAN_XP,
                             options=(get_design_option("4"),
                                      get_design_option("5")))
        results = {r.option.name: r for r in study.run(layers)}
        # option 5 adds memory bandwidth on top of option 4's compute;
        # it must be at least as fast.
        assert results["5"].speedup >= results["4"].speedup
        # and the compute-only option must leave more layers memory bound.
        memory_share_4 = sum(v for k, v in results["4"].bottleneck_distribution.items()
                             if k.is_memory_bound)
        memory_share_5 = sum(v for k, v in results["5"].bottleneck_distribution.items()
                             if k.is_memory_bound)
        assert memory_share_4 >= memory_share_5
