"""GPU device specifications and design-space options."""

from .spec import FP32_BYTES, GIGA, KIB, MIB, WARP_SIZE, GpuSpec
from .devices import (TESLA_P100, TESLA_V100, TITAN_XP, all_devices,
                      device_aliases, get_device, register_gpu, unregister_gpu)
from .design_options import DesignOption, PAPER_DESIGN_OPTIONS, get_design_option

__all__ = [
    "GpuSpec",
    "GIGA",
    "KIB",
    "MIB",
    "FP32_BYTES",
    "WARP_SIZE",
    "TITAN_XP",
    "TESLA_P100",
    "TESLA_V100",
    "all_devices",
    "get_device",
    "register_gpu",
    "unregister_gpu",
    "device_aliases",
    "DesignOption",
    "PAPER_DESIGN_OPTIONS",
    "get_design_option",
]
