"""GPU device specification used by the DeLTA model and the simulator.

All bandwidths are expressed in bytes per second and all latencies in core
clock cycles, matching the way the paper parameterizes the model (Table I and
Section V).  A :class:`GpuSpec` is an immutable value object; derived
quantities (per-SM bandwidths, MACs per second, ...) are exposed as
properties so the rest of the library never repeats unit conversions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass


GIGA = 1.0e9
KIB = 1024
MIB = 1024 * 1024
FP32_BYTES = 4
WARP_SIZE = 32


@dataclass(frozen=True)
class GpuSpec:
    """Hardware parameters of one GPU device.

    Attributes mirror Table I of the paper plus the memory latencies that the
    paper measures with micro-benchmarks (Section VI and Appendix B).
    """

    name: str
    num_sm: int
    core_clock_hz: float
    #: peak FP32 throughput of the whole device, in FLOP/s (2 FLOPs per MAC).
    fp32_flops: float
    #: register file capacity per SM, bytes.
    register_file_bytes: int
    #: shared memory capacity per SM, bytes.
    smem_bytes: int
    #: L1 bandwidth per SM, bytes/s.
    l1_bw_per_sm: float
    #: aggregate L2 bandwidth, bytes/s.
    l2_bw: float
    #: aggregate DRAM bandwidth (effective, as measured), bytes/s.
    dram_bw: float
    #: L2 capacity, bytes.
    l2_size: int
    #: L1 capacity per SM, bytes (used only by the simulator substrate).
    l1_size: int = 32 * KIB
    #: granularity of one L1 request produced by a fully coalesced warp, bytes.
    l1_request_bytes: int = 128
    #: minimum memory transaction (sector) size, bytes.
    sector_bytes: int = 32
    #: cache line size, bytes.
    line_bytes: int = 128
    #: pipeline (unloaded) latencies, in core cycles.
    lat_l1_cycles: float = 32.0
    lat_l2_cycles: float = 220.0
    lat_dram_cycles: float = 500.0
    lat_smem_cycles: float = 24.0
    #: shared memory store / load bandwidth per SM, bytes per cycle.
    smem_st_bytes_per_cycle: float = 128.0
    smem_ld_bytes_per_cycle: float = 256.0
    #: maximum CTAs resident on one SM imposed by the hardware scheduler.
    max_ctas_per_sm: int = 32

    def __post_init__(self) -> None:
        if self.num_sm <= 0:
            raise ValueError("num_sm must be positive")
        if self.core_clock_hz <= 0:
            raise ValueError("core_clock_hz must be positive")
        if self.fp32_flops <= 0:
            raise ValueError("fp32_flops must be positive")
        if self.l1_request_bytes % self.sector_bytes != 0:
            raise ValueError("l1_request_bytes must be a multiple of sector_bytes")
        if self.line_bytes % self.sector_bytes != 0:
            raise ValueError("line_bytes must be a multiple of sector_bytes")

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def macs_per_second(self) -> float:
        """Peak multiply-accumulate rate of the whole device (MAC/s)."""
        return self.fp32_flops / 2.0

    @property
    def macs_per_cycle_per_sm(self) -> float:
        """Peak MAC rate of one SM, per core clock cycle."""
        return self.macs_per_second / (self.num_sm * self.core_clock_hz)

    @property
    def l1_bw_bytes_per_cycle(self) -> float:
        """L1 bandwidth of one SM in bytes per core cycle."""
        return self.l1_bw_per_sm / self.core_clock_hz

    @property
    def l2_bw_bytes_per_cycle(self) -> float:
        """Aggregate L2 bandwidth in bytes per core cycle."""
        return self.l2_bw / self.core_clock_hz

    @property
    def dram_bw_bytes_per_cycle(self) -> float:
        """Aggregate DRAM bandwidth in bytes per core cycle."""
        return self.dram_bw / self.core_clock_hz

    @property
    def smem_st_bw_per_sm(self) -> float:
        """Shared-memory store bandwidth of one SM, bytes/s."""
        return self.smem_st_bytes_per_cycle * self.core_clock_hz

    @property
    def smem_ld_bw_per_sm(self) -> float:
        """Shared-memory load bandwidth of one SM, bytes/s."""
        return self.smem_ld_bytes_per_cycle * self.core_clock_hz

    @property
    def sectors_per_l1_request(self) -> int:
        return self.l1_request_bytes // self.sector_bytes

    @property
    def sectors_per_line(self) -> int:
        return self.line_bytes // self.sector_bytes

    # ------------------------------------------------------------------
    # Scaling helpers (used by the design-space exploration, Fig. 16)
    # ------------------------------------------------------------------
    def scaled(self, **multipliers: float) -> "GpuSpec":
        """Return a copy with selected resources multiplied.

        Recognized keys: ``num_sm``, ``mac_bw``, ``regs``, ``smem_size``,
        ``smem_bw``, ``l1_bw``, ``l2_bw``, ``dram_bw``, ``l2_size``.
        Unknown keys raise ``ValueError`` so typos in design-option tables are
        caught early.
        """
        known = {
            "num_sm", "mac_bw", "regs", "smem_size", "smem_bw",
            "l1_bw", "l2_bw", "dram_bw", "l2_size",
        }
        unknown = set(multipliers) - known
        if unknown:
            raise ValueError(f"unknown scaling keys: {sorted(unknown)}")

        changes = {}
        num_sm_mult = multipliers.get("num_sm", 1.0)
        if num_sm_mult != 1.0:
            changes["num_sm"] = max(1, int(round(self.num_sm * num_sm_mult)))
        # MAC throughput scales with both per-SM MAC width and SM count.
        mac_mult = multipliers.get("mac_bw", 1.0) * num_sm_mult
        if mac_mult != 1.0:
            changes["fp32_flops"] = self.fp32_flops * mac_mult
        if "regs" in multipliers:
            changes["register_file_bytes"] = int(
                round(self.register_file_bytes * multipliers["regs"]))
        if "smem_size" in multipliers:
            changes["smem_bytes"] = int(round(self.smem_bytes * multipliers["smem_size"]))
        if "smem_bw" in multipliers:
            changes["smem_st_bytes_per_cycle"] = (
                self.smem_st_bytes_per_cycle * multipliers["smem_bw"])
            changes["smem_ld_bytes_per_cycle"] = (
                self.smem_ld_bytes_per_cycle * multipliers["smem_bw"])
        if "l1_bw" in multipliers:
            changes["l1_bw_per_sm"] = self.l1_bw_per_sm * multipliers["l1_bw"]
        if "l2_bw" in multipliers:
            changes["l2_bw"] = self.l2_bw * multipliers["l2_bw"]
        if "dram_bw" in multipliers:
            changes["dram_bw"] = self.dram_bw * multipliers["dram_bw"]
        if "l2_size" in multipliers:
            changes["l2_size"] = int(round(self.l2_size * multipliers["l2_size"]))
        return dataclasses.replace(self, **changes)

    def with_name(self, name: str) -> "GpuSpec":
        """Return a copy renamed to ``name`` (useful for scaled variants)."""
        return dataclasses.replace(self, name=name)
