"""Concrete GPU device specifications (Table I of the paper).

Bandwidths come from Table I (measured, effective bandwidths), latencies from
the micro-benchmark results reported in Appendix B (Fig. 18) and from prior
micro-benchmarking work the paper cites.  The L1 request granularity is 128 B
on Pascal and 32 B on Volta, which is what the paper found to match hardware
behaviour best (Section VII-A).
"""

from __future__ import annotations

from typing import Dict, Iterable

from .spec import GIGA, KIB, MIB, GpuSpec

TITAN_XP = GpuSpec(
    name="TITAN Xp",
    num_sm=30,
    core_clock_hz=1.58e9,
    fp32_flops=12134 * GIGA,
    register_file_bytes=256 * KIB,
    smem_bytes=96 * KIB,
    l1_bw_per_sm=92 * GIGA,
    l2_bw=1051 * GIGA,
    dram_bw=430 * GIGA,
    l2_size=3 * MIB,
    l1_size=48 * KIB,
    l1_request_bytes=128,
    lat_l1_cycles=32.0,
    lat_l2_cycles=220.0,
    lat_dram_cycles=500.0,
)

TESLA_P100 = GpuSpec(
    name="P100",
    num_sm=56,
    core_clock_hz=1.2e9,
    fp32_flops=8602 * GIGA,
    register_file_bytes=256 * KIB,
    smem_bytes=64 * KIB,
    l1_bw_per_sm=38.1 * GIGA,
    l2_bw=1382 * GIGA,
    dram_bw=550 * GIGA,
    l2_size=4 * MIB,
    l1_size=24 * KIB,
    l1_request_bytes=128,
    lat_l1_cycles=32.0,
    lat_l2_cycles=234.0,
    lat_dram_cycles=580.0,
)

TESLA_V100 = GpuSpec(
    name="V100",
    num_sm=84,
    core_clock_hz=1.38e9,
    fp32_flops=14837 * GIGA,
    register_file_bytes=256 * KIB,
    smem_bytes=94 * KIB,
    l1_bw_per_sm=94.1 * GIGA,
    l2_bw=2167 * GIGA,
    dram_bw=850 * GIGA,
    l2_size=6 * MIB,
    l1_size=128 * KIB,
    l1_request_bytes=32,
    lat_l1_cycles=28.0,
    lat_l2_cycles=200.0,
    lat_dram_cycles=500.0,
)

_DEVICES: Dict[str, GpuSpec] = {
    "titanxp": TITAN_XP,
    "titan xp": TITAN_XP,
    "titan_xp": TITAN_XP,
    "p100": TESLA_P100,
    "tesla p100": TESLA_P100,
    "v100": TESLA_V100,
    "tesla v100": TESLA_V100,
}


def get_device(name: str) -> GpuSpec:
    """Look up a device specification by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return _DEVICES[key]
    except KeyError:
        raise KeyError(
            f"unknown GPU device {name!r}; known devices: "
            f"{sorted(set(d.name for d in _DEVICES.values()))}"
        ) from None


def all_devices() -> Iterable[GpuSpec]:
    """The three devices evaluated in the paper, in paper order."""
    return (TITAN_XP, TESLA_P100, TESLA_V100)
