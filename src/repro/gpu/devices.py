"""Concrete GPU device specifications (Table I of the paper).

Bandwidths come from Table I (measured, effective bandwidths), latencies from
the micro-benchmark results reported in Appendix B (Fig. 18) and from prior
micro-benchmarking work the paper cites.  The L1 request granularity is 128 B
on Pascal and 32 B on Volta, which is what the paper found to match hardware
behaviour best (Section VII-A).

Devices register themselves through the :func:`register_gpu` decorator, which
is also the extension point for adding custom devices::

    @register_gpu("mygpu", "my gpu")
    def _build_mygpu() -> GpuSpec:
        return GpuSpec(...)
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple, Union

from .spec import GIGA, KIB, MIB, GpuSpec

_DEVICES: Dict[str, GpuSpec] = {}
#: registration order of unique specs (paper order for the built-in devices).
_ORDER: List[GpuSpec] = []


def register_gpu(*names: str) -> Callable[[Union[GpuSpec, Callable[[], GpuSpec]]],
                                          Union[GpuSpec, Callable[[], GpuSpec]]]:
    """Register a :class:`GpuSpec` under one or more lookup aliases.

    Usable as a decorator on a zero-argument factory function (the factory is
    invoked once at registration time) or called directly on a spec instance.
    Duplicate aliases raise ``ValueError``.
    """
    if not names:
        raise ValueError("register_gpu requires at least one alias")

    def decorator(obj: Union[GpuSpec, Callable[[], GpuSpec]]):
        spec = obj() if callable(obj) else obj
        if not isinstance(spec, GpuSpec):
            raise TypeError(f"register_gpu expects a GpuSpec, got {type(spec).__name__}")
        keys = [name.strip().lower() for name in names]
        duplicates = sorted(key for key in keys if key in _DEVICES)
        if duplicates:
            raise ValueError(f"GPU alias(es) {duplicates} already registered")
        for key in keys:
            _DEVICES[key] = spec
        # identity, not equality: an equal-valued copy registered under new
        # aliases is a distinct device and must get its own catalog entry.
        if not any(existing is spec for existing in _ORDER):
            _ORDER.append(spec)
        return obj

    return decorator


def unregister_gpu(name: str) -> None:
    """Remove a device and every alias pointing at it (tests/plugins)."""
    key = name.strip().lower()
    spec = _DEVICES.pop(key, None)
    if spec is None:
        return
    for alias in [alias for alias, value in _DEVICES.items() if value is spec]:
        del _DEVICES[alias]
    _ORDER[:] = [existing for existing in _ORDER if existing is not spec]


def get_device(name: str) -> GpuSpec:
    """Look up a device specification by (case-insensitive) name."""
    key = name.strip().lower()
    try:
        return _DEVICES[key]
    except KeyError:
        raise KeyError(
            f"unknown GPU device {name!r}; known devices: "
            f"{sorted(set(d.name for d in _DEVICES.values()))}"
        ) from None


def all_devices() -> Tuple[GpuSpec, ...]:
    """Every registered device, in registration (paper) order."""
    return tuple(_ORDER)


def device_aliases() -> Dict[str, Tuple[str, ...]]:
    """Canonical device name -> the lookup aliases accepted by get_device."""
    return {spec.name: tuple(alias for alias, value in _DEVICES.items()
                             if value is spec)
            for spec in _ORDER}


@register_gpu("titanxp", "titan xp", "titan_xp")
def _build_titan_xp() -> GpuSpec:
    return GpuSpec(
        name="TITAN Xp",
        num_sm=30,
        core_clock_hz=1.58e9,
        fp32_flops=12134 * GIGA,
        register_file_bytes=256 * KIB,
        smem_bytes=96 * KIB,
        l1_bw_per_sm=92 * GIGA,
        l2_bw=1051 * GIGA,
        dram_bw=430 * GIGA,
        l2_size=3 * MIB,
        l1_size=48 * KIB,
        l1_request_bytes=128,
        lat_l1_cycles=32.0,
        lat_l2_cycles=220.0,
        lat_dram_cycles=500.0,
    )


@register_gpu("p100", "tesla p100")
def _build_p100() -> GpuSpec:
    return GpuSpec(
        name="P100",
        num_sm=56,
        core_clock_hz=1.2e9,
        fp32_flops=8602 * GIGA,
        register_file_bytes=256 * KIB,
        smem_bytes=64 * KIB,
        l1_bw_per_sm=38.1 * GIGA,
        l2_bw=1382 * GIGA,
        dram_bw=550 * GIGA,
        l2_size=4 * MIB,
        l1_size=24 * KIB,
        l1_request_bytes=128,
        lat_l1_cycles=32.0,
        lat_l2_cycles=234.0,
        lat_dram_cycles=580.0,
    )


@register_gpu("v100", "tesla v100")
def _build_v100() -> GpuSpec:
    return GpuSpec(
        name="V100",
        num_sm=84,
        core_clock_hz=1.38e9,
        fp32_flops=14837 * GIGA,
        register_file_bytes=256 * KIB,
        smem_bytes=94 * KIB,
        l1_bw_per_sm=94.1 * GIGA,
        l2_bw=2167 * GIGA,
        dram_bw=850 * GIGA,
        l2_size=6 * MIB,
        l1_size=128 * KIB,
        l1_request_bytes=32,
        lat_l1_cycles=28.0,
        lat_l2_cycles=200.0,
        lat_dram_cycles=500.0,
    )


TITAN_XP = get_device("titanxp")
TESLA_P100 = get_device("p100")
TESLA_V100 = get_device("v100")
