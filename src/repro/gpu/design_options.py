"""GPU design options for the scaling study (Fig. 16a of the paper).

Each option multiplies a subset of the baseline (TITAN Xp) resources.  Option
columns follow the paper's table exactly; the ``cta_tile_hw`` column gives the
CTA tile height/width the GEMM kernel is assumed to use on that design (128
for the stock kernels, 256 for the "bigger tile" designs 7-9).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .spec import GpuSpec


@dataclass(frozen=True)
class DesignOption:
    """One column of the paper's Fig. 16a design-option table."""

    name: str
    num_sm: float = 1.0
    mac_bw: float = 1.0
    regs: float = 1.0
    smem_size: float = 1.0
    smem_bw: float = 1.0
    l1_bw: float = 1.0
    l2_bw: float = 1.0
    dram_bw: float = 1.0
    #: CTA tile height/width used by the GEMM kernel on this design.
    cta_tile_hw: int = 128

    def apply(self, base: GpuSpec) -> GpuSpec:
        """Scale ``base`` by this option's multipliers."""
        spec = base.scaled(
            num_sm=self.num_sm,
            mac_bw=self.mac_bw,
            regs=self.regs,
            smem_size=self.smem_size,
            smem_bw=self.smem_bw,
            l1_bw=self.l1_bw,
            l2_bw=self.l2_bw,
            dram_bw=self.dram_bw,
        )
        return spec.with_name(f"{base.name} [{self.name}]")

    def as_row(self) -> Dict[str, float]:
        """Row representation used when printing the Fig. 16a table."""
        return {
            "option": self.name,
            "NSM": self.num_sm,
            "MACBW/SM": self.mac_bw,
            "REGS/SM": self.regs,
            "SMEM_SIZE/SM": self.smem_size,
            "SMEM_BW/SM": self.smem_bw,
            "L1BW/SM": self.l1_bw,
            "L2BW": self.l2_bw,
            "DRAMBW": self.dram_bw,
            "CTA tile H,W": self.cta_tile_hw,
        }


#: The nine design options of Fig. 16a, keyed "1" .. "9".
PAPER_DESIGN_OPTIONS: Tuple[DesignOption, ...] = (
    DesignOption("1", num_sm=2.0, l2_bw=1.5, dram_bw=1.5),
    DesignOption("2", num_sm=4.0, l2_bw=2.0, dram_bw=2.0),
    DesignOption("3", mac_bw=2.0),
    DesignOption("4", mac_bw=4.0),
    DesignOption("5", mac_bw=4.0, regs=2.0, smem_size=2.0, smem_bw=2.0,
                 l1_bw=1.5, l2_bw=1.5, dram_bw=1.5),
    DesignOption("6", mac_bw=6.0, regs=2.0, smem_size=2.0, smem_bw=2.0,
                 l1_bw=2.0, l2_bw=1.5, dram_bw=2.0),
    DesignOption("7", mac_bw=8.0, regs=3.0, smem_size=3.0, smem_bw=3.0,
                 l1_bw=2.0, l2_bw=2.0, dram_bw=2.0, cta_tile_hw=256),
    DesignOption("8", num_sm=2.0, mac_bw=4.0, regs=2.0, smem_size=2.0,
                 smem_bw=2.0, l1_bw=2.0, l2_bw=2.0, dram_bw=2.0,
                 cta_tile_hw=256),
    DesignOption("9", mac_bw=8.0, regs=3.0, smem_size=3.0, smem_bw=3.0,
                 l1_bw=2.0, l2_bw=2.0, dram_bw=3.0, cta_tile_hw=256),
)

_BY_NAME: Dict[str, DesignOption] = {opt.name: opt for opt in PAPER_DESIGN_OPTIONS}


def get_design_option(name: str) -> DesignOption:
    """Return the paper design option with the given name ("1" .. "9")."""
    try:
        return _BY_NAME[str(name)]
    except KeyError:
        raise KeyError(
            f"unknown design option {name!r}; expected one of {sorted(_BY_NAME)}"
        ) from None
