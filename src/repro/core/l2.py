"""L2 cache traffic model (Section IV-B of the paper), operand-generic.

The im2col matrix contains many duplicated elements; the L1 cache (private to
an SM) captures the reuse *within* one CTA's input tile, so only the unique
data of each tile reaches L2.  The model estimates the unique footprint of a
sliding-window (im2col) tile from the address range it spans:

    Eq. 5  DIST_V  = rows * ((Wi + 2P) * Stride) / (Wi + 2P - Wf + 1)
    Eq. 6  A_DIST_V = DIST_V * cols / (Hf * Wf)
    Eq. 7  DIST_H  = ((cols-1)/Wf) * ((Wi - Wf + 1) + Stride*(Wf - cols + 1))
                   + ((Wf - cols + 1)/Wf) * (Stride * (cols - 1))
    Eq. 8  A_DIST_H = DIST_H * (1 + rows / ((Hi + 2P - Hf + 1)/Stride)^2)
    Eq. 9  T_L2 = (A_DIST_A + UNIQUE_B) * (K/blkK) * NumCTA

``rows`` is the tile extent along the *output-position* axis of the im2col
matrix and ``cols`` its extent along the *filter-offset* axis.  For the
forward pass the im2col operand sits on the M side, so (rows, cols) =
(blkM, blkK); for the wgrad pass it enters on the N side with its positions
running along K, so (rows, cols) = (blkK, blkN).  Operands without
sliding-window structure (filters, gradient matrices, 1x1 convolutions) are
all-unique: every tile element is distinct.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Union

from ..gpu.spec import GpuSpec
from .layer import ConvLayerConfig
from .tiling import CtaTile, GemmGrid
from .workload import GemmWorkload, Im2colPattern, OperandSpec, as_workload


ChannelSpanMode = Literal["paper", "at-least-one"]

PatternLike = Union[ConvLayerConfig, Im2colPattern]


@dataclass(frozen=True)
class L2ModelOptions:
    """Tunable assumptions of the L2 traffic model.

    ``channel_span_mode`` controls the Eq. 6 factor ``cols / (Hf*Wf)``:

    * ``"paper"`` applies the equation exactly as printed.
    * ``"at-least-one"`` clamps the factor to a minimum of 1, i.e. a tile
      never covers less than one vertical address range.  This is the
      ablation called out in DESIGN.md.
    """

    channel_span_mode: ChannelSpanMode = "paper"
    #: round per-tile traffic up to whole sectors (hardware moves sectors).
    quantize_to_sectors: bool = False


@dataclass(frozen=True)
class L2Traffic:
    """L2 load traffic of one GEMM workload.

    ``ifmap_*`` fields describe the M-side (``a``) operand and ``filter_*``
    fields the N-side (``b``) operand, keeping the forward-pass vocabulary.
    """

    ifmap_bytes: float
    filter_bytes: float
    #: per-main-loop unique A-operand footprint, in elements.
    ifmap_elements_per_loop: float
    #: per-main-loop B-operand footprint, in elements.
    filter_elements_per_loop: float

    @property
    def total_bytes(self) -> float:
        return self.ifmap_bytes + self.filter_bytes

    @property
    def elements_per_loop(self) -> float:
        return self.ifmap_elements_per_loop + self.filter_elements_per_loop


# ----------------------------------------------------------------------
# Sliding-window footprint equations, in (rows, cols) tile extents
# ----------------------------------------------------------------------

def _vertical_distance(pattern: PatternLike, rows: int) -> float:
    """Eq. 5: address span (in elements) along one im2col column."""
    if pattern.is_pointwise:
        # Every element of a pointwise column is unique and contiguous in M
        # only through the feature-map layout; the span equals the tile rows.
        return float(rows)
    numerator = pattern.padded_width * pattern.stride
    denominator = pattern.padded_width - pattern.filter_width + 1
    return rows * numerator / denominator


def _average_vertical_distance(pattern: PatternLike, rows: int, cols: int,
                               options: L2ModelOptions) -> float:
    """Eq. 6: vertical span averaged over the channels the tile touches."""
    dist_v = _vertical_distance(pattern, rows)
    if pattern.is_pointwise:
        return dist_v
    span = cols / pattern.filter_pixels
    if options.channel_span_mode == "at-least-one":
        span = max(1.0, span)
    return dist_v * span


def _horizontal_distance(pattern: PatternLike, cols: int) -> float:
    """Eq. 7: address span (in elements) across the tile's im2col columns."""
    if pattern.is_pointwise:
        return float(cols)
    wf = pattern.filter_width
    strd = pattern.stride
    wi = pattern.in_width
    within_row_edges = (cols - 1) / wf
    within_row_step = (wi - wf + 1) + strd * (wf - cols + 1)
    same_row = (wf - cols + 1) / wf
    same_row_step = strd * (cols - 1)
    dist_h = within_row_edges * within_row_step + same_row * same_row_step
    # The address span across neighbouring columns can never be negative nor
    # smaller than the number of distinct columns minus one would imply for a
    # dense layout; clamp at 0 to keep pathological configurations sane.
    return max(0.0, dist_h)


def _average_horizontal_distance(pattern: PatternLike, rows: int,
                                 cols: int) -> float:
    """Eq. 8: horizontal span including extra samples inside one tile."""
    dist_h = _horizontal_distance(pattern, cols)
    if pattern.is_pointwise:
        return dist_h
    rows_per_sample = ((pattern.padded_height - pattern.filter_height + 1)
                       / pattern.stride)
    sample_pixels = rows_per_sample ** 2
    if sample_pixels <= 0:
        return dist_h
    return dist_h * (1.0 + rows / sample_pixels)


def sliding_tile_unique_elements(pattern: PatternLike, rows: int, cols: int,
                                 cols_extent: int,
                                 options: L2ModelOptions = L2ModelOptions()
                                 ) -> float:
    """Unique elements one (rows x cols) sliding-window tile requests from L2.

    ``cols_extent`` caps both branches at the matrix's real extent along the
    filter-offset axis (K for a forward A operand, N for a wgrad B one): a
    tile of a degenerate GEMM with fewer offsets than ``blk_k`` can only
    touch the offsets that exist, so Eq. 5-8 are evaluated over the clamped
    tile (previously only the pointwise branch clamped, letting narrow-K
    layers claim a footprint larger than their matrix slice).
    """
    cols = min(cols, cols_extent)
    if pattern.is_pointwise:
        # No reuse within the tile: every element is unique.
        return float(rows * cols)
    unique = (_average_vertical_distance(pattern, rows, cols, options)
              + _average_horizontal_distance(pattern, rows, cols))
    # The unique footprint can never exceed the tile itself.
    return min(unique, float(rows * cols))


def offset_window_unique_elements(pattern: PatternLike, rows: int, cols: int,
                                  cols_extent: int) -> float:
    """Unique elements of a (rows positions) x (cols offsets) im2col tile.

    The wgrad B binding: tile rows run along K (consecutive output positions)
    and columns along N (filter offsets), with ``cols`` = blkN far beyond one
    filter row — outside Eq. 7's validity domain (its extrapolation collapses
    to zero there).  The footprint is instead computed directly as the
    sliding-window union: the ``cols`` offsets span ``cols / (Hf*Wf)``
    channels; within each channel a window of ``min(Hf, ceil(cols/Wf))``
    filter rows slides ``rows`` steps of ``stride`` across the input, so one
    channel contributes ``window_h * (Wf + stride*(rows-1))`` pixels.
    """
    cols = min(cols, cols_extent)
    if pattern.is_pointwise:
        return float(rows * cols)
    channels = max(1.0, cols / pattern.filter_pixels)
    window_h = min(pattern.filter_height,
                   math.ceil(cols / pattern.filter_width))
    per_channel = window_h * (pattern.filter_width
                              + pattern.stride * (rows - 1))
    return min(float(channels * per_channel), float(rows * cols))


# ----------------------------------------------------------------------
# Layer-based wrappers (forward-pass vocabulary, kept for direct Eq. tests)
# ----------------------------------------------------------------------

def vertical_distance(pattern: PatternLike, tile: CtaTile) -> float:
    """Eq. 5 for a forward blkM x blkK tile."""
    return _vertical_distance(pattern, tile.blk_m)


def average_vertical_distance(pattern: PatternLike, tile: CtaTile,
                              options: L2ModelOptions = L2ModelOptions()) -> float:
    """Eq. 6 for a forward blkM x blkK tile."""
    return _average_vertical_distance(pattern, tile.blk_m, tile.blk_k, options)


def horizontal_distance(pattern: PatternLike, tile: CtaTile) -> float:
    """Eq. 7 for a forward blkM x blkK tile."""
    return _horizontal_distance(pattern, tile.blk_k)


def average_horizontal_distance(pattern: PatternLike, tile: CtaTile) -> float:
    """Eq. 8 for a forward blkM x blkK tile."""
    return _average_horizontal_distance(pattern, tile.blk_m, tile.blk_k)


def ifmap_tile_unique_elements(layer: ConvLayerConfig, tile: CtaTile,
                               options: L2ModelOptions = L2ModelOptions()) -> float:
    """Unique IFmap elements requested from L2 per forward main loop."""
    gemm = layer.gemm_shape()
    return sliding_tile_unique_elements(layer, min(tile.blk_m, gemm.m),
                                        tile.blk_k, gemm.k, options)


def filter_tile_elements(layer: ConvLayerConfig, tile: CtaTile) -> float:
    """Filter elements requested from L2 per forward main loop (all unique)."""
    gemm = layer.gemm_shape()
    return float(min(tile.blk_n, gemm.n) * min(tile.blk_k, gemm.k))


# ----------------------------------------------------------------------
# Operand-generic estimate
# ----------------------------------------------------------------------

def operand_tile_elements(workload: GemmWorkload, operand: OperandSpec,
                          axis: str, tile: CtaTile,
                          options: L2ModelOptions = L2ModelOptions()) -> float:
    """Unique elements one operand tile requests from L2 per main loop.

    ``axis`` is ``"m"`` for the A operand (blkM x blkK tiles) and ``"n"`` for
    the B operand (blkK x blkN tiles).  Sliding-window operands use the
    Eq. 5-8 footprint with their output-position extent as ``rows``; unique
    operands request every in-range tile element.
    """
    gemm = workload.gemm
    if axis == "m":
        own_tile, own_extent = tile.blk_m, gemm.m
    elif axis == "n":
        own_tile, own_extent = tile.blk_n, gemm.n
    else:
        raise ValueError(f"unknown GEMM axis {axis!r}")

    if operand.l2_reuse == "sliding":
        if axis == "m":
            # Forward binding: rows along M (positions), cols along K.  Both
            # extents clamp to the matrix: a single-CTA / batch=1 geometry
            # with fewer output positions than blkM only slides over the
            # positions that exist.
            return sliding_tile_unique_elements(
                operand.pattern, min(tile.blk_m, gemm.m), tile.blk_k, gemm.k,
                options)
        # Wgrad binding: rows along K (positions), cols along N (offsets);
        # blkN spans many filter rows, so the footprint comes from the
        # direct window union rather than Eq. 7's one-row extrapolation.
        return offset_window_unique_elements(
            operand.pattern, min(tile.blk_k, gemm.k), tile.blk_n, gemm.n)
    if operand.l2_reuse == "unique":
        return float(min(own_tile, own_extent) * min(tile.blk_k, gemm.k))
    raise ValueError(f"unknown L2 reuse mode {operand.l2_reuse!r}")


def estimate_l2_traffic(source: Union[ConvLayerConfig, GemmWorkload],
                        grid: GemmGrid, gpu: GpuSpec,
                        options: L2ModelOptions = L2ModelOptions()) -> L2Traffic:
    """Eq. 9: total L2 load traffic of one GEMM workload, in bytes."""
    workload = as_workload(source)
    tile = grid.tile
    dtype = workload.dtype_bytes
    a_per_loop = operand_tile_elements(workload, workload.a, "m", tile, options)
    b_per_loop = operand_tile_elements(workload, workload.b, "n", tile, options)
    if options.quantize_to_sectors:
        elems_per_sector = gpu.sector_bytes / dtype
        a_per_loop = math.ceil(a_per_loop / elems_per_sector) * elems_per_sector
        b_per_loop = math.ceil(b_per_loop / elems_per_sector) * elems_per_sector

    loops = grid.main_loops_per_cta * grid.num_ctas
    return L2Traffic(
        ifmap_bytes=a_per_loop * loops * dtype,
        filter_bytes=b_per_loop * loops * dtype,
        ifmap_elements_per_loop=a_per_loop,
        filter_elements_per_loop=b_per_loop,
    )
