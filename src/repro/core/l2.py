"""L2 cache traffic model (Section IV-B of the paper).

The IFmap matrix produced by im2col contains many duplicated elements; the L1
cache (private to an SM) captures the reuse *within* one CTA's
``blkM x blkK`` input tile, so only the unique data of each tile reaches L2.
The model estimates the unique footprint of a tile from the address range it
spans:

    Eq. 5  DIST_V  = blkM * ((Wi + 2P) * Stride) / (Wi + 2P - Wf + 1)
    Eq. 6  A_DIST_V = DIST_V * blkK / (Hf * Wf)
    Eq. 7  DIST_H  = ((blkK-1)/Wf) * ((Wi - Wf + 1) + Stride*(Wf - blkK + 1))
                   + ((Wf - blkK + 1)/Wf) * (Stride * (blkK - 1))
    Eq. 8  A_DIST_H = DIST_H * (1 + blkM / ((Hi + 2P - Hf + 1)/Stride)^2)
    Eq. 9  T_L2 = (A_DIST_IFmap + DIST_Filter) * (K/blkK) * NumCTA

For 1x1 convolutions and FC layers all IFmap-matrix elements are unique so
the distances reduce to the tile height and width; filter tiles are always
unique (``blkN x blkK`` elements per main loop).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from ..gpu.spec import GpuSpec
from .layer import ConvLayerConfig
from .tiling import CtaTile, GemmGrid


ChannelSpanMode = Literal["paper", "at-least-one"]


@dataclass(frozen=True)
class L2ModelOptions:
    """Tunable assumptions of the L2 traffic model.

    ``channel_span_mode`` controls the Eq. 6 factor ``blkK / (Hf*Wf)``:

    * ``"paper"`` applies the equation exactly as printed.
    * ``"at-least-one"`` clamps the factor to a minimum of 1, i.e. a tile
      never covers less than one vertical address range.  This is the
      ablation called out in DESIGN.md.
    """

    channel_span_mode: ChannelSpanMode = "paper"
    #: round per-tile traffic up to whole sectors (hardware moves sectors).
    quantize_to_sectors: bool = False


@dataclass(frozen=True)
class L2Traffic:
    """L2 load traffic of one convolution layer."""

    ifmap_bytes: float
    filter_bytes: float
    #: per-main-loop unique IFmap footprint, in elements.
    ifmap_elements_per_loop: float
    #: per-main-loop filter footprint, in elements.
    filter_elements_per_loop: float

    @property
    def total_bytes(self) -> float:
        return self.ifmap_bytes + self.filter_bytes

    @property
    def elements_per_loop(self) -> float:
        return self.ifmap_elements_per_loop + self.filter_elements_per_loop


def vertical_distance(layer: ConvLayerConfig, tile: CtaTile) -> float:
    """Eq. 5: address span (in elements) along one IFmap-matrix column."""
    if layer.is_pointwise:
        # Every element of a pointwise column is unique and contiguous in M
        # only through the feature-map layout; the span equals the tile height.
        return float(tile.blk_m)
    numerator = layer.padded_width * layer.stride
    denominator = layer.padded_width - layer.filter_width + 1
    return tile.blk_m * numerator / denominator


def average_vertical_distance(layer: ConvLayerConfig, tile: CtaTile,
                              options: L2ModelOptions = L2ModelOptions()) -> float:
    """Eq. 6: vertical span averaged over the channels a blkK tile touches."""
    dist_v = vertical_distance(layer, tile)
    if layer.is_pointwise:
        return dist_v
    span = tile.blk_k / layer.filter_pixels
    if options.channel_span_mode == "at-least-one":
        span = max(1.0, span)
    return dist_v * span


def horizontal_distance(layer: ConvLayerConfig, tile: CtaTile) -> float:
    """Eq. 7: address span (in elements) across the blkK columns of a tile."""
    if layer.is_pointwise:
        return float(tile.blk_k)
    wf = layer.filter_width
    blk_k = tile.blk_k
    strd = layer.stride
    wi = layer.in_width
    within_row_edges = (blk_k - 1) / wf
    within_row_step = (wi - wf + 1) + strd * (wf - blk_k + 1)
    same_row = (wf - blk_k + 1) / wf
    same_row_step = strd * (blk_k - 1)
    dist_h = within_row_edges * within_row_step + same_row * same_row_step
    # The address span across neighbouring columns can never be negative nor
    # smaller than the number of distinct columns minus one would imply for a
    # dense layout; clamp at 0 to keep pathological configurations sane.
    return max(0.0, dist_h)


def average_horizontal_distance(layer: ConvLayerConfig, tile: CtaTile) -> float:
    """Eq. 8: horizontal span including extra samples inside one blkM tile."""
    dist_h = horizontal_distance(layer, tile)
    if layer.is_pointwise:
        return dist_h
    rows_per_sample = (layer.padded_height - layer.filter_height + 1) / layer.stride
    sample_pixels = rows_per_sample ** 2
    if sample_pixels <= 0:
        return dist_h
    return dist_h * (1.0 + tile.blk_m / sample_pixels)


def ifmap_tile_unique_elements(layer: ConvLayerConfig, tile: CtaTile,
                               options: L2ModelOptions = L2ModelOptions()) -> float:
    """Unique IFmap elements requested from L2 per main-loop iteration."""
    if layer.is_pointwise:
        # No reuse within the tile: every element is unique.
        return float(tile.blk_m * min(tile.blk_k, layer.gemm_shape().k))
    unique = (average_vertical_distance(layer, tile, options)
              + average_horizontal_distance(layer, tile))
    # The unique footprint can never exceed the tile itself.
    return min(unique, float(tile.blk_m * tile.blk_k))


def filter_tile_elements(layer: ConvLayerConfig, tile: CtaTile) -> float:
    """Filter elements requested from L2 per main-loop iteration (all unique)."""
    gemm = layer.gemm_shape()
    return float(min(tile.blk_n, gemm.n) * min(tile.blk_k, gemm.k))


def estimate_l2_traffic(layer: ConvLayerConfig, grid: GemmGrid, gpu: GpuSpec,
                        options: L2ModelOptions = L2ModelOptions()) -> L2Traffic:
    """Eq. 9: total L2 load traffic of the layer, in bytes."""
    tile = grid.tile
    ifmap_per_loop = ifmap_tile_unique_elements(layer, tile, options)
    filter_per_loop = filter_tile_elements(layer, tile)
    if options.quantize_to_sectors:
        elems_per_sector = gpu.sector_bytes / layer.dtype_bytes
        ifmap_per_loop = math.ceil(ifmap_per_loop / elems_per_sector) * elems_per_sector
        filter_per_loop = math.ceil(filter_per_loop / elems_per_sector) * elems_per_sector

    loops = grid.main_loops_per_cta * grid.num_ctas
    ifmap_bytes = ifmap_per_loop * loops * layer.dtype_bytes
    filter_bytes = filter_per_loop * loops * layer.dtype_bytes
    return L2Traffic(
        ifmap_bytes=ifmap_bytes,
        filter_bytes=filter_bytes,
        ifmap_elements_per_loop=ifmap_per_loop,
        filter_elements_per_loop=filter_per_loop,
    )
