"""Batched (structure-of-arrays) evaluation of the DeLTA analytic model.

The scalar pipeline in :mod:`repro.core.performance` evaluates one
(GPU design, workload) pair per call; a design-space sweep therefore pays the
full Python interpretation cost per point.  This module evaluates a *batch of
GPU designs at once* as NumPy structure-of-arrays while keeping the scalar
path as the bit-identical reference (the same vectorize-with-scalar-reference
contract the simulator's ``vectorized=False`` mode established):

* :class:`BatchedGpuSpec` holds one array per scaled :class:`GpuSpec`
  resource, with each element derived exactly the way
  :meth:`GpuSpec.scaled` + :meth:`DesignOption.apply` derive the scalar spec
  (including the ``!= 1.0`` guards and ``int(round(...))`` quantization).
* :class:`WorkloadStack` packs the GPU-independent scalars of W lowered
  workloads (per-loop traffic volumes, tile geometry, occupancy footprints)
  into (W, 1) column arrays, one stack per CTA-tile family.  The *traffic*
  model needs no vectorization at all: its only GPU inputs are
  ``l1_request_bytes`` and ``sector_bytes``, which :meth:`GpuSpec.scaled`
  never changes, so one scalar traffic estimate per (workload, tile family)
  covers every design in the batch.
* :func:`estimate_grid` vectorizes the performance model (Eq. 11-18 plus
  prologue/epilogue) over the full (workload x design) grid in one shot and
  classifies the bottleneck of every cell.

Bit-identity notes: every candidate time is computed with the exact same
float64 operations *in the exact same order* as the scalar expressions, the
candidate stacking order matches the scalar dict's insertion order (so
``np.argmax``'s first-max tie-break equals ``max(dict, key=...)``'s), and
integer quantization uses ``np.rint`` (round-half-even, same as Python's
``round``).
"""

from __future__ import annotations

import operator
from dataclasses import dataclass, fields
from typing import Dict, Sequence, Tuple

import numpy as np

from ..gpu.design_options import DesignOption
from ..gpu.spec import GpuSpec
from .bottleneck import Bottleneck
from .traffic import TrafficEstimate, TrafficModel
from .workload import GemmWorkload

#: candidate stacking order — must match the insertion order of the scalar
#: ``candidates`` dict in :meth:`PerformanceModel.estimate` so the batched
#: first-max ``argmax`` ties break exactly like the scalar ``max(dict)``.
CANDIDATE_ORDER: Tuple[Bottleneck, ...] = (
    Bottleneck.MAC_BW,
    Bottleneck.SMEM_BW,
    Bottleneck.DRAM_LAT,
    Bottleneck.L1_BW,
    Bottleneck.L2_BW,
    Bottleneck.DRAM_BW,
)

#: supported CTA tile height/width families (see ``select_cta_tile``).
CTA_TILE_FAMILIES: Tuple[int, ...] = (128, 256)

#: one C-level read of every scaled DesignOption field (matrix column order).
_OPTION_FIELDS = operator.attrgetter(
    "num_sm", "mac_bw", "regs", "smem_size", "smem_bw",
    "l1_bw", "l2_bw", "dram_bw", "cta_tile_hw")


def _scaled_int(base: int, mult: np.ndarray) -> np.ndarray:
    """Vectorized ``int(round(base * mult))`` (round-half-even, like Python)."""
    return np.rint(base * mult).astype(np.int64)


@dataclass(frozen=True)
class BatchedGpuSpec:
    """Structure-of-arrays view of N scaled GPU designs over one baseline.

    Every array has one element per design, derived from ``base`` exactly as
    :meth:`DesignOption.apply` derives the scalar :class:`GpuSpec` — the
    scalar ``GpuSpec.scaled`` path stays the bit-identical reference.
    Unscaled resources (clock, latencies, request/sector geometry) stay
    scalars on ``base``.
    """

    base: GpuSpec
    #: the raw per-design multipliers (used by e.g. the cost proxy).
    num_sm_mult: np.ndarray
    mac_bw_mult: np.ndarray
    regs_mult: np.ndarray
    smem_size_mult: np.ndarray
    smem_bw_mult: np.ndarray
    l1_bw_mult: np.ndarray
    l2_bw_mult: np.ndarray
    dram_bw_mult: np.ndarray
    #: True where the design's GEMM kernel uses the 256-wide CTA tile.
    cta256: np.ndarray
    #: scaled resources (same semantics as the GpuSpec fields).
    num_sm: np.ndarray
    fp32_flops: np.ndarray
    register_file_bytes: np.ndarray
    smem_bytes: np.ndarray
    smem_st_bytes_per_cycle: np.ndarray
    smem_ld_bytes_per_cycle: np.ndarray
    l1_bw_per_sm: np.ndarray
    l2_bw: np.ndarray
    dram_bw: np.ndarray

    def __len__(self) -> int:
        return int(self.num_sm.shape[0])

    @classmethod
    def from_options(cls, base: GpuSpec,
                     options: Sequence[DesignOption]) -> "BatchedGpuSpec":
        """Batch N design options over one baseline GPU.

        Replicates :meth:`GpuSpec.scaled` element-wise: ``num_sm`` is only
        requantized when its multiplier differs from 1.0 (the scalar guard),
        the MAC multiplier compounds ``mac_bw * num_sm`` multipliers, and
        capacity fields quantize with round-half-even.
        """
        # One Python pass over the options, one float matrix, column views.
        matrix = np.array([_OPTION_FIELDS(opt) for opt in options],
                          dtype=np.float64).reshape(len(options), 9)
        (num_sm_mult, mac_bw_mult, regs_mult, smem_size_mult, smem_bw_mult,
         l1_bw_mult, l2_bw_mult, dram_bw_mult, tiles_f) = matrix.T
        tiles = tiles_f.astype(np.int64)
        unsupported = set(tiles.tolist()) - set(CTA_TILE_FAMILIES)
        if unsupported:
            raise ValueError(
                f"unsupported CTA tile height/width {sorted(unsupported)}")

        # num_sm: quantized only when actually scaled (scalar `!= 1.0` guard).
        num_sm = np.where(
            num_sm_mult != 1.0,
            np.maximum(1, _scaled_int(base.num_sm, num_sm_mult)),
            base.num_sm).astype(np.int64)
        # MAC throughput compounds per-SM width and SM count multipliers.
        mac_mult = mac_bw_mult * num_sm_mult
        fp32_flops = np.where(mac_mult != 1.0,
                              base.fp32_flops * mac_mult, base.fp32_flops)
        return cls(
            base=base,
            num_sm_mult=num_sm_mult,
            mac_bw_mult=mac_bw_mult,
            regs_mult=regs_mult,
            smem_size_mult=smem_size_mult,
            smem_bw_mult=smem_bw_mult,
            l1_bw_mult=l1_bw_mult,
            l2_bw_mult=l2_bw_mult,
            dram_bw_mult=dram_bw_mult,
            cta256=tiles == 256,
            num_sm=num_sm,
            fp32_flops=fp32_flops,
            register_file_bytes=_scaled_int(base.register_file_bytes,
                                            regs_mult),
            smem_bytes=_scaled_int(base.smem_bytes, smem_size_mult),
            smem_st_bytes_per_cycle=(base.smem_st_bytes_per_cycle
                                     * smem_bw_mult),
            smem_ld_bytes_per_cycle=(base.smem_ld_bytes_per_cycle
                                     * smem_bw_mult),
            l1_bw_per_sm=base.l1_bw_per_sm * l1_bw_mult,
            l2_bw=base.l2_bw * l2_bw_mult,
            dram_bw=base.dram_bw * dram_bw_mult,
        )


@dataclass(frozen=True)
class WorkloadStack:
    """GPU-independent scalars of W workloads as (W, 1) column arrays.

    One stack per CTA-tile family: the tile geometry (and hence the traffic)
    of a workload depends on which kernel family the design uses, so a stack
    is built from the W scalar :class:`TrafficEstimate` objects of one
    family.  Broadcasting a stack against a :class:`BatchedGpuSpec`'s (N,)
    rows yields the full (W, N) evaluation grid in one set of array ops.
    """

    #: per-main-loop traffic volumes (Eq. 11 inputs).
    l1_bytes_per_loop: np.ndarray
    l2_bytes_per_loop: np.ndarray
    dram_bytes_per_loop: np.ndarray
    #: grid geometry.
    main_loops_per_cta: np.ndarray
    num_ctas: np.ndarray
    #: tile quantities (dtype-scaled bytes / MACs).
    macs_per_loop: np.ndarray
    smem_store_bytes: np.ndarray
    smem_load_bytes: np.ndarray
    input_bytes: np.ndarray
    output_bytes: np.ndarray
    smem_bytes_per_cta: np.ndarray
    registers_bytes_per_cta: np.ndarray
    #: whole-workload traffic totals (for metric accumulation).
    dram_bytes: np.ndarray
    l2_bytes: np.ndarray
    #: MAC work per workload (design- and family-independent), shape (W,).
    flops: np.ndarray

    @classmethod
    def from_traffic(cls, traffics: Sequence[TrafficEstimate]
                     ) -> "WorkloadStack":
        def col(values, dtype) -> np.ndarray:
            return np.array(values, dtype=dtype).reshape(-1, 1)

        tiles = [traffic.grid.tile for traffic in traffics]
        dtypes = [traffic.workload.dtype_bytes for traffic in traffics]
        return cls(
            l1_bytes_per_loop=col([t.l1_bytes_per_loop for t in traffics],
                                  np.float64),
            l2_bytes_per_loop=col([t.l2_bytes_per_loop for t in traffics],
                                  np.float64),
            dram_bytes_per_loop=col([t.dram_bytes_per_loop for t in traffics],
                                    np.float64),
            main_loops_per_cta=col([t.grid.main_loops_per_cta
                                    for t in traffics], np.int64),
            num_ctas=col([t.grid.num_ctas for t in traffics], np.int64),
            macs_per_loop=col([tile.macs_per_loop for tile in tiles],
                              np.int64),
            smem_store_bytes=col(
                [(tile.blk_m + tile.blk_n) * tile.blk_k * dtype
                 for tile, dtype in zip(tiles, dtypes)], np.int64),
            smem_load_bytes=col(
                [(tile.warp_m + tile.warp_n) * tile.blk_k * tile.num_warps
                 * dtype for tile, dtype in zip(tiles, dtypes)], np.int64),
            input_bytes=col([tile.input_elements_per_loop * dtype
                             for tile, dtype in zip(tiles, dtypes)],
                            np.int64),
            output_bytes=col([tile.output_elements * dtype
                              for tile, dtype in zip(tiles, dtypes)],
                             np.int64),
            smem_bytes_per_cta=col(
                [max(1, tile.smem_bytes_per_cta(dtype))
                 for tile, dtype in zip(tiles, dtypes)], np.int64),
            registers_bytes_per_cta=col(
                [max(1, tile.registers_bytes_per_cta(dtype))
                 for tile, dtype in zip(tiles, dtypes)], np.int64),
            dram_bytes=col([t.dram_bytes for t in traffics], np.float64),
            l2_bytes=col([t.l2_bytes for t in traffics], np.float64),
            flops=np.array([t.workload.flops for t in traffics],
                           dtype=np.int64),
        )


def build_stacks(traffic_grid: Sequence[Dict[int, TrafficEstimate]]
                 ) -> Dict[int, "WorkloadStack"]:
    """One :class:`WorkloadStack` per CTA-tile family for W workloads.

    ``traffic_grid`` holds one ``{tile_hw: TrafficEstimate}`` dict per
    workload (see :func:`traffic_by_family`).  Build once per workload
    signature and reuse across batches — the stacks are GPU-independent.
    """
    return {hw: WorkloadStack.from_traffic([grid[hw] for grid in traffic_grid])
            for hw in CTA_TILE_FAMILIES}


def _performance_grid(gpus: BatchedGpuSpec, stack: WorkloadStack
                      ) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized :meth:`PerformanceModel.estimate` over a (W, N) grid.

    Returns ``(times, bottleneck_index)``, both (W, N).  Each candidate
    expression reproduces the scalar operation order exactly; see the module
    docstring for the bit-identity contract.
    """
    base = gpus.base
    clock = base.core_clock_hz

    num_sm = gpus.num_sm
    l1_bw = gpus.l1_bw_per_sm
    l2_bw_per_sm = gpus.l2_bw / num_sm
    dram_bw_per_sm = gpus.dram_bw / num_sm
    smem_st_bw = gpus.smem_st_bytes_per_cycle * clock
    smem_ld_bw = gpus.smem_ld_bytes_per_cycle * clock

    # Stream times (Eq. 11-13).
    lat_l1 = base.lat_l1_cycles / clock
    lat_l2 = base.lat_l2_cycles / clock
    lat_dram = base.lat_dram_cycles / clock
    t_l1 = lat_l1 + stack.l1_bytes_per_loop / l1_bw
    t_l2 = lat_l2 + stack.l2_bytes_per_loop / l2_bw_per_sm
    t_dram = lat_dram + stack.dram_bytes_per_loop / dram_bw_per_sm
    gls = np.maximum(np.maximum(t_l1, t_l2), t_dram)

    sas = (stack.smem_store_bytes / smem_st_bw
           + stack.smem_load_bytes / smem_ld_bw)
    macs_per_second_per_sm = (gpus.fp32_flops / 2.0) / num_sm
    cs = stack.macs_per_loop / macs_per_second_per_sm

    # Pure bandwidth-transfer times (Eq. 18 inputs).
    bw_l1 = stack.l1_bytes_per_loop / l1_bw
    bw_l2 = stack.l2_bytes_per_loop / l2_bw_per_sm
    bw_dram = stack.dram_bytes_per_loop / dram_bw_per_sm

    # Occupancy (active_ctas_per_sm / ctas_per_sm, integer math).
    by_smem = gpus.smem_bytes // stack.smem_bytes_per_cta
    by_regs = gpus.register_file_bytes // stack.registers_bytes_per_cta
    active_cap = np.maximum(
        1, np.minimum(np.minimum(by_smem, by_regs), base.max_ctas_per_sm))
    loops = stack.main_loops_per_cta
    ctas_per_sm = np.ceil(stack.num_ctas / num_sm).astype(np.int64)
    active = np.minimum(active_cap, ctas_per_sm)

    # Prologue / epilogue (Eq. 14, 15).
    dram_term = lat_dram + stack.input_bytes / dram_bw_per_sm
    smem_store_term = (base.lat_smem_cycles / clock
                       + stack.input_bytes / smem_st_bw)
    smem_load_term = stack.smem_load_bytes / smem_ld_bw
    t_prologue = dram_term + smem_store_term + smem_load_term
    t_epilogue = stack.output_bytes / gpus.dram_bw

    # Candidates (Eq. 16-18), in CANDIDATE_ORDER.
    waves_per_sm = np.maximum(1.0, ctas_per_sm / active)
    candidates = (
        t_prologue + (cs * loops + t_epilogue) * ctas_per_sm,
        t_prologue + (sas * loops + t_epilogue) * ctas_per_sm,
        t_prologue + ((gls + np.maximum(cs, sas)) * loops
                      + t_epilogue) * waves_per_sm,
        t_prologue + (bw_l1 * loops
                      + stack.output_bytes / l1_bw) * ctas_per_sm,
        t_prologue + (bw_l2 * loops
                      + stack.output_bytes / gpus.l2_bw) * ctas_per_sm,
        t_prologue + (bw_dram * loops + t_epilogue) * ctas_per_sm,
    )
    # Running max + descending first-match scan: equivalent to stacking and
    # argmax-ing (first max wins on ties, like the scalar ``max(dict)``), but
    # every pass is contiguous instead of strided across a stacked axis.
    times = candidates[0]
    for candidate in candidates[1:]:
        times = np.maximum(times, candidate)
    index = np.zeros(times.shape, dtype=np.int64)
    for i in range(len(candidates) - 1, -1, -1):
        index = np.where(candidates[i] == times, i, index)
    return times, index


def traffic_by_family(base_gpu: GpuSpec, workload: GemmWorkload
                      ) -> Dict[int, TrafficEstimate]:
    """Scalar traffic of one workload for each CTA-tile family.

    Computed against the *baseline* GPU: traffic only reads
    ``l1_request_bytes``/``sector_bytes``, which design scaling never
    changes, so these estimates are valid for every design in a batch.
    """
    return {hw: TrafficModel(gpu=base_gpu, cta_tile_hw=hw).estimate(workload)
            for hw in CTA_TILE_FAMILIES}


@dataclass(frozen=True)
class BatchedEstimates:
    """Batched counterpart of W scalar :class:`ExecutionEstimate` sweeps.

    ``times``/``bottleneck_index``/traffic arrays are (W, N): one row per
    workload in evaluation order, one column per design of the
    :class:`BatchedGpuSpec`.
    """

    #: execution time (seconds) of the most-loaded SM.
    times: np.ndarray
    #: index into :data:`CANDIDATE_ORDER` of the bounding resource.
    bottleneck_index: np.ndarray
    #: DRAM / L2 traffic (bytes); traffic depends on the design only through
    #: its CTA tile family, so rows hold the per-family scalar selected per
    #: design.
    dram_bytes: np.ndarray
    l2_bytes: np.ndarray
    #: MAC work per workload (design-independent), shape (W,).
    flops: np.ndarray

    def bottlenecks(self, workload_row: int = 0) -> list:
        """Per-design bottleneck labels of one workload row."""
        return [CANDIDATE_ORDER[i]
                for i in self.bottleneck_index[workload_row].tolist()]


def _take(gpus: BatchedGpuSpec, idx: np.ndarray) -> BatchedGpuSpec:
    """Design-column subset of a batch (same baseline GPU)."""
    return BatchedGpuSpec(base=gpus.base, **{
        f.name: getattr(gpus, f.name)[idx]
        for f in fields(BatchedGpuSpec) if f.name != "base"})


def estimate_grid(gpus: BatchedGpuSpec,
                  traffic_grid: Sequence[Dict[int, TrafficEstimate]] = None,
                  *, stacks: Dict[int, WorkloadStack] = None
                  ) -> BatchedEstimates:
    """Evaluate W workloads x N designs in one vectorized pass.

    ``traffic_grid`` holds, per workload, the scalar traffic estimates keyed
    by CTA-tile family (see :func:`traffic_by_family`); pass prebuilt
    ``stacks`` instead to amortize the packing across batches.  Results are
    bit-identical to W x N scalar :meth:`PerformanceModel.estimate` calls.
    """
    if stacks is None:
        if traffic_grid is None:
            raise ValueError("need traffic_grid or stacks")
        stacks = build_stacks(traffic_grid)
    cta256 = gpus.cta256
    num_256 = int(np.count_nonzero(cta256))
    # Evaluate each design column under its own family only; the grid math
    # is elementwise over designs, so computing a family on a column subset
    # yields bitwise the same values as computing it everywhere and
    # selecting afterwards — at half the array work for mixed batches.
    if num_256 == 0:
        times, index = _performance_grid(gpus, stacks[128])
        dram, l2 = stacks[128].dram_bytes, stacks[128].l2_bytes
        shape = times.shape
        return BatchedEstimates(
            times=times, bottleneck_index=index,
            dram_bytes=np.broadcast_to(dram, shape),
            l2_bytes=np.broadcast_to(l2, shape),
            flops=stacks[128].flops)
    if num_256 == len(gpus):
        times, index = _performance_grid(gpus, stacks[256])
        shape = times.shape
        return BatchedEstimates(
            times=times, bottleneck_index=index,
            dram_bytes=np.broadcast_to(stacks[256].dram_bytes, shape),
            l2_bytes=np.broadcast_to(stacks[256].l2_bytes, shape),
            flops=stacks[128].flops)
    idx_128 = np.nonzero(~cta256)[0]
    idx_256 = np.nonzero(cta256)[0]
    times_128, index_128 = _performance_grid(_take(gpus, idx_128),
                                             stacks[128])
    times_256, index_256 = _performance_grid(_take(gpus, idx_256),
                                             stacks[256])
    shape = (times_128.shape[0], len(gpus))
    times = np.empty(shape, dtype=times_128.dtype)
    times[:, idx_128] = times_128
    times[:, idx_256] = times_256
    index = np.empty(shape, dtype=index_128.dtype)
    index[:, idx_128] = index_128
    index[:, idx_256] = index_256
    dram = np.empty(shape, dtype=np.promote_types(
        stacks[128].dram_bytes.dtype, stacks[256].dram_bytes.dtype))
    dram[:, idx_128] = stacks[128].dram_bytes
    dram[:, idx_256] = stacks[256].dram_bytes
    l2 = np.empty(shape, dtype=np.promote_types(
        stacks[128].l2_bytes.dtype, stacks[256].l2_bytes.dtype))
    l2[:, idx_128] = stacks[128].l2_bytes
    l2[:, idx_256] = stacks[256].l2_bytes
    return BatchedEstimates(
        times=times, bottleneck_index=index,
        dram_bytes=dram, l2_bytes=l2, flops=stacks[128].flops)


def estimate_workload_batch(gpus: BatchedGpuSpec, workload: GemmWorkload,
                            traffic_by_tile: Dict[int, TrafficEstimate] = None
                            ) -> BatchedEstimates:
    """Single-workload convenience wrapper around :func:`estimate_grid`."""
    if traffic_by_tile is None:
        traffic_by_tile = traffic_by_family(gpus.base, workload)
    return estimate_grid(gpus, [traffic_by_tile])
