"""DeLTA performance model (Section V of the paper).

Given the per-main-loop traffic volumes produced by the traffic model and the
GPU specification, the performance model evaluates the execution time of a
convolution layer under each potential resource bottleneck (Fig. 10) and
reports the largest one together with its bottleneck label:

* **Eq. 16** — compute / shared-memory bound (cases 1 and 3): per-SM time is
  the sum of ``max(tCS, tSAS)`` over every main loop of every CTA the SM runs.
* **Eq. 17** — DRAM (global load) latency bound (case 2): too few active CTAs
  to hide ``tGLS``, so each wave of active CTAs pays the full load latency.
* **Eq. 18** — memory bandwidth bound (case 4): the per-loop transfer time of
  the saturated level dominates; evaluated separately for L1, L2 and DRAM.

The prologue (Eq. 14) is charged once and the epilogue (Eq. 15) once per CTA.
The per-SM CTA count uses the most-loaded SM (``ceil(NumCTA / NumSM)``)
because that SM determines the layer's completion time.

Note on Eq. 14: the paper's printed equation uses ``blkM x blkN`` for the
prologue volume; the prologue actually stages the *input* tiles
(``(blkM + blkN) x blkK`` elements), which is what this implementation uses.
The difference is negligible (the prologue is charged once per layer).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Union

from ..gpu.spec import GpuSpec
from .bottleneck import Bottleneck
from .layer import ConvLayerConfig, LayerConfig
from .streams import StreamTimes, compute_stream_times
from .tiling import active_ctas_per_sm
from .traffic import TrafficEstimate, TrafficModel
from .workload import GemmWorkload, as_workload


@dataclass(frozen=True)
class ExecutionEstimate:
    """Predicted execution time of one GEMM workload on one GPU."""

    workload: GemmWorkload
    gpu: GpuSpec
    traffic: TrafficEstimate
    streams: StreamTimes
    #: execution time in seconds of the most-loaded SM (the layer's runtime).
    time_seconds: float
    #: the resource that bounds the execution time.
    bottleneck: Bottleneck
    #: per-candidate execution times (seconds) keyed by bottleneck label.
    candidates: Dict[Bottleneck, float]
    #: CTAs resident per SM used by the latency-hiding analysis.
    active_ctas: int
    #: CTAs executed by the most-loaded SM.
    ctas_per_sm: int

    @property
    def layer(self) -> LayerConfig:
        """The layer the workload was lowered from."""
        return self.workload.layer

    @property
    def pass_kind(self) -> str:
        return self.workload.pass_kind

    @property
    def cycles(self) -> float:
        """Execution time converted to core clock cycles."""
        return self.time_seconds * self.gpu.core_clock_hz

    @property
    def throughput_tflops(self) -> float:
        """Achieved FP32 throughput in TFLOP/s."""
        if self.time_seconds <= 0:
            return 0.0
        return self.workload.flops / self.time_seconds / 1e12

    @property
    def mac_efficiency(self) -> float:
        """Achieved fraction of the device's peak MAC throughput."""
        peak = self.gpu.fp32_flops
        return min(1.0, self.workload.flops / (self.time_seconds * peak))


@dataclass(frozen=True)
class PerformanceModel:
    """DeLTA's execution time and bottleneck model (Section V)."""

    gpu: GpuSpec
    traffic_model: Optional[TrafficModel] = None

    def _traffic_model(self) -> TrafficModel:
        return self.traffic_model or TrafficModel(gpu=self.gpu)

    # ------------------------------------------------------------------
    # Prologue / epilogue (Eq. 14, 15)
    # ------------------------------------------------------------------
    def _prologue_time(self, traffic: TrafficEstimate,
                       streams: StreamTimes) -> float:
        gpu = self.gpu
        tile = traffic.grid.tile
        dtype = traffic.workload.dtype_bytes
        clock = gpu.core_clock_hz
        input_bytes = tile.input_elements_per_loop * dtype
        warp_load_bytes = ((tile.warp_m + tile.warp_n) * tile.blk_k
                           * tile.num_warps * dtype)
        dram_term = (gpu.lat_dram_cycles / clock
                     + input_bytes / (gpu.dram_bw / gpu.num_sm))
        smem_store_term = (gpu.lat_smem_cycles / clock
                           + input_bytes / gpu.smem_st_bw_per_sm)
        smem_load_term = warp_load_bytes / gpu.smem_ld_bw_per_sm
        return dram_term + smem_store_term + smem_load_term

    def _epilogue_time(self, traffic: TrafficEstimate,
                       bottleneck_bw: Optional[float] = None) -> float:
        tile = traffic.grid.tile
        dtype = traffic.workload.dtype_bytes
        output_bytes = tile.output_elements * dtype
        bw = bottleneck_bw if bottleneck_bw is not None else self.gpu.dram_bw
        return output_bytes / bw

    # ------------------------------------------------------------------
    # Main estimate
    # ------------------------------------------------------------------
    def estimate(self, source: Union[LayerConfig, GemmWorkload],
                 traffic: Optional[TrafficEstimate] = None) -> ExecutionEstimate:
        """Predict execution time and bottleneck for one workload."""
        gpu = self.gpu
        workload = as_workload(source)
        if traffic is None:
            traffic = self._traffic_model().estimate(workload)
        streams = compute_stream_times(traffic, gpu)
        grid = traffic.grid
        tile = grid.tile

        loops = grid.main_loops_per_cta
        num_ctas = grid.num_ctas
        ctas_per_sm = math.ceil(num_ctas / gpu.num_sm)
        active = min(active_ctas_per_sm(tile, gpu, workload.dtype_bytes),
                     ctas_per_sm)

        t_prologue = self._prologue_time(traffic, streams)
        t_epilogue = self._epilogue_time(traffic)

        candidates: Dict[Bottleneck, float] = {}

        # Eq. 16 -- compute or shared-memory bound (cases 1 and 3).
        t_cs_total = t_prologue + (streams.cs * loops + t_epilogue) * ctas_per_sm
        t_sas_total = t_prologue + (streams.sas * loops + t_epilogue) * ctas_per_sm
        candidates[Bottleneck.MAC_BW] = t_cs_total
        candidates[Bottleneck.SMEM_BW] = t_sas_total

        # Eq. 17 -- global load latency bound (case 2): each wave of active
        # CTAs exposes a full tGLS per loop.
        waves_per_sm = max(1.0, ctas_per_sm / active)
        t_lat_total = (t_prologue
                       + ((streams.gls + streams.compute_or_smem) * loops
                          + t_epilogue) * waves_per_sm)
        candidates[Bottleneck.DRAM_LAT] = t_lat_total

        # Eq. 18 -- memory bandwidth bound (case 4), one per level.
        level_bw = {
            Bottleneck.L1_BW: (streams.l1_bw, gpu.l1_bw_per_sm),
            Bottleneck.L2_BW: (streams.l2_bw, gpu.l2_bw),
            Bottleneck.DRAM_BW: (streams.dram_bw, gpu.dram_bw),
        }
        for label, (per_loop, epilogue_bw) in level_bw.items():
            t_epi = self._epilogue_time(traffic, bottleneck_bw=epilogue_bw)
            candidates[label] = (t_prologue
                                 + (per_loop * loops + t_epi) * ctas_per_sm)

        bottleneck = max(candidates, key=lambda key: candidates[key])
        time_seconds = candidates[bottleneck]

        return ExecutionEstimate(
            workload=workload,
            gpu=gpu,
            traffic=traffic,
            streams=streams,
            time_seconds=time_seconds,
            bottleneck=bottleneck,
            candidates=dict(candidates),
            active_ctas=active,
            ctas_per_sm=ctas_per_sm,
        )
