"""Layer configurations and their GEMM geometry.

A convolution layer (Section II-B of the paper) is described by the mini-batch
size ``B``, the input feature map dimensions ``Ci x Hi x Wi``, the filter
dimensions ``Co x Ci x Hf x Wf``, the stride and the zero padding.  The im2col
algorithm (Section II-C) lowers the convolution to a single GEMM of shape

    M x N x K  with  M = B*Ho*Wo,  N = Co,  K = Ci*Hf*Wf.

The module also carries the GEMM-native layer families that need no im2col
detour at all:

* :class:`LinearLayerConfig` — a fully-connected layer ``Y = X . W^T`` with
  dense row-major operands, lowered to one dense GEMM per training pass;
* :class:`BatchedGemmLayerConfig` — ``groups`` independent dense GEMMs of one
  shape (the attention score ``Q . K^T`` and context ``P . V`` products,
  one instance per (sample, head)).

(The seed represented FC layers as 1x1 convolutions over a 1x1 feature map;
that spelling still works, but the dense lowering models the actual row-major
activation layout instead of the BCHW detour.)
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Tuple, Union

from ..gpu.spec import FP32_BYTES


@dataclass(frozen=True)
class ConvLayerConfig:
    """Configuration of a single convolution layer.

    Attributes use the paper's notation: ``i`` for input feature maps, ``o``
    for output feature maps and ``f`` for filters.
    """

    name: str
    #: mini-batch size (number of samples processed in parallel).
    batch: int
    #: number of input channels (Ci).
    in_channels: int
    #: input feature map height (Hi) and width (Wi), *without* padding.
    in_height: int
    in_width: int
    #: number of output channels (Co).
    out_channels: int
    #: filter height (Hf) and width (Wf).
    filter_height: int
    filter_width: int
    stride: int = 1
    padding: int = 0
    #: bytes per tensor element (FP32 for training, per the paper).
    dtype_bytes: int = FP32_BYTES

    def __post_init__(self) -> None:
        positive = {
            "batch": self.batch,
            "in_channels": self.in_channels,
            "in_height": self.in_height,
            "in_width": self.in_width,
            "out_channels": self.out_channels,
            "filter_height": self.filter_height,
            "filter_width": self.filter_width,
            "stride": self.stride,
            "dtype_bytes": self.dtype_bytes,
        }
        for attr, value in positive.items():
            if value <= 0:
                raise ValueError(f"{attr} must be positive, got {value}")
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")
        if self.filter_height > self.padded_height or self.filter_width > self.padded_width:
            raise ValueError(
                f"filter ({self.filter_height}x{self.filter_width}) larger than padded "
                f"input ({self.padded_height}x{self.padded_width}) for layer {self.name!r}"
            )

    # ------------------------------------------------------------------
    # Convenience constructors
    # ------------------------------------------------------------------
    @classmethod
    def square(cls, name: str, batch: int, in_channels: int, in_size: int,
               out_channels: int, filter_size: int, stride: int = 1,
               padding: int = 0) -> "ConvLayerConfig":
        """Create a layer with square feature maps and square filters."""
        return cls(
            name=name,
            batch=batch,
            in_channels=in_channels,
            in_height=in_size,
            in_width=in_size,
            out_channels=out_channels,
            filter_height=filter_size,
            filter_width=filter_size,
            stride=stride,
            padding=padding,
        )

    @classmethod
    def fully_connected(cls, name: str, batch: int, in_features: int,
                        out_features: int) -> "ConvLayerConfig":
        """Represent a fully-connected layer as a 1x1 convolution."""
        return cls(
            name=name,
            batch=batch,
            in_channels=in_features,
            in_height=1,
            in_width=1,
            out_channels=out_features,
            filter_height=1,
            filter_width=1,
            stride=1,
            padding=0,
        )

    def with_batch(self, batch: int) -> "ConvLayerConfig":
        """Return a copy of this layer with a different mini-batch size."""
        return replace(self, batch=batch)

    def with_name(self, name: str) -> "ConvLayerConfig":
        return replace(self, name=name)

    def with_dtype(self, dtype_bytes: int) -> "ConvLayerConfig":
        """Return a copy of this layer with a different element width."""
        return replace(self, dtype_bytes=dtype_bytes)

    def structural_key(self) -> Tuple[int, ...]:
        """Configuration identity of the layer, ignoring its name.

        Two layers with equal keys produce identical model and simulator
        results; both the network unique-layer dedupe and the session's
        simulation work-unit dedupe key on this method so they cannot drift.
        """
        return (
            self.batch,
            self.in_channels,
            self.in_height,
            self.in_width,
            self.out_channels,
            self.filter_height,
            self.filter_width,
            self.stride,
            self.padding,
            self.dtype_bytes,
        )

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    @property
    def padded_height(self) -> int:
        """Hi + 2*Pad."""
        return self.in_height + 2 * self.padding

    @property
    def padded_width(self) -> int:
        """Wi + 2*Pad."""
        return self.in_width + 2 * self.padding

    @property
    def out_height(self) -> int:
        """Ho = floor((Hi + 2*Pad - Hf) / stride) + 1."""
        return (self.padded_height - self.filter_height) // self.stride + 1

    @property
    def out_width(self) -> int:
        """Wo = floor((Wi + 2*Pad - Wf) / stride) + 1."""
        return (self.padded_width - self.filter_width) // self.stride + 1

    @property
    def is_pointwise(self) -> bool:
        """True for 1x1 convolutions (and FC layers), which have no im2col reuse."""
        return self.filter_height == 1 and self.filter_width == 1

    @property
    def filter_pixels(self) -> int:
        """Hf * Wf."""
        return self.filter_height * self.filter_width

    # ------------------------------------------------------------------
    # Sizes (element counts and bytes)
    # ------------------------------------------------------------------
    @property
    def ifmap_elements(self) -> int:
        """Unpadded IFmap footprint in elements: B*Ci*Hi*Wi."""
        return self.batch * self.in_channels * self.in_height * self.in_width

    @property
    def padded_ifmap_elements(self) -> int:
        """Padded IFmap footprint in elements: B*Ci*(Hi+2P)*(Wi+2P)."""
        return self.batch * self.in_channels * self.padded_height * self.padded_width

    @property
    def ofmap_elements(self) -> int:
        """OFmap footprint in elements: B*Co*Ho*Wo."""
        return self.batch * self.out_channels * self.out_height * self.out_width

    @property
    def filter_elements(self) -> int:
        """Filter footprint in elements: Co*Ci*Hf*Wf."""
        return (self.out_channels * self.in_channels
                * self.filter_height * self.filter_width)

    @property
    def ifmap_bytes(self) -> int:
        return self.ifmap_elements * self.dtype_bytes

    @property
    def ofmap_bytes(self) -> int:
        return self.ofmap_elements * self.dtype_bytes

    @property
    def filter_bytes(self) -> int:
        return self.filter_elements * self.dtype_bytes

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations of the layer: M*N*K of the GEMM."""
        shape = self.gemm_shape()
        return shape.m * shape.n * shape.k

    @property
    def flops(self) -> int:
        """Floating point operations (2 per MAC)."""
        return 2 * self.macs

    def gemm_shape(self) -> "GemmShape":
        """The im2col GEMM dimensions (M, N, K) of this layer."""
        return GemmShape(
            m=self.batch * self.out_height * self.out_width,
            n=self.out_channels,
            k=self.in_channels * self.filter_height * self.filter_width,
        )

    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of compulsory traffic (IFmap + filter + OFmap)."""
        compulsory = self.ifmap_bytes + self.filter_bytes + self.ofmap_bytes
        return self.flops / compulsory

    def describe(self) -> str:
        """One-line human readable summary of the layer."""
        return (
            f"{self.name}: B={self.batch} Ci={self.in_channels} "
            f"{self.in_height}x{self.in_width} -> Co={self.out_channels} "
            f"{self.out_height}x{self.out_width}, filter "
            f"{self.filter_height}x{self.filter_width}/s{self.stride}/p{self.padding}"
        )


@dataclass(frozen=True)
class GemmShape:
    """Dimensions of the im2col GEMM: (M x K) * (K x N) -> (M x N)."""

    m: int
    n: int
    k: int

    def __post_init__(self) -> None:
        for attr in ("m", "n", "k"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"GEMM dimension {attr} must be positive")

    @property
    def macs(self) -> int:
        return self.m * self.n * self.k

    @property
    def ifmap_matrix_elements(self) -> int:
        """Number of elements in the (replicated) im2col IFmap matrix: M*K."""
        return self.m * self.k

    @property
    def filter_matrix_elements(self) -> int:
        """Number of elements in the filter matrix: N*K."""
        return self.n * self.k

    @property
    def ofmap_matrix_elements(self) -> int:
        """Number of elements in the output matrix: M*N."""
        return self.m * self.n

    @property
    def aspect_ratio(self) -> float:
        """M / N; im2col GEMMs are tall and skinny (>> 1)."""
        return self.m / self.n


@dataclass(frozen=True)
class LinearLayerConfig:
    """A fully-connected layer as one dense GEMM: ``Y[M,N] = X[M,K] . W[N,K]^T``.

    ``M = batch * rows_per_sample`` (``rows_per_sample`` covers token
    dimensions: a transformer projection contributes one GEMM row per
    sequence position of every sample), ``K = in_features`` and
    ``N = out_features``.  ``X`` and the gradients are row-major activation
    matrices; ``W`` is stored row-major ``[out_features, in_features]`` (the
    KCRS-like layout GEMM libraries use), so every operand of every training
    pass is contiguous along its K axis or its own axis — no im2col
    replication anywhere.
    """

    name: str
    #: mini-batch size (samples).
    batch: int
    #: input features per GEMM row (K).
    in_features: int
    #: output features per GEMM row (N).
    out_features: int
    #: GEMM rows contributed per sample (e.g. the sequence length).
    rows_per_sample: int = 1
    #: bytes per tensor element.
    dtype_bytes: int = FP32_BYTES

    def __post_init__(self) -> None:
        positive = {
            "batch": self.batch,
            "in_features": self.in_features,
            "out_features": self.out_features,
            "rows_per_sample": self.rows_per_sample,
            "dtype_bytes": self.dtype_bytes,
        }
        for attr, value in positive.items():
            if value <= 0:
                raise ValueError(f"{attr} must be positive, got {value}")

    # ------------------------------------------------------------------
    # Copy-with helpers (shared vocabulary with ConvLayerConfig)
    # ------------------------------------------------------------------
    def with_batch(self, batch: int) -> "LinearLayerConfig":
        return replace(self, batch=batch)

    def with_name(self, name: str) -> "LinearLayerConfig":
        return replace(self, name=name)

    def with_dtype(self, dtype_bytes: int) -> "LinearLayerConfig":
        return replace(self, dtype_bytes=dtype_bytes)

    def structural_key(self) -> Tuple:
        """Configuration identity, ignoring the name.

        The leading type tag keeps linear keys disjoint from the all-integer
        convolution keys, so mixed-network dedupe can never alias layers of
        different families.
        """
        return ("linear", self.batch, self.rows_per_sample, self.in_features,
                self.out_features, self.dtype_bytes)

    # ------------------------------------------------------------------
    # Geometry and sizes
    # ------------------------------------------------------------------
    @property
    def rows(self) -> int:
        """GEMM rows M: batch * rows_per_sample."""
        return self.batch * self.rows_per_sample

    @property
    def input_elements(self) -> int:
        """Activation footprint in elements: M * K."""
        return self.rows * self.in_features

    @property
    def weight_elements(self) -> int:
        """Weight footprint in elements: N * K."""
        return self.out_features * self.in_features

    @property
    def output_elements(self) -> int:
        """Output footprint in elements: M * N."""
        return self.rows * self.out_features

    def gemm_shape(self) -> GemmShape:
        return GemmShape(m=self.rows, n=self.out_features, k=self.in_features)

    @property
    def macs(self) -> int:
        return self.rows * self.out_features * self.in_features

    @property
    def flops(self) -> int:
        return 2 * self.macs

    def describe(self) -> str:
        rows = (f"B={self.batch}" if self.rows_per_sample == 1
                else f"B={self.batch}x{self.rows_per_sample}")
        return (f"{self.name}: linear {rows} "
                f"{self.in_features} -> {self.out_features}")


@dataclass(frozen=True)
class BatchedGemmLayerConfig:
    """``groups`` independent dense GEMMs of one shape (batched GEMM).

    The attention score product ``S = Q . K^T`` runs one ``(seq x seq x
    head_dim)`` GEMM per (sample, head) pair, and the context product
    ``C = P . V`` one ``(seq x head_dim x seq)`` GEMM; both are batched GEMMs
    with ``groups = batch * groups_per_sample`` instances.  Every operand is a
    dense row-major matrix ``[groups, rows, K]``; instance ``g``'s tensors sit
    at offset ``g * rows * K`` inside the operand's address range.
    """

    name: str
    #: mini-batch size (samples).
    batch: int
    #: GEMM instances per sample (e.g. attention heads).
    groups_per_sample: int
    #: per-instance GEMM shape.
    m: int
    n: int
    k: int
    #: bytes per tensor element.
    dtype_bytes: int = FP32_BYTES

    def __post_init__(self) -> None:
        positive = {
            "batch": self.batch,
            "groups_per_sample": self.groups_per_sample,
            "m": self.m,
            "n": self.n,
            "k": self.k,
            "dtype_bytes": self.dtype_bytes,
        }
        for attr, value in positive.items():
            if value <= 0:
                raise ValueError(f"{attr} must be positive, got {value}")

    # ------------------------------------------------------------------
    # Copy-with helpers
    # ------------------------------------------------------------------
    def with_batch(self, batch: int) -> "BatchedGemmLayerConfig":
        return replace(self, batch=batch)

    def with_name(self, name: str) -> "BatchedGemmLayerConfig":
        return replace(self, name=name)

    def with_dtype(self, dtype_bytes: int) -> "BatchedGemmLayerConfig":
        return replace(self, dtype_bytes=dtype_bytes)

    def structural_key(self) -> Tuple:
        return ("batched_gemm", self.batch, self.groups_per_sample,
                self.m, self.n, self.k, self.dtype_bytes)

    # ------------------------------------------------------------------
    # Geometry and sizes
    # ------------------------------------------------------------------
    @property
    def groups(self) -> int:
        """Independent GEMM instances: batch * groups_per_sample."""
        return self.batch * self.groups_per_sample

    @property
    def input_elements(self) -> int:
        """A-operand footprint across all instances: groups * M * K."""
        return self.groups * self.m * self.k

    @property
    def weight_elements(self) -> int:
        """B-operand footprint across all instances: groups * N * K."""
        return self.groups * self.n * self.k

    @property
    def output_elements(self) -> int:
        """Output footprint across all instances: groups * M * N."""
        return self.groups * self.m * self.n

    def gemm_shape(self) -> GemmShape:
        """The per-instance GEMM shape (totals scale by :attr:`groups`)."""
        return GemmShape(m=self.m, n=self.n, k=self.k)

    @property
    def macs(self) -> int:
        return self.groups * self.m * self.n * self.k

    @property
    def flops(self) -> int:
        return 2 * self.macs

    def describe(self) -> str:
        return (f"{self.name}: batched GEMM {self.groups}x "
                f"(M={self.m} N={self.n} K={self.k})")


#: any layer family the model stack accepts (all lower to GemmWorkloads).
LayerConfig = Union[ConvLayerConfig, LinearLayerConfig, BatchedGemmLayerConfig]

#: the GEMM-native (dense, conv-free) layer families.
DENSE_LAYER_TYPES = (LinearLayerConfig, BatchedGemmLayerConfig)
