"""L1 cache traffic model (Section IV-A of the paper), operand-generic.

The im2col layout makes the addresses of adjacent IFmap-matrix elements
non-contiguous, so a fully coalesced warp load of 32 consecutive column
elements touches more than one L1 request worth of data.  The model captures
this with a *memory load inefficiency* (MLI) factor per input matrix:

    Eq. 2   elements requested / elements used
                = ((Wi + 2*Pad) * Stride) / (Wi + 2*Pad - Wf + 1)
    Eq. 3   MLI_IFmap = ceil(ratio * warp_bytes / request_bytes)
                        / (warp_bytes / request_bytes)
    Eq. 4   T_L1 = (M*K) * MLI_A + (N*K) * MLI_B     [elements]

Filter-matrix loads gather ``32 / blkK`` distant columns per warp; the paper
reports the alignment-averaged inefficiency as 2.0 (blkK = 8) and 2.75
(blkK = 4) for 128-byte L1 requests.  :func:`filter_mli` reproduces those
constants from first principles so the model extends to other request sizes
(Volta uses 32-byte requests).

The equations are evaluated per :class:`~repro.core.workload.OperandSpec`:
the operand's ``l1_pattern`` selects between the im2col streaming MLI
(Eq. 2-3), the segment-gather MLI (filter matrices, :func:`filter_mli`) and
the ideal contiguous-stream MLI (dense gradient matrices), so the same code
path serves the forward, dgrad and wgrad GEMMs of a training step.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional, Union

from ..gpu.spec import FP32_BYTES, WARP_SIZE, GpuSpec
from .layer import ConvLayerConfig
from .tiling import CtaTile, GemmGrid
from .workload import GemmWorkload, Im2colPattern, OperandSpec, as_workload


#: How many times each input matrix is streamed through L1.
#:
#: * ``"per-cta"`` (default): every CTA loads its own blkM x K A tile and
#:   blkN x K B tile from global memory, so the A matrix is read once per CTA
#:   *column* and the B matrix once per CTA *row*.  This is what the
#:   warp-level load stream of the CUTLASS-style kernel actually issues (and
#:   what the simulator substrate observes).
#: * ``"paper"``: apply Eq. 4 exactly as printed, counting each input matrix
#:   once.  The two agree whenever the CTA grid has a single row/column.
ReplicationMode = Literal["per-cta", "paper"]


@dataclass(frozen=True)
class L1Traffic:
    """L1 load traffic of one GEMM workload.

    ``ifmap_bytes``/``mli_ifmap`` describe the M-side (``a``) operand and
    ``filter_bytes``/``mli_filter`` the N-side (``b``) operand; the field
    names keep the paper's forward-pass vocabulary.
    """

    ifmap_bytes: float
    filter_bytes: float
    mli_ifmap: float
    mli_filter: float

    @property
    def total_bytes(self) -> float:
        return self.ifmap_bytes + self.filter_bytes


PatternLike = Union[ConvLayerConfig, Im2colPattern]


def ifmap_request_ratio(pattern: PatternLike) -> float:
    """Eq. 2: elements spanned per element used along one im2col column.

    Successive elements of an im2col-matrix column are the positions of one
    filter element as the filter slides across the (padded) input, so their
    addresses advance by ``stride`` with a jump of ``Wf - 1`` at each row
    boundary.  The ratio is >= 1 and equals 1 only for 1x1 filters with
    stride 1 (perfectly dense columns).
    """
    if pattern.is_pointwise and pattern.stride == 1:
        return 1.0
    numerator = pattern.padded_width * pattern.stride
    denominator = pattern.padded_width - pattern.filter_width + 1
    return numerator / denominator


def _streaming_mli(ratio: float, gpu: GpuSpec, dtype_bytes: int) -> float:
    """Eq. 3: column-streaming load inefficiency for a given span ratio.

    Both request counts are whole requests: a warp whose footprint is smaller
    than one L1 request (sub-request warps, e.g. fp16's 64-byte loads against
    128-byte requests) still issues — and ideally needs — exactly one request,
    so the denominator is clamped at one request.  Without the clamp a
    perfectly coalesced fp16 stream would be charged a phantom
    ``request_bytes / warp_bytes`` inefficiency.
    """
    warp_bytes = WARP_SIZE * dtype_bytes
    requests_ideal = max(1.0, warp_bytes / gpu.l1_request_bytes)
    requests_made = math.ceil(ratio * warp_bytes / gpu.l1_request_bytes)
    return requests_made / requests_ideal


def ifmap_mli(pattern: PatternLike, gpu: GpuSpec,
              dtype_bytes: Optional[int] = None) -> float:
    """Eq. 3: L1 load inefficiency for im2col-matrix streaming loads.

    ``warp_bytes`` is the data one warp consumes per load instruction
    (32 threads x dtype bytes); the requested footprint is rounded up to
    whole L1 requests, then normalized by the ideal request count.
    """
    if dtype_bytes is None:
        dtype_bytes = getattr(pattern, "dtype_bytes", FP32_BYTES)
    return _streaming_mli(ifmap_request_ratio(pattern), gpu, dtype_bytes)


#: MLI_Filter constants reported in Section IV-A for 128-byte L1 requests.
_PAPER_FILTER_MLI = {8: 2.0, 4: 2.75}


def filter_mli(blk_k: int, gpu: GpuSpec, dtype_bytes: int = FP32_BYTES,
               use_paper_constants: bool = True) -> float:
    """Alignment-averaged L1 load inefficiency for filter-matrix loads.

    A warp of 32 threads loads ``32 / blkK`` filter columns; each column
    contributes ``blkK`` contiguous elements but the columns live at distant
    addresses (the filter matrix is contiguous along K), so every column
    segment is served by its own memory transactions.  The paper reports the
    alignment-averaged inefficiency as 2.0 (blkK = 8) and 2.75 (blkK = 4) for
    Pascal's 128-byte L1 requests; those constants are used directly when
    ``use_paper_constants`` is set and they apply.  Otherwise the inefficiency
    is derived by averaging the number of 32-byte sectors each column segment
    touches over all element-aligned placements.
    """
    if blk_k <= 0:
        raise ValueError("blk_k must be positive")
    if (use_paper_constants and gpu.l1_request_bytes == 128
            and dtype_bytes == FP32_BYTES and blk_k in _PAPER_FILTER_MLI):
        return _PAPER_FILTER_MLI[blk_k]

    columns_per_warp = max(1, WARP_SIZE // blk_k)
    segment_bytes = blk_k * dtype_bytes
    sector = gpu.sector_bytes

    # Expected sectors touched by one column segment over all alignments.
    alignments = max(1, sector // dtype_bytes)
    total_sectors = 0
    for slot in range(alignments):
        offset = slot * dtype_bytes
        first = offset // sector
        last = (offset + segment_bytes - 1) // sector
        total_sectors += last - first + 1
    avg_sectors_per_column = total_sectors / alignments

    bytes_fetched = columns_per_warp * avg_sectors_per_column * sector
    bytes_used = WARP_SIZE * dtype_bytes
    return bytes_fetched / bytes_used


def operand_mli(operand: OperandSpec, tile: CtaTile, gpu: GpuSpec,
                dtype_bytes: int) -> float:
    """L1 load inefficiency of one operand under its declared load pattern."""
    if operand.l1_pattern == "im2col":
        return ifmap_mli(operand.pattern, gpu, dtype_bytes)
    if operand.l1_pattern == "gather":
        return filter_mli(tile.blk_k, gpu, dtype_bytes)
    if operand.l1_pattern == "contiguous":
        return _streaming_mli(1.0, gpu, dtype_bytes)
    raise ValueError(f"unknown L1 load pattern {operand.l1_pattern!r}")


def estimate_l1_traffic(source: Union[ConvLayerConfig, GemmWorkload],
                        grid: GemmGrid, gpu: GpuSpec,
                        replication: ReplicationMode = "per-cta") -> L1Traffic:
    """Eq. 4: total L1 load traffic of one GEMM workload, in bytes.

    ``replication`` selects how often each input matrix is counted (see
    :data:`ReplicationMode`).  The CTA-tile rows of the grid replicate the
    N-side operand's loads and its columns replicate the M-side operand's.
    """
    workload = as_workload(source)
    gemm = workload.gemm
    tile = grid.tile
    dtype = workload.dtype_bytes
    mli_a = operand_mli(workload.a, tile, gpu, dtype)
    mli_b = operand_mli(workload.b, tile, gpu, dtype)

    if replication == "per-cta":
        a_passes = grid.ctas_n
        b_passes = grid.ctas_m
        # Partial edge tiles still issue full-width tile loads; account for
        # the rounded-up tile coverage of each matrix.  Batched workloads
        # stream every instance's matrices (grid.groups of them).
        a_elements = grid.groups * grid.ctas_m * tile.blk_m * gemm.k
        b_elements = grid.groups * grid.ctas_n * tile.blk_n * gemm.k
    elif replication == "paper":
        a_passes = 1
        b_passes = 1
        a_elements = grid.groups * gemm.ifmap_matrix_elements
        b_elements = grid.groups * gemm.filter_matrix_elements
    else:
        raise ValueError(f"unknown replication mode {replication!r}")

    a_bytes = a_elements * a_passes * mli_a * dtype
    b_bytes = b_elements * b_passes * mli_b * dtype
    return L1Traffic(
        ifmap_bytes=a_bytes,
        filter_bytes=b_bytes,
        mli_ifmap=mli_a,
        mli_filter=mli_b,
    )
