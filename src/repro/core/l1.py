"""L1 cache traffic model (Section IV-A of the paper).

The im2col layout makes the addresses of adjacent IFmap-matrix elements
non-contiguous, so a fully coalesced warp load of 32 consecutive column
elements touches more than one L1 request worth of data.  The model captures
this with a *memory load inefficiency* (MLI) factor per input matrix:

    Eq. 2   elements requested / elements used
                = ((Wi + 2*Pad) * Stride) / (Wi + 2*Pad - Wf + 1)
    Eq. 3   MLI_IFmap = ceil(ratio * warp_bytes / request_bytes)
                        / (warp_bytes / request_bytes)
    Eq. 4   T_L1 = (M*K) * MLI_IFmap + (N*K) * MLI_Filter     [elements]

Filter-matrix loads gather ``32 / blkK`` distant columns per warp; the paper
reports the alignment-averaged inefficiency as 2.0 (blkK = 8) and 2.75
(blkK = 4) for 128-byte L1 requests.  :func:`filter_mli` reproduces those
constants from first principles so the model extends to other request sizes
(Volta uses 32-byte requests).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal

from ..gpu.spec import FP32_BYTES, WARP_SIZE, GpuSpec
from .layer import ConvLayerConfig
from .tiling import GemmGrid


#: How many times each input matrix is streamed through L1.
#:
#: * ``"per-cta"`` (default): every CTA loads its own blkM x K IFmap tile and
#:   blkN x K filter tile from global memory, so the IFmap matrix is read once
#:   per CTA *column* and the filter matrix once per CTA *row*.  This is what
#:   the warp-level load stream of the CUTLASS-style kernel actually issues
#:   (and what the simulator substrate observes).
#: * ``"paper"``: apply Eq. 4 exactly as printed, counting each input matrix
#:   once.  The two agree whenever the CTA grid has a single row/column.
ReplicationMode = Literal["per-cta", "paper"]


@dataclass(frozen=True)
class L1Traffic:
    """L1 load traffic of one convolution layer."""

    ifmap_bytes: float
    filter_bytes: float
    mli_ifmap: float
    mli_filter: float

    @property
    def total_bytes(self) -> float:
        return self.ifmap_bytes + self.filter_bytes


def ifmap_request_ratio(layer: ConvLayerConfig) -> float:
    """Eq. 2: elements spanned per element used along one IFmap-matrix column.

    Successive elements of an IFmap-matrix column are the positions of one
    filter element as the filter slides across the (padded) IFmap, so their
    addresses advance by ``stride`` with a jump of ``Wf - 1`` at each row
    boundary.  The ratio is >= 1 and equals 1 only for 1x1 filters with
    stride 1 (perfectly dense columns).
    """
    if layer.is_pointwise and layer.stride == 1:
        return 1.0
    numerator = layer.padded_width * layer.stride
    denominator = layer.padded_width - layer.filter_width + 1
    return numerator / denominator


def ifmap_mli(layer: ConvLayerConfig, gpu: GpuSpec) -> float:
    """Eq. 3: L1 load inefficiency for IFmap-matrix loads.

    ``warp_bytes`` is the data one warp consumes per load instruction
    (32 threads x 4 bytes); the requested footprint is rounded up to whole L1
    requests, then normalized by the ideal request count.
    """
    ratio = ifmap_request_ratio(layer)
    warp_bytes = WARP_SIZE * layer.dtype_bytes
    requests_ideal = warp_bytes / gpu.l1_request_bytes
    requests_made = math.ceil(ratio * warp_bytes / gpu.l1_request_bytes)
    return requests_made / requests_ideal


#: MLI_Filter constants reported in Section IV-A for 128-byte L1 requests.
_PAPER_FILTER_MLI = {8: 2.0, 4: 2.75}


def filter_mli(blk_k: int, gpu: GpuSpec, dtype_bytes: int = FP32_BYTES,
               use_paper_constants: bool = True) -> float:
    """Alignment-averaged L1 load inefficiency for filter-matrix loads.

    A warp of 32 threads loads ``32 / blkK`` filter columns; each column
    contributes ``blkK`` contiguous elements but the columns live at distant
    addresses (the filter matrix is contiguous along K), so every column
    segment is served by its own memory transactions.  The paper reports the
    alignment-averaged inefficiency as 2.0 (blkK = 8) and 2.75 (blkK = 4) for
    Pascal's 128-byte L1 requests; those constants are used directly when
    ``use_paper_constants`` is set and they apply.  Otherwise the inefficiency
    is derived by averaging the number of 32-byte sectors each column segment
    touches over all element-aligned placements.
    """
    if blk_k <= 0:
        raise ValueError("blk_k must be positive")
    if (use_paper_constants and gpu.l1_request_bytes == 128
            and dtype_bytes == FP32_BYTES and blk_k in _PAPER_FILTER_MLI):
        return _PAPER_FILTER_MLI[blk_k]

    columns_per_warp = max(1, WARP_SIZE // blk_k)
    segment_bytes = blk_k * dtype_bytes
    sector = gpu.sector_bytes

    # Expected sectors touched by one column segment over all alignments.
    alignments = max(1, sector // dtype_bytes)
    total_sectors = 0
    for slot in range(alignments):
        offset = slot * dtype_bytes
        first = offset // sector
        last = (offset + segment_bytes - 1) // sector
        total_sectors += last - first + 1
    avg_sectors_per_column = total_sectors / alignments

    bytes_fetched = columns_per_warp * avg_sectors_per_column * sector
    bytes_used = WARP_SIZE * dtype_bytes
    return bytes_fetched / bytes_used


def estimate_l1_traffic(layer: ConvLayerConfig, grid: GemmGrid, gpu: GpuSpec,
                        replication: ReplicationMode = "per-cta") -> L1Traffic:
    """Eq. 4: total L1 load traffic of the layer, in bytes.

    ``replication`` selects how often each input matrix is counted (see
    :data:`ReplicationMode`).  The CTA-tile rows of the grid replicate filter
    loads and its columns replicate IFmap loads.
    """
    gemm = layer.gemm_shape()
    tile = grid.tile
    mli_if = ifmap_mli(layer, gpu)
    mli_fil = filter_mli(tile.blk_k, gpu, layer.dtype_bytes)

    if replication == "per-cta":
        ifmap_passes = grid.ctas_n
        filter_passes = grid.ctas_m
        # Partial edge tiles still issue full-width tile loads; account for
        # the rounded-up tile coverage of each matrix.
        ifmap_elements = grid.ctas_m * tile.blk_m * gemm.k
        filter_elements = grid.ctas_n * tile.blk_n * gemm.k
    elif replication == "paper":
        ifmap_passes = 1
        filter_passes = 1
        ifmap_elements = gemm.ifmap_matrix_elements
        filter_elements = gemm.filter_matrix_elements
    else:
        raise ValueError(f"unknown replication mode {replication!r}")

    ifmap_bytes = ifmap_elements * ifmap_passes * mli_if * layer.dtype_bytes
    filter_bytes = filter_elements * filter_passes * mli_fil * layer.dtype_bytes
    return L1Traffic(
        ifmap_bytes=ifmap_bytes,
        filter_bytes=filter_bytes,
        mli_ifmap=mli_if,
        mli_filter=mli_fil,
    )
