"""DeLTA core: the paper's analytical traffic and performance models."""

from .bottleneck import Bottleneck
from .baselines import (
    PAPER_MISS_RATES,
    FixedMissRateModel,
    FixedMissRateTrafficModel,
)
from .dram import DramModelOptions, DramTraffic, estimate_dram_traffic
from .l1 import L1Traffic, estimate_l1_traffic, filter_mli, ifmap_mli
from .l2 import L2ModelOptions, L2Traffic, estimate_l2_traffic
from .layer import (BatchedGemmLayerConfig, ConvLayerConfig, GemmShape,
                    LayerConfig, LinearLayerConfig)
from .model import DeltaModel
from .performance import ExecutionEstimate, PerformanceModel
from .scaling import ScalingResult, ScalingStudy
from .streams import StreamTimes, compute_stream_times
from .training import (
    LayerPassEstimate,
    TrainingStepEstimate,
    estimate_training_step,
)
from .tiling import (
    CtaTile,
    GemmGrid,
    active_ctas_per_sm,
    build_grid,
    cta_batch_size,
    ctas_per_sm,
    select_cta_tile,
    waves,
)
from .traffic import TrafficEstimate, TrafficModel
from .workload import (
    PASS_CHOICES,
    lower_dense,
    PASS_KINDS,
    TRAINING_PASSES,
    GemmWorkload,
    Im2colPattern,
    OperandSpec,
    as_workload,
    expand_passes,
    lower_dgrad,
    lower_forward,
    lower_pass,
    lower_wgrad,
    normalize_passes,
    training_workloads,
)

__all__ = [
    "GemmWorkload",
    "Im2colPattern",
    "OperandSpec",
    "PASS_CHOICES",
    "PASS_KINDS",
    "TRAINING_PASSES",
    "as_workload",
    "expand_passes",
    "lower_forward",
    "lower_dgrad",
    "lower_wgrad",
    "lower_pass",
    "lower_dense",
    "normalize_passes",
    "training_workloads",
    "LayerPassEstimate",
    "TrainingStepEstimate",
    "estimate_training_step",
    "Bottleneck",
    "ConvLayerConfig",
    "LinearLayerConfig",
    "BatchedGemmLayerConfig",
    "LayerConfig",
    "GemmShape",
    "CtaTile",
    "GemmGrid",
    "select_cta_tile",
    "build_grid",
    "active_ctas_per_sm",
    "ctas_per_sm",
    "cta_batch_size",
    "waves",
    "L1Traffic",
    "L2Traffic",
    "DramTraffic",
    "L2ModelOptions",
    "DramModelOptions",
    "estimate_l1_traffic",
    "estimate_l2_traffic",
    "estimate_dram_traffic",
    "ifmap_mli",
    "filter_mli",
    "TrafficModel",
    "TrafficEstimate",
    "StreamTimes",
    "compute_stream_times",
    "PerformanceModel",
    "ExecutionEstimate",
    "DeltaModel",
    "FixedMissRateModel",
    "FixedMissRateTrafficModel",
    "PAPER_MISS_RATES",
    "ScalingStudy",
    "ScalingResult",
]
