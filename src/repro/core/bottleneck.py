"""Performance bottleneck categories reported by the DeLTA performance model."""

from __future__ import annotations

from enum import Enum


class Bottleneck(str, Enum):
    """The GPU resource that bounds a convolution layer's execution time.

    Categories follow Fig. 13/14 of the paper: arithmetic throughput
    (``MAC_BW``), shared memory bandwidth (``SMEM_BW``), the bandwidth of each
    memory hierarchy level (``L1_BW``, ``L2_BW``, ``DRAM_BW``) and DRAM
    latency exposure when too few CTAs are resident to hide the global load
    time (``DRAM_LAT``).
    """

    MAC_BW = "MAC_BW"
    SMEM_BW = "SMEM_BW"
    L1_BW = "L1_BW"
    L2_BW = "L2_BW"
    DRAM_BW = "DRAM_BW"
    DRAM_LAT = "DRAM_LAT"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value

    @property
    def is_memory_bound(self) -> bool:
        """True if the bottleneck is in the memory system rather than compute."""
        return self not in (Bottleneck.MAC_BW, Bottleneck.SMEM_BW)
