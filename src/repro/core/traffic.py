"""Facade combining the per-level traffic models into a single estimate.

:class:`TrafficModel` evaluates the L1 (Section IV-A), L2 (IV-B) and DRAM
(IV-C) models for one GEMM workload on a GPU and returns a
:class:`TrafficEstimate` with per-level totals, per-main-loop volumes (used by
the performance model of Section V) and derived miss rates.  Entry points
accept either a :class:`~repro.core.workload.GemmWorkload` or a
:class:`~repro.core.layer.ConvLayerConfig` (lowered to its forward pass).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from ..gpu.spec import GpuSpec
from .dram import DramModelOptions, DramTraffic, estimate_dram_traffic
from .l1 import L1Traffic, ReplicationMode, estimate_l1_traffic
from .l2 import L2ModelOptions, L2Traffic, estimate_l2_traffic
from .layer import ConvLayerConfig, LayerConfig
from .tiling import GemmGrid, build_grid
from .workload import GemmWorkload, as_workload


@dataclass(frozen=True)
class TrafficEstimate:
    """Traffic at every level of the memory hierarchy for one workload."""

    workload: GemmWorkload
    gpu: GpuSpec
    grid: GemmGrid
    l1: L1Traffic
    l2: L2Traffic
    dram: DramTraffic

    @property
    def layer(self) -> LayerConfig:
        """The layer the workload was lowered from."""
        return self.workload.layer

    @property
    def pass_kind(self) -> str:
        return self.workload.pass_kind

    # ------------------------------------------------------------------
    # Totals
    # ------------------------------------------------------------------
    @property
    def l1_bytes(self) -> float:
        return self.l1.total_bytes

    @property
    def l2_bytes(self) -> float:
        return self.l2.total_bytes

    @property
    def dram_bytes(self) -> float:
        return self.dram.total_bytes

    def level_bytes(self, level: str) -> float:
        """Traffic at a named level: ``"l1"``, ``"l2"`` or ``"dram"``."""
        try:
            return {"l1": self.l1_bytes, "l2": self.l2_bytes,
                    "dram": self.dram_bytes}[level.lower()]
        except KeyError:
            raise ValueError(f"unknown memory level {level!r}") from None

    # ------------------------------------------------------------------
    # Per-main-loop volumes (inputs to the performance model, Eq. 11)
    # ------------------------------------------------------------------
    @property
    def total_main_loops(self) -> int:
        return self.grid.total_main_loops

    @property
    def l1_bytes_per_loop(self) -> float:
        return self.l1_bytes / self.total_main_loops

    @property
    def l2_bytes_per_loop(self) -> float:
        return self.l2_bytes / self.total_main_loops

    @property
    def dram_bytes_per_loop(self) -> float:
        return self.dram_bytes / self.total_main_loops

    # ------------------------------------------------------------------
    # Derived miss rates (used for Fig. 4 style analysis)
    # ------------------------------------------------------------------
    @property
    def l1_miss_rate(self) -> float:
        """Fraction of L1 traffic that reaches L2."""
        if self.l1_bytes <= 0:
            return 0.0
        return min(1.0, self.l2_bytes / self.l1_bytes)

    @property
    def l2_miss_rate(self) -> float:
        """Fraction of L2 traffic that reaches DRAM."""
        if self.l2_bytes <= 0:
            return 0.0
        return min(1.0, self.dram.load_bytes / self.l2_bytes)


@dataclass(frozen=True)
class TrafficModel:
    """DeLTA's memory traffic model (Section IV)."""

    gpu: GpuSpec
    l2_options: L2ModelOptions = field(default_factory=L2ModelOptions)
    dram_options: DramModelOptions = field(default_factory=DramModelOptions)
    #: how often each input matrix is streamed through L1 (see repro.core.l1).
    l1_replication: ReplicationMode = "per-cta"
    #: CTA tile height/width family used by the GEMM kernel (128 or 256).
    cta_tile_hw: int = 128

    def estimate(self, source: Union[LayerConfig, GemmWorkload],
                 grid: Optional[GemmGrid] = None) -> TrafficEstimate:
        """Estimate L1, L2 and DRAM traffic for one workload."""
        workload = as_workload(source)
        if grid is None:
            grid = build_grid(workload, tile_hw=self.cta_tile_hw)
        l1 = estimate_l1_traffic(workload, grid, self.gpu,
                                 replication=self.l1_replication)
        l2 = estimate_l2_traffic(workload, grid, self.gpu, self.l2_options)
        dram = estimate_dram_traffic(workload, grid, self.dram_options)
        # Traffic can only shrink as it moves up the hierarchy; the analytical
        # approximations occasionally violate this for degenerate layers, so
        # clamp to keep downstream consumers (miss rates, bottleneck search)
        # well defined.
        l2_clamped = l2
        if l2.total_bytes > l1.total_bytes:
            scale = l1.total_bytes / l2.total_bytes
            l2_clamped = L2Traffic(
                ifmap_bytes=l2.ifmap_bytes * scale,
                filter_bytes=l2.filter_bytes * scale,
                ifmap_elements_per_loop=l2.ifmap_elements_per_loop * scale,
                filter_elements_per_loop=l2.filter_elements_per_loop * scale,
            )
        dram_clamped = dram
        if dram.load_bytes > l2_clamped.total_bytes:
            scale = l2_clamped.total_bytes / dram.load_bytes
            dram_clamped = DramTraffic(
                ifmap_bytes=dram.ifmap_bytes * scale,
                filter_bytes=dram.filter_bytes * scale,
                output_bytes=dram.output_bytes,
            )
        return TrafficEstimate(
            workload=workload,
            gpu=self.gpu,
            grid=grid,
            l1=l1,
            l2=l2_clamped,
            dram=dram_clamped,
        )
