"""Prior-work baseline models used for comparison (Section III and VII).

The GPU analytical models the paper compares against (Hong & Kim, Zhou et al.)
estimate global-memory traffic from the request stream the SMs issue and treat
the cache miss rate as a fixed parameter -- in practice set to 1.0, i.e. every
L1 request also reaches L2 and DRAM.  The paper additionally sweeps the fixed
miss rate over {0.3, 0.5, 0.7, 1.0} in Fig. 15b.

:class:`FixedMissRateTrafficModel` reproduces that methodology: L1 traffic is
modeled exactly as in DeLTA (the request stream is a property of the kernel,
not of the cache), and the L2/DRAM traffic is the L1 traffic scaled by the
fixed miss rates.  :class:`FixedMissRateModel` plugs that traffic into the
same execution-time framework so the comparison isolates the effect of the
traffic assumptions, exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..gpu.spec import GpuSpec
from .dram import DramTraffic
from .l2 import L2Traffic
from .layer import ConvLayerConfig
from .performance import ExecutionEstimate, PerformanceModel
from .tiling import GemmGrid, build_grid
from .traffic import TrafficEstimate, TrafficModel
from .workload import GemmWorkload, as_workload


#: miss rates swept in Fig. 15b; 1.0 is the value prior work advocates.
PAPER_MISS_RATES: Sequence[float] = (0.3, 0.5, 0.7, 1.0)


@dataclass(frozen=True)
class FixedMissRateTrafficModel:
    """Prior-work traffic methodology: fixed L1 and L2 miss rates."""

    gpu: GpuSpec
    l1_miss_rate: float = 1.0
    l2_miss_rate: float = 1.0
    cta_tile_hw: int = 128

    def __post_init__(self) -> None:
        for name, value in (("l1_miss_rate", self.l1_miss_rate),
                            ("l2_miss_rate", self.l2_miss_rate)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be within [0, 1], got {value}")

    def estimate(self, source: Union[ConvLayerConfig, GemmWorkload],
                 grid: Optional[GemmGrid] = None) -> TrafficEstimate:
        """Traffic estimate with the naive fixed-miss-rate assumption."""
        workload = as_workload(source)
        if grid is None:
            grid = build_grid(workload, tile_hw=self.cta_tile_hw)
        # The L1 request stream is identical to DeLTA's (it only depends on
        # the kernel), so reuse DeLTA's L1 model.
        delta = TrafficModel(gpu=self.gpu, cta_tile_hw=self.cta_tile_hw)
        reference = delta.estimate(workload, grid=grid)
        l1 = reference.l1

        l2_total = l1.total_bytes * self.l1_miss_rate
        dram_total = l2_total * self.l2_miss_rate
        ifmap_share = l1.ifmap_bytes / l1.total_bytes if l1.total_bytes else 0.0

        loops = max(1, grid.total_main_loops)
        dtype = workload.dtype_bytes
        l2 = L2Traffic(
            ifmap_bytes=l2_total * ifmap_share,
            filter_bytes=l2_total * (1.0 - ifmap_share),
            ifmap_elements_per_loop=l2_total * ifmap_share / loops / dtype,
            filter_elements_per_loop=l2_total * (1.0 - ifmap_share) / loops / dtype,
        )
        dram = DramTraffic(
            ifmap_bytes=dram_total * ifmap_share,
            filter_bytes=dram_total * (1.0 - ifmap_share),
        )
        return TrafficEstimate(
            workload=workload, gpu=self.gpu, grid=grid, l1=l1, l2=l2, dram=dram,
        )


@dataclass(frozen=True)
class FixedMissRateModel:
    """Prior-work performance model: DeLTA's timing framework fed by naive traffic."""

    gpu: GpuSpec
    miss_rate: float = 1.0
    cta_tile_hw: int = 128

    @property
    def traffic_model(self) -> FixedMissRateTrafficModel:
        return FixedMissRateTrafficModel(
            gpu=self.gpu,
            l1_miss_rate=self.miss_rate,
            l2_miss_rate=self.miss_rate,
            cta_tile_hw=self.cta_tile_hw,
        )

    def traffic(self, source: Union[ConvLayerConfig, GemmWorkload]) -> TrafficEstimate:
        return self.traffic_model.estimate(source)

    def estimate(self, source: Union[ConvLayerConfig, GemmWorkload]) -> ExecutionEstimate:
        traffic = self.traffic_model.estimate(source)
        performance = PerformanceModel(gpu=self.gpu)
        return performance.estimate(traffic.workload, traffic=traffic)
