"""GEMM blocking: CTA tiles, warp tiles and SM occupancy.

The paper profiles the cuDNN implicit-GEMM kernels and finds three CTA tile
shapes in use (Section IV-B, Fig. 6):

    (blkM x blkN) x blkK  =  (128 x 128) x 8,  (128 x 64) x 4,  (128 x 32) x 4.

``blkM`` is always 128; ``blkN`` follows the number of output channels (a
narrow GEMM uses a narrow tile), and ``blkK`` is 8 for the widest tile and 4
otherwise.  The scaling study (Fig. 16a, options 7-9) additionally uses a
256-wide tile, which we extrapolate as (256 x 256) x 8 with proportionally
larger warp tiles.

This module also estimates the number of CTAs that can be resident on one SM
(active CTAs), which the performance model needs for the latency-hiding cases
of Fig. 10.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from typing import Union

from ..gpu.spec import FP32_BYTES, WARP_SIZE, GpuSpec
from .layer import GemmShape, LayerConfig
from .workload import GemmWorkload, as_workload


@dataclass(frozen=True)
class CtaTile:
    """One CTA's share of the blocked GEMM."""

    blk_m: int
    blk_n: int
    blk_k: int
    #: warp tile height / width inside the CTA tile.
    warp_m: int
    warp_n: int

    def __post_init__(self) -> None:
        for attr in ("blk_m", "blk_n", "blk_k", "warp_m", "warp_n"):
            if getattr(self, attr) <= 0:
                raise ValueError(f"{attr} must be positive")
        if self.blk_m % self.warp_m or self.blk_n % self.warp_n:
            raise ValueError("warp tile must evenly divide the CTA tile")

    @property
    def num_warps(self) -> int:
        """Warps per CTA (each warp owns one warp tile of the output)."""
        return (self.blk_m // self.warp_m) * (self.blk_n // self.warp_n)

    @property
    def threads(self) -> int:
        return self.num_warps * WARP_SIZE

    @property
    def input_elements_per_loop(self) -> int:
        """IFmap + filter elements staged through SMEM per main-loop iteration."""
        return (self.blk_m + self.blk_n) * self.blk_k

    @property
    def macs_per_loop(self) -> int:
        """MAC operations per main-loop iteration."""
        return self.blk_m * self.blk_n * self.blk_k

    @property
    def output_elements(self) -> int:
        """Accumulator (and epilogue) elements per CTA."""
        return self.blk_m * self.blk_n

    def smem_bytes_per_cta(self, dtype_bytes: int = FP32_BYTES) -> int:
        """Shared memory footprint: double-buffered IFmap + filter stages."""
        return 2 * self.input_elements_per_loop * dtype_bytes

    def registers_bytes_per_cta(self, dtype_bytes: int = FP32_BYTES) -> int:
        """Register footprint: accumulators plus double-buffered operand fragments.

        Each thread holds (warp_m*warp_n/32) accumulators plus two operand
        fragments of warp_m/8 + warp_n/8 elements (the CUTLASS-style register
        blocking the paper's Fig. 3 depicts), plus a fixed overhead for
        addresses and loop state.
        """
        accumulators = self.blk_m * self.blk_n
        fragments = 2 * (self.warp_m + self.warp_n) * self.num_warps
        overhead_regs_per_thread = 32
        overhead = overhead_regs_per_thread * self.threads
        return (accumulators + fragments + overhead) * dtype_bytes


def select_cta_tile(gemm: GemmShape, tile_hw: int = 128) -> CtaTile:
    """Select the CTA tile cuDNN would use for a GEMM of this shape (Fig. 6).

    ``tile_hw`` is the maximum tile height/width of the kernel family; the
    stock kernels use 128 and the scaling-study options 7-9 use 256.
    """
    if tile_hw not in (128, 256):
        raise ValueError(f"unsupported CTA tile height/width {tile_hw}")

    if tile_hw == 256:
        return CtaTile(blk_m=256, blk_n=256, blk_k=8, warp_m=128, warp_n=64)

    n = gemm.n
    if n <= 32:
        # Narrow GEMM: (128 x 32) x 4 with four 32x32 warp tiles.
        return CtaTile(blk_m=128, blk_n=32, blk_k=4, warp_m=32, warp_n=32)
    if n <= 64:
        # (128 x 64) x 4 with four 64x32 warp tiles.
        return CtaTile(blk_m=128, blk_n=64, blk_k=4, warp_m=64, warp_n=32)
    # (128 x 128) x 8 with eight 64x32 warp tiles.
    return CtaTile(blk_m=128, blk_n=128, blk_k=8, warp_m=64, warp_n=32)


@dataclass(frozen=True)
class GemmGrid:
    """The CTA tile array covering the whole GEMM (Section IV-C, Fig. 8).

    ``ctas_m``/``ctas_n`` describe one GEMM instance; a batched workload runs
    ``groups`` such grids back to back, so every whole-workload total
    (``num_ctas``, ``total_main_loops``) scales by ``groups``.
    """

    gemm: GemmShape
    tile: CtaTile
    #: independent GEMM instances covered by this grid (batched GEMM).
    groups: int = 1

    @property
    def ctas_m(self) -> int:
        """Number of CTA rows (along M) of one GEMM instance."""
        return math.ceil(self.gemm.m / self.tile.blk_m)

    @property
    def ctas_n(self) -> int:
        """Number of CTA columns (along N) of one GEMM instance."""
        return math.ceil(self.gemm.n / self.tile.blk_n)

    @property
    def num_ctas(self) -> int:
        return self.groups * self.ctas_m * self.ctas_n

    @property
    def main_loops_per_cta(self) -> int:
        """Main-loop iterations per CTA: ceil(K / blkK)."""
        return math.ceil(self.gemm.k / self.tile.blk_k)

    @property
    def total_main_loops(self) -> int:
        return self.num_ctas * self.main_loops_per_cta

    @property
    def aspect_ratio(self) -> float:
        """CTA rows per CTA column; im2col grids are very tall."""
        return self.ctas_m / self.ctas_n


def build_grid(source: Union[LayerConfig, GemmWorkload],
               tile_hw: int = 128) -> GemmGrid:
    """GEMM grid for a workload (or a layer's forward-pass workload)."""
    workload = as_workload(source)
    gemm = workload.gemm
    return GemmGrid(gemm=gemm, tile=select_cta_tile(gemm, tile_hw=tile_hw),
                    groups=workload.groups)


def active_ctas_per_sm(tile: CtaTile, gpu: GpuSpec,
                       dtype_bytes: int = FP32_BYTES) -> int:
    """Number of CTAs that can be simultaneously resident on one SM.

    Determined by the ratio between one CTA's register/SMEM requirements and
    the per-SM capacities (Section V, "Multi-CTA Interleaving").  At least one
    CTA is always schedulable: the GEMM kernels are tuned to fit.
    """
    by_smem = gpu.smem_bytes // max(1, tile.smem_bytes_per_cta(dtype_bytes))
    by_regs = gpu.register_file_bytes // max(1, tile.registers_bytes_per_cta(dtype_bytes))
    active = min(by_smem, by_regs, gpu.max_ctas_per_sm)
    return max(1, int(active))


def ctas_per_sm(grid: GemmGrid, gpu: GpuSpec) -> int:
    """CTAs processed by the most-loaded SM (round-robin CTA distribution)."""
    return math.ceil(grid.num_ctas / gpu.num_sm)


def cta_batch_size(tile: CtaTile, gpu: GpuSpec,
                   dtype_bytes: int = FP32_BYTES) -> int:
    """CTAs executing concurrently across the whole device (one CTA batch)."""
    return active_ctas_per_sm(tile, gpu, dtype_bytes) * gpu.num_sm


def waves(grid: GemmGrid, gpu: GpuSpec, dtype_bytes: int = FP32_BYTES) -> int:
    """Number of CTA batches (waves) needed to run the whole GEMM."""
    return math.ceil(grid.num_ctas / cta_batch_size(grid.tile, gpu, dtype_bytes))
