"""Pass-aware GEMM workload IR: the unit of work the model stack consumes.

The paper models DNN *training*: every convolution layer executes three im2col
GEMMs per training step (Section II) — the forward pass, the data-gradient
pass (dgrad) and the weight-gradient pass (wgrad).  This module decouples the
memory-hierarchy and performance models from "a forward convolution layer" by
lowering a :class:`~repro.core.layer.ConvLayerConfig` onto a frozen
:class:`GemmWorkload` that carries everything the models need:

* the GEMM shape (M, N, K),
* one :class:`OperandSpec` per input operand (the M-side operand ``a`` and the
  N-side operand ``b``) describing the tensor it reads, its L1 load pattern,
  its intra-tile L2 reuse and its DRAM footprint, and
* the datatype width, which flows through every byte computation.

The three passes are operand swaps/transposes of one another (writing
``col(I)`` for the im2col expansion of the input feature map)::

    forward  O  = col(I) . W      (M, N, K) = (B*Ho*Wo,  Co,        Ci*Hf*Wf)
    dgrad    dI = col2im(dO . W^T)(M, N, K) = (B*Ho*Wo,  Ci*Hf*Wf,  Co)
    wgrad    dW = dO^T . col(I)   (M, N, K) = (Co,       Ci*Hf*Wf,  B*Ho*Wo)

dgrad swaps N and K relative to forward; wgrad swaps M and K.  Because the
product M*N*K is invariant under those swaps, each pass performs exactly the
forward pass's MAC count and a full training step costs 3x the forward MACs —
a property the tests assert for every registered network.

Operand bindings per pass:

* **forward** — ``a`` is the replicated im2col IFmap matrix (sliding-window
  reuse, Eqs. 2-8), ``b`` is the dense filter matrix.
* **dgrad** — ``a`` is the output-gradient matrix ``dO`` (dense: every element
  unique, contiguous along M), ``b`` is the transposed filter.  The im2col
  structure moves to the *output* (``col2im`` scatter), so neither input
  operand has sliding-window reuse: dgrad behaves like a pointwise GEMM.
* **wgrad** — ``a`` is ``dO^T`` (dense; the kernel streams dO along its
  contiguous K extent and transposes through shared memory), ``b`` is the
  im2col IFmap matrix entered on the N side: its tile rows now run along the
  K axis (output positions) and its columns along N (filter offsets), which
  is why the L2 sliding-window equations take explicit (rows, cols) extents.

GEMM-native layers (:class:`~repro.core.layer.LinearLayerConfig` and the
batched :class:`~repro.core.layer.BatchedGemmLayerConfig`) skip the im2col
story entirely: :func:`lower_dense` binds every pass's operands as dense
row-major matrices (the same N<->K / M<->K swaps, all-unique L2 reuse, and
``groups`` independent GEMM instances for batched layers).  See the
"GEMM-native layers" section of DESIGN.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Tuple, Union

from .layer import (DENSE_LAYER_TYPES, BatchedGemmLayerConfig, ConvLayerConfig,
                    GemmShape, LayerConfig, LinearLayerConfig)

#: the three per-layer GEMMs of one training step, in execution order.
PassKind = Literal["forward", "dgrad", "wgrad"]
TRAINING_PASSES: Tuple[PassKind, ...] = ("forward", "dgrad", "wgrad")
PASS_KINDS: Tuple[PassKind, ...] = TRAINING_PASSES

#: accepted values for the public ``passes`` option (requests / CLI).
PASS_CHOICES: Tuple[str, ...] = ("forward", "dgrad", "wgrad", "training")

#: warp-load pattern of one operand, selecting its L1 inefficiency model:
#: "im2col" streams a sliding-window matrix column-wise (Eq. 2-3), "gather"
#: collects 32/blkK distant blkK-element segments per warp (the filter-matrix
#: pattern), "contiguous" streams dense rows (ideal coalescing).
L1Pattern = Literal["im2col", "gather", "contiguous"]

#: how GEMM coordinates map to tensor addresses: "conv" workloads address
#: BCHW/KCRS convolution tensors (implicit im2col), "dense" workloads address
#: row-major activation/weight matrices (linear and batched-GEMM layers).
WorkloadLayoutKind = Literal["conv", "dense"]

#: intra-tile reuse captured by the private L1: "sliding" tiles have the
#: im2col duplication (unique footprint from Eq. 5-8), "unique" tiles have no
#: duplication (every element distinct).
L2Reuse = Literal["sliding", "unique"]


def normalize_passes(value: Union[str, None]) -> str:
    """Validate and normalize a public ``passes`` option value."""
    if value is None:
        return "forward"
    normalized = str(value).strip().lower()
    if normalized not in PASS_CHOICES:
        raise ValueError(
            f"unknown pass {value!r}; expected one of {list(PASS_CHOICES)}")
    return normalized


def expand_passes(value: Union[str, None]) -> Tuple[PassKind, ...]:
    """The pass kinds a public ``passes`` option evaluates."""
    normalized = normalize_passes(value)
    if normalized == "training":
        return TRAINING_PASSES
    return (normalized,)  # type: ignore[return-value]


@dataclass(frozen=True)
class Im2colPattern:
    """Sliding-window reuse geometry of an im2col operand.

    Property names deliberately mirror :class:`ConvLayerConfig` so the Eq. 2-8
    helpers in :mod:`repro.core.l1` / :mod:`repro.core.l2` accept either.
    """

    batch: int
    #: channels of the backing tensor (Ci for the IFmap matrix).
    channels: int
    in_height: int
    in_width: int
    filter_height: int
    filter_width: int
    stride: int = 1
    padding: int = 0

    def __post_init__(self) -> None:
        positive = {
            "batch": self.batch,
            "channels": self.channels,
            "in_height": self.in_height,
            "in_width": self.in_width,
            "filter_height": self.filter_height,
            "filter_width": self.filter_width,
            "stride": self.stride,
        }
        for attr, value in positive.items():
            if value <= 0:
                raise ValueError(f"{attr} must be positive, got {value}")
        if self.padding < 0:
            raise ValueError(f"padding must be non-negative, got {self.padding}")

    @property
    def padded_height(self) -> int:
        return self.in_height + 2 * self.padding

    @property
    def padded_width(self) -> int:
        return self.in_width + 2 * self.padding

    @property
    def out_height(self) -> int:
        return (self.padded_height - self.filter_height) // self.stride + 1

    @property
    def out_width(self) -> int:
        return (self.padded_width - self.filter_width) // self.stride + 1

    @property
    def is_pointwise(self) -> bool:
        return self.filter_height == 1 and self.filter_width == 1

    @property
    def filter_pixels(self) -> int:
        return self.filter_height * self.filter_width

    @classmethod
    def of_layer(cls, layer: ConvLayerConfig) -> "Im2colPattern":
        """The forward im2col pattern of a convolution layer."""
        return cls(
            batch=layer.batch,
            channels=layer.in_channels,
            in_height=layer.in_height,
            in_width=layer.in_width,
            filter_height=layer.filter_height,
            filter_width=layer.filter_width,
            stride=layer.stride,
            padding=layer.padding,
        )


def effective_ifmap_elements(layer: ConvLayerConfig) -> float:
    """Padded IFmap footprint actually referenced by the convolution.

    The footprint includes the zero padding (the model follows the paper and
    treats padded rows/columns as part of the address range), but excludes the
    input positions a strided 1x1 convolution never touches.
    """
    if layer.is_pointwise and layer.stride > 1:
        touched = layer.out_height * layer.out_width
        return float(layer.batch * layer.in_channels * touched)
    return float(layer.batch * layer.in_channels
                 * layer.padded_height * layer.padded_width)


@dataclass(frozen=True)
class OperandSpec:
    """One GEMM input operand: tensor identity, footprints and reuse pattern."""

    #: tensor the operand reads: "ifmap", "filter" or "ofmap_grad".
    role: str
    #: warp-load pattern selecting the L1 inefficiency model.
    l1_pattern: L1Pattern
    #: intra-tile reuse selecting the L2 unique-footprint model.
    l2_reuse: L2Reuse
    #: backing tensor footprint in elements (what the address space holds).
    tensor_elements: int
    #: effective DRAM footprint of one full read of the operand, in elements
    #: (the padded/strided-adjusted range of Eq. 10).
    dram_elements: float
    #: sliding-window geometry; required when l1_pattern/l2_reuse is im2col.
    pattern: Optional[Im2colPattern] = None
    #: whether the operand is re-read from DRAM once per orthogonal CTA
    #: dimension (Eq. 10's per-column IFmap re-read).  True for the tall
    #: forward/dgrad grids whose CTA columns execute far apart in time; False
    #: for wgrad, whose few-CTA grid runs as a handful of concurrent waves
    #: streaming the K (reduction) axis in lockstep, so every operand chunk
    #: is fetched once and shared — the same argument the paper makes for the
    #: forward filter matrix.
    dram_replicated: bool = True

    def __post_init__(self) -> None:
        if self.tensor_elements <= 0:
            raise ValueError("tensor_elements must be positive")
        if self.dram_elements <= 0:
            raise ValueError("dram_elements must be positive")
        if (self.l1_pattern == "im2col" or self.l2_reuse == "sliding") \
                and self.pattern is None:
            raise ValueError(
                f"operand {self.role!r} uses an im2col pattern but none given")


@dataclass(frozen=True)
class GemmWorkload:
    """One GEMM of a layer's training step.

    The IR the whole model stack consumes: ``a`` is the M-side input operand,
    ``b`` the N-side input operand, ``out`` describes the tensor the epilogue
    writes.  ``layer`` records the layer the workload was lowered from (the
    simulator derives exact tensor addresses from it, dispatching on
    ``layout``).  ``gemm`` is the per-instance shape and ``groups`` the number
    of independent instances (1 for convolutions and linear layers; a batched
    GEMM runs ``groups`` copies over per-instance tensor slices, so every
    total — MACs, traffic, CTAs — scales by it).
    """

    name: str
    pass_kind: PassKind
    gemm: GemmShape
    a: OperandSpec
    b: OperandSpec
    #: tensor the epilogue produces: "ofmap", "ifmap_grad" or "filter_grad"
    #: (conv) / "output", "input_grad" or "weight_grad" (dense).
    out_role: str
    #: footprint of the output tensor, in elements (across all groups).
    out_elements: int
    #: bytes per tensor element; flows through every byte computation.
    dtype_bytes: int
    #: the layer this workload was lowered from.
    layer: LayerConfig
    #: independent GEMM instances of shape ``gemm`` (batched GEMM).
    groups: int = 1
    #: GEMM-coordinate -> tensor-address mapping family.
    layout: WorkloadLayoutKind = "conv"

    def __post_init__(self) -> None:
        if self.pass_kind not in PASS_KINDS:
            raise ValueError(f"unknown pass kind {self.pass_kind!r}")
        if self.out_elements <= 0:
            raise ValueError("out_elements must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")
        if self.groups <= 0:
            raise ValueError("groups must be positive")
        if self.layout not in ("conv", "dense"):
            raise ValueError(f"unknown workload layout {self.layout!r}")

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations: groups * M*N*K."""
        return self.groups * self.gemm.macs

    @property
    def flops(self) -> int:
        return 2 * self.macs

    def structural_key(self) -> Tuple:
        """Configuration identity of the workload, ignoring names."""
        return self.layer.structural_key() + (self.pass_kind,)

    def describe(self) -> str:
        gemm = self.gemm
        return (f"{self.name}: {self.pass_kind} GEMM "
                f"M={gemm.m} N={gemm.n} K={gemm.k} "
                f"a={self.a.role}/{self.a.l1_pattern} "
                f"b={self.b.role}/{self.b.l1_pattern} -> {self.out_role}")


# ----------------------------------------------------------------------
# Lowering: ConvLayerConfig -> per-pass GemmWorkload
# ----------------------------------------------------------------------

def _pass_name(layer: ConvLayerConfig, pass_kind: PassKind) -> str:
    return layer.name if pass_kind == "forward" else f"{layer.name}:{pass_kind}"


def lower_forward(layer: LayerConfig) -> GemmWorkload:
    """Forward pass: O = col(I) . W — exactly the seed model's geometry."""
    if isinstance(layer, DENSE_LAYER_TYPES):
        return lower_dense(layer, "forward")
    return GemmWorkload(
        name=_pass_name(layer, "forward"),
        pass_kind="forward",
        gemm=layer.gemm_shape(),
        a=OperandSpec(
            role="ifmap",
            l1_pattern="im2col",
            l2_reuse="sliding",
            tensor_elements=layer.ifmap_elements,
            dram_elements=effective_ifmap_elements(layer),
            pattern=Im2colPattern.of_layer(layer),
        ),
        b=OperandSpec(
            role="filter",
            l1_pattern="gather",
            l2_reuse="unique",
            tensor_elements=layer.filter_elements,
            dram_elements=float(layer.filter_elements),
        ),
        out_role="ofmap",
        out_elements=layer.ofmap_elements,
        dtype_bytes=layer.dtype_bytes,
        layer=layer,
    )


def lower_dgrad(layer: LayerConfig) -> GemmWorkload:
    """Data-gradient pass: dI = col2im(dO . W^T) — N and K swapped."""
    if isinstance(layer, DENSE_LAYER_TYPES):
        return lower_dense(layer, "dgrad")
    forward = layer.gemm_shape()
    return GemmWorkload(
        name=_pass_name(layer, "dgrad"),
        pass_kind="dgrad",
        gemm=GemmShape(m=forward.m, n=forward.k, k=forward.n),
        a=OperandSpec(
            role="ofmap_grad",
            l1_pattern="contiguous",
            l2_reuse="unique",
            tensor_elements=layer.ofmap_elements,
            dram_elements=float(layer.ofmap_elements),
        ),
        b=OperandSpec(
            role="filter",
            l1_pattern="gather",
            l2_reuse="unique",
            tensor_elements=layer.filter_elements,
            dram_elements=float(layer.filter_elements),
        ),
        out_role="ifmap_grad",
        out_elements=layer.ifmap_elements,
        dtype_bytes=layer.dtype_bytes,
        layer=layer,
    )


def lower_wgrad(layer: LayerConfig) -> GemmWorkload:
    """Weight-gradient pass: dW = dO^T . col(I) — M and K swapped."""
    if isinstance(layer, DENSE_LAYER_TYPES):
        return lower_dense(layer, "wgrad")
    forward = layer.gemm_shape()
    return GemmWorkload(
        name=_pass_name(layer, "wgrad"),
        pass_kind="wgrad",
        gemm=GemmShape(m=forward.n, n=forward.k, k=forward.m),
        a=OperandSpec(
            role="ofmap_grad",
            l1_pattern="contiguous",
            l2_reuse="unique",
            tensor_elements=layer.ofmap_elements,
            dram_elements=float(layer.ofmap_elements),
            dram_replicated=False,
        ),
        b=OperandSpec(
            role="ifmap",
            l1_pattern="im2col",
            l2_reuse="sliding",
            tensor_elements=layer.ifmap_elements,
            dram_elements=effective_ifmap_elements(layer),
            pattern=Im2colPattern.of_layer(layer),
            dram_replicated=False,
        ),
        out_role="filter_grad",
        out_elements=layer.filter_elements,
        dtype_bytes=layer.dtype_bytes,
        layer=layer,
    )


_LOWERINGS = {
    "forward": lower_forward,
    "dgrad": lower_dgrad,
    "wgrad": lower_wgrad,
}


# ----------------------------------------------------------------------
# Dense lowering: Linear / BatchedGemm layers -> per-pass GemmWorkload
# ----------------------------------------------------------------------
#
# A dense layer's three training passes are pure operand swaps of row-major
# matrices (writing A for the forward input X / score operand and dY for the
# output gradient):
#
#     forward  Y  = A . B^T       (M, N, K)
#     dgrad    dA = dY . B        (M, K, N)   N and K swapped
#     wgrad    dB = dY^T . A      (N, K, M)   M and K swapped
#
# In GEMM-local terms every pass's a-operand backs a [groups, m, k] tensor and
# every b-operand a [groups, n, k] tensor, which is what makes one address
# decomposition serve all three passes in the simulator.  Per-pass operand
# bindings (contiguity in the backing row-major tensor):
#
# * forward — a = A (contiguous along K: blkK-segment "gather" loads, like
#   the conv filter matrix), b = B (same).
# * dgrad — a = dY (contiguous along its K axis: "gather"), b = B entered
#   transposed (strided along K, modelled "gather" like the conv dgrad
#   filter).
# * wgrad — a = dY^T (contiguous along its *own* axis: fully coalesced
#   column loads, "contiguous"), b = A entered on the N side ("gather").
#   Like the conv wgrad, the few-CTA grid streams the K (row) axis in
#   lockstep waves, so neither operand is re-read per CTA column.

_DENSE_L1_PATTERNS = {
    "forward": ("gather", "gather"),
    "dgrad": ("gather", "gather"),
    "wgrad": ("contiguous", "gather"),
}

_DENSE_ROLES = {
    "forward": ("input", "weight", "output"),
    "dgrad": ("output_grad", "weight", "input_grad"),
    "wgrad": ("output_grad", "input", "weight_grad"),
}


def lower_dense(layer: Union[LinearLayerConfig, BatchedGemmLayerConfig],
                pass_kind: PassKind) -> GemmWorkload:
    """Lower one dense (linear or batched-GEMM) layer onto one pass's GEMM."""
    if pass_kind not in PASS_KINDS:
        raise ValueError(
            f"unknown pass kind {pass_kind!r}; expected one of "
            f"{list(PASS_KINDS)}")
    forward = layer.gemm_shape()
    if pass_kind == "forward":
        gemm = forward
    elif pass_kind == "dgrad":
        gemm = GemmShape(m=forward.m, n=forward.k, k=forward.n)
    else:  # wgrad
        gemm = GemmShape(m=forward.n, n=forward.k, k=forward.m)
    groups = getattr(layer, "groups", 1)
    a_pattern, b_pattern = _DENSE_L1_PATTERNS[pass_kind]
    a_role, b_role, out_role = _DENSE_ROLES[pass_kind]
    replicated = pass_kind != "wgrad"
    a_elements = groups * gemm.m * gemm.k
    b_elements = groups * gemm.n * gemm.k
    return GemmWorkload(
        name=_pass_name(layer, pass_kind),
        pass_kind=pass_kind,
        gemm=gemm,
        a=OperandSpec(
            role=a_role,
            l1_pattern=a_pattern,
            l2_reuse="unique",
            tensor_elements=a_elements,
            dram_elements=float(a_elements),
            dram_replicated=replicated,
        ),
        b=OperandSpec(
            role=b_role,
            l1_pattern=b_pattern,
            l2_reuse="unique",
            tensor_elements=b_elements,
            dram_elements=float(b_elements),
            dram_replicated=replicated,
        ),
        out_role=out_role,
        out_elements=groups * gemm.m * gemm.n,
        dtype_bytes=layer.dtype_bytes,
        layer=layer,
        groups=groups,
        layout="dense",
    )


def lower_pass(layer: LayerConfig, pass_kind: PassKind) -> GemmWorkload:
    """Lower one layer (conv, linear or batched GEMM) onto one pass's GEMM."""
    if isinstance(layer, DENSE_LAYER_TYPES):
        return lower_dense(layer, pass_kind)
    try:
        lowering = _LOWERINGS[pass_kind]
    except KeyError:
        raise ValueError(
            f"unknown pass kind {pass_kind!r}; expected one of "
            f"{list(PASS_KINDS)}") from None
    return lowering(layer)


def training_workloads(layer: LayerConfig) -> Tuple[GemmWorkload, ...]:
    """All three per-layer GEMMs of one training step, in execution order."""
    return tuple(lower_pass(layer, pass_kind) for pass_kind in TRAINING_PASSES)


def as_workload(source: Union[LayerConfig, GemmWorkload],
                pass_kind: PassKind = "forward") -> GemmWorkload:
    """Coerce a layer (lowered to ``pass_kind``) or pass a workload through.

    Model entry points accept either, so existing forward-pass call sites keep
    working unchanged while pass-aware callers hand over explicit workloads.
    """
    if isinstance(source, GemmWorkload):
        return source
    if isinstance(source, (ConvLayerConfig, *DENSE_LAYER_TYPES)):
        return lower_pass(source, pass_kind)
    raise TypeError(
        f"expected a layer config or GemmWorkload, got {type(source).__name__}")
