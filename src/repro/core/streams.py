"""Execution streams of the software-pipelined GEMM main loop (Section V).

The cuDNN/CUTLASS GEMM main loop overlaps three streams (Fig. 9):

* the **global load stream** (GLS) fetches the next input tiles from the
  global memory (served by L1, L2 or DRAM) and stages them in shared memory;
* the **shared memory access stream** (SAS) moves the previously staged tiles
  from shared memory into registers;
* the **compute stream** (CS) performs the multiply-accumulate operations.

This module computes the per-main-loop execution time of each stream
(Eq. 11-13) plus the pure bandwidth-transfer times used by the
memory-bandwidth bottleneck case (Eq. 18).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import GpuSpec
from .tiling import CtaTile
from .traffic import TrafficEstimate


@dataclass(frozen=True)
class StreamTimes:
    """Per-main-loop execution time (seconds) of each stream and resource."""

    #: global load stream (Eq. 11): latency + transfer of the slowest level.
    gls: float
    #: shared memory access stream (Eq. 12).
    sas: float
    #: compute stream (Eq. 13).
    cs: float
    #: pure transfer times per level, without pipeline latency (Eq. 18 inputs).
    l1_bw: float
    l2_bw: float
    dram_bw: float
    #: per-level load times including pipeline latency (Eq. 11 terms).
    gls_l1: float
    gls_l2: float
    gls_dram: float

    @property
    def compute_or_smem(self) -> float:
        """max(tCS, tSAS): the non-memory-system critical path per loop."""
        return max(self.cs, self.sas)


def gls_time(traffic: TrafficEstimate, gpu: GpuSpec) -> tuple:
    """Eq. 11: per-loop global load time and its per-level components."""
    clock = gpu.core_clock_hz
    lat_l1 = gpu.lat_l1_cycles / clock
    lat_l2 = gpu.lat_l2_cycles / clock
    lat_dram = gpu.lat_dram_cycles / clock

    l1_bw = gpu.l1_bw_per_sm
    l2_bw_per_sm = gpu.l2_bw / gpu.num_sm
    dram_bw_per_sm = gpu.dram_bw / gpu.num_sm

    t_l1 = lat_l1 + traffic.l1_bytes_per_loop / l1_bw
    t_l2 = lat_l2 + traffic.l2_bytes_per_loop / l2_bw_per_sm
    t_dram = lat_dram + traffic.dram_bytes_per_loop / dram_bw_per_sm
    return max(t_l1, t_l2, t_dram), t_l1, t_l2, t_dram


def sas_time(tile: CtaTile, gpu: GpuSpec, dtype_bytes: int) -> float:
    """Eq. 12: per-loop shared memory store + load time."""
    store_bytes = (tile.blk_m + tile.blk_n) * tile.blk_k * dtype_bytes
    load_bytes = ((tile.warp_m + tile.warp_n) * tile.blk_k
                  * tile.num_warps * dtype_bytes)
    return (store_bytes / gpu.smem_st_bw_per_sm
            + load_bytes / gpu.smem_ld_bw_per_sm)


def cs_time(tile: CtaTile, gpu: GpuSpec) -> float:
    """Eq. 13: per-loop compute (MAC) time on one SM."""
    macs = tile.macs_per_loop
    macs_per_second_per_sm = gpu.macs_per_second / gpu.num_sm
    return macs / macs_per_second_per_sm


def bandwidth_times(traffic: TrafficEstimate, gpu: GpuSpec) -> tuple:
    """Pure per-loop transfer times at L1 (per SM), L2 and DRAM (per-SM share)."""
    t_l1 = traffic.l1_bytes_per_loop / gpu.l1_bw_per_sm
    t_l2 = traffic.l2_bytes_per_loop / (gpu.l2_bw / gpu.num_sm)
    t_dram = traffic.dram_bytes_per_loop / (gpu.dram_bw / gpu.num_sm)
    return t_l1, t_l2, t_dram


def compute_stream_times(traffic: TrafficEstimate, gpu: GpuSpec) -> StreamTimes:
    """All per-main-loop stream times for one layer on one GPU."""
    tile = traffic.grid.tile
    dtype_bytes = traffic.workload.dtype_bytes
    t_gls, gls_l1, gls_l2, gls_dram = gls_time(traffic, gpu)
    t_sas = sas_time(tile, gpu, dtype_bytes)
    t_cs = cs_time(tile, gpu)
    bw_l1, bw_l2, bw_dram = bandwidth_times(traffic, gpu)
    return StreamTimes(
        gls=t_gls,
        sas=t_sas,
        cs=t_cs,
        l1_bw=bw_l1,
        l2_bw=bw_l2,
        dram_bw=bw_dram,
        gls_l1=gls_l1,
        gls_l2=gls_l2,
        gls_dram=gls_dram,
    )
