"""GPU resource-scaling study (Section VII-C, Fig. 16).

The study evaluates the 9 design options of Fig. 16a (multipliers on SM count,
per-SM MAC throughput, register/SMEM capacity and bandwidth, L1/L2/DRAM
bandwidth, and the GEMM CTA tile size) on the full set of ResNet152
convolution layers and reports, per option, the speedup over the baseline
TITAN Xp and the distribution of performance bottlenecks across layers.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..gpu.design_options import DesignOption, PAPER_DESIGN_OPTIONS
from ..gpu.spec import GpuSpec
from .bottleneck import Bottleneck
from .layer import ConvLayerConfig
from .model import DeltaModel
from .performance import ExecutionEstimate


@dataclass(frozen=True)
class ScalingResult:
    """Outcome of one design option on a workload (a list of conv layers)."""

    option: DesignOption
    gpu: GpuSpec
    total_time_seconds: float
    speedup: float
    #: per-layer execution estimates, in workload order.
    estimates: Tuple[ExecutionEstimate, ...]

    @property
    def bottleneck_distribution(self) -> Dict[Bottleneck, float]:
        """Fraction of layer *time* attributed to each bottleneck category."""
        total = sum(est.time_seconds for est in self.estimates)
        if total <= 0:
            return {}
        shares: Counter = Counter()
        for est in self.estimates:
            # A zero-time layer contributes no time to wait on its
            # bottleneck; including it would add a spurious zero-share
            # category to the distribution.
            if est.time_seconds <= 0:
                continue
            shares[est.bottleneck] += est.time_seconds
        return {key: value / total for key, value in shares.items()}

    @property
    def bottleneck_counts(self) -> Dict[Bottleneck, int]:
        """Number of layers bound by each bottleneck category."""
        return dict(Counter(est.bottleneck for est in self.estimates))


@dataclass(frozen=True)
class ScalingStudy:
    """Run the Fig. 16 design-space exploration on an arbitrary workload."""

    baseline: GpuSpec
    options: Sequence[DesignOption] = PAPER_DESIGN_OPTIONS

    def _model_for(self, option: Optional[DesignOption]) -> DeltaModel:
        if option is None:
            return DeltaModel(self.baseline)
        return DeltaModel(option.apply(self.baseline), cta_tile_hw=option.cta_tile_hw)

    def run(self, layers: Sequence[ConvLayerConfig]) -> List[ScalingResult]:
        """Evaluate the baseline and every option; results exclude the baseline."""
        layers = list(layers)
        if not layers:
            raise ValueError("scaling study needs at least one layer")

        baseline_model = self._model_for(None)
        baseline_estimates = tuple(baseline_model.estimate(layer) for layer in layers)
        baseline_time = sum(est.time_seconds for est in baseline_estimates)

        results: List[ScalingResult] = []
        for option in self.options:
            model = self._model_for(option)
            estimates = tuple(model.estimate(layer) for layer in layers)
            total = sum(est.time_seconds for est in estimates)
            speedup = baseline_time / total if total > 0 else float("inf")
            results.append(ScalingResult(
                option=option,
                gpu=model.gpu,
                total_time_seconds=total,
                speedup=speedup,
                estimates=estimates,
            ))
        return results

    def baseline_result(self, layers: Sequence[ConvLayerConfig]) -> ScalingResult:
        """The baseline GPU evaluated on the same workload (speedup = 1)."""
        model = self._model_for(None)
        estimates = tuple(model.estimate(layer) for layer in layers)
        total = sum(est.time_seconds for est in estimates)
        identity = DesignOption(name="baseline")
        return ScalingResult(
            option=identity,
            gpu=self.baseline,
            total_time_seconds=total,
            speedup=1.0,
            estimates=estimates,
        )
