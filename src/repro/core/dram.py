"""DRAM traffic model (Section IV-C of the paper), operand-generic.

The L2 cache is shared by all SMs, so the CTAs of one *CTA batch* (all CTAs
executing concurrently) can reuse each other's data.  With the column-wise CTA
scheduling the paper assumes for the tall-and-skinny im2col GEMM:

* the N-side operand (the filter matrix in the forward pass) has short
  re-reference distances (every CTA in a batch shares it) and a small total
  footprint, so it is read from DRAM once;
* the M-side operand (the im2col matrix in the forward pass) is re-read once
  per *column* of CTA tiles, because the re-reference distance between CTA
  columns exceeds the L2 capacity.

    Eq. 10  T_DRAM_A = A's effective footprint * (columns of CTA tiles)
            T_DRAM_B = B's effective footprint
            T_DRAM   = T_DRAM_A + T_DRAM_B

Each operand's effective footprint (``OperandSpec.dram_elements``) is set by
the lowering: the forward IFmap operand uses the padded address range (with
the strided-1x1 exception), every other operand its exact tensor size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Union

from .layer import ConvLayerConfig
from .tiling import GemmGrid
from .workload import GemmWorkload, as_workload, effective_ifmap_elements

__all__ = [
    "DramModelOptions",
    "DramTraffic",
    "SchedulingOrder",
    "effective_ifmap_elements",
    "estimate_dram_traffic",
]


SchedulingOrder = Literal["column", "row"]


@dataclass(frozen=True)
class DramModelOptions:
    """Assumptions of the DRAM traffic model.

    ``scheduling`` selects the CTA scheduling order assumed for inter-CTA
    reuse: the paper's column-wise order (the M-side operand re-read per CTA
    column) or a row-wise order (the N-side operand re-read per CTA row) used
    as an ablation.  ``include_output_write`` adds the epilogue write-back of
    the workload's output tensor to the DRAM traffic total (the paper's
    figures report load traffic only).
    """

    scheduling: SchedulingOrder = "column"
    include_output_write: bool = False


@dataclass(frozen=True)
class DramTraffic:
    """DRAM traffic of one GEMM workload.

    ``ifmap_bytes`` is the M-side (``a``) operand's traffic and
    ``filter_bytes`` the N-side (``b``) operand's, keeping the forward-pass
    vocabulary.
    """

    ifmap_bytes: float
    filter_bytes: float
    output_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.ifmap_bytes + self.filter_bytes + self.output_bytes

    @property
    def load_bytes(self) -> float:
        return self.ifmap_bytes + self.filter_bytes


def estimate_dram_traffic(source: Union[ConvLayerConfig, GemmWorkload],
                          grid: GemmGrid,
                          options: DramModelOptions = DramModelOptions()) -> DramTraffic:
    """Eq. 10: DRAM load traffic of one GEMM workload, in bytes."""
    workload = as_workload(source)
    a_elements = workload.a.dram_elements
    b_elements = workload.b.dram_elements

    if options.scheduling == "column":
        a_passes = grid.ctas_n if workload.a.dram_replicated else 1
        b_passes = 1
    elif options.scheduling == "row":
        a_passes = 1
        b_passes = grid.ctas_m if workload.b.dram_replicated else 1
    else:  # pragma: no cover - guarded by Literal type
        raise ValueError(f"unknown scheduling order {options.scheduling!r}")

    dtype = workload.dtype_bytes
    output_bytes = 0.0
    if options.include_output_write:
        output_bytes = float(workload.out_elements * dtype)
    return DramTraffic(
        ifmap_bytes=a_elements * a_passes * dtype,
        filter_bytes=b_elements * b_passes * dtype,
        output_bytes=output_bytes,
    )
