"""DRAM traffic model (Section IV-C of the paper).

The L2 cache is shared by all SMs, so the CTAs of one *CTA batch* (all CTAs
executing concurrently) can reuse each other's data.  With the column-wise CTA
scheduling the paper assumes for the tall-and-skinny im2col GEMM:

* filter data have short re-reference distances (every CTA in a batch shares
  them) and a small total footprint, so they are read from DRAM once;
* IFmap data are re-read once per *column* of CTA tiles, because the
  re-reference distance between CTA columns exceeds the L2 capacity.

    Eq. 10  T_DRAM_IFmap  = padded IFmap size * (columns of CTA tiles)
            T_DRAM_Filter = filter size
            T_DRAM        = T_DRAM_IFmap + T_DRAM_Filter

For 1x1 convolutions with stride > 1 only the sampled IFmap positions are
read, which the model accounts for by shrinking the effective IFmap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal

from .layer import ConvLayerConfig
from .tiling import GemmGrid


SchedulingOrder = Literal["column", "row"]


@dataclass(frozen=True)
class DramModelOptions:
    """Assumptions of the DRAM traffic model.

    ``scheduling`` selects the CTA scheduling order assumed for inter-CTA
    reuse: the paper's column-wise order (IFmap re-read per CTA column) or a
    row-wise order (filters re-read per CTA row) used as an ablation.
    ``include_output_write`` adds the epilogue OFmap write-back to the DRAM
    traffic total (the paper's figures report load traffic only).
    """

    scheduling: SchedulingOrder = "column"
    include_output_write: bool = False


@dataclass(frozen=True)
class DramTraffic:
    """DRAM traffic of one convolution layer."""

    ifmap_bytes: float
    filter_bytes: float
    output_bytes: float = 0.0

    @property
    def total_bytes(self) -> float:
        return self.ifmap_bytes + self.filter_bytes + self.output_bytes

    @property
    def load_bytes(self) -> float:
        return self.ifmap_bytes + self.filter_bytes


def effective_ifmap_elements(layer: ConvLayerConfig) -> float:
    """Padded IFmap footprint actually referenced by the convolution.

    The footprint includes the zero padding (the model follows the paper and
    treats padded rows/columns as part of the address range), but excludes the
    input positions a strided 1x1 convolution never touches.
    """
    if layer.is_pointwise and layer.stride > 1:
        touched = layer.out_height * layer.out_width
        return float(layer.batch * layer.in_channels * touched)
    return float(layer.batch * layer.in_channels
                 * layer.padded_height * layer.padded_width)


def estimate_dram_traffic(layer: ConvLayerConfig, grid: GemmGrid,
                          options: DramModelOptions = DramModelOptions()) -> DramTraffic:
    """Eq. 10: DRAM load traffic of the layer, in bytes."""
    ifmap_elements = effective_ifmap_elements(layer)
    filter_elements = float(layer.filter_elements)

    if options.scheduling == "column":
        ifmap_passes = grid.ctas_n
        filter_passes = 1
    elif options.scheduling == "row":
        ifmap_passes = 1
        filter_passes = grid.ctas_m
    else:  # pragma: no cover - guarded by Literal type
        raise ValueError(f"unknown scheduling order {options.scheduling!r}")

    ifmap_bytes = ifmap_elements * ifmap_passes * layer.dtype_bytes
    filter_bytes = filter_elements * filter_passes * layer.dtype_bytes
    output_bytes = 0.0
    if options.include_output_write:
        output_bytes = float(layer.ofmap_elements * layer.dtype_bytes)
    return DramTraffic(
        ifmap_bytes=ifmap_bytes,
        filter_bytes=filter_bytes,
        output_bytes=output_bytes,
    )
