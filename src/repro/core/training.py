"""Network-level training-step aggregation over the pass-aware workload IR.

One SGD training step executes every convolution layer three times (forward,
dgrad, wgrad — Section II of the paper).  :func:`estimate_training_step` runs
the DeLTA model over the requested passes of every layer of a
:class:`~repro.networks.base.ConvNetwork` and aggregates per-pass and total
time and memory traffic into a :class:`TrainingStepEstimate`, the
network-level result the Session API and the ``training`` experiment report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple, Union

from .layer import LayerConfig
from .performance import ExecutionEstimate
from .workload import TRAINING_PASSES, PassKind, lower_pass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from ..networks.base import ConvNetwork
    from .model import DeltaModel

#: memory levels aggregated per pass.
TRAFFIC_LEVELS: Tuple[str, ...] = ("l1", "l2", "dram")


@dataclass(frozen=True)
class LayerPassEstimate:
    """Execution estimate of one layer's GEMM for one training pass."""

    layer_name: str
    pass_kind: PassKind
    estimate: ExecutionEstimate

    @property
    def time_seconds(self) -> float:
        return self.estimate.time_seconds

    def traffic_bytes(self, level: str) -> float:
        return self.estimate.traffic.level_bytes(level)


@dataclass(frozen=True)
class TrainingStepEstimate:
    """Per-pass and total time/traffic of one training step of a network."""

    network: str
    gpu: str
    batch: int
    passes: Tuple[PassKind, ...]
    records: Tuple[LayerPassEstimate, ...]

    # ------------------------------------------------------------------
    # Aggregates
    # ------------------------------------------------------------------
    def pass_records(self, pass_kind: PassKind) -> List[LayerPassEstimate]:
        return [record for record in self.records
                if record.pass_kind == pass_kind]

    @property
    def time_by_pass(self) -> Dict[str, float]:
        """Total predicted seconds per pass, summed over all layers."""
        totals: Dict[str, float] = {kind: 0.0 for kind in self.passes}
        for record in self.records:
            totals[record.pass_kind] += record.time_seconds
        return totals

    def traffic_by_pass(self, level: str) -> Dict[str, float]:
        """Total traffic bytes at one memory level per pass."""
        totals: Dict[str, float] = {kind: 0.0 for kind in self.passes}
        for record in self.records:
            totals[record.pass_kind] += record.traffic_bytes(level)
        return totals

    @property
    def total_time_seconds(self) -> float:
        return sum(record.time_seconds for record in self.records)

    def total_traffic_bytes(self, level: str) -> float:
        return sum(record.traffic_bytes(level) for record in self.records)

    @property
    def total_macs(self) -> int:
        return sum(record.estimate.workload.macs for record in self.records)

    # ------------------------------------------------------------------
    # Report payloads (plain data; round-trips through Report JSON)
    # ------------------------------------------------------------------
    def rows(self) -> List[Dict[str, object]]:
        """One row per (layer, pass) with time, bottleneck and traffic."""
        rows: List[Dict[str, object]] = []
        for record in self.records:
            estimate = record.estimate
            rows.append({
                "layer": record.layer_name,
                "pass": record.pass_kind,
                "time_ms": record.time_seconds * 1e3,
                "bottleneck": estimate.bottleneck.value,
                "TFLOP/s": estimate.throughput_tflops,
                "L1_GB": record.traffic_bytes("l1") / 1e9,
                "L2_GB": record.traffic_bytes("l2") / 1e9,
                "DRAM_GB": record.traffic_bytes("dram") / 1e9,
            })
        return rows

    def summary(self) -> Dict[str, object]:
        """Headline per-pass and total numbers."""
        payload: Dict[str, object] = {
            "total step time (ms)": self.total_time_seconds * 1e3,
        }
        for kind, seconds in self.time_by_pass.items():
            payload[f"{kind} time (ms)"] = seconds * 1e3
        payload["total DRAM (GB)"] = self.total_traffic_bytes("dram") / 1e9
        payload["layer GEMMs"] = len(self.records)
        return payload


def estimate_training_step(model: "DeltaModel",
                           network: Union["ConvNetwork",
                                          Iterable[LayerConfig]],
                           batch: int = 0,
                           passes: Tuple[PassKind, ...] = TRAINING_PASSES,
                           name: Optional[str] = None
                           ) -> TrainingStepEstimate:
    """Estimate one training step of a network (or any layer iterable).

    Layers run in forward order; within each layer the requested passes run
    in training order.  ``batch`` is inferred from the first layer when not
    given (network containers carry it on every layer); ``name`` overrides
    the reported network name for plain layer iterables.
    """
    name = name or getattr(network, "name", "custom")
    layers = list(network)
    if not layers:
        raise ValueError("training step needs at least one layer")
    records = []
    for layer in layers:
        for pass_kind in passes:
            workload = lower_pass(layer, pass_kind)
            records.append(LayerPassEstimate(
                layer_name=layer.name,
                pass_kind=pass_kind,
                estimate=model.estimate(workload),
            ))
    return TrainingStepEstimate(
        network=name,
        gpu=model.gpu.name,
        batch=batch or layers[0].batch,
        passes=tuple(passes),
        records=tuple(records),
    )
