"""High-level DeLTA facade: one object that answers traffic and time queries.

:class:`DeltaModel` is the public entry point most users want::

    from repro import DeltaModel, TITAN_XP, alexnet

    model = DeltaModel(TITAN_XP)
    for layer in alexnet(batch=256).conv_layers():
        estimate = model.estimate(layer)
        print(layer.name, estimate.time_seconds, estimate.bottleneck)

Every query accepts either a :class:`~repro.core.layer.ConvLayerConfig`
(evaluated as its forward-pass GEMM, exactly the seed behaviour) or a
:class:`~repro.core.workload.GemmWorkload` produced by the pass lowering;
:meth:`DeltaModel.estimate_pass` and :meth:`DeltaModel.estimate_training_step`
cover the backward passes and whole training steps::

    step = model.estimate_training_step(alexnet(batch=256))
    print(step.total_time_seconds, step.time_by_pass)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, List, Tuple, Union

from ..gpu.spec import GpuSpec
from .dram import DramModelOptions
from .l1 import ReplicationMode
from .l2 import L2ModelOptions
from .layer import LayerConfig
from .performance import ExecutionEstimate, PerformanceModel
from .traffic import TrafficEstimate, TrafficModel
from .training import TrainingStepEstimate, estimate_training_step
from .workload import (TRAINING_PASSES, GemmWorkload, PassKind, lower_pass,
                       training_workloads)

Source = Union[LayerConfig, GemmWorkload]


@dataclass(frozen=True)
class DeltaModel:
    """The complete DeLTA model: memory traffic (Sec. IV) + performance (Sec. V)."""

    gpu: GpuSpec
    l2_options: L2ModelOptions = field(default_factory=L2ModelOptions)
    dram_options: DramModelOptions = field(default_factory=DramModelOptions)
    #: how often each input matrix is streamed through L1 (see repro.core.l1).
    l1_replication: ReplicationMode = "per-cta"
    #: CTA tile height/width family (128 for stock kernels, 256 for Fig. 16a
    #: options 7-9).
    cta_tile_hw: int = 128

    @property
    def traffic_model(self) -> TrafficModel:
        return TrafficModel(
            gpu=self.gpu,
            l2_options=self.l2_options,
            dram_options=self.dram_options,
            l1_replication=self.l1_replication,
            cta_tile_hw=self.cta_tile_hw,
        )

    @property
    def performance_model(self) -> PerformanceModel:
        return PerformanceModel(gpu=self.gpu, traffic_model=self.traffic_model)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def traffic(self, source: Source) -> TrafficEstimate:
        """Estimate L1/L2/DRAM traffic for one workload (or forward layer)."""
        return self.traffic_model.estimate(source)

    def estimate(self, source: Source) -> ExecutionEstimate:
        """Estimate execution time and bottleneck for one workload."""
        return self.performance_model.estimate(source)

    def estimate_pass(self, layer: LayerConfig,
                      pass_kind: PassKind) -> ExecutionEstimate:
        """Estimate one training pass (forward, dgrad or wgrad) of a layer."""
        return self.estimate(lower_pass(layer, pass_kind))

    def estimate_layer_training(self, layer: LayerConfig
                                ) -> List[ExecutionEstimate]:
        """All three training-pass estimates of one layer, in pass order."""
        return [self.estimate(workload)
                for workload in training_workloads(layer)]

    def estimate_layers(self, layers: Iterable[Source]) -> List[ExecutionEstimate]:
        """Estimate every layer of a network (or any workload iterable)."""
        return [self.estimate(source) for source in layers]

    def total_time(self, layers: Iterable[Source]) -> float:
        """Total predicted execution time (seconds) of a sequence of layers."""
        return sum(estimate.time_seconds for estimate in self.estimate_layers(layers))

    def estimate_training_step(self, network,
                               passes: Tuple[PassKind, ...] = TRAINING_PASSES
                               ) -> TrainingStepEstimate:
        """Per-pass and total time/traffic of one training step of a network."""
        return estimate_training_step(self, network, passes=passes)

    def for_gpu(self, gpu: GpuSpec) -> "DeltaModel":
        """A copy of this model targeting a different (e.g. scaled) GPU."""
        return DeltaModel(
            gpu=gpu,
            l2_options=self.l2_options,
            dram_options=self.dram_options,
            l1_replication=self.l1_replication,
            cta_tile_hw=self.cta_tile_hw,
        )
