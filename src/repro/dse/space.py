"""Declarative search spaces over GPU designs x workloads.

A *design point* pairs one GPU design — a :class:`~repro.gpu.design_options.
DesignOption`, i.e. multipliers over a baseline :class:`~repro.gpu.spec.
GpuSpec` plus the GEMM CTA tile — with one workload (network x mini-batch x
training pass x datatype).  A *search space* is a declarative, composable
description of a set of design points:

* :func:`grid` — the cartesian product of axes (Fig. 16a generalized from 9
  hand-picked columns to thousands of combinations);
* :func:`zip_axes` — aligned axes, evaluating the i-th value of every axis
  together (the shape of the paper's original table, one column per point);
* :func:`union` — concatenation of spaces with stable order and content
  dedupe.

Spaces are frozen value objects; :meth:`SearchSpace.points` enumerates their
design points in a deterministic order, which is what makes seeded random
search reproducible and the result store's content keys stable.  Every point
is lowered onto concrete hardware through the existing
:meth:`DesignOption.apply` path, so a DSE point and a hand-built Fig. 16
column can never drift apart.
"""

from __future__ import annotations

import hashlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Mapping, Sequence, Tuple, Union

from ..core.workload import normalize_passes
from ..gpu.design_options import DesignOption
from ..gpu.spec import FP32_BYTES

#: GpuSpec resource multipliers a :class:`DesignOption` can scale.
GPU_AXIS_KEYS: Tuple[str, ...] = (
    "num_sm", "mac_bw", "regs", "smem_size", "smem_bw",
    "l1_bw", "l2_bw", "dram_bw",
)

#: workload dimensions of a design point.
WORKLOAD_AXIS_KEYS: Tuple[str, ...] = ("network", "batch", "passes", "dtype_bytes")

#: every axis key a search space accepts ("cta_tile" selects the GEMM kernel's
#: CTA tile height/width, 128 or 256 in the paper).
AXIS_KEYS: Tuple[str, ...] = GPU_AXIS_KEYS + ("cta_tile",) + WORKLOAD_AXIS_KEYS


@dataclass(frozen=True)
class Axis:
    """One searchable dimension: a key and the values it ranges over."""

    key: str
    values: Tuple[object, ...]

    def __post_init__(self) -> None:
        if self.key not in AXIS_KEYS:
            raise ValueError(
                f"unknown axis {self.key!r}; expected one of {list(AXIS_KEYS)}")
        values = tuple(self.values)
        if not values:
            raise ValueError(f"axis {self.key!r} needs at least one value")
        if self.key in GPU_AXIS_KEYS:
            values = tuple(float(v) for v in values)
            if any(v <= 0 for v in values):
                raise ValueError(f"axis {self.key!r} multipliers must be positive")
        elif self.key in ("cta_tile", "batch", "dtype_bytes"):
            values = tuple(int(v) for v in values)
            if any(v <= 0 for v in values):
                raise ValueError(f"axis {self.key!r} values must be positive")
        elif self.key == "network":
            values = tuple(str(v).strip().lower() for v in values)
        elif self.key == "passes":
            values = tuple(normalize_passes(v) for v in values)
        object.__setattr__(self, "values", values)

    def __len__(self) -> int:
        return len(self.values)


def axis(key: str, *values: object) -> Axis:
    """Shorthand constructor: ``axis("num_sm", 1, 2, 4)``."""
    return Axis(key, tuple(values))


@dataclass(frozen=True)
class DesignPoint:
    """One evaluable (GPU design, workload) pair of a search space."""

    option: DesignOption
    network: str = "resnet152"
    batch: int = 256
    passes: str = "forward"
    dtype_bytes: int = FP32_BYTES

    def __post_init__(self) -> None:
        object.__setattr__(self, "network", self.network.strip().lower())
        object.__setattr__(self, "passes", normalize_passes(self.passes))
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def name(self) -> str:
        return self.option.name

    def descriptor(self) -> Dict[str, object]:
        """Canonical plain-data identity of the point (name excluded).

        Two points with equal descriptors produce identical evaluations;
        the result store's content key hashes this payload.
        """
        design = {key: getattr(self.option, key) for key in GPU_AXIS_KEYS}
        design["cta_tile"] = self.option.cta_tile_hw
        return {
            "design": design,
            "network": self.network,
            "batch": self.batch,
            "passes": self.passes,
            "dtype_bytes": self.dtype_bytes,
        }

    def point_hash(self) -> str:
        """Stable content hash of the descriptor (name-insensitive)."""
        payload = json.dumps(self.descriptor(), sort_keys=True)
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()

    def workload_signature(self) -> Tuple[str, int, str, int]:
        """The workload half of the point (what a speedup baseline shares)."""
        return (self.network, self.batch, self.passes, self.dtype_bytes)

    def baseline_point(self) -> "DesignPoint":
        """The identity-design point of the same workload (speedup = 1)."""
        return DesignPoint(option=DesignOption(name="baseline"),
                           network=self.network, batch=self.batch,
                           passes=self.passes, dtype_bytes=self.dtype_bytes)


#: DesignOption field defaults, for the fast grid-enumeration path below.
_OPTION_DEFAULTS: Dict[str, float] = {key: 1.0 for key in GPU_AXIS_KEYS}


def _grid_points(axes: Sequence[Axis], base: DesignPoint
                 ) -> Tuple[DesignPoint, ...]:
    """Fast cartesian enumeration, equivalent to ``_point_from_values``.

    Axis normalization (``Axis.__post_init__``) already guarantees every
    value is validated and canonical — GPU multipliers are positive floats,
    networks lowercase, passes normalized — so the per-point re-validation
    of the dataclass constructors is redundant; points are assembled
    directly (name fragments precomputed per axis value), which is what
    keeps enumerating a multi-thousand-point grid off a sweep's hot path.
    """
    keys = [ax.key for ax in axes]
    # (field key, combo index, {value: "key=value" fragment or None}).
    gpu_axes = [
        (key, keys.index(key),
         {value: (f"{key}={value:g}" if value != 1.0 else None)
          for value in axes[keys.index(key)].values})
        for key in GPU_AXIS_KEYS if key in keys]
    cta_index = keys.index("cta_tile") if "cta_tile" in keys else None
    base_cta = base.option.cta_tile_hw
    option_indices = [index for _, index, _ in gpu_axes]
    if cta_index is not None:
        option_indices.append(cta_index)
    workload = {key: (keys.index(key) if key in keys else None)
                for key in WORKLOAD_AXIS_KEYS}
    base_workload = {key: getattr(base, key) for key in WORKLOAD_AXIS_KEYS}

    cta_fragments = ({value: (f"cta_tile={value}" if value != 128 else None)
                      for value in axes[cta_index].values}
                     if cta_index is not None else None)

    if all(index is None for index in workload.values()):
        # Design-only grid (the common sweep shape): every combo is a
        # distinct option, so the option cache below would never hit, and
        # the workload fields are one constant dict — build each point with
        # a single dict merge and a wholesale __dict__ assignment.
        points = []
        for combo in itertools.product(*(ax.values for ax in axes)):
            fields = dict(_OPTION_DEFAULTS)
            parts = []
            for key, index, fragments in gpu_axes:
                value = combo[index]
                fields[key] = value
                fragment = fragments[value]
                if fragment is not None:
                    parts.append(fragment)
            if cta_fragments is not None:
                cta = combo[cta_index]
                fragment = cta_fragments[cta]
                if fragment is not None:
                    parts.append(fragment)
            else:
                cta = base_cta
            fields["name"] = ",".join(parts) if parts else "baseline"
            fields["cta_tile_hw"] = cta
            option = object.__new__(DesignOption)
            object.__setattr__(option, "__dict__", fields)
            point = object.__new__(DesignPoint)
            object.__setattr__(point, "__dict__",
                               {"option": option, **base_workload})
            points.append(point)
        return tuple(points)

    # One option object per distinct design, shared across workload combos —
    # downstream consumers (key templating, batched evaluation) memoize per
    # option object, so sharing turns those caches into near-pure hits.
    option_cache: Dict[Tuple, DesignOption] = {}
    points = []
    for combo in itertools.product(*(ax.values for ax in axes)):
        option_key = tuple(combo[index] for index in option_indices)
        option = option_cache.get(option_key)
        if option is None:
            fields = dict(_OPTION_DEFAULTS)
            parts = []
            for key, index, fragments in gpu_axes:
                value = combo[index]
                fields[key] = value
                fragment = fragments[value]
                if fragment is not None:
                    parts.append(fragment)
            cta = combo[cta_index] if cta_index is not None else base_cta
            if cta != 128:
                parts.append(f"cta_tile={cta}")
            fields["name"] = ",".join(parts) if parts else "baseline"
            fields["cta_tile_hw"] = cta
            option = object.__new__(DesignOption)
            option.__dict__.update(fields)
            option_cache[option_key] = option
        point = object.__new__(DesignPoint)
        point.__dict__["option"] = option
        for key, index in workload.items():
            point.__dict__[key] = (combo[index] if index is not None
                                   else base_workload[key])
        points.append(point)
    return tuple(points)


def _point_from_values(values: Mapping[str, object], base: DesignPoint) -> DesignPoint:
    """Build a design point from per-axis values over ``base``'s defaults."""
    gpu_kwargs = {key: float(values[key]) for key in GPU_AXIS_KEYS if key in values}
    cta_tile = int(values.get("cta_tile", base.option.cta_tile_hw))
    design_parts = [f"{key}={value:g}" for key, value in gpu_kwargs.items()
                    if value != 1.0]
    if cta_tile != 128:
        design_parts.append(f"cta_tile={cta_tile}")
    name = ",".join(design_parts) if design_parts else "baseline"
    option = DesignOption(name=name, cta_tile_hw=cta_tile, **gpu_kwargs)
    return DesignPoint(
        option=option,
        network=str(values.get("network", base.network)),
        batch=int(values.get("batch", base.batch)),
        passes=str(values.get("passes", base.passes)),
        dtype_bytes=int(values.get("dtype_bytes", base.dtype_bytes)),
    )


class SearchSpace:
    """Base class of the composable space algebra (grid / zip / union)."""

    def points(self) -> Tuple[DesignPoint, ...]:
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.points())

    def __iter__(self) -> Iterator[DesignPoint]:
        return iter(self.points())

    def __or__(self, other: "SearchSpace") -> "SearchSpace":
        return union(self, other)


@dataclass(frozen=True)
class ExplicitSpace(SearchSpace):
    """A space enumerated point by point (e.g. the paper's Fig. 16a table)."""

    explicit: Tuple[DesignPoint, ...]

    def points(self) -> Tuple[DesignPoint, ...]:
        return self.explicit


@dataclass(frozen=True)
class GridSpace(SearchSpace):
    """Cartesian product of axes; point order follows axis declaration order."""

    axes: Tuple[Axis, ...]
    base: DesignPoint = field(default_factory=lambda: DesignPoint(
        option=DesignOption(name="baseline")))

    def __post_init__(self) -> None:
        _check_axes(self.axes)

    def points(self) -> Tuple[DesignPoint, ...]:
        return _grid_points(self.axes, self.base)

    def __len__(self) -> int:
        size = 1
        for ax in self.axes:
            size *= len(ax)
        return size


@dataclass(frozen=True)
class ZipSpace(SearchSpace):
    """Aligned axes: the i-th point takes the i-th value of every axis."""

    axes: Tuple[Axis, ...]
    base: DesignPoint = field(default_factory=lambda: DesignPoint(
        option=DesignOption(name="baseline")))

    def __post_init__(self) -> None:
        _check_axes(self.axes)
        lengths = {len(ax) for ax in self.axes}
        if len(lengths) > 1:
            raise ValueError(
                f"zip axes must have equal lengths, got "
                f"{ {ax.key: len(ax) for ax in self.axes} }")

    def points(self) -> Tuple[DesignPoint, ...]:
        keys = [ax.key for ax in self.axes]
        return tuple(
            _point_from_values(dict(zip(keys, combo)), self.base)
            for combo in zip(*(ax.values for ax in self.axes)))

    def __len__(self) -> int:
        return len(self.axes[0]) if self.axes else 0


@dataclass(frozen=True)
class UnionSpace(SearchSpace):
    """Concatenation of spaces, first occurrence wins on content collisions."""

    spaces: Tuple[SearchSpace, ...]

    def points(self) -> Tuple[DesignPoint, ...]:
        seen = set()
        merged = []
        for space in self.spaces:
            for point in space.points():
                key = point.point_hash()
                if key not in seen:
                    seen.add(key)
                    merged.append(point)
        return tuple(merged)


def _check_axes(axes: Sequence[Axis]) -> None:
    if not axes:
        raise ValueError("a search space needs at least one axis")
    keys = [ax.key for ax in axes]
    duplicates = sorted({key for key in keys if keys.count(key) > 1})
    if duplicates:
        raise ValueError(f"duplicate axes: {duplicates}")


AxesLike = Union[Mapping[str, Iterable[object]], Sequence[Axis]]


def _as_axes(axes: AxesLike) -> Tuple[Axis, ...]:
    if isinstance(axes, Mapping):
        return tuple(Axis(key, tuple(values)) for key, values in axes.items())
    return tuple(axes)


def _base_point(network: str, batch: int, passes: str,
                dtype_bytes: int) -> DesignPoint:
    return DesignPoint(option=DesignOption(name="baseline"), network=network,
                       batch=batch, passes=passes, dtype_bytes=dtype_bytes)


def grid(axes: AxesLike, *, network: str = "resnet152", batch: int = 256,
         passes: str = "forward", dtype_bytes: int = FP32_BYTES) -> GridSpace:
    """Cartesian-product space; keyword arguments set unswept workload defaults."""
    return GridSpace(axes=_as_axes(axes),
                     base=_base_point(network, batch, passes, dtype_bytes))


def zip_axes(axes: AxesLike, *, network: str = "resnet152", batch: int = 256,
             passes: str = "forward", dtype_bytes: int = FP32_BYTES) -> ZipSpace:
    """Aligned-axes space (one point per column, like the paper's table)."""
    return ZipSpace(axes=_as_axes(axes),
                    base=_base_point(network, batch, passes, dtype_bytes))


def union(*spaces: SearchSpace) -> UnionSpace:
    """Concatenate spaces (stable order, content-deduped)."""
    flat = []
    for space in spaces:
        if isinstance(space, UnionSpace):
            flat.extend(space.spaces)
        else:
            flat.append(space)
    return UnionSpace(spaces=tuple(flat))


def space_from_options(options: Sequence[DesignOption], *,
                       network: str = "resnet152", batch: int = 256,
                       passes: str = "forward",
                       dtype_bytes: int = FP32_BYTES) -> ExplicitSpace:
    """Wrap hand-picked design options (e.g. Fig. 16a) as an explicit space."""
    return ExplicitSpace(explicit=tuple(
        DesignPoint(option=option, network=network, batch=batch,
                    passes=passes, dtype_bytes=dtype_bytes)
        for option in options))


def default_space(networks: Sequence[str] = ("resnet152",),
                  batches: Sequence[int] = (256,),
                  passes: str = "forward",
                  dtype_bytes: int = FP32_BYTES,
                  cta_tiles: Sequence[int] = (128, 256)) -> GridSpace:
    """The stock exploration grid the CLI and the ``dse`` experiment use.

    Covers the resources the paper's scaling study identifies as the levers
    that matter — SM count, MAC throughput, L2/DRAM bandwidth and the CTA
    tile — at 162 design points per (network, batch) combination.
    """
    axes = [
        Axis("num_sm", (1.0, 2.0, 4.0)),
        Axis("mac_bw", (1.0, 2.0, 4.0)),
        Axis("l2_bw", (1.0, 1.5, 2.0)),
        Axis("dram_bw", (1.0, 1.5, 2.0)),
        Axis("cta_tile", tuple(cta_tiles)),
    ]
    networks = tuple(networks)
    batches = tuple(batches)
    if len(networks) > 1:
        axes.append(Axis("network", networks))
    if len(batches) > 1:
        axes.append(Axis("batch", batches))
    return grid(axes, network=networks[0], batch=batches[0], passes=passes,
                dtype_bytes=dtype_bytes)


def parse_axis(text: str) -> Axis:
    """Parse a CLI axis spec ``KEY=V1,V2,...`` into an :class:`Axis`."""
    key, sep, values = text.partition("=")
    key = key.strip().lower()
    if not sep or not values.strip():
        raise ValueError(
            f"malformed axis {text!r}; expected KEY=V1,V2,... "
            f"with KEY in {list(AXIS_KEYS)}")
    raw: Tuple[object, ...] = tuple(
        part.strip() for part in values.split(",") if part.strip())
    if key in GPU_AXIS_KEYS:
        raw = tuple(float(part) for part in raw)
    elif key in ("cta_tile", "batch", "dtype_bytes"):
        raw = tuple(int(float(part)) for part in raw)
    return Axis(key, raw)
