"""Array-of-points evaluation for DSE sweeps.

:func:`evaluate_points` is the batched counterpart of
:func:`repro.dse.runner.evaluate_point`: it groups design points by workload
signature, lowers each workload's layers once, and evaluates the whole group
through :mod:`repro.core.batched` in a handful of NumPy passes instead of one
scalar pipeline walk per point.  The metrics dicts it returns are
**bit-identical** to the scalar path's — same float values, same key order,
same bottleneck-share insertion order — which is what keeps content-keyed
stores, the fig16 pin and resumed sweeps indistinguishable across the two
evaluation modes.
"""

from __future__ import annotations

import dataclasses
import json
import operator
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.frontier import (_CHIP_COST_WEIGHTS, _PER_SM_COST_WEIGHTS,
                                 design_cost)
from ..core.batched import (CANDIDATE_ORDER, CTA_TILE_FAMILIES,
                            BatchedGpuSpec, WorkloadStack, build_stacks,
                            estimate_grid)
from ..core.traffic import TrafficModel
from ..core.workload import as_workload, expand_passes, lower_pass
from ..gpu.spec import FP32_BYTES, GpuSpec
from ..networks.registry import get_network
from .space import DesignPoint

#: bottleneck labels in candidate-stack order (metrics-dict key strings).
_CANDIDATE_LABELS: Tuple[str, ...] = tuple(b.value for b in CANDIDATE_ORDER)

#: C-level :meth:`DesignPoint.workload_signature` (hot grouping loop).
_signature_of = operator.attrgetter("network", "batch", "passes",
                                    "dtype_bytes")


@lru_cache(maxsize=256)
def _workload_layers(network: str, batch: int, dtype_bytes: int,
                     unique: bool) -> Tuple:
    """The evaluated GEMM layers of one workload (memoized per process)."""
    net = get_network(network, batch=batch)
    layers = net.unique_layers() if unique else net.gemm_layers()
    if dtype_bytes != FP32_BYTES:
        layers = [layer.with_dtype(dtype_bytes) for layer in layers]
    return tuple(layers)


@lru_cache(maxsize=64)
def _workload_plan(base_gpu: GpuSpec, network: str, batch: int,
                   dtype_bytes: int, passes: str, unique: bool,
                   layer_stride: int) -> Tuple[int, int, int, Dict]:
    """Packed per-tile-family workload stacks for one workload signature.

    Returns ``(num_layers, num_gemms, flops_total, stacks)`` where
    ``stacks`` maps each CTA-tile family to a
    :class:`~repro.core.batched.WorkloadStack` holding the GPU-independent
    scalars of the signature's lowered workloads, in the exact order the
    scalar path walks them (layers outer, passes inner).  Traffic is
    design-independent, so this is computed once per (baseline GPU,
    workload signature) and shared by every batch.
    """
    layers = _workload_layers(network, batch, dtype_bytes, unique)
    if layer_stride > 1:
        layers = layers[::layer_stride] or layers[:1]
    pass_kinds = expand_passes(passes)
    workloads = []
    for layer in layers:
        if pass_kinds == ("forward",):
            workloads.append(as_workload(layer))
        else:
            for pass_kind in pass_kinds:
                workloads.append(lower_pass(layer, pass_kind))
    models = {hw: TrafficModel(gpu=base_gpu, cta_tile_hw=hw)
              for hw in CTA_TILE_FAMILIES}
    traffic_grid = tuple(
        {hw: models[hw].estimate(workload) for hw in CTA_TILE_FAMILIES}
        for workload in workloads)
    # Python-int accumulation, matching the scalar `sum(workload.flops)`.
    flops_total = 0
    for workload in workloads:
        flops_total += workload.flops
    return (len(layers), len(workloads), flops_total,
            build_stacks(traffic_grid))


def _design_costs(gpus: BatchedGpuSpec) -> np.ndarray:
    """Vectorized :func:`repro.analysis.frontier.design_cost`.

    Reproduces the scalar accumulation order: the weight sums start at 0 and
    add terms in the weight dicts' insertion order, so the float results are
    bitwise equal to per-point ``design_cost`` calls.
    """
    mult_of = {
        "mac_bw": gpus.mac_bw_mult,
        "regs": gpus.regs_mult,
        "smem_size": gpus.smem_size_mult,
        "smem_bw": gpus.smem_bw_mult,
        "l1_bw": gpus.l1_bw_mult,
        "l2_bw": gpus.l2_bw_mult,
        "dram_bw": gpus.dram_bw_mult,
    }
    per_sm_sum = np.zeros(len(gpus))
    for key, weight in _PER_SM_COST_WEIGHTS.items():
        per_sm_sum = per_sm_sum + weight * (mult_of[key] - 1.0)
    chip = np.zeros(len(gpus))
    for key, weight in _CHIP_COST_WEIGHTS.items():
        chip = chip + weight * (mult_of[key] - 1.0)
    return gpus.num_sm_mult * (1.0 + per_sm_sum) + chip


def _concat_stacks(stack_list: Sequence[WorkloadStack]) -> WorkloadStack:
    """Concatenate per-group workload stacks along the workload axis."""
    if len(stack_list) == 1:
        return stack_list[0]
    return WorkloadStack(**{
        f.name: np.concatenate([getattr(stack, f.name)
                                for stack in stack_list], axis=0)
        for f in dataclasses.fields(WorkloadStack)})


def _assemble_group(plan: Tuple[int, int, int, Dict],
                    times: np.ndarray, index: np.ndarray,
                    dram_rows: np.ndarray, l2_rows: np.ndarray,
                    cost_list: List[float],
                    cost_reprs: Optional[List[str]] = None
                    ) -> Tuple[List[Dict[str, object]],
                               Optional[List[str]]]:
    """Metrics dicts of one workload-signature group from its (W, N) slab.

    With ``cost_reprs`` (pre-``repr``'d resource costs) the group also
    serializes each record as the exact ``json.dumps(record,
    sort_keys=True)`` line the result store appends — cheaply, because the
    group structure bounds the distinct values: layers/gemms are group
    constants, dram/l2 traffic takes one value per CTA-tile family, and
    ``repr`` of an int/finite float is json's number serialization.  Lines
    with a non-finite float (which json spells differently) fall back to
    the real encoder.
    """
    num_layers, num_workloads, flops, _ = plan
    num_labels = len(_CANDIDATE_LABELS)

    # Per-label hit masks and zero-masked times: the scalar shares Counter
    # only adds positive times, and adding the +0.0 the mask leaves behind
    # never changes a non-negative float accumulator, so summing the masked
    # rows sequentially is bit-identical to the conditional adds.
    hit = (times > 0.0)[np.newaxis] & (
        index[np.newaxis] == np.arange(num_labels)[:, np.newaxis, np.newaxis])
    masked = np.where(hit, times[np.newaxis], 0.0)      # (L, W, N)

    # Sequential per-workload accumulation via ufunc.accumulate — unlike
    # np.sum's pairwise reduction, accumulate adds strictly left to right,
    # so the last prefix equals the scalar running sums bit for bit.
    total = np.add.accumulate(times, axis=0)[-1]
    dram_bytes = np.add.accumulate(dram_rows, axis=0)[-1]
    l2_bytes = np.add.accumulate(l2_rows, axis=0)[-1]
    share = np.add.accumulate(masked, axis=1)[:, -1, :]

    # The workload index at which each label first bounds each point — the
    # scalar shares dict inserts labels in first-occurrence order (zero-time
    # workloads skipped), which the stable argsort below reproduces.
    first_seen = np.where(hit.any(axis=1), hit.argmax(axis=1), num_workloads)

    flops_f = float(flops)
    with np.errstate(divide="ignore", invalid="ignore"):
        throughput = np.where(total > 0.0, flops_f / total / 1e12, 0.0)

    # Pull everything into plain Python containers once (C-speed) so the
    # per-point dict assembly below stays cheap.
    order = np.argsort(first_seen, axis=0, kind="stable").T.tolist()
    first_list = first_seen.T.tolist()
    share_list = share.T.tolist()
    total_list = total.tolist()
    throughput_list = throughput.tolist()
    dram_list = (dram_bytes / 1e9).tolist()
    l2_list = (l2_bytes / 1e9).tolist()

    lines: Optional[List[str]] = None
    if cost_reprs is not None:
        lines = []
        # json renders the group constants once; traffic takes at most one
        # value per CTA-tile family, so its reprs are cached by value.
        line_tmpl = ('{"bottlenecks": {%s}, "dram_gb": %s, "gemms": '
                     + repr(num_workloads) + ', "l2_gb": %s, "layers": '
                     + repr(num_layers)
                     + ', "resource_cost": %s, "throughput_tflops": %r, '
                       '"time_s": %r}')
        traffic_reprs: Dict[float, str] = {}

    results: List[Dict[str, object]] = []
    results_append = results.append
    labels = _CANDIDATE_LABELS
    for p, (point_total, throughput, dram_gb, l2_gb, cost, point_order,
            firsts, shares) in enumerate(zip(
                total_list, throughput_list, dram_list, l2_list, cost_list,
                order, first_list, share_list)):
        bottlenecks: Dict[str, float] = {}
        if point_total > 0:
            for label in point_order:
                if firsts[label] >= num_workloads:
                    break
                bottlenecks[labels[label]] = shares[label] / point_total
        record = {
            "time_s": point_total,
            "throughput_tflops": throughput,
            "dram_gb": dram_gb,
            "l2_gb": l2_gb,
            "resource_cost": cost,
            "layers": num_layers,
            "gemms": num_workloads,
            "bottlenecks": bottlenecks,
        }
        results_append(record)
        if lines is not None:
            dram_repr = traffic_reprs.get(dram_gb)
            if dram_repr is None:
                dram_repr = traffic_reprs[dram_gb] = repr(dram_gb)
            l2_repr = traffic_reprs.get(l2_gb)
            if l2_repr is None:
                l2_repr = traffic_reprs[l2_gb] = repr(l2_gb)
            parts = ", ".join(
                ['"%s": %r' % (label, bottlenecks[label])
                 for label in sorted(bottlenecks)]) if bottlenecks else ""
            line = line_tmpl % (parts, dram_repr, l2_repr, cost_reprs[p],
                                throughput, point_total)
            if "inf" in line or "nan" in line:
                line = json.dumps(record, sort_keys=True)
            lines.append(line)
    return results, lines


def evaluate_points(base_gpu: GpuSpec, points: Sequence[DesignPoint], *,
                    unique: bool = True, layer_stride: int = 1,
                    serialize: bool = False):
    """Batched :func:`repro.dse.runner.evaluate_point` over many points.

    Groups the points by workload signature; groups that range over the
    *same* design list (the common case for a grid sweep, whose workload
    axes multiply the design axes) are fused into one stacked
    (sum-of-workloads x designs) grid so the whole sweep runs in a couple of
    NumPy passes.  Returns one metrics dict per input point, in input order,
    bit-identical to per-point scalar evaluation.

    With ``serialize=True`` returns ``(records, lines)`` where ``lines[i]``
    is ``json.dumps(records[i], sort_keys=True)`` — produced while the group
    structure is still known, which makes it much cheaper than re-deriving
    it record by record (the result store splices these into its JSONL
    lines).
    """
    results: List[Optional[Dict[str, object]]] = [None] * len(points)
    lines: Optional[List[Optional[str]]] = (
        [None] * len(points) if serialize else None)
    groups: Dict[Tuple[str, int, str, int], List[int]] = {}
    for i, point in enumerate(points):
        groups.setdefault(_signature_of(point), []).append(i)

    # Partition signature groups by their (ordered) design list.
    fused: Dict[Tuple, List[Tuple[List[int], Tuple]]] = {}
    for indices in groups.values():
        first = points[indices[0]]
        plan = _workload_plan(base_gpu, first.network, first.batch,
                              first.dtype_bytes, first.passes, unique,
                              layer_stride)
        options = tuple(points[i].option for i in indices)
        fused.setdefault(options, []).append((indices, plan))

    for options, entries in fused.items():
        gpus = BatchedGpuSpec.from_options(base_gpu, options)
        cost_list = _design_costs(gpus).tolist()
        cost_reprs = ([repr(cost) for cost in cost_list] if serialize
                      else None)
        stacks = {hw: _concat_stacks([plan[3][hw] for _, plan in entries])
                  for hw in CTA_TILE_FAMILIES}
        est = estimate_grid(gpus, stacks=stacks)
        offset = 0
        for indices, plan in entries:
            num_workloads = plan[1]
            slab = slice(offset, offset + num_workloads)
            offset += num_workloads
            metrics, group_lines = _assemble_group(
                plan, est.times[slab], est.bottleneck_index[slab],
                est.dram_bytes[slab], est.l2_bytes[slab], cost_list,
                cost_reprs)
            for i, point_metrics in zip(indices, metrics):
                results[i] = point_metrics
            if serialize:
                for i, line in zip(indices, group_lines):
                    lines[i] = line
    if serialize:
        return results, lines
    return results


__all__ = ["evaluate_points", "_workload_layers", "design_cost"]
