"""Design-space exploration: searchable GPU x workload spaces with Pareto
frontiers and a resumable result store.

Quick start::

    from repro.dse import axis, grid, explore, RandomDriver, ResultStore

    space = grid({"num_sm": (1, 2, 4), "mac_bw": (1, 2, 4),
                  "dram_bw": (1, 1.5, 2), "cta_tile": (128, 256)},
                 network="resnet152", batch=64)
    result = explore(space, driver=RandomDriver(budget=32, seed=7),
                     store=ResultStore("sweep.jsonl"))
    for row in result.frontier_rows():
        print(row["design"], row["speedup"], row["cost"])

The pieces compose: a :class:`~repro.dse.space.SearchSpace` declares *what*
points exist, a driver picks *which* are evaluated, the
:class:`~repro.dse.store.ResultStore` remembers *what already ran*, and
:func:`~repro.dse.runner.explore` ties them to the analytic model (fanning
evaluation out over a :class:`repro.api.Session`'s process pool when one is
provided).  Objectives and frontier extraction live in
:mod:`repro.analysis.frontier`.
"""

from ..analysis.frontier import (
    DEFAULT_OBJECTIVE_NAMES,
    OBJECTIVES,
    Objective,
    design_cost,
    dominates,
    pareto_frontier,
    resolve_objectives,
    scale_next_rows,
)
from .drivers import (
    ExhaustiveDriver,
    RandomDriver,
    SuccessiveHalvingDriver,
    build_driver,
    driver_names,
)
from .batch import evaluate_points
from .runner import (
    EVAL_MODES,
    Exploration,
    ExplorationStats,
    PointFailure,
    PointResult,
    confirm_frontier,
    evaluate_point,
    explore,
    store_key,
    store_keys,
    workload_fingerprint,
)
from .space import (
    AXIS_KEYS,
    GPU_AXIS_KEYS,
    WORKLOAD_AXIS_KEYS,
    Axis,
    DesignPoint,
    ExplicitSpace,
    GridSpace,
    SearchSpace,
    UnionSpace,
    ZipSpace,
    axis,
    default_space,
    grid,
    parse_axis,
    space_from_options,
    union,
    zip_axes,
)
from .store import ResultStore, StoreLockedError, is_failure_record

__all__ = [
    "Axis",
    "axis",
    "AXIS_KEYS",
    "GPU_AXIS_KEYS",
    "WORKLOAD_AXIS_KEYS",
    "DesignPoint",
    "SearchSpace",
    "ExplicitSpace",
    "GridSpace",
    "ZipSpace",
    "UnionSpace",
    "grid",
    "zip_axes",
    "union",
    "space_from_options",
    "default_space",
    "parse_axis",
    "ExhaustiveDriver",
    "RandomDriver",
    "SuccessiveHalvingDriver",
    "build_driver",
    "driver_names",
    "ResultStore",
    "StoreLockedError",
    "is_failure_record",
    "Exploration",
    "ExplorationStats",
    "PointResult",
    "PointFailure",
    "explore",
    "evaluate_point",
    "evaluate_points",
    "EVAL_MODES",
    "confirm_frontier",
    "store_key",
    "store_keys",
    "workload_fingerprint",
    "Objective",
    "OBJECTIVES",
    "DEFAULT_OBJECTIVE_NAMES",
    "resolve_objectives",
    "pareto_frontier",
    "dominates",
    "design_cost",
    "scale_next_rows",
]
