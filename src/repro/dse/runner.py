"""The DSE orchestrator: space -> driver -> evaluation -> store -> frontier.

:func:`explore` is the one entry point: it asks the driver which design
points to evaluate, answers as many as possible from the session memo and the
resumable :class:`~repro.dse.store.ResultStore`, fans the rest out over the
session's shared process pool, and finishes with the Pareto frontier over the
requested objectives.

Every point is lowered through :meth:`DesignOption.apply` onto the baseline
GPU and evaluated with the analytic :class:`~repro.core.model.DeltaModel` —
the exact computation the Fig. 16 scaling study performs, which is why the
reimplemented ``fig16`` experiment reproduces the legacy study bit for bit.
Frontier points can optionally be *confirmed* against the trace-driven
simulator (:func:`confirm_frontier`), keeping the expensive engine off the
sweep's hot path.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import operator
from collections import Counter
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional, Sequence, Tuple

from .. import faults
from ..analysis.frontier import (DEFAULT_OBJECTIVE_NAMES, Objective,
                                 design_cost, pareto_frontier,
                                 resolve_objectives)
from ..core.model import DeltaModel
from ..core.workload import expand_passes
from ..gpu.devices import TITAN_XP
from ..gpu.spec import FP32_BYTES, GpuSpec
from ..networks.registry import get_network
from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..resilience import TaskFailure
from .batch import _workload_layers, evaluate_points
from .drivers import ExhaustiveDriver, SuccessiveHalvingDriver
from .space import DesignPoint, SearchSpace
from .store import FAILURE_FIELD, ResultStore, is_failure_record

#: bump when the evaluation's metric semantics change (invalidates stores).
EVALUATION_SCHEMA = 1

#: how the sweep evaluates its points: ``"batch"`` fans whole chunks of
#: points through the vectorized array-of-points path (the default),
#: ``"task"`` runs the scalar pipeline once per point (the reference mode).
EVAL_MODES = ("batch", "task")

#: design points per batched pool task; bounds the work lost when one point
#: in a chunk crashes the worker (the chunk is then retried point by point).
BATCH_CHUNK = 1024

#: C-level :meth:`DesignPoint.workload_signature` (hot sweep loops).
_signature_of = operator.attrgetter("network", "batch", "passes",
                                    "dtype_bytes")


# ----------------------------------------------------------------------
# Point evaluation (analytic model; picklable for process pools)
# ----------------------------------------------------------------------

@lru_cache(maxsize=1024)
def _workload_fingerprint(network: str, batch: int, dtype_bytes: int,
                          passes: str, unique: bool) -> str:
    layers = _workload_layers(network, batch, dtype_bytes, unique)
    payload = {
        "layers": [layer.structural_key() for layer in layers],
        "passes": list(expand_passes(passes)),
        "unique": unique,
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def workload_fingerprint(point: DesignPoint, unique: bool) -> str:
    """Content hash of the evaluated layers' structural keys + pass kinds.

    Built on the layers' ``structural_key`` — the same identity the
    session's simulation dedupe uses — so a change to a network definition
    changes the key and stale store entries are never reused.
    """
    return _workload_fingerprint(point.network, point.batch,
                                 point.dtype_bytes, point.passes, unique)


def _gpu_fingerprint(gpu: GpuSpec) -> Dict[str, object]:
    payload = dataclasses.asdict(gpu)
    payload.pop("name", None)  # content identity, not label
    return payload


@lru_cache(maxsize=16)
def _gpu_fingerprint_json(gpu: GpuSpec) -> str:
    return json.dumps(_gpu_fingerprint(gpu), sort_keys=True)


@lru_cache(maxsize=64)
def _json_str(text: str) -> str:
    return json.dumps(text)


#: ``json.dumps(point.descriptor(), sort_keys=True)`` as % templates —
#: top-level and design keys in sorted order, default separators.  ``repr``
#: of an int/float matches json's number serialization exactly, so splicing
#: repr'd fields is byte-identical to the real dump (pinned by a test).
_DESIGN_TEMPLATE = (
    '{"cta_tile": %r, "dram_bw": %r, "l1_bw": %r, "l2_bw": %r, '
    '"mac_bw": %r, "num_sm": %r, "regs": %r, "smem_bw": %r, '
    '"smem_size": %r}')


#: the template's slots, fetched in one C-level call per option.
_design_values = operator.attrgetter(
    "cta_tile_hw", "dram_bw", "l1_bw", "l2_bw", "mac_bw", "num_sm",
    "regs", "smem_bw", "smem_size")


def _design_json(option) -> str:
    """The descriptor's ``design`` value as sorted-keys JSON."""
    return _DESIGN_TEMPLATE % _design_values(option)


def _descriptor_frags(point: DesignPoint) -> Tuple[str, str]:
    """Workload-only (head, tail) of the descriptor JSON — shared per
    workload signature; the design JSON splices in between."""
    head = '{"batch": %s, "design": ' % repr(point.batch)
    tail = (', "dtype_bytes": %s, "network": %s, "passes": %s}'
            % (repr(point.dtype_bytes), _json_str(point.network),
               _json_str(point.passes)))
    return head, tail


def _descriptor_json(point: DesignPoint) -> str:
    """Fast, byte-identical ``json.dumps(point.descriptor(), sort_keys=True)``."""
    head, tail = _descriptor_frags(point)
    return head + _design_json(point.option) + tail


def store_key(base_gpu: GpuSpec, point: DesignPoint, unique: bool) -> str:
    """Content key of one evaluation: baseline GPU x design point x workload."""
    payload = {
        "schema": EVALUATION_SCHEMA,
        "gpu": _gpu_fingerprint(base_gpu),
        "point": point.descriptor(),
        "workload": workload_fingerprint(point, unique),
    }
    text = json.dumps(payload, sort_keys=True)
    return hashlib.sha1(text.encode("utf-8")).hexdigest()


def store_keys(base_gpu: GpuSpec, points: Sequence[DesignPoint],
               unique: bool) -> Tuple[List[str], List[str]]:
    """Batched :func:`store_key`: parallel ``(keys, descriptor_jsons)`` lists.

    Assembles each point's key payload around a shared GPU-fingerprint
    prefix and per-workload suffix instead of re-serializing the whole
    payload per point.  ``json.dumps(..., sort_keys=True)`` serializes
    nested values context-free, so the template splice is byte-identical
    to the monolithic dump (pinned by a regression test) and the sha1
    keys match :func:`store_key` exactly.  The descriptor JSON rides
    along because the store's append path wants it too.
    """
    prefix = '{"gpu": ' + _gpu_fingerprint_json(base_gpu) + ', "point": '
    seed = hashlib.sha1(prefix.encode("utf-8"))
    # per-signature descriptor fragments + key-payload suffix, and the
    # design JSON cached per option *object* (grid enumeration shares one
    # option across the workload axes, so this hits most of the time).
    frags: Dict[Tuple[str, int, str, int], Tuple[str, str, str]] = {}
    designs: Dict[int, str] = {}
    keys: List[str] = []
    descriptors: List[str] = []
    seed_copy = seed.copy
    for point in points:
        signature = _signature_of(point)
        cached = frags.get(signature)
        if cached is None:
            head, tail = _descriptor_frags(point)
            suffix = (', "schema": %d, "workload": "%s"}'
                      % (EVALUATION_SCHEMA,
                         workload_fingerprint(point, unique)))
            cached = (head, tail, suffix)
            frags[signature] = cached
        head, tail, suffix = cached
        option = point.option
        design = designs.get(id(option))
        if design is None:
            design = _design_json(option)
            designs[id(option)] = design
        descriptor_json = head + design + tail
        digest = seed_copy()
        digest.update((descriptor_json + suffix).encode("utf-8"))
        keys.append(digest.hexdigest())
        descriptors.append(descriptor_json)
    return keys, descriptors


def evaluate_point(base_gpu: GpuSpec, point: DesignPoint, *,
                   unique: bool = True,
                   layer_stride: int = 1) -> Dict[str, object]:
    """Evaluate one design point with the analytic model.

    Returns a flat metrics dict (plus the Fig. 16c-style ``bottlenecks`` time
    shares).  ``layer_stride`` > 1 subsamples the workload's layers — the
    cheap proxy the successive-halving driver ranks candidates with.

    The accumulation order (layers outer, passes inner, running float sums)
    deliberately mirrors :class:`repro.core.scaling.ScalingStudy` so the
    DSE-backed ``fig16`` experiment stays bit-identical to the legacy study.
    """
    gpu = point.option.apply(base_gpu)
    model = DeltaModel(gpu, cta_tile_hw=point.option.cta_tile_hw)
    layers = _workload_layers(point.network, point.batch, point.dtype_bytes,
                              unique)
    if layer_stride > 1:
        layers = layers[::layer_stride] or layers[:1]
    pass_kinds = expand_passes(point.passes)
    estimates = []
    for layer in layers:
        if pass_kinds == ("forward",):
            estimates.append(model.estimate(layer))
        else:
            for pass_kind in pass_kinds:
                estimates.append(model.estimate_pass(layer, pass_kind))
    total = sum(est.time_seconds for est in estimates)
    shares: Counter = Counter()
    for est in estimates:
        # zero-time estimates carry no share; including them would add a
        # spurious zero-share bottleneck category (see ScalingResult).
        if est.time_seconds <= 0:
            continue
        shares[est.bottleneck] += est.time_seconds
    bottlenecks = ({key.value: value / total for key, value in shares.items()}
                   if total > 0 else {})
    flops = sum(est.workload.flops for est in estimates)
    dram_bytes = sum(est.traffic.dram_bytes for est in estimates)
    l2_bytes = sum(est.traffic.l2_bytes for est in estimates)
    return {
        "time_s": total,
        "throughput_tflops": (flops / total / 1e12) if total > 0 else 0.0,
        "dram_gb": dram_bytes / 1e9,
        "l2_gb": l2_bytes / 1e9,
        "resource_cost": design_cost(point.option),
        "layers": len(layers),
        "gemms": len(estimates),
        "bottlenecks": bottlenecks,
    }


def _evaluate_task(task: Tuple[GpuSpec, DesignPoint, bool]) -> Dict[str, object]:
    """Process-pool worker: evaluate one (base gpu, point, unique) task."""
    base_gpu, point, unique = task
    faults.fire("dse", f"{point.name}/{point.network}/b{point.batch}")
    return evaluate_point(base_gpu, point, unique=unique)


def _proxy_task(task: Tuple[GpuSpec, DesignPoint, bool]) -> Dict[str, object]:
    """Process-pool worker: the layer-subsampled proxy evaluation."""
    base_gpu, point, unique = task
    faults.fire("dse", f"proxy:{point.name}/{point.network}/b{point.batch}")
    return evaluate_point(base_gpu, point, unique=unique, layer_stride=4)


def _evaluate_batch_task(task) -> List[Dict[str, object]]:
    """Process-pool worker: evaluate one chunk of points as a batch.

    Fires the per-point fault sites first (same sites as :func:`_evaluate_task`
    so injection campaigns hit both modes identically), then evaluates the
    whole chunk through the array-of-points path.
    """
    base_gpu, points, unique = task
    if faults.active():
        for point in points:
            faults.fire("dse", f"{point.name}/{point.network}/b{point.batch}")
    return evaluate_points(base_gpu, points, unique=unique)


def _proxy_batch_task(task) -> List[Dict[str, object]]:
    """Process-pool worker: one chunk of layer-subsampled proxy evaluations."""
    base_gpu, points, unique = task
    if faults.active():
        for point in points:
            faults.fire(
                "dse", f"proxy:{point.name}/{point.network}/b{point.batch}")
    return evaluate_points(base_gpu, points, unique=unique, layer_stride=4)


# ----------------------------------------------------------------------
# Exploration result
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PointResult:
    """One evaluated design point with its metrics and provenance."""

    point: DesignPoint
    key: str
    metrics: Dict[str, object]
    #: answered from the session memo or the result store (not re-evaluated).
    cached: bool = False
    #: simulator confirmation record (see :func:`confirm_frontier`).
    confirmation: Optional[Dict[str, float]] = None


@dataclass(frozen=True)
class PointFailure:
    """One design point whose evaluation permanently failed.

    ``explore`` records these (to the store, when one is attached) and keeps
    going: a crashing or erroring point never aborts the sweep.  ``cached``
    marks failures replayed from a memo/store on resume rather than freshly
    observed.
    """

    point: DesignPoint
    key: str
    failure: TaskFailure
    cached: bool = False

    def as_row(self) -> Dict[str, object]:
        return {
            "design": self.point.name,
            "network": self.point.network,
            "batch": self.point.batch,
            "kind": self.failure.kind,
            "error": f"{self.failure.error_type}: {self.failure.message}",
            "attempts": self.failure.attempts,
            "cached": self.cached,
        }


class ExplorationStats(obs_metrics.StatsView):
    """What one :func:`explore` call actually did.

    A registry-backed view (``repro_dse_*`` counters in ``registry``);
    the attribute API is unchanged.
    """

    _AREA = "dse"
    _FIELDS = {
        "planned": "design points the driver planned",
        "evaluated": "design points evaluated in this run",
        "memo_hits": "points answered from the session's in-memory memo",
        "store_hits": "points answered from the resumable result store",
        "proxy_evaluations":
            "cheap proxy evaluations used by successive halving",
        "failed": "evaluations that permanently failed in this run",
        "skipped_failures":
            "failure records replayed from the memo/store "
            "(skipped on resume)",
    }


@dataclass(frozen=True)
class Exploration:
    """Outcome of one design-space exploration."""

    base_gpu: GpuSpec
    objectives: Tuple[Objective, ...]
    results: Tuple[PointResult, ...]
    #: identity-design reference per workload signature (speedup = 1.0).
    baselines: Dict[Tuple[str, int, str, int], PointResult] = field(
        default_factory=dict)
    #: indices into ``results`` forming the Pareto frontier.
    frontier: Tuple[int, ...] = ()
    stats: ExplorationStats = field(default_factory=ExplorationStats)
    #: design points whose evaluation permanently failed (error-isolated).
    failures: Tuple[PointFailure, ...] = ()

    def speedup(self, result: PointResult) -> Optional[float]:
        """Speedup of one result over its workload's identity baseline."""
        baseline = self.baselines.get(result.point.workload_signature())
        if baseline is None:
            return None
        total = float(result.metrics["time_s"])
        if total <= 0:
            return float("inf")
        return float(baseline.metrics["time_s"]) / total

    def frontier_results(self) -> List[PointResult]:
        return [self.results[index] for index in self.frontier]

    def frontier_rows(self) -> List[Dict[str, object]]:
        """Frontier points as flat table rows, ranked by the first objective."""
        primary = self.objectives[0]
        ranked = sorted(
            self.frontier,
            key=lambda index: -primary.oriented(
                float(self.results[index].metrics[primary.metric])))
        rows = []
        for rank, index in enumerate(ranked, start=1):
            result = self.results[index]
            metrics = result.metrics
            shares = metrics.get("bottlenecks", {})
            dominant = max(shares, key=shares.get) if shares else "n/a"
            row: Dict[str, object] = {
                "rank": rank,
                "design": result.point.name,
                "network": result.point.network,
                "batch": result.point.batch,
                "passes": result.point.passes,
                "time_ms": float(metrics["time_s"]) * 1e3,
                "TFLOP/s": metrics["throughput_tflops"],
                "DRAM_GB": metrics["dram_gb"],
                "cost": metrics["resource_cost"],
                "bottleneck": dominant,
            }
            speedup = self.speedup(result)
            if speedup is not None:
                row["speedup"] = speedup
            if result.confirmation is not None:
                row["sim_time_ratio"] = result.confirmation["sim_model_ratio"]
            rows.append(row)
        return rows

    def failure_rows(self) -> List[Dict[str, object]]:
        """Failed design points as flat table rows."""
        return [failure.as_row() for failure in self.failures]


# ----------------------------------------------------------------------
# The orchestrator
# ----------------------------------------------------------------------

def _resilience_kwargs(jobs: Optional[int], timeout: Optional[float],
                       retries: Optional[int]) -> Dict[str, object]:
    kwargs: Dict[str, object] = {"jobs": jobs, "return_failures": True}
    if timeout is not None:
        kwargs["timeout"] = timeout
    if retries is not None:
        kwargs["retries"] = retries
    return kwargs


def _evaluate_batch_local(base_gpu: GpuSpec, points: Sequence[DesignPoint],
                          unique: bool,
                          lines_out: Optional[List[Optional[str]]] = None
                          ) -> List[object]:
    """In-process batched evaluation with per-point failure isolation.

    Fault sites fire per point before the batch call so an injected error
    poisons only its own point; if the batch evaluation itself fails, the
    chunk degrades to scalar per-point evaluation so one bad point cannot
    take down its neighbours — the same isolation the per-task mode has.

    ``lines_out`` (a per-point list, parallel to ``points``) collects the
    batch path's pre-serialized store lines; indices the batch could not
    serialize (fault injection, scalar fallback) stay ``None``.
    """
    outcomes: List[object] = [None] * len(points)
    if faults.active():
        good: List[int] = []
        for i, point in enumerate(points):
            try:
                faults.fire("dse",
                            f"{point.name}/{point.network}/b{point.batch}")
                good.append(i)
            except Exception as exc:
                outcomes[i] = TaskFailure.from_exception(exc)
    else:
        good = list(range(len(points)))
    if good:
        try:
            good_points = (points if len(good) == len(points)
                           else [points[i] for i in good])
            if lines_out is None:
                fresh: List[object] = evaluate_points(
                    base_gpu, good_points, unique=unique)
            else:
                fresh, fresh_lines = evaluate_points(
                    base_gpu, good_points, unique=unique, serialize=True)
                if len(good) == len(points):
                    lines_out[:] = fresh_lines
                else:
                    for i, line in zip(good, fresh_lines):
                        lines_out[i] = line
        except Exception:
            fresh = []
            for i in good:
                try:
                    fresh.append(evaluate_point(base_gpu, points[i],
                                                unique=unique))
                except Exception as exc:
                    fresh.append(TaskFailure.from_exception(exc))
        for i, outcome in zip(good, fresh):
            outcomes[i] = outcome
    return outcomes


def _map_evaluations_batched(session, jobs: Optional[int],
                             base_gpu: GpuSpec,
                             points: Sequence[DesignPoint], unique: bool,
                             timeout: Optional[float],
                             retries: Optional[int],
                             lines_out: Optional[List[Optional[str]]] = None
                             ) -> List[object]:
    """Batched evaluation fan-out with chunk-level crash isolation.

    Chunks go through the session pool as single tasks; a chunk that fails
    (e.g. one point crashes the worker) is retried point by point through
    the scalar task so only the genuinely bad point surfaces as a failure —
    keeping failure semantics identical to per-task mode.
    """
    if session is None:
        return _evaluate_batch_local(base_gpu, points, unique, lines_out)
    kwargs = _resilience_kwargs(jobs, timeout, retries)
    chunks = [tuple(points[start:start + BATCH_CHUNK])
              for start in range(0, len(points), BATCH_CHUNK)]
    chunk_tasks = [(base_gpu, chunk, unique) for chunk in chunks]
    chunk_outcomes = session.map_tasks(_evaluate_batch_task, chunk_tasks,
                                       isolate=True, **kwargs)
    outcomes: List[object] = []
    for chunk, outcome in zip(chunks, chunk_outcomes):
        if isinstance(outcome, TaskFailure):
            tasks = [(base_gpu, point, unique) for point in chunk]
            outcomes.extend(session.map_tasks(_evaluate_task, tasks,
                                              isolate=True, **kwargs))
        else:
            outcomes.extend(outcome)
    return outcomes


def _map_evaluations(session, jobs: Optional[int],
                     tasks: List[Tuple[GpuSpec, DesignPoint, bool]],
                     timeout: Optional[float] = None,
                     retries: Optional[int] = None,
                     eval_mode: str = "batch",
                     lines_out: Optional[List[Optional[str]]] = None
                     ) -> List[object]:
    """Evaluate tasks, yielding a metrics dict or TaskFailure per task."""
    if eval_mode == "batch" and tasks:
        base_gpu, _, unique = tasks[0]
        return _map_evaluations_batched(
            session, jobs, base_gpu, [task[1] for task in tasks], unique,
            timeout, retries, lines_out)
    if session is not None:
        return session.map_tasks(_evaluate_task, tasks, isolate=True,
                                 **_resilience_kwargs(jobs, timeout, retries))
    outcomes: List[object] = []
    for task in tasks:
        try:
            outcomes.append(_evaluate_task(task))
        except Exception as exc:
            outcomes.append(TaskFailure.from_exception(exc))
    return outcomes


def _score_proxy_batched(session, jobs: Optional[int], base_gpu: GpuSpec,
                         points: Sequence[DesignPoint],
                         unique: bool) -> List[Dict[str, object]]:
    """Batched proxy scoring for successive halving rungs.

    Proxy failures propagate (no per-point isolation), matching the
    per-task mode's ``map_tasks`` call without ``return_failures``.
    """
    if session is None:
        if faults.active():
            for point in points:
                faults.fire(
                    "dse",
                    f"proxy:{point.name}/{point.network}/b{point.batch}")
        return evaluate_points(base_gpu, points, unique=unique,
                               layer_stride=4)
    chunk_tasks = [(base_gpu, tuple(points[start:start + BATCH_CHUNK]),
                    unique)
                   for start in range(0, len(points), BATCH_CHUNK)]
    chunk_results = session.map_tasks(_proxy_batch_task, chunk_tasks,
                                      jobs=jobs, isolate=True)
    return [metrics for chunk in chunk_results for metrics in chunk]


def explore(space: SearchSpace, *, driver=None, base_gpu: GpuSpec = TITAN_XP,
            objectives: Sequence[object] = DEFAULT_OBJECTIVE_NAMES,
            store: Optional[ResultStore] = None, session=None,
            jobs: Optional[int] = None, unique: bool = True,
            include_baseline: bool = True, timeout: Optional[float] = None,
            retries: Optional[int] = None,
            eval_mode: str = "batch") -> Exploration:
    """Run one design-space exploration end to end.

    ``session`` supplies process-pool parallelism and the cross-request
    in-memory memo; ``store`` adds on-disk resumability.  Either (or both)
    may be omitted for a serial, stateless sweep.  ``timeout``/``retries``
    override the session's resilience policy for the per-point evaluations.

    ``eval_mode`` selects how points are evaluated: ``"batch"`` (default)
    runs whole rungs through the vectorized array-of-points path
    (:mod:`repro.dse.batch`), ``"task"`` runs the scalar pipeline once per
    point.  The two modes are bit-identical — same metrics, same content
    keys, same frontier — batch mode is just ~50x faster cold.

    Failures are isolated per point: an evaluation that still fails after the
    retry budget becomes a :class:`PointFailure` (recorded in the store when
    one is attached, and skipped on resume) while the sweep continues; the
    frontier is computed over the successful points only.
    """
    if eval_mode not in EVAL_MODES:
        raise ValueError(
            f"unknown eval_mode {eval_mode!r}; expected one of {EVAL_MODES}")
    if driver is None:
        driver = ExhaustiveDriver()
    resolved = (objectives if objectives and
                isinstance(objectives[0], Objective)
                else resolve_objectives(objectives))
    stats = ExplorationStats()

    with obs_spans.trace("dse.plan", driver=type(driver).__name__):
        points = driver.plan(space)
    stats.planned = len(points)
    if isinstance(driver, SuccessiveHalvingDriver):
        primary = resolved[0]
        proxy_memo: Dict[str, Dict[str, object]] = {}

        def score_points(candidates: Sequence[DesignPoint]) -> List[float]:
            """Proxy scores for one rung: memoized (survivors re-scored by a
            later rung cost nothing) and fanned out over the session pool."""
            missing = [point for point in candidates
                       if point.point_hash() not in proxy_memo]
            with obs_spans.trace("dse.rung", candidates=len(candidates),
                                 fresh=len(missing)):
                if missing:
                    if eval_mode == "batch":
                        fresh = _score_proxy_batched(session, jobs, base_gpu,
                                                     missing, unique)
                    else:
                        tasks = [(base_gpu, point, unique)
                                 for point in missing]
                        fresh = (session.map_tasks(_proxy_task, tasks,
                                                   jobs=jobs)
                                 if session is not None
                                 else [_proxy_task(task) for task in tasks])
                    stats.proxy_evaluations += len(missing)
                    for point, metrics in zip(missing, fresh):
                        proxy_memo[point.point_hash()] = metrics
                # lower is better for the refine() sort.
                return [-primary.oriented(float(
                    proxy_memo[point.point_hash()][primary.metric]))
                    for point in candidates]

        points = driver.refine(points, score_points)

    baseline_points: Dict[Tuple[str, int, str, int], DesignPoint] = {}
    if include_baseline:
        for point in points:
            signature = _signature_of(point)
            if signature not in baseline_points:
                baseline_points[signature] = point.baseline_point()

    all_points = list(points) + list(baseline_points.values())
    keys, descriptors = store_keys(base_gpu, all_points, unique)

    records: Dict[str, Dict[str, object]] = {}
    cached_keys = set()
    #: (key, descriptor_json, point) triples awaiting evaluation — the
    #: descriptor rides along so the store batch needs no key->json dict.
    pending: List[Tuple[str, str, DesignPoint]] = []
    pending_keys = set()
    # plain-int counters in the loop; folded into the registry-backed
    # stats once at the end (a counter write per point is measurable).
    memo_hits = store_hits = skipped_failures = 0
    if session is None and (store is None or len(store) == 0):
        # nothing to look up (cold sweep): just dedupe the plan.
        if len(set(keys)) == len(keys):
            # no duplicates: the plan is the pending list, zipped at C speed.
            pending = list(zip(keys, descriptors, all_points))
        else:
            for key, descriptor, point in zip(keys, descriptors, all_points):
                if key not in pending_keys:
                    pending.append((key, descriptor, point))
                    pending_keys.add(key)
    else:
        for key, descriptor, point in zip(keys, descriptors, all_points):
            if key in records or key in pending_keys:
                continue
            memoized = (session.dse_lookup(key) if session is not None
                        else None)
            if memoized is not None:
                records[key] = memoized
                cached_keys.add(key)
                memo_hits += 1
                if is_failure_record(memoized):
                    skipped_failures += 1
                continue
            stored = store.get(key) if store is not None else None
            if stored is not None:
                records[key] = stored
                cached_keys.add(key)
                store_hits += 1
                if is_failure_record(stored):
                    skipped_failures += 1
                if session is not None:
                    session.dse_record(key, stored)
                continue
            pending.append((key, descriptor, point))
            pending_keys.add(key)
    stats.memo_hits += memo_hits
    stats.store_hits += store_hits
    stats.skipped_failures += skipped_failures

    if pending:
        # the batch path pre-serializes store lines while it still knows the
        # group structure — only worth collecting when a store is attached.
        lines_out: Optional[List[Optional[str]]] = (
            [None] * len(pending) if store is not None else None)
        with obs_spans.trace("dse.evaluate", points=len(pending),
                             memo_hits=stats.memo_hits,
                             store_hits=stats.store_hits):
            if eval_mode == "batch":
                fresh = _map_evaluations_batched(
                    session, jobs, base_gpu,
                    [point for _, _, point in pending], unique,
                    timeout, retries, lines_out)
            else:
                tasks = [(base_gpu, point, unique) for _, _, point in pending]
                fresh = _map_evaluations(session, jobs, tasks, timeout,
                                         retries, eval_mode, lines_out)
        store_batch: List[Tuple[str, str, Dict[str, object],
                                Optional[str]]] = []
        store_append = store_batch.append
        evaluated = failed = 0
        for pos, ((key, descriptor, point), outcome) in enumerate(
                zip(pending, fresh)):
            if isinstance(outcome, TaskFailure):
                record: Dict[str, object] = {FAILURE_FIELD: outcome.as_record()}
                failed += 1
            else:
                record = outcome
                evaluated += 1
            records[key] = record
            if store is not None:
                store_append((key, descriptor, record, lines_out[pos]))
            if session is not None:
                session.dse_record(key, record)
        stats.evaluated += evaluated
        stats.failed += failed
        if store is not None:
            store.put_many(store_batch)
    if session is not None:
        session.stats.dse_points += stats.evaluated

    results_list: List[PointResult] = []
    failures_list: List[PointFailure] = []
    # bypass the frozen-dataclass __init__ (one object.__setattr__ per
    # field) — these loops run once per planned point.
    new_result = object.__new__
    fill_result = object.__setattr__
    results_append = results_list.append
    if not cached_keys and stats.failed == 0 and stats.skipped_failures == 0:
        # cold all-success sweep: no failure records exist anywhere and no
        # key was cached, so skip both per-point checks.
        for point, key in zip(points, keys):
            result = new_result(PointResult)
            fill_result(result, "__dict__", {
                "point": point, "key": key, "metrics": records[key],
                "cached": False, "confirmation": None})
            results_append(result)
    else:
        for point, key in zip(points, keys[: len(points)]):
            record = records[key]
            if is_failure_record(record):
                failures_list.append(PointFailure(
                    point=point, key=key,
                    failure=TaskFailure.from_record(record[FAILURE_FIELD]),
                    cached=key in cached_keys))
            else:
                result = new_result(PointResult)
                fill_result(result, "__dict__", {
                    "point": point, "key": key, "metrics": record,
                    "cached": key in cached_keys, "confirmation": None})
                results_append(result)
    results = tuple(results_list)
    baselines = {}
    for index, (signature, point) in enumerate(baseline_points.items()):
        key = keys[len(points) + index]
        record = records[key]
        if is_failure_record(record):
            failures_list.append(PointFailure(
                point=point, key=key,
                failure=TaskFailure.from_record(record[FAILURE_FIELD]),
                cached=key in cached_keys))
            continue
        baselines[signature] = PointResult(point=point, key=key,
                                           metrics=record,
                                           cached=key in cached_keys)
    with obs_spans.trace("dse.frontier", results=len(results)):
        frontier = tuple(pareto_frontier(
            [result.metrics for result in results],
            resolved)) if results else ()
    return Exploration(base_gpu=base_gpu, objectives=tuple(resolved),
                       results=results, baselines=baselines,
                       frontier=frontier, stats=stats,
                       failures=tuple(failures_list))


# ----------------------------------------------------------------------
# Optional simulator confirmation of frontier points
# ----------------------------------------------------------------------

def confirm_frontier(exploration: Exploration, session, *, top: int = 3,
                     max_ctas: int = 30) -> Exploration:
    """Cross-check the top frontier points against the trace-driven simulator.

    Simulates the largest-MAC unique layer of each confirmed point's network
    on the point's scaled GPU (capped at ``max_ctas`` exact CTAs) and attaches
    the simulator/model time ratio to the result — a cheap sanity check that
    the analytic ranking is not an artifact, without dragging the simulator
    through the full sweep.
    """
    if top <= 0 or not exploration.frontier:
        return exploration
    primary = exploration.objectives[0]
    ranked = sorted(
        exploration.frontier,
        key=lambda index: -primary.oriented(
            float(exploration.results[index].metrics[primary.metric])))
    confirmed: Dict[int, Dict[str, float]] = {}
    for index in ranked[:top]:
        result = exploration.results[index]
        point = result.point
        layers = _workload_layers(point.network, point.batch,
                                  point.dtype_bytes, unique=True)
        layer = max(layers, key=lambda l: l.macs)
        pass_kind = expand_passes(point.passes)[0]
        gpu = point.option.apply(exploration.base_gpu)
        config = session.simulator_config(
            max_ctas=max_ctas, cta_tile_hw=point.option.cta_tile_hw)
        sim = session.simulate(gpu, layer, config, pass_kind=pass_kind)
        model = DeltaModel(gpu, cta_tile_hw=point.option.cta_tile_hw)
        est = model.estimate_pass(layer, pass_kind)
        confirmed[index] = {
            "layer": layer.name,
            "sim_time_s": sim.time_seconds,
            "model_time_s": est.time_seconds,
            "sim_model_ratio": (sim.time_seconds / est.time_seconds
                                if est.time_seconds > 0 else float("inf")),
        }
    results = tuple(
        dataclasses.replace(result, confirmation=confirmed.get(index))
        if index in confirmed else result
        for index, result in enumerate(exploration.results))
    return dataclasses.replace(exploration, results=results)
