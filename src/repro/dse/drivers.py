"""Search drivers: which design points of a space get (fully) evaluated.

Three strategies cover the sweep shapes the scaling study needs:

* :class:`ExhaustiveDriver` — every point, in the space's deterministic
  enumeration order (the reimplemented Fig. 16 uses this on the 9-column
  paper table);
* :class:`RandomDriver` — seeded sampling without replacement; the same
  (seed, space) pair enumerates the identical point sequence on every run
  and under every ``jobs`` setting, because selection happens before any
  evaluation is fanned out;
* :class:`SuccessiveHalvingDriver` — cheap-first adaptive search: every
  candidate is scored with a *proxy* evaluation (a layer-subsampled analytic
  estimate), the best ``1/eta`` survive each rung, and only the final
  ``budget`` survivors receive full evaluations (after which the runner can
  optionally confirm frontier points with the simulator).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from .space import DesignPoint, SearchSpace

#: scores a batch of points cheaply; lower is better (the runner adapts
#: direction, memoizes repeat points, and fans the batch out over the
#: session's process pool).
ProxyScorer = Callable[[Sequence[DesignPoint]], List[float]]


@dataclass(frozen=True)
class ExhaustiveDriver:
    """Evaluate every point of the space (optionally capped at ``limit``)."""

    limit: Optional[int] = None

    def plan(self, space: SearchSpace) -> List[DesignPoint]:
        points = list(space.points())
        if self.limit is not None:
            points = points[: self.limit]
        return points


@dataclass(frozen=True)
class RandomDriver:
    """Seeded uniform sampling without replacement.

    Determinism contract (regression-tested): ``plan`` depends only on the
    seed and the space's deterministic point order — never on wall clock,
    hashing randomization or the parallelism of the later evaluation.
    """

    budget: int
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("random driver budget must be positive")

    def plan(self, space: SearchSpace) -> List[DesignPoint]:
        points = list(space.points())
        if self.budget >= len(points):
            return points
        rng = random.Random(self.seed)
        return rng.sample(points, self.budget)


@dataclass(frozen=True)
class SuccessiveHalvingDriver:
    """Cheap-first adaptive search (successive halving on a proxy score).

    ``budget`` is the number of points that reach a *full* evaluation; the
    candidate pool starts at ``budget * eta**rungs`` points (seeded-random
    subset of the space when the space is larger) and shrinks by ``eta``
    per rung, re-scoring survivors with the proxy each time.
    """

    budget: int
    eta: int = 4
    rungs: int = 2
    seed: int = 0

    def __post_init__(self) -> None:
        if self.budget <= 0:
            raise ValueError("halving driver budget must be positive")
        if self.eta < 2:
            raise ValueError("halving eta must be >= 2")
        if self.rungs < 1:
            raise ValueError("halving needs at least one rung")

    @property
    def adaptive(self) -> bool:
        return True

    def plan(self, space: SearchSpace) -> List[DesignPoint]:
        """The rung-0 candidate pool (deterministic, seeded)."""
        pool_size = self.budget * self.eta ** self.rungs
        return RandomDriver(budget=pool_size, seed=self.seed).plan(space)

    def refine(self, points: Sequence[DesignPoint],
               score_points: ProxyScorer) -> List[DesignPoint]:
        """Shrink the pool to ``budget`` survivors by proxy score (lower wins).

        ``score_points`` scores a whole rung in one call, so the runner can
        dispatch it over a process pool and answer repeat points from a memo.
        Sorting is stable on the enumeration order, so ties are broken
        deterministically.
        """
        def keep_best(survivors: List[DesignPoint], keep: int) -> List[DesignPoint]:
            scored = list(zip(score_points(survivors), range(len(survivors))))
            scored.sort(key=lambda pair: (pair[0], pair[1]))
            kept_indices = sorted(index for _, index in scored[:keep])
            return [survivors[index] for index in kept_indices]

        survivors = list(points)
        rung = 0
        while len(survivors) > self.budget and rung < self.rungs:
            keep = max(self.budget,
                       int(math.ceil(len(survivors) / self.eta)))
            survivors = keep_best(survivors, keep)
            rung += 1
        if len(survivors) > self.budget:
            survivors = keep_best(survivors, self.budget)
        return survivors


#: any of the three driver classes above.
DriverType = object


def build_driver(name: str, *, budget: Optional[int] = None,
                 seed: int = 0) -> DriverType:
    """Construct a driver from its CLI name (grid | random | halving)."""
    key = name.strip().lower()
    if key in ("grid", "exhaustive"):
        return ExhaustiveDriver(limit=budget)
    if key == "random":
        if budget is None:
            raise ValueError("random driver requires a budget")
        return RandomDriver(budget=budget, seed=seed)
    if key in ("halving", "adaptive"):
        if budget is None:
            raise ValueError("halving driver requires a budget")
        return SuccessiveHalvingDriver(budget=budget, seed=seed)
    raise ValueError(
        f"unknown driver {name!r}; expected grid, random or halving")


def driver_names() -> Tuple[str, ...]:
    return ("grid", "random", "halving")
