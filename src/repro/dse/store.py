"""Resumable, content-keyed result store for design-space sweeps.

The store is an append-only JSONL file: one line per evaluated design point,
``{"key": <sha1>, "point": <descriptor>, "metrics": {...}}`` — or, for a
design point whose evaluation failed after exhausting the retry budget,
``{"key": <sha1>, "point": <descriptor>, "failure": {...}}`` with a
:meth:`repro.resilience.TaskFailure.as_record` payload.  Keys are content
hashes over the baseline GPU, the design-point descriptor and the workload's
layer :meth:`~repro.core.layer.ConvLayerConfig.structural_key` fingerprint
(see :func:`repro.dse.runner.store_key`), so a sweep that is interrupted and
rerun — or a different sweep that happens to revisit the same point — skips
every evaluation already on disk.  Failure records resume too: a point that
failed permanently is *not* re-evaluated on resume (delete its line, or the
store file, to force a re-run).

Durability model: every :meth:`put` appends and flushes one line, so a killed
process loses at most the record being written; :meth:`ResultStore` tolerates
a truncated (or otherwise corrupt) trailing line on load and the next ``put``
starts a fresh line.  JSON float serialization round-trips exactly, which
keeps resumed sweeps bit-identical to uninterrupted ones.  A persistent store
takes an exclusive advisory lock (``flock``) on its JSONL file before the
first append; a second concurrent writer gets :class:`StoreLockedError`
instead of silently interleaving lines.
"""

from __future__ import annotations

import json
import math
import os
from typing import Dict, Iterator, Optional, Tuple

try:
    import fcntl
except ImportError:  # non-POSIX platform: advisory locking degrades to no-op
    fcntl = None

#: field distinguishing a failure record from a metrics record.
FAILURE_FIELD = "failure"

#: insertion-ordered keys of the standard evaluation metrics dict (see
#: ``repro.dse.runner.evaluate_point``) — the fast-serialization template
#: below applies only to records of exactly this shape.
_METRIC_KEYS = ("time_s", "throughput_tflops", "dram_gb", "l2_gb",
                "resource_cost", "layers", "gemms", "bottlenecks")
#: the numeric metric keys in sorted order — the splice order of the template.
_NUMERIC_KEYS = tuple(sorted(_METRIC_KEYS[:-1]))
#: the metrics dict as ``json.dumps(..., sort_keys=True)`` renders it.
_METRICS_TEMPLATE = ('{"bottlenecks": {%s}, "dram_gb": %s, "gemms": %s, '
                     '"l2_gb": %s, "layers": %s, "resource_cost": %s, '
                     '"throughput_tflops": %s, "time_s": %s}')
#: one C-level repr pass over all numeric values (template splice order).
_NUMERIC_FMT = "\n".join(["%r"] * len(_NUMERIC_KEYS))
#: every character ``repr`` of a plain int / finite float can produce, plus
#: the ``\n`` separator above.  ``inf``/``nan``/``True``, numpy scalars
#: (``np.float64(...)`` reprs), strings, containers all introduce other
#: characters, so a whitelist scan catches anything json would spell
#: differently (or reject).
_NUMERIC_CHARS = frozenset("0123456789+-.e\n")
#: bottleneck labels already checked to serialize as a plain quoted string.
_SAFE_LABELS = set()


def _metrics_json(record: Dict[str, object]) -> str:
    """``json.dumps(record, sort_keys=True)``, fast-pathed for metrics dicts.

    A standard metrics record is all finite numbers with a fixed key set;
    ``repr`` of a Python int/finite float is byte-identical to json's number
    serialization, so the record can be spliced into a template instead of
    walked by the json encoder.  Anything shape- or type-unexpected falls
    back to the real encoder.
    """
    if tuple(record) == _METRIC_KEYS:
        rendered = _NUMERIC_FMT % tuple(map(record.__getitem__,
                                            _NUMERIC_KEYS))
        if _NUMERIC_CHARS.issuperset(rendered):
            shares = record["bottlenecks"]
            if type(shares) is dict:
                parts = []
                for label in sorted(shares):
                    share = shares[label]
                    if label not in _SAFE_LABELS:
                        if (type(label) is not str
                                or json.dumps(label) != '"%s"' % label):
                            break
                        _SAFE_LABELS.add(label)
                    if type(share) is not float or not math.isfinite(share):
                        break
                    parts.append('"%s": %r' % (label, share))
                else:
                    return _METRICS_TEMPLATE % (
                        (", ".join(parts),) + tuple(rendered.split("\n")))
    return json.dumps(record, sort_keys=True)


def is_failure_record(record: Optional[Dict[str, object]]) -> bool:
    """Whether a stored record describes a failed evaluation."""
    return isinstance(record, dict) and FAILURE_FIELD in record


class StoreLockedError(RuntimeError):
    """Another process holds the store file's exclusive writer lock."""


class ResultStore:
    """Keyed record store with optional JSONL persistence.

    With ``path=None`` the store is a plain in-memory dict (useful as the
    per-session dedupe memo); with a path it loads every valid line on open
    and appends eagerly on every :meth:`put` / :meth:`put_failure`.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = os.path.expanduser(path) if path else None
        self._records: Dict[str, Dict[str, object]] = {}
        self._descriptors: Dict[str, Dict[str, object]] = {}
        self._file = None
        #: records answered from disk/memory since open (reporting only).
        self.hits = 0
        #: lines dropped on load because they did not parse (truncated tail).
        self.corrupt_lines = 0
        if self.path and os.path.exists(self.path):
            self._load()

    # -- persistence ----------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    key = payload["key"]
                    if FAILURE_FIELD in payload:
                        record = {FAILURE_FIELD: payload[FAILURE_FIELD]}
                    else:
                        record = payload["metrics"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                self._records[key] = record
                self._descriptors[key] = payload.get("point", {})

    def _lock_file(self) -> None:
        """Take the exclusive advisory writer lock (released on close)."""
        if fcntl is None:
            return
        try:
            fcntl.flock(self._file.fileno(), fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as exc:
            handle, self._file = self._file, None
            handle.close()
            raise StoreLockedError(
                f"result store {self.path!r} is locked by another writer; "
                "point concurrent sweeps at distinct store files") from exc

    def _open_for_append(self) -> None:
        if self._file is not None:
            return
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        self._file = open(self.path, "a", encoding="utf-8")
        self._lock_file()
        # a kill mid-append can leave a torn line without a newline;
        # start clean so the next record does not fuse with the debris.
        if self._file.tell() > 0:
            with open(self.path, "rb") as tail:
                tail.seek(-1, os.SEEK_END)
                if tail.read(1) != b"\n":
                    self._file.write("\n")

    def _append(self, key: str,
                descriptor: Optional[Dict[str, object]],
                body_field: str, body: Dict[str, object]) -> None:
        if self.path is None:
            return
        self._open_for_append()
        line = json.dumps({"key": key, "point": descriptor or {},
                           body_field: body}, sort_keys=True)
        self._file.write(line + "\n")
        self._file.flush()

    # -- mapping interface ----------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        record = self._records.get(key)
        if record is not None:
            self.hits += 1
        return record

    def put(self, key: str, metrics: Dict[str, object],
            descriptor: Optional[Dict[str, object]] = None) -> None:
        if key in self._records:
            return
        self._records[key] = metrics
        if descriptor is not None:
            self._descriptors[key] = descriptor
        self._append(key, descriptor, "metrics", metrics)

    def put_many(self, records) -> None:
        """Batch insert: one buffered write + flush for a whole sweep chunk.

        ``records`` is an iterable of ``(key, descriptor_json, record)`` —
        or ``(key, descriptor_json, record, metrics_json)`` — where
        ``descriptor_json`` (and the optional ``metrics_json``) are already
        serialized with ``json.dumps(..., sort_keys=True)`` and ``record``
        is either a metrics dict or a ``{FAILURE_FIELD: ...}`` failure
        record.  Each emitted line is byte-identical to the one :meth:`put`
        / :meth:`put_failure` would write (``json.dumps`` with sorted keys
        serializes nested values context-free, so splicing pre-serialized
        fragments into the line template is exact); existing keys are
        skipped, exactly like the single-record paths.
        """
        lines = []
        for item in records:
            key, descriptor_json, record = item[0], item[1], item[2]
            if key in self._records:
                continue
            self._records[key] = record
            if self.path is None:
                continue
            if FAILURE_FIELD in record:
                body_json = json.dumps(record[FAILURE_FIELD], sort_keys=True)
                lines.append('{"failure": %s, "key": "%s", "point": %s}\n'
                             % (body_json, key, descriptor_json))
            else:
                metrics_json = item[3] if len(item) > 3 else None
                if metrics_json is None:
                    metrics_json = _metrics_json(record)
                lines.append('{"key": "%s", "metrics": %s, "point": %s}\n'
                             % (key, metrics_json, descriptor_json))
        if lines:
            self._open_for_append()
            self._file.write("".join(lines))
            self._file.flush()

    def put_failure(self, key: str, failure: Dict[str, object],
                    descriptor: Optional[Dict[str, object]] = None) -> None:
        """Record a permanently-failed evaluation (skipped on resume)."""
        if key in self._records:
            return
        record = {FAILURE_FIELD: failure}
        self._records[key] = record
        if descriptor is not None:
            self._descriptors[key] = descriptor
        self._append(key, descriptor, FAILURE_FIELD, failure)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def items(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        return iter(self._records.items())

    def failures(self) -> Dict[str, Dict[str, object]]:
        """All failure records currently in the store, keyed by store key."""
        return {key: record[FAILURE_FIELD]
                for key, record in self._records.items()
                if is_failure_record(record)}

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._file is not None:
            self._file.close()  # closing the fd releases the advisory lock
            self._file = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ResultStore(path={self.path!r}, records={len(self)}, "
                f"hits={self.hits})")
