"""Resumable, content-keyed result store for design-space sweeps.

The store is an append-only JSONL file: one line per evaluated design point,
``{"key": <sha1>, "point": <descriptor>, "metrics": {...}}``.  Keys are
content hashes over the baseline GPU, the design-point descriptor and the
workload's layer :meth:`~repro.core.layer.ConvLayerConfig.structural_key`
fingerprint (see :func:`repro.dse.runner.store_key`), so a sweep that is
interrupted and rerun — or a different sweep that happens to revisit the same
point — skips every evaluation already on disk.

Durability model: every :meth:`put` appends and flushes one line, so a killed
process loses at most the record being written; :meth:`ResultStore` tolerates
a truncated (or otherwise corrupt) trailing line on load and the next ``put``
starts a fresh line.  JSON float serialization round-trips exactly, which
keeps resumed sweeps bit-identical to uninterrupted ones.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Iterator, Optional, Tuple


class ResultStore:
    """Keyed record store with optional JSONL persistence.

    With ``path=None`` the store is a plain in-memory dict (useful as the
    per-session dedupe memo); with a path it loads every valid line on open
    and appends eagerly on every :meth:`put`.
    """

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = os.path.expanduser(path) if path else None
        self._records: Dict[str, Dict[str, object]] = {}
        self._descriptors: Dict[str, Dict[str, object]] = {}
        self._file = None
        #: records answered from disk/memory since open (reporting only).
        self.hits = 0
        #: lines dropped on load because they did not parse (truncated tail).
        self.corrupt_lines = 0
        if self.path and os.path.exists(self.path):
            self._load()

    # -- persistence ----------------------------------------------------

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    payload = json.loads(line)
                    key = payload["key"]
                    metrics = payload["metrics"]
                except (json.JSONDecodeError, KeyError, TypeError):
                    self.corrupt_lines += 1
                    continue
                self._records[key] = metrics
                self._descriptors[key] = payload.get("point", {})

    def _append(self, key: str, metrics: Dict[str, object],
                descriptor: Optional[Dict[str, object]]) -> None:
        if self.path is None:
            return
        if self._file is None:
            directory = os.path.dirname(self.path)
            if directory:
                os.makedirs(directory, exist_ok=True)
            self._file = open(self.path, "a", encoding="utf-8")
            # a kill mid-append can leave a torn line without a newline;
            # start clean so the next record does not fuse with the debris.
            if self._file.tell() > 0:
                with open(self.path, "rb") as tail:
                    tail.seek(-1, os.SEEK_END)
                    if tail.read(1) != b"\n":
                        self._file.write("\n")
        line = json.dumps({"key": key, "point": descriptor or {},
                           "metrics": metrics}, sort_keys=True)
        self._file.write(line + "\n")
        self._file.flush()

    # -- mapping interface ----------------------------------------------

    def get(self, key: str) -> Optional[Dict[str, object]]:
        record = self._records.get(key)
        if record is not None:
            self.hits += 1
        return record

    def put(self, key: str, metrics: Dict[str, object],
            descriptor: Optional[Dict[str, object]] = None) -> None:
        if key in self._records:
            return
        self._records[key] = metrics
        if descriptor is not None:
            self._descriptors[key] = descriptor
        self._append(key, metrics, descriptor)

    def __contains__(self, key: str) -> bool:
        return key in self._records

    def __len__(self) -> int:
        return len(self._records)

    def keys(self) -> Iterator[str]:
        return iter(self._records)

    def items(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        return iter(self._records.items())

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"ResultStore(path={self.path!r}, records={len(self)}, "
                f"hits={self.hits})")
