"""Session-based public API: typed requests, batch execution, structured results.

Quick start::

    from repro.api import EstimateRequest, ExperimentRequest, Session

    with Session(jobs=4) as session:
        estimate = session.run(EstimateRequest("resnet152", gpu="v100", batch=256))
        print(estimate.render())

        fig11, fig13 = session.run_many([
            ExperimentRequest("fig11"),
            ExperimentRequest("fig13"),
        ])
        print(fig13.to_json(indent=2))

* :class:`Session` owns all execution policy (worker processes, on-disk
  simulation cache, engine selection, render precision) plus the memoized
  simulation/validation results shared across requests.
* Request dataclasses (:class:`EstimateRequest`, :class:`SweepRequest`,
  :class:`ValidateRequest`, :class:`ExperimentRequest`) say *what* to compute.
* Every run returns a :class:`Report` with ``render()`` (text) and
  ``to_dict()``/``to_json()`` (machine-readable, round-trippable).
* ``Session.run_many`` dedupes identical simulation work units across the
  batch, fans them out over one shared process pool, and isolates failures:
  a failing request yields a ``Report(kind="error")`` in its slot instead of
  aborting the batch (see DESIGN.md, "Failure semantics").
* ``register_network`` / ``register_gpu`` / ``register_experiment`` extend
  the catalogs the requests refer to by name.
"""

from ..experiments.registry import (
    ExperimentSpec,
    all_experiment_specs,
    available_experiments,
    get_experiment_spec,
    register_experiment,
    unregister_experiment,
)
from ..gpu.devices import device_aliases, get_device, register_gpu, unregister_gpu
from ..resilience import (
    SessionClosedError,
    SimulationError,
    TaskError,
    TaskFailure,
)
from ..networks.registry import (
    available_networks,
    get_network,
    paper_subset_networks,
    register_network,
    unregister_network,
)
from .progress import emit_progress, observe_progress
from .report import SCHEMA_VERSION, Report
from .requests import (
    DseRequest,
    EstimateRequest,
    ExperimentRequest,
    Request,
    SweepRequest,
    ValidateRequest,
)
from .session import (
    Session,
    SessionStats,
    configure_default_session,
    current_session,
    default_session,
    reset_default_session,
    use_session,
    work_unit_key,
)

__all__ = [
    "Session",
    "SessionStats",
    "current_session",
    "default_session",
    "use_session",
    "configure_default_session",
    "reset_default_session",
    "work_unit_key",
    "observe_progress",
    "emit_progress",
    "Report",
    "SCHEMA_VERSION",
    "TaskFailure",
    "TaskError",
    "SimulationError",
    "SessionClosedError",
    "Request",
    "EstimateRequest",
    "SweepRequest",
    "ValidateRequest",
    "ExperimentRequest",
    "DseRequest",
    "register_network",
    "unregister_network",
    "available_networks",
    "paper_subset_networks",
    "get_network",
    "register_gpu",
    "unregister_gpu",
    "device_aliases",
    "get_device",
    "register_experiment",
    "unregister_experiment",
    "available_experiments",
    "all_experiment_specs",
    "get_experiment_spec",
    "ExperimentSpec",
]
