"""Unified, machine-readable result type of the public API.

Every request executed through a :class:`repro.api.Session` produces a
:class:`Report`: tables (``rows``), figure-style ``series``, headline
``summary`` numbers and a ``meta`` block echoing the request and the session
policy that produced it.  Reports render as plain text (the CLI's default)
and serialize losslessly to JSON — ``Report.from_json(r.to_json())`` compares
numerically equal to ``r``.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..analysis.tables import render_series, render_table
from ..experiments.base import ExperimentResult
from ..resilience import TaskError, TaskFailure

#: bumped when the serialized layout changes shape.
SCHEMA_VERSION = 1

Rows = Tuple[Dict[str, object], ...]
Series = Dict[str, Tuple[Tuple[object, object], ...]]


def _freeze_rows(rows: Sequence[Mapping[str, object]]) -> Rows:
    return tuple(dict(row) for row in rows)


def _freeze_series(series: Optional[Mapping[str, Sequence[Sequence[object]]]]) -> Series:
    return {name: tuple((pair[0], pair[1]) for pair in pairs)
            for name, pairs in (series or {}).items()}


def _strip_timing(payload: Dict[str, object]) -> None:
    """Drop ``meta["timing"]`` from a serialized report tree, in place."""
    meta = payload.get("meta")
    if isinstance(meta, dict):
        meta.pop("timing", None)
    for child in payload.get("children") or ():
        if isinstance(child, dict):
            _strip_timing(child)


@dataclass(frozen=True)
class Report:
    """Structured result of one request."""

    #: result family: "experiment", "estimate", "validation", "sweep", "dse"
    #: or "error" (a failed request, isolated by ``Session.run_many``).
    kind: str
    #: human readable headline (first line of the text rendering).
    title: str
    #: identifier shown as ``[id]`` in the text rendering (e.g. "fig11").
    report_id: Optional[str] = None
    rows: Rows = ()
    series: Series = field(default_factory=dict)
    summary: Dict[str, object] = field(default_factory=dict)
    #: request echo + session policy (jobs, precision, ...).
    meta: Dict[str, object] = field(default_factory=dict)
    #: sub-reports (a sweep's per-combination breakdown, for example).
    children: Tuple["Report", ...] = ()

    # -- text ------------------------------------------------------------

    def render(self, precision: Optional[int] = None) -> str:
        """Render as plain text: title, summary, tables, series, children."""
        if precision is None:
            precision = int(self.meta.get("precision", 3))
        header = f"[{self.report_id}] {self.title}" if self.report_id else self.title
        parts: List[str] = [header]
        if self.summary:
            summary_rows = [{"metric": key, "value": value}
                            for key, value in self.summary.items()]
            parts.append(render_table(summary_rows, columns=["metric", "value"],
                                      precision=precision))
        if self.rows:
            parts.append(render_table(list(self.rows), precision=precision))
        for name, pairs in self.series.items():
            parts.append(render_series(name, pairs, precision=precision))
        for child in self.children:
            parts.append(child.render(precision=precision))
        return "\n\n".join(parts)

    # -- JSON ------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Plain-data payload (lists/dicts/scalars only)."""
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": self.kind,
            "title": self.title,
            "report_id": self.report_id,
            "rows": [dict(row) for row in self.rows],
            "series": {name: [[x, y] for x, y in pairs]
                       for name, pairs in self.series.items()},
            "summary": dict(self.summary),
            "meta": dict(self.meta),
            "children": [child.to_dict() for child in self.children],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def content_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` minus volatile wall-clock metadata.

        ``meta["timing"]`` (attached to every executed report by the
        executor) differs between otherwise identical runs; this is the
        stable content identity that bit-identity tests and run-to-run
        comparisons should use.
        """
        payload = self.to_dict()
        _strip_timing(payload)
        return payload

    def content_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.content_dict(), indent=indent)

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "Report":
        version = payload.get("schema_version", SCHEMA_VERSION)
        if version != SCHEMA_VERSION:
            raise ValueError(f"unsupported report schema version {version!r}")
        return cls(
            kind=str(payload.get("kind", "experiment")),
            title=str(payload.get("title", "")),
            report_id=payload.get("report_id"),
            rows=_freeze_rows(payload.get("rows", ())),
            series=_freeze_series(payload.get("series")),
            summary=dict(payload.get("summary", {})),
            meta=dict(payload.get("meta", {})),
            children=tuple(cls.from_dict(child)
                           for child in payload.get("children", ())),
        )

    @classmethod
    def from_json(cls, text: str) -> "Report":
        return cls.from_dict(json.loads(text))

    # -- bridges ---------------------------------------------------------

    @classmethod
    def from_error(cls, exc: BaseException, *, request: object = None,
                   meta: Optional[Mapping[str, object]] = None) -> "Report":
        """An error-kind report describing one failed request.

        Carries the exception type/message, the formatted traceback and the
        cause chain in ``meta`` so failures stay diagnosable after JSON
        round-trips; ``summary`` holds the headline error fields.
        """
        failure = TaskFailure.from_exception(exc)
        merged: Dict[str, object] = dict(meta or {})
        merged["error_type"] = failure.error_type
        merged["error_message"] = failure.message
        if failure.traceback is not None:
            merged["traceback"] = failure.traceback
        merged["cause"] = list(failure.cause)
        if isinstance(exc, TaskError) and exc.failures:
            # per-work-unit failure records: clients (the estimation service
            # in particular) surface the structured kind — "error", "timeout"
            # or "crash" — instead of a flattened message.
            merged["failures"] = [f.as_record() for f in exc.failures]
        request_name = type(request).__name__ if request is not None else "request"
        if request is not None:
            merged.setdefault("request", request_name)
            merged.setdefault("request_echo", repr(request))
        return cls(
            kind="error",
            title=f"{request_name} failed: {failure.error_type}: {failure.message}",
            summary={"error": failure.error_type, "message": failure.message},
            meta=merged,
        )

    @classmethod
    def from_experiment(cls, result: ExperimentResult,
                        meta: Optional[Mapping[str, object]] = None) -> "Report":
        """Wrap an :class:`ExperimentResult` (text rendering stays identical)."""
        return cls(
            kind="experiment",
            title=result.title,
            report_id=result.experiment_id,
            rows=result.rows,
            series=dict(result.series),
            summary=dict(result.summary),
            meta=dict(meta or {}),
        )

    def to_experiment(self) -> ExperimentResult:
        """Narrow an experiment-kind report back to an ExperimentResult."""
        if self.kind != "experiment" or self.report_id is None:
            raise ValueError(f"report of kind {self.kind!r} is not an experiment")
        return ExperimentResult(
            experiment_id=self.report_id,
            title=self.title,
            rows=self.rows,
            series=self.series,
            summary=dict(self.summary),
        )
