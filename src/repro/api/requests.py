"""Typed request dataclasses accepted by ``Session.run`` / ``Session.run_many``.

Requests are frozen value objects: they carry *what* to compute
(network/GPU/batch/scale), never *how* (jobs, caching, engine selection) —
execution policy lives on the :class:`repro.api.Session` that runs them.
(:class:`ExperimentRequest` is not hashable once ``options`` is set, since
options hold arbitrary keyword arguments.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence, Tuple, Union

from ..core.workload import PassKind, expand_passes, normalize_passes

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from ..dse.space import SearchSpace

Names = Union[str, Sequence[str]]


def _check_policy(timeout: Optional[float], retries: Optional[int]) -> None:
    """Validate the optional per-request resilience-policy overrides."""
    if timeout is not None and timeout <= 0:
        raise ValueError("timeout must be positive (or None)")
    if retries is not None and retries < 0:
        raise ValueError("retries must be non-negative (or None)")


def _name_tuple(value: Optional[Names]) -> Optional[Tuple[str, ...]]:
    """Normalize a name or sequence of names to a lower-case tuple."""
    if value is None:
        return None
    if isinstance(value, str):
        value = (value,)
    return tuple(str(name).strip().lower() for name in value)


@dataclass(frozen=True)
class EstimateRequest:
    """Analytical per-layer estimate of one network on one GPU.

    Pure model evaluation: no simulation, runs in milliseconds.
    """

    network: str
    gpu: str = "titanxp"
    batch: int = 256
    #: only evaluate unique layer configurations.
    unique: bool = False
    #: restrict to the layers shown in the paper's figures.
    paper_subset: bool = False
    #: training passes to evaluate: "forward" (default), "dgrad", "wgrad" or
    #: "training" (all three, reported as a full training step).
    passes: str = "forward"

    def __post_init__(self) -> None:
        object.__setattr__(self, "passes", normalize_passes(self.passes))
        if self.batch <= 0:
            raise ValueError("batch must be positive")

    @property
    def pass_kinds(self) -> Tuple[PassKind, ...]:
        """The concrete pass kinds this request evaluates, in order."""
        return expand_passes(self.passes)


@dataclass(frozen=True)
class SweepRequest:
    """Model-only sweep over networks x GPUs x batch sizes in one call."""

    networks: Names = ("alexnet", "vgg16", "googlenet", "resnet152")
    gpus: Names = ("titanxp", "v100")
    batches: Tuple[int, ...] = (64, 256)
    unique: bool = True
    paper_subset: bool = True
    #: training passes summed per combination (see EstimateRequest.passes).
    passes: str = "forward"

    def __post_init__(self) -> None:
        object.__setattr__(self, "networks", _name_tuple(self.networks))
        object.__setattr__(self, "gpus", _name_tuple(self.gpus))
        object.__setattr__(self, "batches", tuple(int(b) for b in self.batches))
        object.__setattr__(self, "passes", normalize_passes(self.passes))
        if not (self.networks and self.gpus and self.batches):
            raise ValueError("networks, gpus and batches must be non-empty")
        if any(batch <= 0 for batch in self.batches):
            raise ValueError("batches must be positive")

    @property
    def pass_kinds(self) -> Tuple[PassKind, ...]:
        """The concrete pass kinds each combination sums over."""
        return expand_passes(self.passes)


@dataclass(frozen=True)
class ValidateRequest:
    """Model-vs-simulator validation of one GPU over the paper population."""

    gpu: str = "titanxp"
    batch: int = 32
    #: cap on exactly-simulated CTAs per layer (None = all).
    max_ctas: Optional[int] = 180
    #: layers per network (None = all unique layers).
    layers_per_network: Optional[int] = 4
    #: restrict the population to these networks (None = all four CNNs).
    networks: Optional[Names] = None
    #: per-layer simulation wall-clock timeout override (None = session policy).
    timeout: Optional[float] = None
    #: retry-budget override for crashed/failed simulations (None = session).
    retries: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "networks", _name_tuple(self.networks))
        if self.batch <= 0:
            raise ValueError("batch must be positive")
        _check_policy(self.timeout, self.retries)


@dataclass(frozen=True)
class ExperimentRequest:
    """Run one registered paper table/figure, optionally reconfigured.

    Unset override fields keep the experiment's paper-default configuration;
    the default request therefore reproduces the paper numbers exactly.
    Overrides an experiment cannot honor (e.g. a network override for the
    GPU-specification table) raise ``ValueError`` rather than being ignored.
    ``options`` passes extra keyword arguments straight to the experiment's
    ``run`` callable after validation against its signature.
    """

    experiment: str
    gpus: Optional[Names] = None
    networks: Optional[Names] = None
    batch: Optional[int] = None
    max_ctas: Optional[int] = None
    layers_per_network: Optional[int] = None
    #: per-layer simulation wall-clock timeout override (None = session policy).
    timeout: Optional[float] = None
    #: retry-budget override for crashed/failed simulations (None = session).
    retries: Optional[int] = None
    options: Mapping[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        object.__setattr__(self, "experiment", self.experiment.strip().lower())
        object.__setattr__(self, "gpus", _name_tuple(self.gpus))
        object.__setattr__(self, "networks", _name_tuple(self.networks))
        object.__setattr__(self, "options", dict(self.options))
        if self.batch is not None and self.batch <= 0:
            raise ValueError("batch must be positive")
        _check_policy(self.timeout, self.retries)


@dataclass(frozen=True)
class DseRequest:
    """Design-space exploration over a searchable GPU x workload space.

    ``space`` is a :class:`repro.dse.SearchSpace` (grid / zip / union /
    explicit); the driver decides which of its points are evaluated, the
    optional JSONL ``store_path`` makes the sweep resumable, and
    ``objectives`` select the Pareto frontier the report is built around.
    Analytic-model evaluation fans out over the session's process pool;
    ``confirm_top`` > 0 additionally cross-checks the best frontier points
    against the trace-driven simulator.
    """

    space: "SearchSpace"
    gpu: str = "titanxp"
    #: search strategy: "grid" (exhaustive), "random" or "halving".
    driver: str = "grid"
    #: evaluation budget (required for random/halving; caps grid).
    budget: Optional[int] = None
    seed: int = 0
    objectives: Tuple[str, ...] = ("throughput", "dram", "cost")
    #: JSONL result store; interrupted or repeated sweeps skip evaluated points.
    store_path: Optional[str] = None
    #: evaluate each network's unique layer configurations only.
    unique: bool = True
    #: simulator-confirm this many top frontier points (0 = model only).
    confirm_top: int = 0
    #: per-point evaluation wall-clock timeout override (None = session policy).
    timeout: Optional[float] = None
    #: retry-budget override for crashed/failed evaluations (None = session).
    retries: Optional[int] = None
    #: "batch" (vectorized array-of-points, default) or "task" (scalar
    #: reference pipeline, one evaluation per point) — bit-identical results.
    eval_mode: str = "batch"

    def __post_init__(self) -> None:
        from ..analysis.frontier import resolve_objectives
        from ..dse.drivers import driver_names
        from ..dse.runner import EVAL_MODES
        from ..dse.space import SearchSpace
        if not isinstance(self.space, SearchSpace):
            raise TypeError(
                f"space must be a repro.dse.SearchSpace, "
                f"got {type(self.space).__name__}")
        object.__setattr__(self, "gpu", self.gpu.strip().lower())
        driver = self.driver.strip().lower()
        if driver not in driver_names():
            raise ValueError(
                f"unknown driver {self.driver!r}; expected one of "
                f"{list(driver_names())}")
        object.__setattr__(self, "driver", driver)
        objectives = tuple(str(name).strip().lower()
                           for name in self.objectives)
        resolve_objectives(objectives)  # validates the names
        object.__setattr__(self, "objectives", objectives)
        if self.budget is not None and self.budget <= 0:
            raise ValueError("budget must be positive")
        if driver in ("random", "halving") and self.budget is None:
            raise ValueError(f"the {driver} driver requires a budget")
        if self.confirm_top < 0:
            raise ValueError("confirm_top must be non-negative")
        eval_mode = self.eval_mode.strip().lower()
        if eval_mode not in EVAL_MODES:
            raise ValueError(
                f"unknown eval_mode {self.eval_mode!r}; expected one of "
                f"{list(EVAL_MODES)}")
        object.__setattr__(self, "eval_mode", eval_mode)
        _check_policy(self.timeout, self.retries)


Request = Union[EstimateRequest, SweepRequest, ValidateRequest,
                ExperimentRequest, DseRequest]
