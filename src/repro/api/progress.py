"""Context-local progress observation for long-running requests.

The estimation service streams NDJSON progress lines while a sweep or a
design-space exploration grinds through its points.  The executor and the
session's fan-out engine cannot know about HTTP — instead they call
:func:`emit_progress` at well-defined completion points, and whoever wants
the events installs a callback for the dynamic extent of one request with
:func:`observe_progress`.

The observer is a :class:`~contextvars.ContextVar`, mirroring the
context-local active session: concurrent requests running in different
threads or asyncio tasks never see each other's events, and
``asyncio.to_thread`` copies the context, so a callback installed on the
event loop side is visible inside the worker thread that executes the
blocking request.

Events are plain dicts.  The emitters in this codebase use:

* ``{"stage": "tasks", "done": k, "total": n}`` — one fan-out work unit
  (simulation, DSE point evaluation) completed, from
  ``Session._run_tasks``;
* ``{"stage": "sweep", "done": k, "total": n, "network": ..., "gpu": ...,
  "batch": ...}`` — one sweep combination completed, from the executor.

Observation is best effort: a callback that raises is dropped for the rest
of the extent rather than poisoning the request it watches.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterator, Optional

ProgressCallback = Callable[[Dict[str, object]], None]

_OBSERVER: ContextVar[Optional[ProgressCallback]] = ContextVar(
    "repro_progress_observer", default=None)


@contextmanager
def observe_progress(callback: ProgressCallback) -> Iterator[None]:
    """Route :func:`emit_progress` events to ``callback`` inside the block."""
    token = _OBSERVER.set(callback)
    try:
        yield
    finally:
        _OBSERVER.reset(token)


def emit_progress(**event: object) -> None:
    """Report one progress event to the context's observer, if any.

    With no observer installed this is one context-variable lookup; emitters
    can therefore call it unconditionally on hot-ish paths.
    """
    callback = _OBSERVER.get()
    if callback is None:
        return
    try:
        callback(dict(event))
    except Exception:
        # a broken observer must never fail the request it watches; drop it.
        _OBSERVER.set(None)
