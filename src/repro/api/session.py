"""Session: context-local execution policy and shared simulation state.

A :class:`Session` owns everything that used to live in process-global
mutable state: how many worker processes per-layer simulations fan out over
(``jobs``), where simulator results persist on disk (``sim_cache_dir``),
whether the vectorized engine runs (``vectorized``), and the default decimal
precision of rendered reports (``precision``).  On top of the policy it keeps
two in-memory result stores so that many requests executed against the same
session share work:

* a simulation memo keyed by ``(gpu, layer, simulator config)`` — the unit of
  work the batch executor dedupes across requests, and
* a validation-report memo so every experiment that consumes the same
  model-vs-measured records (Fig. 11-15, 19, 20) reuses one run.

The *active* session is context-local (:func:`current_session` /
:func:`use_session`), so concurrent scenarios in different threads or asyncio
tasks never observe each other's settings — the fix for the state-leak the
old ``set_simulation_defaults`` global had.
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..analysis.validation import (
    QUICK_VALIDATION,
    ValidationConfig,
    ValidationReport,
    _simulate_task,
    select_layers,
    validate_layer,
)
from ..core.layer import LayerConfig
from ..core.model import DeltaModel
from ..core.workload import PassKind
from ..gpu.spec import GpuSpec
from ..sim.engine import SimResult, SimulatorConfig

#: one simulation work unit: everything that determines a SimResult.
#: ``(gpu, layer, config)`` simulates the forward pass; a trailing pass kind
#: selects a backward-pass GEMM: ``(gpu, layer, config, "wgrad")``.
SimUnit = Tuple[GpuSpec, LayerConfig, SimulatorConfig]


def _normalize_unit(unit) -> Tuple[GpuSpec, LayerConfig,
                                   SimulatorConfig, PassKind]:
    """Pad a 3-element unit with the forward pass kind."""
    if len(unit) == 3:
        gpu, layer, config = unit
        return gpu, layer, config, "forward"
    gpu, layer, config, pass_kind = unit
    return gpu, layer, config, pass_kind


def _unit_key(unit) -> Tuple:
    """Dedupe identity of one work unit.

    Built on :meth:`ConvLayerConfig.structural_key` — the same identity the
    network unique-layer dedupe uses — plus the pass kind, so two layers that
    differ only in name (or two requests asking for the same structure) share
    one simulation.
    """
    gpu, layer, config, pass_kind = _normalize_unit(unit)
    return (gpu, layer.structural_key(), config, pass_kind)


# the validation harness's pool worker does exactly what we need: run one
# (gpu, layer, config, cache_dir[, pass_kind]) task through the
# disk-cache-aware path.
_run_unit = _simulate_task


@dataclass
class SessionStats:
    """Counters describing what a session actually executed."""

    #: simulation tasks dispatched (after in-memory dedup).
    sim_tasks: int = 0
    #: simulation units answered from the session's in-memory store.
    sim_memo_hits: int = 0
    #: process pools created; a session reuses one pool across batches.
    pool_launches: int = 0
    #: requests executed through Session.run / Session.run_many.
    requests_run: int = 0
    #: design-space points evaluated (after memo/store dedupe).
    dse_points: int = 0
    #: design-space points answered from the session's in-memory memo.
    dse_memo_hits: int = 0


class Session:
    """Execution scope for estimates, validations and experiments.

    Sessions are thread-safe and reusable; use one per logical scenario (or
    one per process) and route every request through it::

        with Session(jobs=4, sim_cache_dir="~/.cache/delta-repro") as session:
            report = session.run(ExperimentRequest("fig11"))
            print(report.to_json(indent=2))
    """

    def __init__(self, jobs: int = 1, sim_cache_dir: Optional[str] = None,
                 vectorized: bool = True, precision: int = 3) -> None:
        self._lock = threading.RLock()
        #: memoized results keyed by the unit's structural identity
        #: (gpu, layer.structural_key(), simulator config, pass kind).
        self._sim_results: Dict[Tuple, SimResult] = {}
        self._validation_memo: Dict[Tuple[GpuSpec, ValidationConfig],
                                    ValidationReport] = {}
        #: design-space evaluation memo keyed by the DSE store key (the
        #: in-memory half of the resumable result store: cross-request
        #: dedupe within one session, no disk required).
        self._dse_memo: Dict[str, Dict[str, object]] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        #: pools replaced by a grow; shut down at close() so in-flight work
        #: on them is never interrupted.
        self._retired_pools: List[ProcessPoolExecutor] = []
        self.stats = SessionStats()
        self.jobs = jobs
        self.sim_cache_dir = sim_cache_dir
        self.vectorized = vectorized
        self.precision = precision

    # -- policy ---------------------------------------------------------

    @property
    def jobs(self) -> int:
        """Worker processes for per-layer simulations (1 = serial)."""
        return self._jobs

    @jobs.setter
    def jobs(self, value: int) -> None:
        if value is None or value <= 0:
            raise ValueError("jobs must be positive")
        self._jobs = int(value)

    @property
    def precision(self) -> int:
        """Default decimal places of rendered reports."""
        return self._precision

    @precision.setter
    def precision(self, value: int) -> None:
        if value is None or value < 0:
            raise ValueError("precision must be non-negative")
        self._precision = int(value)

    def simulator_config(self, base: Optional[SimulatorConfig] = None,
                         **overrides) -> SimulatorConfig:
        """A simulator config with this session's engine policy applied."""
        overrides.setdefault("vectorized", self.vectorized)
        return replace(base if base is not None else SimulatorConfig(), **overrides)

    def validation_sim_config(self, config: ValidationConfig) -> SimulatorConfig:
        """The simulator config a validation run uses under this session."""
        return self.simulator_config(config.simulator_config())

    # -- simulation with dedup + shared pool ----------------------------

    def simulate(self, gpu: GpuSpec, layer: LayerConfig,
                 config: Optional[SimulatorConfig] = None,
                 pass_kind: PassKind = "forward") -> SimResult:
        """Simulate one layer's pass, consulting the session memo and cache."""
        resolved = config if config is not None else self.simulator_config()
        return self.simulate_many([(gpu, layer, resolved, pass_kind)])[0]

    def simulate_many(self, units: Sequence[SimUnit],
                      jobs: Optional[int] = None,
                      cache_dir: Optional[str] = None) -> List[SimResult]:
        """Simulate many work units, deduped, over the session's pool.

        Results come back aligned with ``units``.  Units already present in
        the session memo cost nothing; duplicates within ``units`` — including
        same-structure layers under different names, and the same layer
        requested for the same training pass twice — run once.
        ``jobs``/``cache_dir`` override the session policy for this call.
        """
        keys = [_unit_key(unit) for unit in units]
        with self._lock:
            fresh: List[Tuple] = []
            fresh_keys: List[Tuple] = []
            seen = set()
            for unit, key in zip(units, keys):
                if key in self._sim_results or key in seen:
                    self.stats.sim_memo_hits += 1
                else:
                    seen.add(key)
                    fresh.append(_normalize_unit(unit))
                    fresh_keys.append(key)
            if cache_dir is None:
                cache_dir = self.sim_cache_dir
        tasks = [(gpu, layer, config, cache_dir, pass_kind)
                 for gpu, layer, config, pass_kind in fresh]
        workers = jobs if jobs is not None else self.jobs
        if len(tasks) <= 1 or workers <= 1:
            results = [_run_unit(task) for task in tasks]
        else:
            results = list(self._ensure_pool(workers).map(_run_unit, tasks))
        with self._lock:
            for key, result in zip(fresh_keys, results):
                self._sim_results[key] = result
            self.stats.sim_tasks += len(tasks)
            return [self._sim_results[key] for key in keys]

    def map_tasks(self, func, tasks: Sequence, jobs: Optional[int] = None) -> List:
        """Map a picklable function over tasks on the session's process pool.

        The generic fan-out primitive the design-space exploration uses for
        per-point model evaluations; falls back to a serial loop when the
        effective job count (or the task count) is 1.
        """
        tasks = list(tasks)
        workers = jobs if jobs is not None else self.jobs
        if workers <= 1 or len(tasks) <= 1:
            return [func(task) for task in tasks]
        chunksize = max(1, len(tasks) // (workers * 4))
        return list(self._ensure_pool(workers).map(func, tasks,
                                                   chunksize=chunksize))

    # -- design-space memo ----------------------------------------------

    def dse_lookup(self, key: str) -> Optional[Dict[str, object]]:
        """Memoized design-point metrics for a DSE store key, if any."""
        with self._lock:
            record = self._dse_memo.get(key)
            if record is not None:
                self.stats.dse_memo_hits += 1
            return record

    def dse_record(self, key: str, metrics: Dict[str, object]) -> None:
        """Memoize one design-point evaluation (first writer wins)."""
        with self._lock:
            self._dse_memo.setdefault(key, metrics)

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """The shared pool, grown (never shrunk) to at least ``workers``.

        A too-small pool is retired, not shut down: another thread may still
        be mapping work onto it, and retired pools drain at close().
        """
        with self._lock:
            if self._pool is not None and self._pool_workers < workers:
                self._retired_pools.append(self._pool)
                self._pool = None
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=workers)
                self._pool_workers = workers
                self.stats.pool_launches += 1
            return self._pool

    # -- validation -----------------------------------------------------

    def validation_report(self, gpu: GpuSpec,
                          config: ValidationConfig = QUICK_VALIDATION
                          ) -> ValidationReport:
        """Model-vs-simulator records for one GPU, memoized on the session.

        The memo key ignores ``jobs``/``sim_cache_dir`` (execution policy
        does not change results), so experiments with equal populations share
        one run regardless of how it was parallelized.
        """
        key = (gpu, replace(config, jobs=None, sim_cache_dir=None))
        with self._lock:
            memoized = self._validation_memo.get(key)
        if memoized is not None:
            return memoized
        population = select_layers(config)
        sim_config = self.validation_sim_config(config)
        sims = self.simulate_many(
            [(gpu, layer, sim_config) for _, layer in population],
            jobs=config.jobs, cache_dir=config.sim_cache_dir)
        model = DeltaModel(gpu)
        records = tuple(
            validate_layer(network, layer, gpu, model=model, sim_result=sim)
            for (network, layer), sim in zip(population, sims))
        report = ValidationReport(gpu=gpu, records=records)
        with self._lock:
            return self._validation_memo.setdefault(key, report)

    # -- request execution ----------------------------------------------

    def run(self, request) -> "Report":  # noqa: F821 - documented return type
        """Execute one typed request and return its :class:`Report`."""
        from .executor import execute
        return execute(self, request)

    def run_many(self, requests: Sequence) -> List["Report"]:  # noqa: F821
        """Execute a batch of requests, deduping shared simulation work.

        The executor first plans the union of simulation work units across
        the batch, runs them once over the session's shared process pool,
        then executes each request against the warm memo.
        """
        from .executor import execute_many
        return execute_many(self, requests)

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        """Shut down the session's process pools (results stay memoized)."""
        with self._lock:
            pools = [p for p in [self._pool, *self._retired_pools] if p]
            self._pool = None
            self._pool_workers = 0
            self._retired_pools = []
        for pool in pools:
            pool.shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Session(jobs={self.jobs}, sim_cache_dir={self.sim_cache_dir!r}, "
                f"vectorized={self.vectorized}, precision={self.precision})")


# ----------------------------------------------------------------------
# Context-local active session
# ----------------------------------------------------------------------
_ACTIVE: ContextVar[Optional[Session]] = ContextVar("repro_active_session",
                                                    default=None)
_DEFAULT_LOCK = threading.Lock()
_DEFAULT: List[Optional[Session]] = [None]


def default_session() -> Session:
    """The lazily-created fallback session used when none is active."""
    with _DEFAULT_LOCK:
        if _DEFAULT[0] is None:
            _DEFAULT[0] = Session()
        return _DEFAULT[0]


def current_session() -> Session:
    """The context-active session (see :func:`use_session`) or the default."""
    session = _ACTIVE.get()
    return session if session is not None else default_session()


@contextmanager
def use_session(session: Session) -> Iterator[Session]:
    """Make ``session`` the active session for the enclosed context."""
    token = _ACTIVE.set(session)
    try:
        yield session
    finally:
        _ACTIVE.reset(token)


def configure_default_session(jobs: Optional[int] = None,
                              sim_cache_dir: Optional[str] = None,
                              vectorized: Optional[bool] = None,
                              precision: Optional[int] = None) -> Session:
    """Adjust the default session's policy; unset arguments stay unchanged."""
    session = default_session()
    if jobs is not None:
        session.jobs = jobs
    if sim_cache_dir is not None:
        session.sim_cache_dir = sim_cache_dir
    if vectorized is not None:
        session.vectorized = bool(vectorized)
    if precision is not None:
        session.precision = precision
    return session


def reset_default_session() -> None:
    """Drop the default session, releasing its pool and memoized results."""
    with _DEFAULT_LOCK:
        session, _DEFAULT[0] = _DEFAULT[0], None
    if session is not None:
        session.close()
