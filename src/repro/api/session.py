"""Session: context-local execution policy and shared simulation state.

A :class:`Session` owns everything that used to live in process-global
mutable state: how many worker processes per-layer simulations fan out over
(``jobs``), where simulator results persist on disk (``sim_cache_dir``),
whether the vectorized engine runs (``vectorized``), the default decimal
precision of rendered reports (``precision``), and the resilience policy for
fan-out execution (``timeout`` / ``retries`` / ``retry_backoff``).  On top of
the policy it keeps two in-memory result stores so that many requests
executed against the same session share work:

* a simulation memo keyed by ``(gpu, layer, simulator config)`` — the unit of
  work the batch executor dedupes across requests, and
* a validation-report memo so every experiment that consumes the same
  model-vs-measured records (Fig. 11-15, 19, 20) reuses one run.

Fan-out execution is *fault tolerant*: a worker-process crash
(``BrokenProcessPool``) relaunches the pool and retries only the unfinished
work units with bounded exponential backoff, a per-unit wall-clock timeout
cancels stragglers and records them as structured :class:`TaskFailure`
records instead of hanging forever, and ordinary task exceptions are captured
inside the worker so one bad unit never poisons the round it rides on.  See
DESIGN.md, "Failure semantics".

The *active* session is context-local (:func:`current_session` /
:func:`use_session`), so concurrent scenarios in different threads or asyncio
tasks never observe each other's settings — the fix for the state-leak the
old ``set_simulation_defaults`` global had.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import (BrokenExecutor, CancelledError,
                                ProcessPoolExecutor)
from concurrent.futures import TimeoutError as FuturesTimeout
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..analysis.validation import (
    QUICK_VALIDATION,
    ValidationConfig,
    ValidationReport,
    _simulate_task,
    select_layers,
    validate_layer,
)
from ..core.layer import LayerConfig
from ..core.model import DeltaModel
from ..core.workload import PassKind
from ..gpu.spec import GpuSpec
from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..resilience import (
    SessionClosedError,
    SimulationError,
    TaskError,
    TaskFailure,
    backoff_delay,
    run_chunk,
)
from ..sim.engine import SimResult, SimulatorConfig
from .progress import emit_progress

#: one simulation work unit: everything that determines a SimResult.
#: ``(gpu, layer, config)`` simulates the forward pass; a trailing pass kind
#: selects a backward-pass GEMM: ``(gpu, layer, config, "wgrad")``.
SimUnit = Tuple[GpuSpec, LayerConfig, SimulatorConfig]

#: sentinel distinguishing "argument not given" from an explicit ``None``
#: (an explicit ``timeout=None`` disables the session default for one call).
_UNSET = object()


def _normalize_unit(unit) -> Tuple[GpuSpec, LayerConfig,
                                   SimulatorConfig, PassKind]:
    """Pad a 3-element unit with the forward pass kind."""
    if len(unit) == 3:
        gpu, layer, config = unit
        return gpu, layer, config, "forward"
    gpu, layer, config, pass_kind = unit
    return gpu, layer, config, pass_kind


def _unit_key(unit) -> Tuple:
    """Dedupe identity of one work unit.

    Built on :meth:`ConvLayerConfig.structural_key` — the same identity the
    network unique-layer dedupe uses — plus the pass kind, so two layers that
    differ only in name (or two requests asking for the same structure) share
    one simulation.
    """
    gpu, layer, config, pass_kind = _normalize_unit(unit)
    return (gpu, layer.structural_key(), config, pass_kind)


def work_unit_key(unit) -> Tuple:
    """Public name of the work-unit dedupe identity (see :func:`_unit_key`).

    The estimation service and other long-lived callers use this to speak
    the same content-key language as the session memo: two units with equal
    keys — same GPU, structurally identical layer, same simulator config and
    pass kind — produce identical results and execute at most once per
    session, no matter how many requests ask for them.
    """
    return _unit_key(unit)


def _describe_unit(unit) -> str:
    gpu, layer, _config, pass_kind = _normalize_unit(unit)
    return f"{gpu.name}/{layer.name}/{pass_kind}"


# the validation harness's pool worker does exactly what we need: run one
# (gpu, layer, config, cache_dir[, pass_kind]) task through the
# disk-cache-aware path.
_run_unit = _simulate_task


class SessionStats(obs_metrics.StatsView):
    """Counters describing what a session actually executed.

    A registry-backed view (:class:`repro.obs.metrics.StatsView`): each
    field reads and writes a ``repro_session_*`` counter in the
    per-session ``stats.registry``, which the server merges into its
    ``GET /metrics`` exposition.  The attribute API is unchanged.
    """

    _AREA = "session"
    _FIELDS = {
        "sim_tasks":
            "simulation tasks dispatched (after in-memory dedup)",
        "sim_memo_hits":
            "simulation units answered from the session's in-memory store",
        "sim_cache_hits":
            "simulations answered from the on-disk sim cache",
        "sim_cache_misses":
            "on-disk sim cache lookups that had to simulate",
        "pool_launches":
            "process pools created; a session reuses one pool across batches",
        "pool_recoveries":
            "pools killed and relaunched after a worker crash or "
            "straggler timeout",
        "requests_run":
            "requests executed through Session.run / Session.run_many",
        "dse_points":
            "design-space points evaluated (after memo/store dedupe)",
        "dse_memo_hits":
            "design-space points answered from the session's in-memory memo",
        "task_retries":
            "work-unit executions retried (after a task error or "
            "worker crash)",
        "task_failures":
            "work units that ended in a structured failure after all retries",
        "task_timeouts":
            "work units cancelled for exceeding the wall-clock timeout",
    }

    def observe_request(self, kind: str, seconds: float) -> None:
        """Record one request's end-to-end latency, labeled by kind."""
        self.registry.histogram(
            "repro_session_request_seconds",
            "end-to-end request latency by request kind",
            labels={"kind": kind}).observe(seconds)

    def fold_counters(self, counters: Dict[str, int]) -> None:
        """Add context-local counter totals (serial path or a worker
        chunk's piggybacked telemetry) into the matching fields."""
        for name, value in counters.items():
            if name in self._counters and value:
                self._counters[name].value += value


class Session:
    """Execution scope for estimates, validations and experiments.

    Sessions are thread-safe and reusable; use one per logical scenario (or
    one per process) and route every request through it::

        with Session(jobs=4, sim_cache_dir="~/.cache/delta-repro") as session:
            report = session.run(ExperimentRequest("fig11"))
            print(report.to_json(indent=2))

    ``timeout`` (seconds, ``None`` = unbounded) bounds each work unit's wall
    clock; ``retries`` bounds how many times a unit is re-executed after a
    worker crash or a task error; ``retry_backoff`` is the base of the
    bounded exponential delay between retry rounds.
    """

    def __init__(self, jobs: int = 1, sim_cache_dir: Optional[str] = None,
                 vectorized: bool = True, precision: int = 3,
                 timeout: Optional[float] = None, retries: int = 2,
                 retry_backoff: float = 0.1) -> None:
        self._lock = threading.RLock()
        #: memoized results keyed by the unit's structural identity
        #: (gpu, layer.structural_key(), simulator config, pass kind).
        self._sim_results: Dict[Tuple, SimResult] = {}
        self._validation_memo: Dict[Tuple[GpuSpec, ValidationConfig],
                                    ValidationReport] = {}
        #: design-space evaluation memo keyed by the DSE store key (the
        #: in-memory half of the resumable result store: cross-request
        #: dedupe within one session, no disk required).
        self._dse_memo: Dict[str, Dict[str, object]] = {}
        self._pool: Optional[ProcessPoolExecutor] = None
        self._pool_workers = 0
        #: pools replaced by a grow; shut down at close() so in-flight work
        #: on them is never interrupted.
        self._retired_pools: List[ProcessPoolExecutor] = []
        self._closed = False
        self.stats = SessionStats()
        self.jobs = jobs
        self.sim_cache_dir = sim_cache_dir
        self.vectorized = vectorized
        self.precision = precision
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff

    # -- policy ---------------------------------------------------------

    @property
    def jobs(self) -> int:
        """Worker processes for per-layer simulations (1 = serial)."""
        return self._jobs

    @jobs.setter
    def jobs(self, value: int) -> None:
        if value is None or value <= 0:
            raise ValueError("jobs must be positive")
        self._jobs = int(value)

    @property
    def precision(self) -> int:
        """Default decimal places of rendered reports."""
        return self._precision

    @precision.setter
    def precision(self, value: int) -> None:
        if value is None or value < 0:
            raise ValueError("precision must be non-negative")
        self._precision = int(value)

    @property
    def timeout(self) -> Optional[float]:
        """Per-work-unit wall-clock timeout in seconds (None = unbounded)."""
        return self._timeout

    @timeout.setter
    def timeout(self, value: Optional[float]) -> None:
        if value is not None and value <= 0:
            raise ValueError("timeout must be positive (or None)")
        self._timeout = None if value is None else float(value)

    @property
    def retries(self) -> int:
        """Extra executions allowed per work unit after a crash or error."""
        return self._retries

    @retries.setter
    def retries(self, value: int) -> None:
        if value is None or value < 0:
            raise ValueError("retries must be non-negative")
        self._retries = int(value)

    @property
    def retry_backoff(self) -> float:
        """Base delay (seconds) of the bounded exponential retry backoff."""
        return self._retry_backoff

    @retry_backoff.setter
    def retry_backoff(self, value: float) -> None:
        if value is None or value < 0:
            raise ValueError("retry_backoff must be non-negative")
        self._retry_backoff = float(value)

    def simulator_config(self, base: Optional[SimulatorConfig] = None,
                         **overrides) -> SimulatorConfig:
        """A simulator config with this session's engine policy applied."""
        overrides.setdefault("vectorized", self.vectorized)
        return replace(base if base is not None else SimulatorConfig(), **overrides)

    def validation_sim_config(self, config: ValidationConfig) -> SimulatorConfig:
        """The simulator config a validation run uses under this session."""
        return self.simulator_config(config.simulator_config())

    # -- resilient task execution ---------------------------------------

    def _check_open(self) -> None:
        if self._closed:
            raise SessionClosedError(
                "this Session is closed; create a new Session (or use the "
                "session before close()) to execute work")

    def _resolve_policy(self, timeout, retries) -> Tuple[Optional[float], int]:
        effective_timeout = self.timeout if timeout is _UNSET else timeout
        if effective_timeout is not None and effective_timeout <= 0:
            raise ValueError("timeout must be positive (or None)")
        budget = self.retries if retries is None else int(retries)
        if budget < 0:
            raise ValueError("retries must be non-negative")
        return effective_timeout, budget

    def _run_tasks(self, func, tasks: Sequence, *, jobs: Optional[int] = None,
                   timeout=_UNSET, retries: Optional[int] = None,
                   isolate: bool = False
                   ) -> List[Union[object, TaskFailure]]:
        """Execute tasks with crash recovery, retries and timeouts.

        Returns one entry per task: the result, or a :class:`TaskFailure`
        describing why the unit produced none.  This is the single resilient
        engine under :meth:`simulate_many` and :meth:`map_tasks`.
        """
        tasks = list(tasks)
        if not tasks:
            return []
        self._check_open()
        effective_timeout, budget = self._resolve_policy(timeout, retries)
        workers = jobs if jobs is not None else self.jobs
        # a timeout needs a pool even for serial work: an in-process task
        # cannot be cancelled, a worker process can be killed; ``isolate``
        # likewise forces worker processes because the task may crash its
        # host (one batched DSE chunk would otherwise run — and die — in
        # the driver).
        use_pool = ((workers > 1 and len(tasks) > 1)
                    or effective_timeout is not None or isolate)
        if not use_pool:
            return self._run_tasks_serial(func, tasks, budget)
        return self._run_tasks_pool(func, tasks, max(1, int(workers)),
                                    effective_timeout, budget)

    def _run_tasks_serial(self, func, tasks: List, budget: int) -> List:
        outcomes: List[Union[object, TaskFailure]] = []
        total = len(tasks)
        task_name = f"task:{getattr(func, '__name__', 'task')}"
        counters: Dict[str, int] = {}
        with obs_metrics.count_into(counters):
            for task in tasks:
                attempts = 0
                with obs_spans.trace_deep(task_name):
                    while True:
                        attempts += 1
                        try:
                            outcomes.append(func(task))
                            break
                        except Exception as exc:
                            if attempts > budget:
                                outcomes.append(TaskFailure.from_exception(
                                    exc, attempts=attempts))
                                self.stats.task_failures += 1
                                break
                            self.stats.task_retries += 1
                            time.sleep(backoff_delay(attempts,
                                                     self.retry_backoff))
                emit_progress(stage="tasks", done=len(outcomes), total=total)
        self.stats.fold_counters(counters)
        return outcomes

    def _run_tasks_pool(self, func, tasks: List, workers: int,
                        timeout: Optional[float], budget: int) -> List:
        n = len(tasks)
        outcomes: List[Union[object, TaskFailure]] = [None] * n
        attempts = [0] * n
        pending = list(range(n))
        resolved = 0
        round_index = 0
        # workers always capture counter telemetry (sim-cache hits feed the
        # session stats); spans ride along only when a deep tracer is on.
        capture = "spans" if obs_spans.deep_tracing() else True
        while pending:
            if round_index > 0:
                time.sleep(backoff_delay(round_index, self.retry_backoff))
            with obs_spans.trace("pool.round", round=round_index,
                                 pending=len(pending), workers=workers):
                pool = self._ensure_pool(workers)
                # one task per future when a per-unit timeout must be
                # enforced; otherwise chunked submission to amortize
                # pickling overhead.
                if timeout is not None:
                    chunk_size = 1
                else:
                    chunk_size = max(1, len(pending) // (workers * 4))
                chunks = [pending[start:start + chunk_size]
                          for start in range(0, len(pending), chunk_size)]
                futures = []
                pool_damaged = False
                try:
                    for chunk in chunks:
                        payload = (func, [tasks[i] for i in chunk], capture)
                        future = pool.submit(run_chunk, payload)
                        futures.append((chunk, future))
                        for i in chunk:
                            attempts[i] += 1
                except (BrokenExecutor, RuntimeError):
                    pool_damaged = True  # unsubmitted chunks stay pending
                submitted = {i for chunk, _ in futures for i in chunk}
                lost: List[int] = []  # unfinished (worker crash/cancel)
                retry: List[int] = []  # raised, budget left
                for chunk, future in futures:
                    status, chunk_outcomes = self._collect_future(
                        future, timeout, [attempts[i] for i in chunk])
                    if status == "ok":
                        chunk_outcomes = self._absorb_telemetry(
                            chunk_outcomes)
                        for i, outcome in zip(chunk, chunk_outcomes):
                            if self._apply_outcome(i, outcome, outcomes,
                                                   attempts, budget, retry):
                                resolved += 1
                        emit_progress(stage="tasks", done=resolved, total=n)
                    elif status == "timeout":
                        for i, failure in zip(chunk, chunk_outcomes):
                            outcomes[i] = failure
                            self.stats.task_timeouts += 1
                            self.stats.task_failures += 1
                            resolved += 1
                        emit_progress(stage="tasks", done=resolved, total=n)
                        pool_damaged = True  # straggler occupies a worker
                    elif status == "cancelled":
                        # never started: the attempt did not happen.
                        for i in chunk:
                            attempts[i] -= 1
                        lost.extend(chunk)
                    else:  # "lost": the pool broke under this future
                        pool_damaged = True
                        lost.extend(chunk)
                lost.extend(i for i in pending if i not in submitted)
                if pool_damaged:
                    self._kill_pool()
                    self.stats.pool_recoveries += 1
                next_pending = []
                for i in lost:
                    if attempts[i] > budget:
                        outcomes[i] = TaskFailure(
                            kind="crash", error_type="BrokenProcessPool",
                            message=("worker process died while executing "
                                     "this work unit; retry budget "
                                     f"({budget}) exhausted"),
                            attempts=attempts[i])
                        self.stats.task_failures += 1
                        resolved += 1
                        emit_progress(stage="tasks", done=resolved, total=n)
                    else:
                        if attempts[i] > 0:
                            self.stats.task_retries += 1
                        next_pending.append(i)
                next_pending.extend(retry)
                next_pending.sort()
                pending = next_pending
                round_index += 1
        return outcomes

    def _absorb_telemetry(self, chunk_outcomes: List) -> List:
        """Strip and fold a chunk's trailing telemetry entry, if present.

        Counter totals land in the session stats; serialized worker spans
        are adopted into the active deep tracer, re-parented under the
        current (pool-round) span so the merged trace stays one tree.
        """
        if (not chunk_outcomes
                or not isinstance(chunk_outcomes[-1], tuple)
                or chunk_outcomes[-1][0] != "telemetry"):
            return chunk_outcomes
        data = chunk_outcomes[-1][1]
        counters = data.get("counters")
        if counters:
            with self._lock:
                self.stats.fold_counters(counters)
        payloads = data.get("spans")
        if payloads:
            tracer = obs_spans.active_tracer()
            if tracer is not None and tracer.deep:
                tracer.adopt(payloads,
                             parent=obs_spans.current_span_id())
        return chunk_outcomes[:-1]

    def _collect_future(self, future, timeout: Optional[float],
                        chunk_attempts: List[int]):
        """Wait for one chunk future.

        Returns ``("ok", outcomes)``, ``("timeout", failures)``,
        ``("cancelled", None)`` (never started, retry freely) or
        ``("lost", None)`` (pool broke; the chunk is unfinished).
        """
        waits = 0
        while True:
            waits += 1
            try:
                return "ok", future.result(timeout=timeout)
            except FuturesTimeout:
                if not future.running() and waits == 1:
                    # still queued behind other work: cancel and retry rather
                    # than blaming the unit itself.
                    if future.cancel():
                        return "cancelled", None
                    continue  # started while we looked; one more window
                failures = [TaskFailure(
                    kind="timeout", error_type="TimeoutError",
                    message=(f"work unit exceeded the {timeout:g}s "
                             "wall-clock timeout and was cancelled"),
                    attempts=attempt) for attempt in chunk_attempts]
                return "timeout", failures
            except CancelledError:
                return "cancelled", None
            except (BrokenExecutor, RuntimeError):
                return "lost", None

    def _apply_outcome(self, index: int, outcome, outcomes, attempts,
                       budget: int, retry: List[int]) -> bool:
        """Fold one worker-side ("ok"/"error", value) pair into the state.

        Returns whether the task reached a final outcome (result or
        exhausted-budget failure) rather than being queued for a retry.
        """
        status, value = outcome
        if status == "ok":
            outcomes[index] = value
            return True
        if attempts[index] > budget:
            failure = TaskFailure.from_record(value)
            outcomes[index] = replace(failure, attempts=attempts[index])
            self.stats.task_failures += 1
            return True
        self.stats.task_retries += 1
        retry.append(index)
        return False

    def _kill_pool(self) -> None:
        """Tear down the current pool hard (crashed or hosting stragglers).

        Worker processes are terminated so hung tasks stop consuming CPU;
        queued futures are cancelled and their units retried by the caller.
        """
        with self._lock:
            pool, self._pool = self._pool, None
            self._pool_workers = 0
        if pool is None:
            return
        for process in list(getattr(pool, "_processes", {}).values()):
            try:
                process.terminate()
            except (OSError, AttributeError):
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # -- simulation with dedup + shared pool ----------------------------

    def simulate(self, gpu: GpuSpec, layer: LayerConfig,
                 config: Optional[SimulatorConfig] = None,
                 pass_kind: PassKind = "forward") -> SimResult:
        """Simulate one layer's pass, consulting the session memo and cache."""
        resolved = config if config is not None else self.simulator_config()
        return self.simulate_many([(gpu, layer, resolved, pass_kind)])[0]

    def simulate_many(self, units: Sequence[SimUnit],
                      jobs: Optional[int] = None,
                      cache_dir: Optional[str] = None,
                      timeout=_UNSET, retries: Optional[int] = None,
                      strict: bool = True) -> List[SimResult]:
        """Simulate many work units, deduped, over the session's pool.

        Results come back aligned with ``units``.  Units already present in
        the session memo cost nothing; duplicates within ``units`` — including
        same-structure layers under different names, and the same layer
        requested for the same training pass twice — run once.
        ``jobs``/``cache_dir``/``timeout``/``retries`` override the session
        policy for this call.

        Execution is fault tolerant: worker crashes relaunch the pool and
        retry the unfinished units, stragglers past ``timeout`` are cancelled.
        With ``strict=True`` (default) any unit that still fails raises
        :class:`SimulationError` *after* every successful unit is memoized;
        with ``strict=False`` failed slots hold the :class:`TaskFailure`
        record instead.
        """
        keys = [_unit_key(unit) for unit in units]
        with self._lock:
            fresh: List[Tuple] = []
            fresh_keys: List[Tuple] = []
            seen = set()
            for unit, key in zip(units, keys):
                if key in self._sim_results or key in seen:
                    self.stats.sim_memo_hits += 1
                else:
                    seen.add(key)
                    fresh.append(_normalize_unit(unit))
                    fresh_keys.append(key)
            if cache_dir is None:
                cache_dir = self.sim_cache_dir
        tasks = [(gpu, layer, config, cache_dir, pass_kind)
                 for gpu, layer, config, pass_kind in fresh]
        with obs_spans.trace("simulate", units=len(tasks),
                             memo_hits=len(units) - len(tasks)):
            results = self._run_tasks(_run_unit, tasks, jobs=jobs,
                                      timeout=timeout, retries=retries)
        failures: Dict[Tuple, TaskFailure] = {}
        with self._lock:
            for key, result in zip(fresh_keys, results):
                if isinstance(result, TaskFailure):
                    failures[key] = result
                else:
                    self._sim_results[key] = result
            self.stats.sim_tasks += len(tasks)
            if failures and strict:
                failed_units = [_describe_unit(unit)
                                for unit, key in zip(fresh, fresh_keys)
                                if key in failures]
                raise SimulationError(
                    list(failures.values()),
                    context=f"simulation of {', '.join(failed_units)}")
            return [self._sim_results[key] if key in self._sim_results
                    else failures[key] for key in keys]

    def map_tasks(self, func, tasks: Sequence, jobs: Optional[int] = None,
                  timeout=_UNSET, retries: Optional[int] = None,
                  return_failures: bool = False,
                  isolate: bool = False) -> List:
        """Map a picklable function over tasks on the session's process pool.

        The generic fan-out primitive the design-space exploration uses for
        per-point model evaluations; falls back to a serial loop when the
        effective job count (or the task count) is 1 and no timeout is set.
        ``isolate=True`` disables that fallback: tasks always run in worker
        processes, so a task that crashes its host process (fault injection,
        native-code faults) can never take the driver down with it.

        Fault tolerance follows the session policy (overridable per call):
        crashed workers relaunch the pool and the unfinished tasks retry with
        bounded exponential backoff; stragglers past ``timeout`` are
        cancelled.  A task that still has no result after the retry budget
        raises :class:`TaskError` — or, with ``return_failures=True``, yields
        its :class:`TaskFailure` record in the result list so callers can
        isolate failures per task.
        """
        tasks = list(tasks)
        with obs_spans.trace("map_tasks", tasks=len(tasks)):
            outcomes = self._run_tasks(func, tasks, jobs=jobs,
                                       timeout=timeout, retries=retries,
                                       isolate=isolate)
        if not return_failures:
            failures = [outcome for outcome in outcomes
                        if isinstance(outcome, TaskFailure)]
            if failures:
                raise TaskError(failures, context="map_tasks")
        return outcomes

    # -- design-space memo ----------------------------------------------

    def dse_lookup(self, key: str) -> Optional[Dict[str, object]]:
        """Memoized design-point metrics for a DSE store key, if any."""
        with self._lock:
            record = self._dse_memo.get(key)
            if record is not None:
                self.stats.dse_memo_hits += 1
            return record

    def dse_record(self, key: str, metrics: Dict[str, object]) -> None:
        """Memoize one design-point evaluation (first writer wins)."""
        with self._lock:
            self._dse_memo.setdefault(key, metrics)

    def _ensure_pool(self, workers: int) -> ProcessPoolExecutor:
        """The shared pool, grown (never shrunk) to at least ``workers``.

        A too-small pool is retired, not shut down: another thread may still
        be mapping work onto it, and retired pools drain at close().  Raises
        :class:`SessionClosedError` once the session is closed, so a thread
        racing ``close()`` gets a clear error instead of mapping work onto a
        shut-down executor.
        """
        with self._lock:
            self._check_open()
            if self._pool is not None and self._pool_workers < workers:
                self._retired_pools.append(self._pool)
                self._pool = None
            if self._pool is None:
                self._pool = ProcessPoolExecutor(max_workers=workers)
                self._pool_workers = workers
                self.stats.pool_launches += 1
            return self._pool

    # -- validation -----------------------------------------------------

    def validation_report(self, gpu: GpuSpec,
                          config: ValidationConfig = QUICK_VALIDATION
                          ) -> ValidationReport:
        """Model-vs-simulator records for one GPU, memoized on the session.

        The memo key ignores ``jobs``/``sim_cache_dir``/``timeout``/
        ``retries`` (execution policy does not change results), so
        experiments with equal populations share one run regardless of how
        it was parallelized.
        """
        key = (gpu, replace(config, jobs=None, sim_cache_dir=None,
                            timeout=None, retries=None))
        with self._lock:
            memoized = self._validation_memo.get(key)
        if memoized is not None:
            return memoized
        with obs_spans.trace("validation", gpu=gpu.name):
            return self._build_validation_report(gpu, config, key)

    def _build_validation_report(self, gpu: GpuSpec, config: ValidationConfig,
                                 key) -> ValidationReport:
        population = select_layers(config)
        sim_config = self.validation_sim_config(config)
        sims = self.simulate_many(
            [(gpu, layer, sim_config) for _, layer in population],
            jobs=config.jobs, cache_dir=config.sim_cache_dir,
            timeout=config.timeout if config.timeout is not None else _UNSET,
            retries=config.retries)
        model = DeltaModel(gpu)
        records = tuple(
            validate_layer(network, layer, gpu, model=model, sim_result=sim)
            for (network, layer), sim in zip(population, sims))
        report = ValidationReport(gpu=gpu, records=records)
        with self._lock:
            return self._validation_memo.setdefault(key, report)

    # -- request execution ----------------------------------------------

    def run(self, request) -> "Report":  # noqa: F821 - documented return type
        """Execute one typed request and return its :class:`Report`."""
        from .executor import execute
        return execute(self, request)

    def run_many(self, requests: Sequence) -> List["Report"]:  # noqa: F821
        """Execute a batch of requests, deduping shared simulation work.

        The executor first plans the union of simulation work units across
        the batch, runs them once over the session's shared process pool,
        then executes each request against the warm memo.  Failures are
        isolated per request: a request that raises yields a
        ``Report(kind="error")`` in its slot while every other request's
        report is produced normally.
        """
        from .executor import execute_many
        return execute_many(self, requests)

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Shut down the session's process pools (results stay memoized).

        After close the session executes no new work: fan-out entry points
        raise :class:`SessionClosedError`.
        """
        with self._lock:
            self._closed = True
            pools = [p for p in [self._pool, *self._retired_pools] if p]
            self._pool = None
            self._pool_workers = 0
            self._retired_pools = []
        for pool in pools:
            pool.shutdown()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Session(jobs={self.jobs}, sim_cache_dir={self.sim_cache_dir!r}, "
                f"vectorized={self.vectorized}, precision={self.precision}, "
                f"timeout={self.timeout}, retries={self.retries})")


# ----------------------------------------------------------------------
# Context-local active session
# ----------------------------------------------------------------------
_ACTIVE: ContextVar[Optional[Session]] = ContextVar("repro_active_session",
                                                    default=None)
_DEFAULT_LOCK = threading.Lock()
_DEFAULT: List[Optional[Session]] = [None]


def default_session() -> Session:
    """The lazily-created fallback session used when none is active."""
    with _DEFAULT_LOCK:
        if _DEFAULT[0] is None:
            _DEFAULT[0] = Session()
        return _DEFAULT[0]


def current_session() -> Session:
    """The context-active session (see :func:`use_session`) or the default."""
    session = _ACTIVE.get()
    return session if session is not None else default_session()


@contextmanager
def use_session(session: Session) -> Iterator[Session]:
    """Make ``session`` the active session for the enclosed context."""
    token = _ACTIVE.set(session)
    try:
        yield session
    finally:
        _ACTIVE.reset(token)


def configure_default_session(jobs: Optional[int] = None,
                              sim_cache_dir: Optional[str] = None,
                              vectorized: Optional[bool] = None,
                              precision: Optional[int] = None,
                              timeout: Optional[float] = None,
                              retries: Optional[int] = None) -> Session:
    """Adjust the default session's policy; unset arguments stay unchanged."""
    session = default_session()
    if jobs is not None:
        session.jobs = jobs
    if sim_cache_dir is not None:
        session.sim_cache_dir = sim_cache_dir
    if vectorized is not None:
        session.vectorized = bool(vectorized)
    if precision is not None:
        session.precision = precision
    if timeout is not None:
        session.timeout = timeout
    if retries is not None:
        session.retries = retries
    return session


def reset_default_session() -> None:
    """Drop the default session, releasing its pool and memoized results."""
    with _DEFAULT_LOCK:
        session, _DEFAULT[0] = _DEFAULT[0], None
    if session is not None:
        session.close()
