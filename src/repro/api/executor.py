"""Execute typed requests against a session.

Three responsibilities live here:

* **adaptation** — mapping the uniform override fields of an
  :class:`ExperimentRequest` (gpus/networks/batch/scale) onto each registered
  experiment's ``run`` signature, rejecting overrides an experiment cannot
  honor instead of silently ignoring them;
* **planning** — computing the simulation work units (gpu, layer, simulator
  config) a request will need, so :func:`execute_many` can dedupe identical
  units across a batch and fan the union out over the session's shared
  process pool exactly once; and
* **execution** — running each request and packaging the outcome as a
  :class:`repro.api.Report`.
"""

from __future__ import annotations

import inspect
import time
from collections import Counter
from dataclasses import replace
from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence

from ..analysis.validation import (MEMORY_LEVELS, QUICK_VALIDATION,
                                   ValidationConfig, select_layers)
from ..core.model import DeltaModel
from ..core.training import estimate_training_step
from ..experiments.registry import ExperimentSpec, get_experiment_spec
from ..gpu.devices import get_device
from ..networks.registry import get_network
from ..obs import spans as obs_spans
from ..resilience import SessionClosedError
from .progress import emit_progress
from .report import Report
from .requests import (DseRequest, EstimateRequest, ExperimentRequest,
                       Request, SweepRequest, ValidateRequest)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .session import Session, SimUnit


# ----------------------------------------------------------------------
# Single-request execution
# ----------------------------------------------------------------------

def execute(session: "Session", request: Request) -> Report:
    """Run one request under ``session`` and return its report.

    Every request runs under a root span (a private shallow tracer is
    installed when none is active, so this is always on and cheap); the
    resulting per-phase wall-clock breakdown is attached as
    ``report.meta["timing"]`` and observed in the session's latency
    histogram.  Compare reports with :meth:`Report.content_dict` /
    ``content_json`` to ignore this volatile block.
    """
    kind = type(request).__name__
    with obs_spans.request_trace(f"request:{kind}", request=kind) as rt:
        if isinstance(request, EstimateRequest):
            report = _run_estimate(session, request)
        elif isinstance(request, SweepRequest):
            with obs_spans.trace("model.sweep",
                                 combinations=(len(request.gpus)
                                               * len(request.networks)
                                               * len(request.batches))):
                report = _run_sweep(session, request)
        elif isinstance(request, ValidateRequest):
            report = _run_validate(session, request)
        elif isinstance(request, ExperimentRequest):
            report = _run_experiment(session, request)
        elif isinstance(request, DseRequest):
            report = _run_dse(session, request)
        else:
            raise TypeError(
                f"unsupported request type {type(request).__name__}")
        session.stats.requests_run += 1
    timing = rt.timing()
    report.meta["timing"] = timing
    session.stats.observe_request(kind, timing["total_ms"] / 1e3)
    return report


def execute_many(session: "Session", requests: Sequence[Request]) -> List[Report]:
    """Run a batch of requests, deduping shared simulation work units.

    The union of every request's planned units runs first — once per unique
    unit, across the session's shared process pool — so a sweep over many
    experiments re-simulates nothing that any other request in the batch
    (or an earlier batch on the same session) already covers.

    Failures are isolated per request: a request that raises — at planning,
    simulation or execution time — yields a ``Report(kind="error")`` in its
    slot while every other request's report is produced normally.  (Asking a
    closed session still raises :class:`SessionClosedError`: that is caller
    misuse, not a request failure.)
    """
    requests = list(requests)
    with obs_spans.trace("plan", requests=len(requests)):
        units = plan_simulation_units(session, requests)
    if units:
        # strict=False: every unit that can complete is memoized; a failing
        # unit surfaces when (only) the request that needs it executes.
        session.simulate_many(units, strict=False)
    reports: List[Report] = []
    for request in requests:
        started = time.perf_counter()
        try:
            reports.append(execute(session, request))
        except SessionClosedError:
            raise
        except Exception as exc:
            report = Report.from_error(
                exc, request=request, meta=_base_meta(session, request))
            report.meta["timing"] = obs_spans.elapsed_timing(started)
            reports.append(report)
    return reports


def _base_meta(session: "Session", request: Request) -> Dict[str, object]:
    meta: Dict[str, object] = {
        "request": type(request).__name__,
        "jobs": session.jobs,
        "vectorized": session.vectorized,
        "precision": session.precision,
    }
    if session.sim_cache_dir:
        meta["sim_cache_dir"] = str(session.sim_cache_dir)
    return meta


# ----------------------------------------------------------------------
# Estimate / sweep (pure model, no simulation)
# ----------------------------------------------------------------------

def _estimate_rows(model: DeltaModel, layers,
                   pass_kinds=("forward",)) -> List[Dict[str, object]]:
    single_forward = tuple(pass_kinds) == ("forward",)
    rows = []
    for layer in layers:
        for pass_kind in pass_kinds:
            estimate = model.estimate_pass(layer, pass_kind)
            row: Dict[str, object] = {"layer": layer.name}
            if not single_forward:
                row["pass"] = pass_kind
            row.update({
                "time_ms": estimate.time_seconds * 1e3,
                "bottleneck": estimate.bottleneck.value,
                "TFLOP/s": estimate.throughput_tflops,
                "L1_GB": estimate.traffic.l1_bytes / 1e9,
                "L2_GB": estimate.traffic.l2_bytes / 1e9,
                "DRAM_GB": estimate.traffic.dram_bytes / 1e9,
            })
            rows.append(row)
    return rows


def _run_estimate(session: "Session", request: EstimateRequest) -> Report:
    gpu = get_device(request.gpu)
    network = get_network(request.network, batch=request.batch,
                          paper_subset=request.paper_subset)
    layers = (network.unique_layers() if request.unique
              else network.gemm_layers())
    model = DeltaModel(gpu)
    pass_kinds = request.pass_kinds
    with obs_spans.trace("model.estimate", layers=len(layers),
                         passes=request.passes):
        if request.passes == "training":
            step = estimate_training_step(model, layers, batch=request.batch,
                                          passes=pass_kinds,
                                          name=network.name)
            rows = step.rows()
            bottlenecks = Counter(row["bottleneck"] for row in rows)
            summary = step.summary()
            summary["dominant bottleneck"] = (bottlenecks.most_common(1)[0][0]
                                              if bottlenecks else "n/a")
            title = (f"{network.name} training step on {gpu.name} "
                     f"(batch {request.batch})")
        else:
            rows = _estimate_rows(model, layers, pass_kinds)
            total_ms = sum(row["time_ms"] for row in rows)
            bottlenecks = Counter(row["bottleneck"] for row in rows)
            summary = {
                "total conv time (ms)": total_ms,
                "layers": len(rows),
                "dominant bottleneck": (bottlenecks.most_common(1)[0][0]
                                        if bottlenecks else "n/a"),
            }
            title = f"{network.name} on {gpu.name} (batch {request.batch})"
            if request.passes != "forward":
                title = (f"{network.name} {request.passes} pass on "
                         f"{gpu.name} (batch {request.batch})")
    meta = _base_meta(session, request)
    meta.update({"network": network.name, "gpu": gpu.name,
                 "batch": request.batch, "unique": request.unique,
                 "paper_subset": request.paper_subset,
                 "passes": request.passes})
    return Report(kind="estimate", title=title,
                  rows=tuple(rows), summary=summary, meta=meta)


def _run_sweep(session: "Session", request: SweepRequest) -> Report:
    rows: List[Dict[str, object]] = []
    series: Dict[str, list] = {}
    pass_kinds = request.pass_kinds
    scope = ("conv" if request.passes == "forward"
             else f"{request.passes} conv")
    combinations = (len(request.gpus) * len(request.networks)
                    * len(request.batches))
    for gpu_name in request.gpus:
        gpu = get_device(gpu_name)
        model = DeltaModel(gpu)
        for network_name in request.networks:
            for batch in request.batches:
                network = get_network(network_name, batch=batch,
                                      paper_subset=request.paper_subset)
                layers = (network.unique_layers() if request.unique
                          else network.gemm_layers())
                if not layers:
                    raise ValueError(
                        f"network {network.name!r} has no GEMM layers to "
                        f"sweep at batch {batch}"
                        + (" in the paper subset" if request.paper_subset
                           else ""))
                layer_rows = _estimate_rows(model, layers, pass_kinds)
                total_ms = sum(row["time_ms"] for row in layer_rows)
                bottlenecks = Counter(row["bottleneck"] for row in layer_rows)
                row: Dict[str, object] = {
                    "network": network.name,
                    "gpu": gpu.name,
                    "batch": batch,
                }
                if request.passes != "forward":
                    row["passes"] = request.passes
                row.update({
                    "layers": len(layers),
                    "total_time_ms": total_ms,
                    "dram_gb": sum(r["DRAM_GB"] for r in layer_rows),
                    "dominant_bottleneck": bottlenecks.most_common(1)[0][0],
                })
                rows.append(row)
                series.setdefault(
                    f"{network.name} {scope} time on {gpu.name} (ms)", []
                ).append((batch, total_ms))
                emit_progress(stage="sweep", done=len(rows),
                              total=combinations, network=network.name,
                              gpu=gpu.name, batch=batch)
    fastest = min(rows, key=lambda row: row["total_time_ms"])
    summary = {
        "combinations": len(rows),
        "networks": ", ".join(request.networks),
        "gpus": ", ".join(request.gpus),
        "batches": ", ".join(str(batch) for batch in request.batches),
        "passes": request.passes,
        "fastest combination": (f"{fastest['network']}/{fastest['gpu']}"
                                f"/b{fastest['batch']}"),
    }
    meta = _base_meta(session, request)
    meta["passes"] = request.passes
    return Report(kind="sweep",
                  title=(f"model sweep: {len(request.networks)} networks x "
                         f"{len(request.gpus)} GPUs x "
                         f"{len(request.batches)} batch sizes"
                         + ("" if request.passes == "forward"
                            else f" ({request.passes} passes)")),
                  rows=tuple(rows), series={k: tuple(v) for k, v in series.items()},
                  summary=summary, meta=meta)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------

def _validation_config(request: ValidateRequest) -> ValidationConfig:
    return ValidationConfig(batch=request.batch, max_ctas=request.max_ctas,
                            layers_per_network=request.layers_per_network,
                            networks=request.networks,
                            timeout=request.timeout, retries=request.retries)


def _run_validate(session: "Session", request: ValidateRequest) -> Report:
    gpu = get_device(request.gpu)
    config = _validation_config(request)
    validation = session.validation_report(gpu, config)
    summary: Dict[str, object] = {}
    for level in MEMORY_LEVELS:
        stats = validation.traffic_summary(level)
        summary[f"{level} traffic GMAE"] = stats.gmae
        summary[f"{level} traffic mean ratio"] = stats.mean_ratio
    time_stats = validation.time_summary()
    summary["time GMAE"] = time_stats.gmae
    summary["time mean ratio"] = time_stats.mean_ratio
    meta = _base_meta(session, request)
    meta.update({"gpu": gpu.name, "batch": config.batch,
                 "max_ctas": config.max_ctas,
                 "layers_per_network": config.layers_per_network,
                 "networks": list(config.networks) if config.networks else None})
    title = (f"model-vs-simulator validation on {gpu.name} "
             f"(batch {config.batch}, max CTAs {config.max_ctas}, "
             f"{len(validation.records)} layers)")
    return Report(kind="validation", title=title,
                  rows=tuple(validation.rows()), summary=summary, meta=meta)


# ----------------------------------------------------------------------
# Design-space exploration
# ----------------------------------------------------------------------

def _run_dse(session: "Session", request: DseRequest) -> Report:
    from ..analysis.frontier import resolve_objectives, scale_next_rows
    from ..dse.drivers import build_driver
    from ..dse.runner import confirm_frontier, explore
    from ..dse.store import ResultStore

    base_gpu = get_device(request.gpu)
    driver = build_driver(request.driver, budget=request.budget,
                          seed=request.seed)
    objectives = resolve_objectives(request.objectives)
    store = ResultStore(request.store_path) if request.store_path else None
    try:
        exploration = explore(request.space, driver=driver, base_gpu=base_gpu,
                              objectives=objectives, store=store,
                              session=session, unique=request.unique,
                              timeout=request.timeout,
                              retries=request.retries,
                              eval_mode=request.eval_mode)
    finally:
        if store is not None:
            store.close()
    if request.confirm_top:
        exploration = confirm_frontier(exploration, session,
                                       top=request.confirm_top)

    rows = exploration.frontier_rows()
    stats = exploration.stats
    summary: Dict[str, object] = {
        "points planned": stats.planned,
        "points evaluated": stats.evaluated,
        "memo hits": stats.memo_hits,
        "store hits": stats.store_hits,
        "frontier size": len(exploration.frontier),
    }
    if stats.proxy_evaluations:
        summary["proxy evaluations"] = stats.proxy_evaluations
    if exploration.failures:
        summary["failed points"] = len(exploration.failures)
        if stats.skipped_failures:
            summary["failures skipped on resume"] = stats.skipped_failures
    for objective in objectives:
        best = None
        for result in exploration.frontier_results():
            value = float(result.metrics[objective.metric])
            if best is None or objective.oriented(value) > objective.oriented(best[1]):
                best = (result.point.name, value)
        if best is not None:
            summary[f"best {objective.name}"] = f"{best[0]} ({best[1]:.4g})"
    series = {
        "frontier: cost vs speedup": [
            (row["cost"], row["speedup"]) for row in rows if "speedup" in row
        ],
    }
    recommendations = scale_next_rows(
        [result.metrics for result in exploration.frontier_results()])
    children: tuple = ()
    if recommendations:
        children = (Report(kind="dse-recommendations",
                           title="what to scale next (time-weighted "
                                 "bottleneck shares across the frontier)",
                           rows=tuple(recommendations)),)
    if exploration.failures:
        children = children + (Report(
            kind="dse-failures",
            title=(f"{len(exploration.failures)} design point(s) failed "
                   "(error-isolated; recorded in the store and skipped on "
                   "resume)"),
            rows=tuple(exploration.failure_rows())),)
    meta = _base_meta(session, request)
    meta.update({
        "gpu": base_gpu.name,
        "driver": request.driver,
        "budget": request.budget,
        "seed": request.seed,
        "objectives": list(request.objectives),
        "unique": request.unique,
        "space_size": len(request.space),
        "eval_mode": request.eval_mode,
    })
    if request.store_path:
        meta["store_path"] = str(request.store_path)
    title = (f"design-space exploration on {base_gpu.name}: "
             f"{stats.planned} points ({request.driver} driver), "
             f"{len(exploration.frontier)}-point Pareto frontier over "
             f"{'/'.join(request.objectives)}")
    return Report(kind="dse", title=title, rows=tuple(rows),
                  series={name: tuple(pairs) for name, pairs in series.items()
                          if pairs},
                  summary=summary, meta=meta, children=children)


# ----------------------------------------------------------------------
# Experiments: signature adaptation + planning
# ----------------------------------------------------------------------

def _single(spec: ExperimentSpec, field: str, values: Sequence[str]) -> str:
    if len(values) != 1:
        raise ValueError(
            f"experiment {spec.experiment_id!r} accepts a single {field[:-1]} "
            f"override, got {list(values)}")
    return values[0]


def experiment_kwargs(spec: ExperimentSpec, request: ExperimentRequest,
                      session: "Session") -> Dict[str, object]:
    """Map a request's override fields onto the runner's signature."""
    params = inspect.signature(spec.runner).parameters
    kwargs: Dict[str, object] = {}
    for key, value in request.options.items():
        if key not in params:
            raise TypeError(
                f"experiment {spec.experiment_id!r} does not accept option "
                f"{key!r}; its run() parameters are {sorted(params)}")
        kwargs[key] = value
    if "session" in params:
        kwargs.setdefault("session", session)

    config_overrides: Dict[str, object] = {}
    if request.gpus:
        specs = [get_device(name) for name in request.gpus]
        if "devices" in params:
            kwargs.setdefault("devices", specs)
        elif "gpu" in params:
            kwargs.setdefault("gpu", get_device(_single(spec, "gpus", request.gpus)))
        elif "baseline" in params:
            kwargs.setdefault("baseline",
                              get_device(_single(spec, "gpus", request.gpus)))
        else:
            raise ValueError(
                f"experiment {spec.experiment_id!r} does not support GPU overrides")
        if "baseline_gpu" in params:
            kwargs.setdefault("baseline_gpu", specs[0])
    if request.networks:
        if "network" in params:
            kwargs.setdefault("network", _single(spec, "networks", request.networks))
        elif "config" in params:
            config_overrides["networks"] = request.networks
        else:
            raise ValueError(
                f"experiment {spec.experiment_id!r} does not support network "
                f"overrides")
    if request.batch is not None:
        if "batch" in params:
            kwargs.setdefault("batch", request.batch)
        elif "config" in params:
            config_overrides["batch"] = request.batch
        else:
            raise ValueError(
                f"experiment {spec.experiment_id!r} does not support batch "
                f"overrides")
    if request.max_ctas is not None:
        if "max_ctas" in params:
            kwargs.setdefault("max_ctas", request.max_ctas)
        elif "config" in params:
            config_overrides["max_ctas"] = request.max_ctas
        else:
            raise ValueError(
                f"experiment {spec.experiment_id!r} does not support max_ctas "
                f"overrides")
    if request.layers_per_network is not None:
        if "config" in params:
            config_overrides["layers_per_network"] = request.layers_per_network
        else:
            raise ValueError(
                f"experiment {spec.experiment_id!r} does not support "
                f"layers_per_network overrides")
    if request.timeout is not None:
        if "config" in params:
            config_overrides["timeout"] = request.timeout
        else:
            raise ValueError(
                f"experiment {spec.experiment_id!r} does not support timeout "
                f"overrides (set the timeout on the Session instead)")
    if request.retries is not None:
        if "config" in params:
            config_overrides["retries"] = request.retries
        else:
            raise ValueError(
                f"experiment {spec.experiment_id!r} does not support retries "
                f"overrides (set the retry budget on the Session instead)")
    if config_overrides:
        base = kwargs.get("config", QUICK_VALIDATION)
        kwargs["config"] = replace(base, **config_overrides)
    return kwargs


def _run_experiment(session: "Session", request: ExperimentRequest) -> Report:
    spec = get_experiment_spec(request.experiment)
    kwargs = experiment_kwargs(spec, request, session)
    result = spec.runner(**kwargs)
    meta = _base_meta(session, request)
    meta["experiment_id"] = spec.experiment_id
    overrides = {key: value for key, value in (
        ("gpus", list(request.gpus) if request.gpus else None),
        ("networks", list(request.networks) if request.networks else None),
        ("batch", request.batch),
        ("max_ctas", request.max_ctas),
        ("layers_per_network", request.layers_per_network),
    ) if value is not None}
    if overrides:
        meta["overrides"] = overrides
    return Report.from_experiment(result, meta=meta)


def plan_simulation_units(session: "Session",
                          requests: Iterable[Request]) -> List["SimUnit"]:
    """The deduped union of simulation work units across a request batch.

    Only requests backed by the shared validation harness are plannable;
    anything else simply runs its (possibly simulation-free) work inline.
    A request whose planning raises (unknown network, bad override, ...)
    contributes no units — the error resurfaces, isolated, when that request
    executes.
    """
    units: List["SimUnit"] = []
    seen = set()
    for request in requests:
        try:
            for unit in _request_units(session, request):
                if unit not in seen:
                    seen.add(unit)
                    units.append(unit)
        except Exception:
            continue
    return units


def _request_units(session: "Session", request: Request) -> Iterator["SimUnit"]:
    if isinstance(request, ValidateRequest):
        gpus = [get_device(request.gpu)]
        config = _validation_config(request)
    elif isinstance(request, ExperimentRequest):
        spec = get_experiment_spec(request.experiment)
        if not spec.uses_validation:
            return
        kwargs = experiment_kwargs(spec, request, session)
        config = kwargs.get("config", QUICK_VALIDATION)
        # derive the GPUs from the fully adapted kwargs so overrides passed
        # through ``options`` (not just request.gpus) plan the right work.
        if "devices" in kwargs:
            gpus = list(kwargs["devices"])
        elif "gpu" in kwargs:
            gpus = [kwargs["gpu"]]
        elif "baseline" in kwargs:
            gpus = [kwargs["baseline"]]
        else:
            gpus = [get_device(name) for name in spec.default_gpus]
        baseline_gpu = kwargs.get("baseline_gpu")
        if baseline_gpu is not None and baseline_gpu not in gpus:
            gpus.append(baseline_gpu)
    else:
        return
    sim_config = session.validation_sim_config(config)
    population = select_layers(config)
    for gpu in gpus:
        for _, layer in population:
            yield (gpu, layer, sim_config)
