"""Shared failure types and worker-side helpers of the resilience layer.

Everything fan-out execution needs to *describe* a failure lives here, in a
dependency-free module importable from any layer (``repro.api.session``, the
DSE runner, the CLI) without creating import cycles:

* :class:`TaskFailure` — the structured record of one work unit that did not
  produce a result: what kind of failure (``error`` / ``timeout`` /
  ``crash``), the exception type and message, how many attempts were made,
  and the worker-side traceback when one exists.  Failure records serialize
  to plain dicts (:meth:`TaskFailure.as_record`) so they can live in JSONL
  stores and JSON reports.
* :func:`run_chunk` — the process-pool worker wrapper that executes a chunk
  of tasks and converts per-task exceptions into serializable failure
  payloads *inside the worker*, so an ordinary task error never breaks the
  pool round it rides on (only a genuine worker crash does).
* The exception family the execution layer raises: ``SessionClosedError``,
  ``TaskError`` and ``SimulationError``.

See DESIGN.md, "Failure semantics", for how the pieces compose.
"""

from __future__ import annotations

import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

#: failure categories a work unit can end in.
FAILURE_KINDS = ("error", "timeout", "crash")

#: exponential backoff between retry rounds is capped at this many seconds.
BACKOFF_CAP_SECONDS = 2.0


def backoff_delay(round_index: int, base: float,
                  cap: float = BACKOFF_CAP_SECONDS) -> float:
    """Bounded exponential backoff before retry round ``round_index`` (>= 1)."""
    if base <= 0 or round_index <= 0:
        return 0.0
    return min(base * (2.0 ** (round_index - 1)), cap)


@dataclass(frozen=True)
class TaskFailure:
    """Structured record of one work unit that produced no result."""

    #: "error" (the task raised), "timeout" (straggler cancelled) or
    #: "crash" (worker process died; retry budget exhausted).
    kind: str
    #: exception class name ("TimeoutError" for timeouts, the pool's broken-
    #: executor type for crashes).
    error_type: str
    #: human-readable description of what went wrong.
    message: str
    #: execution attempts made before giving up (>= 1).
    attempts: int = 1
    #: worker-side formatted traceback, when the task raised.
    traceback: Optional[str] = None
    #: cause chain, outermost first ("Type: message" per link).
    cause: Tuple[str, ...] = field(default=())

    def as_record(self) -> Dict[str, object]:
        """Plain-data payload for JSONL stores and JSON reports."""
        record: Dict[str, object] = {
            "kind": self.kind,
            "error_type": self.error_type,
            "message": self.message,
            "attempts": self.attempts,
        }
        if self.traceback is not None:
            record["traceback"] = self.traceback
        if self.cause:
            record["cause"] = list(self.cause)
        return record

    @classmethod
    def from_record(cls, record: Dict[str, object]) -> "TaskFailure":
        return cls(kind=str(record.get("kind", "error")),
                   error_type=str(record.get("error_type", "Exception")),
                   message=str(record.get("message", "")),
                   attempts=int(record.get("attempts", 1)),
                   traceback=record.get("traceback"),
                   cause=tuple(record.get("cause", ())))

    @classmethod
    def from_exception(cls, exc: BaseException, *, kind: str = "error",
                       attempts: int = 1) -> "TaskFailure":
        return cls(kind=kind, error_type=type(exc).__name__, message=str(exc),
                   attempts=attempts, traceback=format_traceback(exc),
                   cause=cause_chain(exc))

    def __str__(self) -> str:
        return f"[{self.kind}] {self.error_type}: {self.message}"


def cause_chain(exc: BaseException, limit: int = 8) -> Tuple[str, ...]:
    """The ``__cause__``/``__context__`` chain as "Type: message" strings."""
    chain: List[str] = []
    seen = set()
    current: Optional[BaseException] = exc
    while current is not None and id(current) not in seen and len(chain) < limit:
        seen.add(id(current))
        chain.append(f"{type(current).__name__}: {current}")
        current = current.__cause__ or current.__context__
    return tuple(chain)


def format_traceback(exc: BaseException) -> str:
    return "".join(traceback.format_exception(type(exc), exc,
                                              exc.__traceback__))


# ----------------------------------------------------------------------
# Worker-side chunk execution
# ----------------------------------------------------------------------

def run_chunk(payload: Tuple) -> List[Tuple[str, object]]:
    """Process-pool worker: run ``func`` over a chunk of tasks.

    ``payload`` is ``(func, tasks)`` — or ``(func, tasks, capture)`` to
    carry telemetry home — with ``func`` a picklable module-level callable.
    Returns one ``("ok", result)`` or ``("error", failure_record)`` pair per
    task: ordinary task exceptions are captured *inside* the worker (with
    their traceback) instead of poisoning the whole chunk, so the dispatcher
    can retry or report each task individually.  Only a worker crash or hang
    escapes this function.

    With ``capture`` truthy, a trailing ``("telemetry", data)`` entry is
    appended after the per-task outcomes: ``data["counters"]`` holds the
    context-local :func:`repro.obs.metrics.count` totals the tasks bumped
    (sim-cache hits/misses in particular), and — when ``capture`` is the
    string ``"spans"`` — ``data["spans"]`` holds this process's serialized
    spans, one ``task:<func>`` root per task, for the coordinator to adopt
    and re-parent into its own trace.
    """
    func, tasks = payload[0], payload[1]
    capture = payload[2] if len(payload) > 2 else False
    outcomes: List[Tuple[str, object]] = []

    def one(task) -> None:
        try:
            outcomes.append(("ok", func(task)))
        except Exception as exc:
            outcomes.append(
                ("error", TaskFailure.from_exception(exc).as_record()))

    if not capture:
        for task in tasks:
            one(task)
        return outcomes

    from .obs import metrics as obs_metrics
    from .obs import spans as obs_spans

    counters: dict = {}
    tracer = obs_spans.Tracer(deep=True) if capture == "spans" else None
    task_name = f"task:{getattr(func, '__name__', 'task')}"
    with obs_metrics.count_into(counters):
        if tracer is None:
            for task in tasks:
                one(task)
        else:
            with obs_spans.install_tracer(tracer):
                for task in tasks:
                    with obs_spans.trace(task_name):
                        one(task)
    telemetry: dict = {"counters": counters}
    if tracer is not None:
        telemetry["spans"] = [span.as_dict() for span in tracer.spans]
    outcomes.append(("telemetry", telemetry))
    return outcomes


# ----------------------------------------------------------------------
# Exceptions raised by the execution layer
# ----------------------------------------------------------------------

class SessionClosedError(RuntimeError):
    """A closed Session was asked to execute work."""


class TaskError(RuntimeError):
    """One or more work units failed after exhausting the retry budget.

    ``failures`` holds the per-unit :class:`TaskFailure` records (index-
    aligned metadata lives with the caller that mapped the tasks).
    """

    def __init__(self, failures: Sequence[TaskFailure],
                 context: str = "task execution") -> None:
        self.failures: Tuple[TaskFailure, ...] = tuple(failures)
        first = self.failures[0] if self.failures else None
        detail = f": {first}" if first is not None else ""
        super().__init__(
            f"{context} failed for {len(self.failures)} work unit(s){detail}")


class SimulationError(TaskError):
    """A simulation work unit failed after exhausting the retry budget."""
