"""Logging for the CLI and server: stderr, level from ``REPRO_LOG``.

Diagnostics go through a shared ``repro`` logger hierarchy instead of bare
``print`` so they can be filtered and redirected without touching stdout —
the CLI's report output and the server's parseable
``listening on http://host:port`` ready line stay on stdout untouched.

Set ``REPRO_LOG=debug|info|warning|error`` (default ``warning``) to choose
the stderr verbosity; ``repro serve`` ends with an ``info``-level shutdown
summary, so ``REPRO_LOG=info repro serve ...`` shows it.
"""

from __future__ import annotations

import logging
import os
import sys
from typing import Optional

_CONFIGURED = False


def _resolve_level(value: Optional[str]) -> int:
    if not value:
        return logging.WARNING
    text = value.strip().upper()
    if text.isdigit():
        return int(text)
    return getattr(logging, text, logging.WARNING)


def get_logger(name: str = "repro") -> logging.Logger:
    """The ``repro`` logger (or a child), configured once per process.

    The root ``repro`` logger gets one stderr handler and the level named
    by the ``REPRO_LOG`` environment variable; propagation to the Python
    root logger is disabled so embedding applications keep control of
    their own handlers.
    """
    global _CONFIGURED
    root = logging.getLogger("repro")
    if not _CONFIGURED:
        root.setLevel(_resolve_level(os.environ.get("REPRO_LOG")))
        if not root.handlers:
            handler = logging.StreamHandler(sys.stderr)
            handler.setFormatter(logging.Formatter(
                "%(asctime)s %(levelname)s %(name)s: %(message)s"))
            root.addHandler(handler)
        root.propagate = False
        _CONFIGURED = True
    if name == "repro":
        return root
    return logging.getLogger(name if name.startswith("repro.")
                             else f"repro.{name}")
