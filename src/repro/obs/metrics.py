"""Typed metrics: counters, gauges, histograms, and Prometheus exposition.

A :class:`MetricsRegistry` holds named metric instances (optionally with a
fixed label set per instance) and renders them in the Prometheus text
format; :func:`render_prometheus` merges several registries into one
exposition, which is what the server's ``GET /metrics`` route serves.

Metric names follow ``repro_<area>_<name>`` (see DESIGN.md): the four
public stats classes — ``SessionStats``, ``CacheStats``, ``CoalesceStats``,
``ExplorationStats`` — are attribute-compatible :class:`StatsView`
subclasses whose counters live in a per-instance registry, so the existing
``stats.field += 1`` call sites and per-session test assertions keep
working while the same numbers become scrapeable.

:func:`count` is the cross-process half: hot paths (the sim disk cache in
particular) bump a *context-local* counter sink that costs one contextvar
lookup when no sink is installed; :func:`repro.resilience.run_chunk`
installs a sink around each chunk and ships the totals back to the
coordinator, which folds them into ``SessionStats``.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

#: default latency buckets, in seconds (Prometheus convention).
DEFAULT_BUCKETS = (0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
                   1.0, 2.5, 5.0, 10.0)

Labels = Tuple[Tuple[str, str], ...]
Sample = Tuple[str, Labels, float]


def _freeze_labels(labels: Optional[Dict[str, str]]) -> Labels:
    return tuple(sorted((str(k), str(v))
                        for k, v in (labels or {}).items()))


class Counter:
    """A monotonically increasing value."""

    kind = "counter"
    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "",
                 labels: Labels = ()) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a gauge")
        self.value += amount

    def samples(self) -> List[Sample]:
        return [(self.name, self.labels, self.value)]


class Gauge:
    """A value that can go up and down, or track a callback."""

    kind = "gauge"
    __slots__ = ("name", "help", "labels", "value", "fn")

    def __init__(self, name: str, help: str = "", labels: Labels = (),
                 fn: Optional[Callable[[], float]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.value = 0
        self.fn = fn

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount

    def samples(self) -> List[Sample]:
        value = self.fn() if self.fn is not None else self.value
        return [(self.name, self.labels, value)]


class Histogram:
    """Cumulative-bucket histogram of observed values (e.g. seconds)."""

    kind = "histogram"
    __slots__ = ("name", "help", "labels", "buckets", "counts",
                 "sum", "count")

    def __init__(self, name: str, help: str = "", labels: Labels = (),
                 buckets: Optional[Tuple[float, ...]] = None) -> None:
        self.name = name
        self.help = help
        self.labels = labels
        self.buckets = tuple(sorted(buckets if buckets is not None
                                    else DEFAULT_BUCKETS))
        self.counts = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.sum += value
        self.count += 1
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                self.counts[index] += 1

    def samples(self) -> List[Sample]:
        out: List[Sample] = []
        for bound, bucket_count in zip(self.buckets, self.counts):
            labels = self.labels + (("le", _format_value(bound)),)
            out.append((f"{self.name}_bucket", labels, bucket_count))
        out.append((f"{self.name}_bucket",
                    self.labels + (("le", "+Inf"),), self.count))
        out.append((f"{self.name}_sum", self.labels, self.sum))
        out.append((f"{self.name}_count", self.labels, self.count))
        return out


class MetricsRegistry:
    """Get-or-create store of metric instances keyed by (name, labels)."""

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, Labels], object] = {}

    def _get(self, cls, name: str, help: str,
             labels: Optional[Dict[str, str]], **kwargs):
        key = (name, _freeze_labels(labels))
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, help=help, labels=key[1], **kwargs)
            self._metrics[key] = metric
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help: str = "",
                labels: Optional[Dict[str, str]] = None) -> Counter:
        return self._get(Counter, name, help, labels)

    def gauge(self, name: str, help: str = "",
              labels: Optional[Dict[str, str]] = None,
              fn: Optional[Callable[[], float]] = None) -> Gauge:
        gauge = self._get(Gauge, name, help, labels)
        if fn is not None:
            gauge.fn = fn
        return gauge

    def histogram(self, name: str, help: str = "",
                  labels: Optional[Dict[str, str]] = None,
                  buckets: Optional[Tuple[float, ...]] = None) -> Histogram:
        return self._get(Histogram, name, help, labels, buckets=buckets)

    def collect(self) -> List[object]:
        return list(self._metrics.values())


def _format_value(value) -> str:
    if isinstance(value, float) and value == int(value) \
            and abs(value) < 1e15:
        return str(int(value))
    return repr(value) if isinstance(value, float) else str(value)


def _escape_label(value: str) -> str:
    return (value.replace("\\", r"\\").replace("\n", r"\n")
            .replace('"', r'\"'))


def render_prometheus(registries: Iterable[MetricsRegistry]) -> str:
    """Merge registries into one Prometheus text-format exposition.

    ``# HELP`` / ``# TYPE`` headers are emitted once per metric name even
    when instances of the same name (label children, or the same stats
    class on several objects) live in different registries; conflicting
    kinds under one name raise :class:`ValueError`.
    """
    by_name: Dict[str, List[object]] = {}
    order: List[str] = []
    for registry in registries:
        for metric in registry.collect():
            group = by_name.get(metric.name)
            if group is None:
                by_name[metric.name] = [metric]
                order.append(metric.name)
            else:
                if group[0].kind != metric.kind:
                    raise ValueError(
                        f"metric {metric.name!r} registered as both "
                        f"{group[0].kind} and {metric.kind}")
                group.append(metric)
    lines: List[str] = []
    for name in order:
        group = by_name[name]
        help_text = next((m.help for m in group if m.help), "")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {group[0].kind}")
        for metric in group:
            for sample_name, labels, value in metric.samples():
                if labels:
                    rendered = ",".join(
                        f'{key}="{_escape_label(str(val))}"'
                        for key, val in labels)
                    lines.append(f"{sample_name}{{{rendered}}} "
                                 f"{_format_value(value)}")
                else:
                    lines.append(f"{sample_name} {_format_value(value)}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Context-local counter sink (cross-process hot-path counting)
# ----------------------------------------------------------------------

_COUNTS: ContextVar[Optional[Dict[str, int]]] = ContextVar(
    "repro_counter_sink", default=None)


def count(name: str, amount: int = 1) -> None:
    """Bump a context-local counter; a no-op when no sink is installed.

    Hot paths call this unconditionally — the disabled cost is one
    contextvar lookup.  The session (serial path) and the pool workers
    (:func:`repro.resilience.run_chunk`) install sinks and fold the totals
    into ``SessionStats`` fields of the same name.
    """
    sink = _COUNTS.get()
    if sink is not None:
        sink[name] = sink.get(name, 0) + amount


@contextmanager
def count_into(sink: Dict[str, int]) -> Iterator[Dict[str, int]]:
    """Route :func:`count` calls in this context into ``sink``."""
    token = _COUNTS.set(sink)
    try:
        yield sink
    finally:
        _COUNTS.reset(token)


# ----------------------------------------------------------------------
# Registry-backed stats views
# ----------------------------------------------------------------------

def _restore_stats(cls, values):
    return cls(**values)


class StatsView:
    """Attribute-compatible stats object backed by a metrics registry.

    Subclasses declare ``_AREA`` and ``_FIELDS`` (name -> help text); each
    instance owns a private :class:`MetricsRegistry` whose counters are
    named ``repro_<area>_<field>``, exposed for scraping via the
    ``registry`` attribute.  Reads and writes of declared fields go
    straight to the counters, so the pre-existing dataclass idioms —
    ``stats.field += 1``, plain assignment, keyword construction — all
    keep working, and per-instance registries keep per-session counts
    exact (a global registry would conflate concurrent sessions).
    """

    _AREA = "stats"
    _FIELDS: Dict[str, str] = {}

    def __init__(self, **values) -> None:
        registry = MetricsRegistry()
        counters = {
            name: registry.counter(f"repro_{type(self)._AREA}_{name}",
                                   help_text)
            for name, help_text in type(self)._FIELDS.items()
        }
        object.__setattr__(self, "registry", registry)
        object.__setattr__(self, "_counters", counters)
        for name, value in values.items():
            setattr(self, name, value)

    def __getattr__(self, name):
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            return counters[name].value
        raise AttributeError(
            f"{type(self).__name__!r} object has no attribute {name!r}")

    def __setattr__(self, name, value) -> None:
        counters = self.__dict__.get("_counters")
        if counters is not None and name in counters:
            counters[name].value = value
        else:
            object.__setattr__(self, name, value)

    def as_dict(self) -> Dict[str, object]:
        """Field -> value, in declaration order (the JSON payload shape)."""
        counters = self._counters
        return {name: counters[name].value for name in type(self)._FIELDS}

    def __eq__(self, other) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.as_dict() == other.as_dict()

    def __repr__(self) -> str:
        fields = ", ".join(f"{k}={v!r}" for k, v in self.as_dict().items())
        return f"{type(self).__name__}({fields})"

    def __reduce__(self):
        return (_restore_stats, (type(self), self.as_dict()))
