"""Context-local tracing spans with cross-process propagation.

The span API follows the same contextvars pattern as
:mod:`repro.api.progress`: a tracer is *installed* for a context (one CLI
invocation, one served request, one traced job) and :func:`trace` records a
span only while one is active — with no tracer the context managers are a
cheap no-op, which is what the perf benchmarks pin.

Two granularities exist:

* **shallow** spans (:func:`trace`) cover the request lifecycle — request
  root, planning, simulate/map fan-outs, DSE driver rounds.  The executor
  installs a shallow tracer around *every* request, which is how each JSON
  report gets its ``meta["timing"]`` phase breakdown.
* **deep** spans (:func:`trace_deep`) cover per-work-unit and sim-engine
  phases and are recorded only under a *deep* tracer (``--trace out.json``
  on the CLI, ``"trace": true`` on a served job), so hot paths pay nothing
  by default.

Spans recorded inside pool worker processes cannot share the coordinator's
tracer; :func:`repro.resilience.run_chunk` captures them in the worker,
piggybacks their serialized form on the chunk result, and the session
re-parents them under its current span via :meth:`Tracer.adopt`.  Span ids
embed the pid, so ids from different processes never collide, and
timestamps are epoch seconds (``time.time()``), the only clock comparable
across processes.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

_SEQ = itertools.count(1)


@dataclass
class Span:
    """One timed region: name, wall-clock bounds, process and parent link."""

    span_id: str
    name: str
    start: float                      # epoch seconds (cross-process clock)
    end: Optional[float] = None       # None while the span is open
    pid: int = 0
    tid: int = 0
    parent: Optional[str] = None      # parent span id, None for a root
    attrs: Dict[str, object] = field(default_factory=dict)

    @property
    def duration_ms(self) -> float:
        """Milliseconds from start to end (0.0 while still open)."""
        if self.end is None:
            return 0.0
        return (self.end - self.start) * 1e3

    def as_dict(self) -> Dict[str, object]:
        return {"span_id": self.span_id, "name": self.name,
                "start": self.start, "end": self.end, "pid": self.pid,
                "tid": self.tid, "parent": self.parent,
                "attrs": dict(self.attrs)}

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "Span":
        return cls(span_id=str(payload["span_id"]),
                   name=str(payload["name"]),
                   start=float(payload["start"]),
                   end=(None if payload.get("end") is None
                        else float(payload["end"])),
                   pid=int(payload.get("pid", 0)),
                   tid=int(payload.get("tid", 0)),
                   parent=payload.get("parent"),
                   attrs=dict(payload.get("attrs") or {}))


class Tracer:
    """Collects the spans of one trace.

    ``deep=True`` additionally records :func:`trace_deep` spans (per work
    unit, sim-engine phases) and makes the session capture worker-side
    spans; a shallow tracer keeps only the request-lifecycle spans used
    for ``meta["timing"]``.
    """

    __slots__ = ("deep", "spans")

    def __init__(self, deep: bool = False) -> None:
        self.deep = deep
        self.spans: List[Span] = []

    def begin(self, name: str, parent: Optional[str],
              attrs: Dict[str, object]) -> Span:
        span = Span(span_id=f"{os.getpid()}-{next(_SEQ)}", name=name,
                    start=time.time(), pid=os.getpid(),
                    tid=threading.get_ident(), parent=parent, attrs=attrs)
        self.spans.append(span)
        return span

    def adopt(self, payloads: List[Dict[str, object]],
              parent: Optional[str]) -> None:
        """Fold serialized worker-process spans into this trace.

        Worker-side root spans (``parent is None``) are re-parented under
        ``parent`` — the coordinator span that submitted the chunk — so the
        merged trace stays one connected tree.
        """
        for payload in payloads:
            span = Span.from_dict(payload)
            if span.parent is None:
                span.parent = parent
            self.spans.append(span)


_TRACER: ContextVar[Optional[Tracer]] = ContextVar("repro_tracer",
                                                   default=None)
_CURRENT: ContextVar[Optional[str]] = ContextVar("repro_current_span",
                                                 default=None)


def active_tracer() -> Optional[Tracer]:
    """The tracer installed for this context, if any."""
    return _TRACER.get()


def deep_tracing() -> bool:
    """Whether fine-grained (per-unit / sim-phase) spans are being kept."""
    tracer = _TRACER.get()
    return tracer is not None and tracer.deep


def current_span_id() -> Optional[str]:
    """The id of the innermost open span in this context."""
    return _CURRENT.get()


@contextmanager
def install_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Make ``tracer`` receive this context's spans (restored on exit)."""
    token = _TRACER.set(tracer)
    try:
        yield tracer
    finally:
        _TRACER.reset(token)


@contextmanager
def _record(tracer: Tracer, name: str,
            attrs: Dict[str, object]) -> Iterator[Span]:
    span = tracer.begin(name, _CURRENT.get(), attrs)
    token = _CURRENT.set(span.span_id)
    try:
        yield span
    finally:
        _CURRENT.reset(token)
        span.end = time.time()


@contextmanager
def trace(name: str, **attrs) -> Iterator[Optional[Span]]:
    """Record a request-lifecycle span; no-op without an installed tracer."""
    tracer = _TRACER.get()
    if tracer is None:
        yield None
        return
    with _record(tracer, name, attrs) as span:
        yield span


@contextmanager
def trace_deep(name: str, **attrs) -> Iterator[Optional[Span]]:
    """Record a fine-grained span; no-op unless a *deep* tracer is active."""
    tracer = _TRACER.get()
    if tracer is None or not tracer.deep:
        yield None
        return
    with _record(tracer, name, attrs) as span:
        yield span


class RequestTrace:
    """Handle yielded by :func:`request_trace`: the root span + breakdown."""

    __slots__ = ("tracer", "root")

    def __init__(self, tracer: Tracer, root: Span) -> None:
        self.tracer = tracer
        self.root = root

    def timing(self) -> Dict[str, object]:
        """The ``meta["timing"]`` block: total wall clock + per-phase ms.

        Phases aggregate the *direct children* of the request root span by
        name; time the root spent outside any child shows up as the
        difference between ``total_ms`` and the phase sum.
        """
        end = self.root.end if self.root.end is not None else time.time()
        phases: Dict[str, float] = {}
        for span in self.tracer.spans:
            if span.parent == self.root.span_id and span.end is not None:
                phases[span.name] = (phases.get(span.name, 0.0)
                                     + span.duration_ms)
        return {"total_ms": (end - self.root.start) * 1e3, "phases": phases}


@contextmanager
def request_trace(name: str, **attrs) -> Iterator[RequestTrace]:
    """Root span for one request, always recorded.

    When no tracer is installed (the common case: an untraced CLI call or
    server request) a private shallow tracer is installed for the duration,
    so every request gets a ``meta["timing"]`` breakdown without paying for
    deep instrumentation.  Under ``--trace`` / a traced job the already
    installed deep tracer is reused and the request nests into it.
    """
    tracer = _TRACER.get()
    installed = None
    if tracer is None:
        tracer = Tracer(deep=False)
        installed = _TRACER.set(tracer)
    try:
        with _record(tracer, name, attrs) as span:
            yield RequestTrace(tracer, span)
    finally:
        if installed is not None:
            _TRACER.reset(installed)


def elapsed_timing(started: float) -> Dict[str, object]:
    """A minimal timing block for error paths (``started``: perf_counter)."""
    return {"total_ms": (time.perf_counter() - started) * 1e3, "phases": {}}


class Trace:
    """A live view over one tracer's spans, plus exporters."""

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer

    @property
    def spans(self) -> List[Span]:
        return list(self._tracer.spans)

    def __len__(self) -> int:
        return len(self._tracer.spans)

    def to_chrome(self) -> Dict[str, object]:
        """Chrome/Perfetto ``trace_event`` JSON.

        Load the serialized dict in ``chrome://tracing`` or
        https://ui.perfetto.dev.  Every span becomes one complete ("X")
        event; timestamps are microseconds relative to the earliest span so
        the viewer opens at t=0.  A span still open at export time is
        emitted with zero duration and ``args.unclosed = true`` rather than
        dropped.
        """
        spans = sorted(self._tracer.spans, key=lambda s: (s.start, s.span_id))
        origin = spans[0].start if spans else 0.0
        events: List[Dict[str, object]] = []
        for pid in sorted({span.pid for span in spans}):
            name = ("coordinator" if pid == os.getpid()
                    else f"worker-{pid}")
            events.append({"ph": "M", "name": "process_name", "pid": pid,
                           "tid": 0, "args": {"name": f"repro {name}"}})
        for span in spans:
            end = span.end if span.end is not None else span.start
            args: Dict[str, object] = dict(span.attrs)
            args["span_id"] = span.span_id
            if span.parent is not None:
                args["parent"] = span.parent
            if span.end is None:
                args["unclosed"] = True
            events.append({
                "ph": "X",
                "name": span.name,
                "cat": "repro",
                "ts": (span.start - origin) * 1e6,
                "dur": (end - span.start) * 1e6,
                "pid": span.pid,
                "tid": span.tid,
                "args": args,
            })
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"origin_unix_s": origin, "spans": len(spans)},
        }


@contextmanager
def collect_trace(deep: bool = True) -> Iterator[Trace]:
    """Install a tracer for the context and yield the growing trace.

    ``deep=True`` (the default) also records per-work-unit and sim-engine
    spans and makes pool fan-outs carry worker-side spans home.  The yielded
    :class:`Trace` stays valid after the context exits — export it then.
    """
    tracer = Tracer(deep=deep)
    with install_tracer(tracer):
        yield Trace(tracer)
