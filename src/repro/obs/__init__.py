"""Unified observability: spans, metrics, chrome-trace export, logging.

Dependency-free (stdlib only) so every layer — core model, sim engine,
session/executor, DSE runner, server, CLI — can import it without cycles.
See DESIGN.md, "Observability".

* :mod:`repro.obs.spans` — context-local ``trace()`` spans with
  cross-process propagation and a Chrome/Perfetto exporter.
* :mod:`repro.obs.metrics` — counters/gauges/histograms, Prometheus text
  exposition, and the registry-backed stats views.
* :mod:`repro.obs.log` — stderr logging with the level from ``REPRO_LOG``.
"""

from .log import get_logger
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
    count,
    count_into,
    render_prometheus,
)
from .spans import (
    RequestTrace,
    Span,
    Trace,
    Tracer,
    active_tracer,
    collect_trace,
    current_span_id,
    deep_tracing,
    elapsed_timing,
    install_tracer,
    request_trace,
    trace,
    trace_deep,
)

__all__ = [
    "get_logger",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "count",
    "count_into",
    "render_prometheus",
    "RequestTrace",
    "Span",
    "Trace",
    "Tracer",
    "active_tracer",
    "collect_trace",
    "current_span_id",
    "deep_tracing",
    "elapsed_timing",
    "install_tracer",
    "request_trace",
    "trace",
    "trace_deep",
]
