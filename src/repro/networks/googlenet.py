"""GoogLeNet (Inception v1) convolution layers.

The stem plus the nine inception modules are generated from the channel table
of Szegedy et al. (2015).  Each inception module contributes five convolution
layers (1x1, 3x3 reduce, 3x3, 5x5 reduce, 5x5); the pooling-projection 1x1
convolution is included as ``_pool_proj``.  The paper evaluates the stem and
modules 3a, 4b, 4e and 5a (Section VI); :func:`googlenet_paper_subset`
extracts exactly those layers.
"""

from __future__ import annotations

from typing import List, Tuple

from ..core.layer import ConvLayerConfig, LinearLayerConfig
from .base import ConvNetwork
from .registry import register_network

DEFAULT_BATCH = 256

#: inception module table: name -> (feature size, in_channels,
#:   n1x1, n3x3red, n3x3, n5x5red, n5x5, pool_proj)
_INCEPTION_TABLE: Tuple[Tuple[str, Tuple[int, int, int, int, int, int, int, int]], ...] = (
    ("3a", (28, 192, 64, 96, 128, 16, 32, 32)),
    ("3b", (28, 256, 128, 128, 192, 32, 96, 64)),
    ("4a", (14, 480, 192, 96, 208, 16, 48, 64)),
    ("4b", (14, 512, 160, 112, 224, 24, 64, 64)),
    ("4c", (14, 512, 128, 128, 256, 24, 64, 64)),
    ("4d", (14, 512, 112, 144, 288, 32, 64, 64)),
    ("4e", (14, 528, 256, 160, 320, 32, 128, 128)),
    ("5a", (7, 832, 256, 160, 320, 32, 128, 128)),
    ("5b", (7, 832, 384, 192, 384, 48, 128, 128)),
)


def _inception_layers(batch: int, name: str, size: int, cin: int, n1x1: int,
                      n3x3red: int, n3x3: int, n5x5red: int, n5x5: int,
                      pool_proj: int) -> List[ConvLayerConfig]:
    sq = ConvLayerConfig.square
    return [
        sq(f"{name}_1x1", batch, in_channels=cin, in_size=size,
           out_channels=n1x1, filter_size=1),
        sq(f"{name}_3x3red", batch, in_channels=cin, in_size=size,
           out_channels=n3x3red, filter_size=1),
        sq(f"{name}_3x3", batch, in_channels=n3x3red, in_size=size,
           out_channels=n3x3, filter_size=3, padding=1),
        sq(f"{name}_5x5red", batch, in_channels=cin, in_size=size,
           out_channels=n5x5red, filter_size=1),
        sq(f"{name}_5x5", batch, in_channels=n5x5red, in_size=size,
           out_channels=n5x5, filter_size=5, padding=2),
        sq(f"{name}_pool_proj", batch, in_channels=cin, in_size=size,
           out_channels=pool_proj, filter_size=1),
    ]


@register_network("googlenet")
def googlenet(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """All GoogLeNet convolution layers at the given mini-batch size."""
    sq = ConvLayerConfig.square
    layers: List[ConvLayerConfig] = [
        sq("conv1", batch, in_channels=3, in_size=224, out_channels=64,
           filter_size=7, stride=2, padding=3),
        sq("conv2_3x3r", batch, in_channels=64, in_size=56, out_channels=64,
           filter_size=1),
        sq("conv2_3x3", batch, in_channels=64, in_size=56, out_channels=192,
           filter_size=3, padding=1),
    ]
    for name, (size, cin, n1, n3r, n3, n5r, n5, proj) in _INCEPTION_TABLE:
        layers.extend(_inception_layers(batch, name, size, cin, n1, n3r, n3,
                                        n5r, n5, proj))
    # Global average pooling reduces 5b's 7x7x1024 output to 1024 features
    # before the single classifier layer.
    layers.append(LinearLayerConfig("fc", batch, in_features=1024,
                                    out_features=1000))
    return ConvNetwork(name="GoogLeNet", layers=tuple(layers))


#: layer-name prefixes evaluated in the paper's figures.
PAPER_MODULES = ("conv1", "conv2_3x3", "conv2_3x3r", "3a", "4b", "4e", "5a")

#: branch suffixes shown in the paper's per-layer figures (pool projections
#: are omitted there because they duplicate the 1x1 branch shape).
PAPER_BRANCHES = ("_1x1", "_3x3", "_3x3red", "_5x5", "_5x5red")


@register_network("googlenet", paper_subset=True)
def googlenet_paper_subset(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """The GoogLeNet layers shown in the paper's evaluation figures."""
    network = googlenet(batch)
    selected: List[ConvLayerConfig] = []
    for layer in network.layers:
        if layer.name in ("conv1", "conv2_3x3", "conv2_3x3r"):
            selected.append(layer)
            continue
        module = layer.name.split("_")[0]
        suffix = layer.name[len(module):]
        if module in PAPER_MODULES and suffix in PAPER_BRANCHES:
            selected.append(layer)
    return ConvNetwork(name="GoogLeNet", layers=tuple(selected))
