"""Benchmark networks used in the paper's evaluation and beyond.

The four CNNs of the paper (now including their FC classifier tails) plus
GEMM-native workloads: an MLP and a BERT-base-style transformer encoder.
"""

from .alexnet import alexnet, alexnet_paper_subset
from .base import ConvNetwork, Network
from .googlenet import googlenet, googlenet_paper_subset
from .mlp import make_mlp, mlp
from .registry import (
    PAPER_NETWORK_ORDER,
    available_networks,
    get_network,
    paper_benchmark_suite,
    paper_subset_networks,
    register_network,
    unregister_network,
)
from .resnet import resnet152, resnet152_paper_subset
from .transformer import bert_base, make_transformer_encoder
from .vgg import vgg16, vgg16_paper_subset

__all__ = [
    "ConvNetwork",
    "Network",
    "alexnet",
    "alexnet_paper_subset",
    "vgg16",
    "vgg16_paper_subset",
    "googlenet",
    "googlenet_paper_subset",
    "resnet152",
    "resnet152_paper_subset",
    "mlp",
    "make_mlp",
    "bert_base",
    "make_transformer_encoder",
    "get_network",
    "available_networks",
    "paper_subset_networks",
    "register_network",
    "unregister_network",
    "paper_benchmark_suite",
    "PAPER_NETWORK_ORDER",
]
