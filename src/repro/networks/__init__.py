"""Benchmark CNNs used in the paper's evaluation."""

from .alexnet import alexnet
from .base import ConvNetwork
from .googlenet import googlenet, googlenet_paper_subset
from .registry import (
    PAPER_NETWORK_ORDER,
    available_networks,
    get_network,
    paper_benchmark_suite,
    paper_subset_networks,
    register_network,
    unregister_network,
)
from .resnet import resnet152, resnet152_paper_subset
from .vgg import vgg16

__all__ = [
    "ConvNetwork",
    "alexnet",
    "vgg16",
    "googlenet",
    "googlenet_paper_subset",
    "resnet152",
    "resnet152_paper_subset",
    "get_network",
    "available_networks",
    "paper_subset_networks",
    "register_network",
    "unregister_network",
    "paper_benchmark_suite",
    "PAPER_NETWORK_ORDER",
]
