"""Network container: an ordered collection of GEMM-lowerable layer configs.

The paper evaluates DeLTA on the convolution layers of AlexNet, VGG16,
GoogLeNet and ResNet152.  Because many layers in these networks share the
exact same configuration, results are reported on the *unique* subset
(Section VI); :meth:`ConvNetwork.unique_layers` reproduces that subset while
:meth:`ConvNetwork.gemm_layers` returns the full list (used, e.g., for the
ResNet152 scaling study which sums over all layers).

Since the GEMM-native layer families landed, a network may mix convolution
layers with :class:`~repro.core.layer.LinearLayerConfig` (the CNNs' FC tails,
MLPs, transformer projections) and :class:`~repro.core.layer.
BatchedGemmLayerConfig` (attention score/context products); every entry
lowers to per-pass :class:`~repro.core.workload.GemmWorkload` s through the
same :func:`~repro.core.workload.lower_pass` dispatch.
:meth:`ConvNetwork.conv_layers` keeps its historical meaning — the
convolution subset only — which is what the paper's conv-centric figures
consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..core.layer import ConvLayerConfig, LayerConfig


@dataclass(frozen=True)
class ConvNetwork:
    """A network reduced to its GEMM-lowerable layers, in forward order."""

    name: str
    layers: Tuple[LayerConfig, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"network {self.name!r} has no layers")

    def __iter__(self) -> Iterator[LayerConfig]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def gemm_layers(self) -> List[LayerConfig]:
        """All GEMM-lowerable layers (conv, linear, batched), in forward order."""
        return list(self.layers)

    def conv_layers(self) -> List[ConvLayerConfig]:
        """The convolution layers only, in forward order."""
        return [layer for layer in self.layers
                if isinstance(layer, ConvLayerConfig)]

    def unique_layers(self) -> List[LayerConfig]:
        """The unique-configuration subset, preserving first occurrence order.

        Identity is the layer's ``structural_key`` — the same key the
        session's simulation work-unit dedupe uses, so the two cannot drift.
        """
        seen: Dict[Tuple, LayerConfig] = {}
        for layer in self.layers:
            key = layer.structural_key()
            if key not in seen:
                seen[key] = layer
        return list(seen.values())

    def layer(self, name: str) -> LayerConfig:
        """Look up a layer by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"network {self.name!r} has no layer named {name!r}")

    def with_batch(self, batch: int) -> "ConvNetwork":
        """The same network at a different mini-batch size."""
        return ConvNetwork(
            name=self.name,
            layers=tuple(layer.with_batch(batch) for layer in self.layers),
        )

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate operations of all layers."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_flops(self) -> int:
        return 2 * self.total_macs

    def describe(self) -> str:
        lines = [f"{self.name}: {len(self.layers)} layers, "
                 f"{self.total_flops / 1e9:.1f} GFLOPs per batch"]
        lines.extend("  " + layer.describe() for layer in self.layers)
        return "\n".join(lines)


#: the container holds any GEMM-lowerable layer family, not just convolutions;
#: ``Network`` is the forward-looking name, ``ConvNetwork`` the historical one.
Network = ConvNetwork


def prefixed(network_name: str, layers: Sequence[LayerConfig]) -> Tuple[LayerConfig, ...]:
    """Prefix layer names with the network name for unambiguous reporting."""
    return tuple(layer.with_name(f"{network_name}/{layer.name}")
                 if not layer.name.startswith(f"{network_name}/") else layer
                 for layer in layers)
