"""Network container: an ordered collection of convolution layer configs.

The paper evaluates DeLTA on the convolution layers of AlexNet, VGG16,
GoogLeNet and ResNet152.  Because many layers in these networks share the
exact same configuration, results are reported on the *unique* subset
(Section VI); :meth:`ConvNetwork.unique_layers` reproduces that subset while
:meth:`ConvNetwork.conv_layers` returns the full list (used, e.g., for the
ResNet152 scaling study which sums over all 152 conv layers).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..core.layer import ConvLayerConfig


@dataclass(frozen=True)
class ConvNetwork:
    """A CNN reduced to its convolution layers, in forward order."""

    name: str
    layers: Tuple[ConvLayerConfig, ...]

    def __post_init__(self) -> None:
        if not self.layers:
            raise ValueError(f"network {self.name!r} has no layers")

    def __iter__(self) -> Iterator[ConvLayerConfig]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def conv_layers(self) -> List[ConvLayerConfig]:
        """All convolution layers, in forward order."""
        return list(self.layers)

    def unique_layers(self) -> List[ConvLayerConfig]:
        """The unique-configuration subset, preserving first occurrence order.

        Identity is :meth:`ConvLayerConfig.structural_key` — the same key the
        session's simulation work-unit dedupe uses, so the two cannot drift.
        """
        seen: Dict[Tuple, ConvLayerConfig] = {}
        for layer in self.layers:
            key = layer.structural_key()
            if key not in seen:
                seen[key] = layer
        return list(seen.values())

    def layer(self, name: str) -> ConvLayerConfig:
        """Look up a layer by name."""
        for candidate in self.layers:
            if candidate.name == name:
                return candidate
        raise KeyError(f"network {self.name!r} has no layer named {name!r}")

    def with_batch(self, batch: int) -> "ConvNetwork":
        """The same network at a different mini-batch size."""
        return ConvNetwork(
            name=self.name,
            layers=tuple(layer.with_batch(batch) for layer in self.layers),
        )

    @property
    def total_macs(self) -> int:
        """Total multiply-accumulate operations of all conv layers."""
        return sum(layer.macs for layer in self.layers)

    @property
    def total_flops(self) -> int:
        return 2 * self.total_macs

    def describe(self) -> str:
        lines = [f"{self.name}: {len(self.layers)} conv layers, "
                 f"{self.total_flops / 1e9:.1f} GFLOPs per batch"]
        lines.extend("  " + layer.describe() for layer in self.layers)
        return "\n".join(lines)


def prefixed(network_name: str, layers: Sequence[ConvLayerConfig]) -> Tuple[ConvLayerConfig, ...]:
    """Prefix layer names with the network name for unambiguous reporting."""
    return tuple(layer.with_name(f"{network_name}/{layer.name}")
                 if not layer.name.startswith(f"{network_name}/") else layer
                 for layer in layers)
