"""AlexNet convolution layers (Krizhevsky et al., single-tower variant).

Feature map sizes follow the standard ImageNet configuration with a 224x224
input: conv1 runs at stride 4 and the two max-pooling layers reduce the
feature map to 27x27 and 13x13 before conv2 and conv3 respectively.
"""

from __future__ import annotations

from ..core.layer import ConvLayerConfig
from .base import ConvNetwork
from .registry import register_network

DEFAULT_BATCH = 256


@register_network("alexnet")
def alexnet(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """The five AlexNet convolution layers at the given mini-batch size."""
    sq = ConvLayerConfig.square
    layers = (
        sq("conv1", batch, in_channels=3, in_size=224, out_channels=64,
           filter_size=11, stride=4, padding=2),
        sq("conv2", batch, in_channels=64, in_size=27, out_channels=192,
           filter_size=5, stride=1, padding=2),
        sq("conv3", batch, in_channels=192, in_size=13, out_channels=384,
           filter_size=3, stride=1, padding=1),
        sq("conv4", batch, in_channels=384, in_size=13, out_channels=256,
           filter_size=3, stride=1, padding=1),
        sq("conv5", batch, in_channels=256, in_size=13, out_channels=256,
           filter_size=3, stride=1, padding=1),
    )
    return ConvNetwork(name="AlexNet", layers=layers)
