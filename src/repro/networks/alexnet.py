"""AlexNet layers (Krizhevsky et al., single-tower variant).

Feature map sizes follow the standard ImageNet configuration with a 224x224
input: conv1 runs at stride 4 and the two max-pooling layers reduce the
feature map to 27x27 and 13x13 before conv2 and conv3 respectively.  The
classifier tail (fc6-fc8) is included as GEMM-native linear layers so
training-step totals cover the whole network; the paper-subset variant keeps
the conv-only population the paper's per-layer figures evaluate.
"""

from __future__ import annotations

from ..core.layer import ConvLayerConfig, LinearLayerConfig
from .base import ConvNetwork
from .registry import register_network

DEFAULT_BATCH = 256


def _conv_layers(batch: int):
    sq = ConvLayerConfig.square
    return (
        sq("conv1", batch, in_channels=3, in_size=224, out_channels=64,
           filter_size=11, stride=4, padding=2),
        sq("conv2", batch, in_channels=64, in_size=27, out_channels=192,
           filter_size=5, stride=1, padding=2),
        sq("conv3", batch, in_channels=192, in_size=13, out_channels=384,
           filter_size=3, stride=1, padding=1),
        sq("conv4", batch, in_channels=384, in_size=13, out_channels=256,
           filter_size=3, stride=1, padding=1),
        sq("conv5", batch, in_channels=256, in_size=13, out_channels=256,
           filter_size=3, stride=1, padding=1),
    )


@register_network("alexnet")
def alexnet(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """The five AlexNet convolutions plus the fc6-fc8 classifier tail."""
    # The final 13x13 maps are max-pooled to 6x6 before the classifier.
    layers = _conv_layers(batch) + (
        LinearLayerConfig("fc6", batch, in_features=256 * 6 * 6,
                          out_features=4096),
        LinearLayerConfig("fc7", batch, in_features=4096, out_features=4096),
        LinearLayerConfig("fc8", batch, in_features=4096, out_features=1000),
    )
    return ConvNetwork(name="AlexNet", layers=layers)


@register_network("alexnet", paper_subset=True)
def alexnet_paper_subset(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """The conv-only population the paper's per-layer figures evaluate."""
    return ConvNetwork(name="AlexNet", layers=_conv_layers(batch))
