"""VGG16 convolution layers (Simonyan & Zisserman, configuration D).

All convolutions are 3x3 with stride 1 and padding 1; max pooling halves the
feature map after layers 2, 4, 7, 10 and 13.  The paper reports results on the
unique-configuration subset (conv1-conv6, conv8, conv11), which
:meth:`ConvNetwork.unique_layers` recovers automatically.
"""

from __future__ import annotations

from ..core.layer import ConvLayerConfig, LinearLayerConfig
from .base import ConvNetwork
from .registry import register_network

DEFAULT_BATCH = 256

#: (name, in_channels, feature size, out_channels) for the 13 conv layers.
_VGG16_CONFIG = (
    ("conv1", 3, 224, 64),
    ("conv2", 64, 224, 64),
    ("conv3", 64, 112, 128),
    ("conv4", 128, 112, 128),
    ("conv5", 128, 56, 256),
    ("conv6", 256, 56, 256),
    ("conv7", 256, 56, 256),
    ("conv8", 256, 28, 512),
    ("conv9", 512, 28, 512),
    ("conv10", 512, 28, 512),
    ("conv11", 512, 14, 512),
    ("conv12", 512, 14, 512),
    ("conv13", 512, 14, 512),
)


def _conv_layers(batch: int):
    return tuple(
        ConvLayerConfig.square(
            name, batch, in_channels=ci, in_size=size, out_channels=co,
            filter_size=3, stride=1, padding=1,
        )
        for name, ci, size, co in _VGG16_CONFIG
    )


@register_network("vgg16")
def vgg16(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """The thirteen VGG16 convolutions plus the fc14-fc16 classifier tail."""
    # The last 14x14 maps are max-pooled to 7x7 before the classifier.
    layers = _conv_layers(batch) + (
        LinearLayerConfig("fc14", batch, in_features=512 * 7 * 7,
                          out_features=4096),
        LinearLayerConfig("fc15", batch, in_features=4096, out_features=4096),
        LinearLayerConfig("fc16", batch, in_features=4096, out_features=1000),
    )
    return ConvNetwork(name="VGG16", layers=layers)


@register_network("vgg16", paper_subset=True)
def vgg16_paper_subset(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """The conv-only population the paper's per-layer figures evaluate."""
    return ConvNetwork(name="VGG16", layers=_conv_layers(batch))
