"""ResNet-152 convolution layers (He et al., bottleneck architecture).

The network is generated from the standard stage table (3, 8, 36, 3 bottleneck
blocks).  Each bottleneck block contributes three convolutions named
``conv<stage>_<block>_{a,b,c}`` following the paper's naming; the projection
shortcut of the first block in each stage is named ``conv<stage>_1_proj``.
Downsampling uses a stride-2 3x3 convolution in the first block of stages 3-5
(the common v1.5 layout).

:func:`resnet152_paper_subset` returns the layer subset the paper's per-layer
figures display; the scaling study (Fig. 16) uses the full layer list.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..core.layer import ConvLayerConfig, LinearLayerConfig
from .base import ConvNetwork
from .registry import register_network

DEFAULT_BATCH = 256

#: (stage name, number of blocks, bottleneck width, output feature size)
_STAGES: Tuple[Tuple[str, int, int, int], ...] = (
    ("conv2", 3, 64, 56),
    ("conv3", 8, 128, 28),
    ("conv4", 36, 256, 14),
    ("conv5", 3, 512, 7),
)


def _bottleneck(batch: int, stage: str, block: int, in_channels: int,
                width: int, out_size: int, stride: int) -> List[ConvLayerConfig]:
    """The three convolutions of one bottleneck block."""
    sq = ConvLayerConfig.square
    in_size = out_size * stride
    prefix = f"{stage}_{block}"
    layers = [
        sq(f"{prefix}_a", batch, in_channels=in_channels, in_size=in_size,
           out_channels=width, filter_size=1),
        sq(f"{prefix}_b", batch, in_channels=width, in_size=in_size,
           out_channels=width, filter_size=3, stride=stride, padding=1),
        sq(f"{prefix}_c", batch, in_channels=width, in_size=out_size,
           out_channels=4 * width, filter_size=1),
    ]
    if block == 1:
        layers.append(
            sq(f"{prefix}_proj", batch, in_channels=in_channels, in_size=in_size,
               out_channels=4 * width, filter_size=1, stride=stride))
    return layers


@register_network("resnet152")
def resnet152(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """All ResNet-152 layers (155 convolutions + classifier fc)."""
    sq = ConvLayerConfig.square
    layers: List[ConvLayerConfig] = [
        sq("conv1", batch, in_channels=3, in_size=224, out_channels=64,
           filter_size=7, stride=2, padding=3),
    ]
    in_channels = 64
    for stage, blocks, width, out_size in _STAGES:
        for block in range(1, blocks + 1):
            # The first stage keeps the 56x56 resolution (pooling already
            # halved it); later stages downsample in their first block.
            stride = 2 if (block == 1 and stage != "conv2") else 1
            layers.extend(_bottleneck(batch, stage, block, in_channels, width,
                                      out_size, stride))
            in_channels = 4 * width
    # Global average pooling reduces conv5's 7x7x2048 output to 2048 features
    # before the single classifier layer.
    all_layers: List = list(layers)
    all_layers.append(LinearLayerConfig("fc", batch, in_features=2048,
                                        out_features=1000))
    return ConvNetwork(name="ResNet152", layers=tuple(all_layers))


#: layer names shown in the paper's per-layer evaluation figures.
PAPER_LAYER_NAMES: Sequence[str] = (
    "conv1",
    "conv2_1_a", "conv2_1_b", "conv2_1_c",
    "conv2_2_a", "conv2_2_b", "conv2_2_c",
    "conv2_3_a", "conv2_3_b", "conv2_3_c",
    "conv3_1_a", "conv3_1_b", "conv3_1_c",
    "conv3_2_a",
    "conv4_1_a", "conv4_1_b", "conv4_1_c",
    "conv4_2_a",
    "conv5_1_a", "conv5_1_b", "conv5_1_c",
    "conv5_2_a", "conv5_2_b", "conv5_2_c",
)


@register_network("resnet152", paper_subset=True)
def resnet152_paper_subset(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """The ResNet-152 layers shown in the paper's evaluation figures."""
    network = resnet152(batch)
    layers = tuple(network.layer(name) for name in PAPER_LAYER_NAMES)
    return ConvNetwork(name="ResNet152", layers=layers)
