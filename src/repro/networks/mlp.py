"""A multi-layer perceptron as a pure sequence of dense GEMMs.

The canonical GEMM-native workload: every layer is a
:class:`~repro.core.layer.LinearLayerConfig`, so the network exercises the
conv-free lowering path end to end (forward, dgrad and wgrad are all dense
row-major GEMMs, no im2col anywhere).  The default geometry is the classic
ImageNet-MLP shape — a 784-feature input, three 4096-wide hidden layers and a
1000-way classifier — which keeps per-layer GEMMs big enough to fill a GPU at
the paper's batch sizes.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from ..core.layer import LinearLayerConfig
from .base import ConvNetwork
from .registry import register_network

DEFAULT_BATCH = 256

#: feature widths from input to output; layer i maps width[i] -> width[i+1].
DEFAULT_WIDTHS: Tuple[int, ...] = (784, 4096, 4096, 4096, 1000)


def make_mlp(batch: int, widths: Sequence[int] = DEFAULT_WIDTHS,
             name: str = "MLP") -> ConvNetwork:
    """An MLP with one linear layer per consecutive width pair."""
    widths = tuple(int(width) for width in widths)
    if len(widths) < 2:
        raise ValueError("an MLP needs at least two widths (input, output)")
    layers = tuple(
        LinearLayerConfig(f"fc{index + 1}", batch, in_features=w_in,
                          out_features=w_out)
        for index, (w_in, w_out) in enumerate(zip(widths, widths[1:]))
    )
    return ConvNetwork(name=name, layers=layers)


@register_network("mlp")
def mlp(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """The default 784-4096-4096-4096-1000 MLP at the given batch size."""
    return make_mlp(batch)
