"""Network registry: look up the paper's benchmark CNNs by name.

The registry exposes both the full networks and the "paper subset" variants
used in the per-layer evaluation figures, plus :func:`paper_benchmark_suite`
which reproduces the layer population of Fig. 11/13/14 (unique conv layers of
all four CNNs, in paper order).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from ..core.layer import ConvLayerConfig
from .alexnet import alexnet
from .base import ConvNetwork
from .googlenet import googlenet, googlenet_paper_subset
from .resnet import resnet152, resnet152_paper_subset
from .vgg import vgg16

NetworkFactory = Callable[[int], ConvNetwork]

_REGISTRY: Dict[str, NetworkFactory] = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "googlenet": googlenet,
    "resnet152": resnet152,
}

_PAPER_SUBSETS: Dict[str, NetworkFactory] = {
    "alexnet": alexnet,
    "vgg16": vgg16,
    "googlenet": googlenet_paper_subset,
    "resnet152": resnet152_paper_subset,
}

#: the order networks appear in the paper's figures.
PAPER_NETWORK_ORDER: Tuple[str, ...] = ("alexnet", "vgg16", "googlenet", "resnet152")


def available_networks() -> List[str]:
    """Names accepted by :func:`get_network`."""
    return sorted(_REGISTRY)


def get_network(name: str, batch: int = 256, paper_subset: bool = False) -> ConvNetwork:
    """Build a benchmark network by (case-insensitive) name."""
    key = name.strip().lower()
    registry = _PAPER_SUBSETS if paper_subset else _REGISTRY
    try:
        factory = registry[key]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {available_networks()}"
        ) from None
    return factory(batch)


def paper_benchmark_suite(batch: int = 256,
                          unique: bool = True) -> List[Tuple[str, ConvLayerConfig]]:
    """(network name, layer) pairs for the paper's evaluation population.

    With ``unique=True`` (the default) each network contributes only its
    unique-configuration layers, matching Section VI ("we show the results on
    the unique subset").
    """
    suite: List[Tuple[str, ConvLayerConfig]] = []
    for name in PAPER_NETWORK_ORDER:
        network = get_network(name, batch=batch, paper_subset=True)
        layers = network.unique_layers() if unique else network.conv_layers()
        suite.extend((network.name, layer) for layer in layers)
    return suite
