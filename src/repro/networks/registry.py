"""Network registry: look up the paper's benchmark CNNs by name.

Network modules register their factories through the :func:`register_network`
decorator (see :mod:`repro.networks.alexnet` for the idiom); a second
registration under ``paper_subset=True`` provides the reduced layer population
used in the per-layer evaluation figures.  :func:`paper_benchmark_suite`
reproduces the layer population of Fig. 11/13/14 (unique conv layers of all
four CNNs, in paper order).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.layer import LayerConfig
from .base import ConvNetwork

NetworkFactory = Callable[[int], ConvNetwork]

_REGISTRY: Dict[str, NetworkFactory] = {}
_PAPER_SUBSETS: Dict[str, NetworkFactory] = {}

#: the order networks appear in the paper's figures.
PAPER_NETWORK_ORDER: Tuple[str, ...] = ("alexnet", "vgg16", "googlenet", "resnet152")


def register_network(name: str, *, paper_subset: bool = False
                     ) -> Callable[[NetworkFactory], NetworkFactory]:
    """Register a network factory (``batch -> ConvNetwork``) under ``name``.

    With ``paper_subset=True`` the factory is registered as the network's
    paper-subset variant (the reduced layer population shown in the paper's
    per-layer figures); networks without a dedicated variant fall back to the
    full factory.  Duplicate registrations raise ``ValueError``.
    """
    key = name.strip().lower()

    def decorator(factory: NetworkFactory) -> NetworkFactory:
        registry = _PAPER_SUBSETS if paper_subset else _REGISTRY
        if key in registry:
            kind = "paper-subset variant" if paper_subset else "network"
            raise ValueError(f"{kind} {name!r} is already registered")
        registry[key] = factory
        return factory

    return decorator


def unregister_network(name: str) -> None:
    """Remove a network and its paper-subset variant (tests/plugins)."""
    key = name.strip().lower()
    _REGISTRY.pop(key, None)
    _PAPER_SUBSETS.pop(key, None)


def available_networks() -> List[str]:
    """Names accepted by :func:`get_network`."""
    return sorted(_REGISTRY)


def paper_subset_networks() -> List[str]:
    """Networks with a dedicated paper-subset variant."""
    return sorted(_PAPER_SUBSETS)


def get_network(name: str, batch: int = 256, paper_subset: bool = False) -> ConvNetwork:
    """Build a benchmark network by (case-insensitive) name."""
    key = name.strip().lower()
    registry = _REGISTRY
    if paper_subset and key in _PAPER_SUBSETS:
        registry = _PAPER_SUBSETS
    try:
        factory = registry[key]
    except KeyError:
        raise KeyError(
            f"unknown network {name!r}; available: {available_networks()}"
        ) from None
    return factory(batch)


def paper_benchmark_suite(batch: int = 256, unique: bool = True,
                          networks: Optional[Sequence[str]] = None
                          ) -> List[Tuple[str, LayerConfig]]:
    """(network name, layer) pairs for the paper's evaluation population.

    With ``unique=True`` (the default) each network contributes only its
    unique-configuration layers, matching Section VI ("we show the results on
    the unique subset").  ``networks`` restricts the population to the named
    CNNs while preserving paper order.
    """
    if networks is None:
        names: Sequence[str] = PAPER_NETWORK_ORDER
    else:
        wanted = {name.strip().lower() for name in networks}
        unknown = wanted - set(PAPER_NETWORK_ORDER) - set(_REGISTRY)
        if unknown:
            raise KeyError(f"unknown network(s) {sorted(unknown)}; "
                           f"available: {available_networks()}")
        names = ([name for name in PAPER_NETWORK_ORDER if name in wanted]
                 + sorted(wanted - set(PAPER_NETWORK_ORDER)))
    suite: List[Tuple[str, LayerConfig]] = []
    for name in names:
        network = get_network(name, batch=batch, paper_subset=True)
        layers = network.unique_layers() if unique else network.gemm_layers()
        suite.extend((network.name, layer) for layer in layers)
    return suite


# Importing the network modules applies their @register_network decorators.
# The imports sit at the bottom so the decorator exists when they run.
from . import alexnet as _alexnet    # noqa: E402,F401
from . import googlenet as _googlenet  # noqa: E402,F401
from . import mlp as _mlp            # noqa: E402,F401
from . import resnet as _resnet      # noqa: E402,F401
from . import transformer as _transformer  # noqa: E402,F401
from . import vgg as _vgg            # noqa: E402,F401
