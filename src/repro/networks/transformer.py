"""A BERT-base-style transformer encoder as a sequence of GEMMs.

Each encoder layer contributes eight GEMMs per training pass:

* the Q/K/V input projections and the attention output projection — four
  ``(B*S, hidden, hidden)`` dense GEMMs
  (:class:`~repro.core.layer.LinearLayerConfig` with ``rows_per_sample = S``);
* the attention score product ``S = Q . K^T`` and the context product
  ``C = P . V`` — two batched GEMMs with one ``(S x S x d)`` /
  ``(S x d x S)`` instance per (sample, head)
  (:class:`~repro.core.layer.BatchedGemmLayerConfig`);
* the two feed-forward projections — ``(B*S, hidden, ffn)`` and
  ``(B*S, ffn, hidden)`` dense GEMMs.

Softmax, layer norm, residual adds and the embedding lookup move negligible
FLOPs compared to the GEMMs and are outside the paper's GEMM-centric model,
so they are not represented.  All twelve encoder layers are structurally
identical and the q/k/v/out projections share one configuration, so the
unique-layer dedupe collapses the stack to five GEMM configurations per
pass.
"""

from __future__ import annotations

from ..core.layer import BatchedGemmLayerConfig, LinearLayerConfig
from .base import ConvNetwork
from .registry import register_network

#: transformers train at far smaller sample counts than CNNs (each sample is
#: ``seq_len`` tokens); 16 sequences x 512 tokens is a common BERT-base step.
DEFAULT_BATCH = 16


def make_transformer_encoder(batch: int, *, name: str = "BERT-base",
                             num_layers: int = 12, hidden: int = 768,
                             heads: int = 12, ffn: int = 3072,
                             seq_len: int = 512) -> ConvNetwork:
    """A BERT-style encoder stack as GEMM layer configs."""
    if hidden % heads:
        raise ValueError(f"heads ({heads}) must divide hidden ({hidden})")
    head_dim = hidden // heads
    layers = []
    for index in range(1, num_layers + 1):
        prefix = f"enc{index}"
        for proj in ("q_proj", "k_proj", "v_proj"):
            layers.append(LinearLayerConfig(
                f"{prefix}_{proj}", batch, in_features=hidden,
                out_features=hidden, rows_per_sample=seq_len))
        layers.append(BatchedGemmLayerConfig(
            f"{prefix}_attn_scores", batch, groups_per_sample=heads,
            m=seq_len, n=seq_len, k=head_dim))
        layers.append(BatchedGemmLayerConfig(
            f"{prefix}_attn_context", batch, groups_per_sample=heads,
            m=seq_len, n=head_dim, k=seq_len))
        layers.append(LinearLayerConfig(
            f"{prefix}_out_proj", batch, in_features=hidden,
            out_features=hidden, rows_per_sample=seq_len))
        layers.append(LinearLayerConfig(
            f"{prefix}_ffn1", batch, in_features=hidden, out_features=ffn,
            rows_per_sample=seq_len))
        layers.append(LinearLayerConfig(
            f"{prefix}_ffn2", batch, in_features=ffn, out_features=hidden,
            rows_per_sample=seq_len))
    return ConvNetwork(name=name, layers=tuple(layers))


@register_network("bert-base")
def bert_base(batch: int = DEFAULT_BATCH) -> ConvNetwork:
    """BERT-base: 12 encoder layers, hidden 768, 12 heads, sequence 512."""
    return make_transformer_encoder(batch)
