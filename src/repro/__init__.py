"""DeLTA reproduction: GPU performance model for CNN convolution layers.

This package reproduces "DeLTA: GPU Performance Model for Deep Learning
Applications with In-depth Memory System Traffic Analysis" (ISPASS 2019).

Public API highlights
---------------------
* :mod:`repro.api` — the session-based public API: :class:`repro.api.Session`
  plus typed requests (``EstimateRequest``, ``SweepRequest``,
  ``ValidateRequest``, ``ExperimentRequest``) and the structured
  :class:`repro.api.Report` result type.
* :class:`repro.DeltaModel` — the analytical traffic + performance model.
* :mod:`repro.gpu` — device specifications (TITAN Xp, P100, V100) and the
  design-space options of the scaling study.
* :mod:`repro.networks` — the benchmark CNNs (AlexNet, VGG16, GoogLeNet,
  ResNet152) expressed as convolution layer configurations.
* :mod:`repro.sim` — a trace-driven GPU memory-hierarchy simulator used as
  the "measured" reference in place of hardware profiling.
* :mod:`repro.dse` — design-space exploration: searchable GPU x workload
  spaces, search drivers, Pareto frontiers, and a resumable result store.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from .core import (
    TRAINING_PASSES,
    BatchedGemmLayerConfig,
    Bottleneck,
    ConvLayerConfig,
    CtaTile,
    DeltaModel,
    ExecutionEstimate,
    FixedMissRateModel,
    GemmShape,
    GemmWorkload,
    LinearLayerConfig,
    PerformanceModel,
    ScalingStudy,
    TrafficEstimate,
    TrafficModel,
    TrainingStepEstimate,
    lower_pass,
    training_workloads,
)
from .gpu import TESLA_P100, TESLA_V100, TITAN_XP, GpuSpec, all_devices, get_device
from .networks import (
    ConvNetwork,
    Network,
    alexnet,
    bert_base,
    get_network,
    googlenet,
    mlp,
    paper_benchmark_suite,
    resnet152,
    vgg16,
)
from .api import (
    DseRequest,
    EstimateRequest,
    ExperimentRequest,
    Report,
    Session,
    SweepRequest,
    ValidateRequest,
    current_session,
    use_session,
)
from .dse import (
    DesignPoint,
    ExhaustiveDriver,
    RandomDriver,
    ResultStore,
    SearchSpace,
    SuccessiveHalvingDriver,
    explore,
    grid,
    pareto_frontier,
    union,
    zip_axes,
)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    "Bottleneck",
    "ConvLayerConfig",
    "LinearLayerConfig",
    "BatchedGemmLayerConfig",
    "CtaTile",
    "DeltaModel",
    "ExecutionEstimate",
    "FixedMissRateModel",
    "GemmShape",
    "GemmWorkload",
    "PerformanceModel",
    "ScalingStudy",
    "TrafficEstimate",
    "TrafficModel",
    "TrainingStepEstimate",
    "TRAINING_PASSES",
    "lower_pass",
    "training_workloads",
    "GpuSpec",
    "TITAN_XP",
    "TESLA_P100",
    "TESLA_V100",
    "all_devices",
    "get_device",
    "ConvNetwork",
    "Network",
    "alexnet",
    "vgg16",
    "googlenet",
    "resnet152",
    "mlp",
    "bert_base",
    "get_network",
    "paper_benchmark_suite",
    "Session",
    "Report",
    "EstimateRequest",
    "SweepRequest",
    "ValidateRequest",
    "ExperimentRequest",
    "DseRequest",
    "current_session",
    "use_session",
    "DesignPoint",
    "SearchSpace",
    "grid",
    "zip_axes",
    "union",
    "ExhaustiveDriver",
    "RandomDriver",
    "SuccessiveHalvingDriver",
    "ResultStore",
    "explore",
    "pareto_frontier",
]
