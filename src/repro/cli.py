"""Command line interface: run experiments, inspect layers, list networks.

Examples
--------
Run a fast experiment and print its tables::

    delta-repro experiment fig16

Run a simulation-backed experiment across 4 worker processes with an on-disk
simulation cache (repeat runs skip simulation entirely)::

    delta-repro experiment fig11 --jobs 4 --sim-cache ~/.cache/delta-repro

Validate the model against the simulator for one GPU::

    delta-repro validate --gpu titanxp --batch 16 --jobs 4

Estimate one network on one GPU::

    delta-repro estimate --network resnet152 --gpu v100 --batch 256

List everything that is available::

    delta-repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis.tables import render_table
from .analysis.validation import (MEMORY_LEVELS, ValidationConfig,
                                  set_simulation_defaults, validate_gpu)
from .core.model import DeltaModel
from .experiments.registry import available_experiments, run_experiment
from .gpu.devices import all_devices, get_device
from .networks.registry import available_networks, get_network


def _cmd_list(_: argparse.Namespace) -> int:
    print("Networks:", ", ".join(available_networks()))
    print("GPUs:", ", ".join(gpu.name for gpu in all_devices()))
    print("Experiments:", ", ".join(available_experiments()))
    return 0


def _apply_simulation_flags(args: argparse.Namespace) -> None:
    set_simulation_defaults(jobs=args.jobs, sim_cache_dir=args.sim_cache)


def _cmd_experiment(args: argparse.Namespace) -> int:
    _apply_simulation_flags(args)
    result = run_experiment(args.experiment_id)
    print(result.render(precision=args.precision))
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    _apply_simulation_flags(args)
    gpu = get_device(args.gpu)
    config = ValidationConfig(
        batch=args.batch,
        max_ctas=args.max_ctas if args.max_ctas > 0 else None,
        layers_per_network=(args.layers_per_network
                            if args.layers_per_network > 0 else None),
    )
    report = validate_gpu(gpu, config)
    print(f"model-vs-simulator validation on {gpu.name} "
          f"(batch {config.batch}, max CTAs {config.max_ctas}, "
          f"{len(report.records)} layers)")
    print(render_table(report.rows(), precision=args.precision))
    summary_rows = []
    for level in MEMORY_LEVELS:
        summary = report.traffic_summary(level)
        summary_rows.append({"metric": f"{level} traffic GMAE",
                             "value": summary.gmae,
                             "mean_ratio": summary.mean_ratio})
    time_summary = report.time_summary()
    summary_rows.append({"metric": "time GMAE", "value": time_summary.gmae,
                         "mean_ratio": time_summary.mean_ratio})
    print(render_table(summary_rows, precision=args.precision))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    gpu = get_device(args.gpu)
    network = get_network(args.network, batch=args.batch,
                          paper_subset=args.paper_subset)
    model = DeltaModel(gpu)
    rows = []
    total = 0.0
    for layer in (network.unique_layers() if args.unique else network.conv_layers()):
        estimate = model.estimate(layer)
        total += estimate.time_seconds
        rows.append({
            "layer": layer.name,
            "time_ms": estimate.time_seconds * 1e3,
            "bottleneck": estimate.bottleneck.value,
            "TFLOP/s": estimate.throughput_tflops,
            "L1_GB": estimate.traffic.l1_bytes / 1e9,
            "L2_GB": estimate.traffic.l2_bytes / 1e9,
            "DRAM_GB": estimate.traffic.dram_bytes / 1e9,
        })
    print(f"{network.name} on {gpu.name} (batch {args.batch})")
    print(render_table(rows, precision=args.precision))
    print(f"total conv time: {total * 1e3:.2f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="delta-repro",
        description="DeLTA GPU performance model reproduction (ISPASS 2019)",
    )
    parser.add_argument("--precision", type=int, default=3,
                        help="decimal places in printed tables")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list networks, GPUs and experiments")
    list_parser.set_defaults(func=_cmd_list)

    def add_simulation_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--jobs", type=int, default=None,
                         help="worker processes for per-layer simulations")
        sub.add_argument("--sim-cache", default=None, metavar="DIR",
                         help="directory for the on-disk simulation result "
                              "cache (repeat runs skip simulation)")

    exp_parser = subparsers.add_parser("experiment",
                                       help="run one paper table/figure experiment")
    exp_parser.add_argument("experiment_id", choices=available_experiments())
    add_simulation_flags(exp_parser)
    exp_parser.set_defaults(func=_cmd_experiment)

    val_parser = subparsers.add_parser(
        "validate",
        help="run the model-vs-simulator validation for one GPU")
    val_parser.add_argument("--gpu", default="titanxp")
    val_parser.add_argument("--batch", type=int, default=16)
    val_parser.add_argument("--max-ctas", type=int, default=90,
                            help="CTAs simulated exactly per layer (<=0 = all)")
    val_parser.add_argument("--layers-per-network", type=int, default=4,
                            help="layers per network (<=0 = all unique layers)")
    add_simulation_flags(val_parser)
    val_parser.set_defaults(func=_cmd_validate)

    est_parser = subparsers.add_parser("estimate",
                                       help="estimate a network's conv layers on a GPU")
    est_parser.add_argument("--network", required=True)
    est_parser.add_argument("--gpu", default="titanxp")
    est_parser.add_argument("--batch", type=int, default=256)
    est_parser.add_argument("--unique", action="store_true",
                            help="only evaluate unique layer configurations")
    est_parser.add_argument("--paper-subset", action="store_true",
                            help="restrict to the layers shown in the paper's figures")
    est_parser.set_defaults(func=_cmd_estimate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
