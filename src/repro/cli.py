"""Command line interface: run experiments, inspect layers, list networks.

Examples
--------
Run a fast experiment and print its tables::

    delta-repro experiment fig16

Estimate one network on one GPU::

    delta-repro estimate --network resnet152 --gpu v100 --batch 256

List everything that is available::

    delta-repro list
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from .analysis.tables import render_table
from .core.model import DeltaModel
from .experiments.registry import available_experiments, run_experiment
from .gpu.devices import all_devices, get_device
from .networks.registry import available_networks, get_network


def _cmd_list(_: argparse.Namespace) -> int:
    print("Networks:", ", ".join(available_networks()))
    print("GPUs:", ", ".join(gpu.name for gpu in all_devices()))
    print("Experiments:", ", ".join(available_experiments()))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    result = run_experiment(args.experiment_id)
    print(result.render(precision=args.precision))
    return 0


def _cmd_estimate(args: argparse.Namespace) -> int:
    gpu = get_device(args.gpu)
    network = get_network(args.network, batch=args.batch,
                          paper_subset=args.paper_subset)
    model = DeltaModel(gpu)
    rows = []
    total = 0.0
    for layer in (network.unique_layers() if args.unique else network.conv_layers()):
        estimate = model.estimate(layer)
        total += estimate.time_seconds
        rows.append({
            "layer": layer.name,
            "time_ms": estimate.time_seconds * 1e3,
            "bottleneck": estimate.bottleneck.value,
            "TFLOP/s": estimate.throughput_tflops,
            "L1_GB": estimate.traffic.l1_bytes / 1e9,
            "L2_GB": estimate.traffic.l2_bytes / 1e9,
            "DRAM_GB": estimate.traffic.dram_bytes / 1e9,
        })
    print(f"{network.name} on {gpu.name} (batch {args.batch})")
    print(render_table(rows, precision=args.precision))
    print(f"total conv time: {total * 1e3:.2f} ms")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="delta-repro",
        description="DeLTA GPU performance model reproduction (ISPASS 2019)",
    )
    parser.add_argument("--precision", type=int, default=3,
                        help="decimal places in printed tables")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser("list", help="list networks, GPUs and experiments")
    list_parser.set_defaults(func=_cmd_list)

    exp_parser = subparsers.add_parser("experiment",
                                       help="run one paper table/figure experiment")
    exp_parser.add_argument("experiment_id", choices=available_experiments())
    exp_parser.set_defaults(func=_cmd_experiment)

    est_parser = subparsers.add_parser("estimate",
                                       help="estimate a network's conv layers on a GPU")
    est_parser.add_argument("--network", required=True)
    est_parser.add_argument("--gpu", default="titanxp")
    est_parser.add_argument("--batch", type=int, default=256)
    est_parser.add_argument("--unique", action="store_true",
                            help="only evaluate unique layer configurations")
    est_parser.add_argument("--paper-subset", action="store_true",
                            help="restrict to the layers shown in the paper's figures")
    est_parser.set_defaults(func=_cmd_estimate)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
