"""Command line interface built on the session-based public API.

Every subcommand builds one :class:`repro.api.Session` (from ``--jobs`` /
``--sim-cache``), turns its arguments into a typed request, and prints the
resulting :class:`repro.api.Report` as text or — with ``--format json`` —
as machine-readable JSON.

Examples
--------
Run a fast experiment and print its tables::

    delta-repro experiment fig16

Run a simulation-backed experiment across 4 worker processes with an on-disk
simulation cache, emitting JSON::

    delta-repro experiment fig11 --jobs 4 --sim-cache ~/.cache/delta-repro \\
        --format json

Rerun a figure on one GPU and a reduced population::

    delta-repro experiment fig13 --gpus v100 --networks googlenet --batch 8

Validate the model against the simulator for one GPU::

    delta-repro validate --gpu titanxp --batch 16 --jobs 4

Estimate one network on one GPU, or sweep networks x GPUs x batches.
``--pass`` selects the training pass to model: ``forward`` (default),
``dgrad``, ``wgrad`` or ``training`` (a full fwd+dgrad+wgrad step)::

    delta-repro estimate --network resnet152 --gpu v100 --batch 256
    delta-repro estimate --network alexnet --pass training
    delta-repro estimate --network bert-base --pass training
    delta-repro sweep --networks alexnet vgg16 mlp --gpus titanxp v100 \\
        --batches 64 256 --pass training

List everything that is available (also as JSON)::

    delta-repro list --format json

Failure semantics: a failing request prints a ``kind="error"`` report (text
or JSON) and exits with status 1 instead of a raw traceback; ``--strict``
re-raises instead (fail fast).  ``--timeout``/``--retries`` set the session's
resilience policy for simulation-backed commands (see DESIGN.md, "Failure
semantics").
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Optional, Sequence

from .api import (
    DseRequest,
    EstimateRequest,
    ExperimentRequest,
    Report,
    Session,
    SweepRequest,
    ValidateRequest,
)
from .dse.drivers import driver_names
from .dse.space import Axis, default_space, grid, parse_axis
from .experiments.registry import all_experiment_specs, available_experiments
from .gpu.devices import all_devices, device_aliases
from .networks.registry import available_networks, paper_subset_networks
from .obs import spans as obs_spans
from .obs.log import get_logger

_log = get_logger("cli")

#: process exit codes (argparse itself exits 2 on usage errors).
EXIT_OK = 0
EXIT_REQUEST_FAILED = 1


def _session_from_args(args: argparse.Namespace) -> Session:
    jobs = getattr(args, "jobs", None)
    # None = flag not given (serial); explicit non-positive values are
    # rejected by the Session.jobs setter rather than silently coerced.
    session = Session(jobs=1 if jobs is None else jobs,
                      sim_cache_dir=getattr(args, "sim_cache", None),
                      precision=args.precision)
    timeout = getattr(args, "timeout", None)
    if timeout is not None:
        session.timeout = timeout
    retries = getattr(args, "retries", None)
    if retries is not None:
        session.retries = retries
    return session


def _emit(report: Report, args: argparse.Namespace) -> int:
    if args.format == "json":
        print(report.to_json(indent=2))
    else:
        print(report.render(precision=args.precision))
    return EXIT_OK if report.kind != "error" else EXIT_REQUEST_FAILED


def _write_trace(trace: "obs_spans.Trace", path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace.to_chrome(), handle, indent=2)
    _log.info("wrote chrome trace (%d spans) to %s", len(trace), path)


def _run_request(args: argparse.Namespace, build_request) -> int:
    """Build and run one request, isolating failures unless ``--strict``.

    By default a failing request — bad network name, failed simulation,
    anything the executor raises — prints a ``kind="error"`` report in the
    selected format and exits with :data:`EXIT_REQUEST_FAILED`; ``--strict``
    re-raises the underlying exception instead.  ``--trace OUT.json``
    records a deep span trace of the execution (written even when the
    request fails, so slow failures stay diagnosable).
    """
    request = None
    trace_path = getattr(args, "trace", None)
    started = time.perf_counter()
    collected: Optional["obs_spans.Trace"] = None
    try:
        request = build_request()
        with _session_from_args(args) as session:
            if trace_path:
                with obs_spans.collect_trace(deep=True) as collected:
                    report = session.run(request)
            else:
                report = session.run(request)
    except Exception as exc:
        if getattr(args, "strict", False):
            raise
        report = Report.from_error(exc, request=request)
        # failures that escape the executor carry no phase breakdown, but
        # the end-to-end wall clock is still known here.
        report.meta["timing"] = obs_spans.elapsed_timing(started)
    if trace_path and collected is not None:
        _write_trace(collected, trace_path)
    return _emit(report, args)


def _cmd_list(args: argparse.Namespace) -> int:
    if args.format == "json":
        payload = {
            "networks": available_networks(),
            "paper_subset_variants": paper_subset_networks(),
            "gpus": [{"name": name, "aliases": list(aliases)}
                     for name, aliases in device_aliases().items()],
            "experiments": [{"id": spec.experiment_id, "title": spec.title,
                             "fast": spec.fast,
                             "uses_validation": spec.uses_validation}
                            for spec in all_experiment_specs()],
        }
        print(json.dumps(payload, indent=2))
        return 0
    print("Networks:", ", ".join(available_networks()))
    print("Paper-subset variants:", ", ".join(paper_subset_networks()))
    print("GPUs:", ", ".join(gpu.name for gpu in all_devices()))
    print("Experiments:", ", ".join(available_experiments()))
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    return _run_request(args, lambda: ExperimentRequest(
        experiment=args.experiment_id,
        gpus=tuple(args.gpus) if args.gpus else None,
        networks=tuple(args.networks) if args.networks else None,
        batch=args.batch,
        max_ctas=args.max_ctas,
        layers_per_network=args.layers_per_network,
    ))


def _cmd_validate(args: argparse.Namespace) -> int:
    return _run_request(args, lambda: ValidateRequest(
        gpu=args.gpu,
        batch=args.batch,
        max_ctas=args.max_ctas if args.max_ctas > 0 else None,
        layers_per_network=(args.layers_per_network
                            if args.layers_per_network > 0 else None),
        networks=tuple(args.networks) if args.networks else None,
    ))


def _cmd_estimate(args: argparse.Namespace) -> int:
    return _run_request(args, lambda: EstimateRequest(
        network=args.network,
        gpu=args.gpu,
        batch=args.batch,
        unique=args.unique,
        paper_subset=args.paper_subset,
        passes=args.passes,
    ))


def _cmd_sweep(args: argparse.Namespace) -> int:
    return _run_request(args, lambda: SweepRequest(
        networks=tuple(args.networks),
        gpus=tuple(args.gpus),
        batches=tuple(args.batches),
        unique=not args.all_layers,
        paper_subset=args.paper_subset,
        passes=args.passes,
    ))


def _dse_space_from_args(args: argparse.Namespace):
    networks = tuple(name.strip().lower() for name in args.networks)
    batches = tuple(args.batches)
    if args.axes:
        axes = [parse_axis(text) for text in args.axes]
        keys = {ax.key for ax in axes}
        if len(networks) > 1 and "network" not in keys:
            axes.append(Axis("network", networks))
        if len(batches) > 1 and "batch" not in keys:
            axes.append(Axis("batch", batches))
        return grid(axes, network=networks[0], batch=batches[0],
                    passes=args.passes)
    return default_space(networks=networks, batches=batches,
                         passes=args.passes)


def _cmd_dse(args: argparse.Namespace) -> int:
    return _run_request(args, lambda: DseRequest(
        space=_dse_space_from_args(args),
        gpu=args.gpu,
        driver=args.driver,
        budget=args.budget,
        seed=args.seed,
        objectives=tuple(args.objectives),
        store_path=args.store,
        unique=not args.all_layers,
        confirm_top=args.confirm_top,
        eval_mode=args.eval_mode,
    ))


def _cmd_serve(args: argparse.Namespace) -> int:
    """Serve the estimation API over HTTP until SIGINT/SIGTERM.

    One long-lived session (sharing the CLI's pool/timeout/retry flags)
    backs every request; shutdown drains the connection loop and closes the
    worker pool before the process exits 0.
    """
    from .server import create_app, run_app

    session = _session_from_args(args)
    app = create_app(session, max_memo=args.max_memo)
    try:
        return run_app(app, host=args.host, port=args.port)
    finally:
        session.close()  # idempotent; normally closed by lifespan shutdown
        stats = session.stats
        _log.info(
            "shutdown summary: %d HTTP requests, %d executed / %d memo hits "
            "/ %d coalesced (request cache), %d sim cache hits / %d misses, "
            "%d dse memo hits, session counters %s",
            app.requests_served, app.cache.stats.executed,
            app.cache.stats.memo_hits, app.cache.stats.coalesced,
            stats.sim_cache_hits, stats.sim_cache_misses,
            stats.dse_memo_hits, stats.as_dict())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="delta-repro",
        description="DeLTA GPU performance model reproduction (ISPASS 2019)",
    )
    parser.add_argument("--precision", type=int, default=3,
                        help="decimal places in printed tables")
    subparsers = parser.add_subparsers(dest="command", required=True)

    def add_format_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--format", choices=("text", "json"), default="text",
                         help="output format (default: human-readable text)")

    def add_pass_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--pass", dest="passes",
                         choices=("forward", "dgrad", "wgrad", "training"),
                         default="forward",
                         help="training pass(es) to model: one GEMM pass or "
                              "'training' for the full fwd+dgrad+wgrad step")

    def add_simulation_flags(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--jobs", type=int, default=None,
                         help="worker processes for per-layer simulations")
        sub.add_argument("--sim-cache", default=None, metavar="DIR",
                         help="directory for the on-disk simulation result "
                              "cache (repeat runs skip simulation)")
        sub.add_argument("--timeout", type=float, default=None,
                         metavar="SECONDS",
                         help="per-work-unit wall-clock timeout; stragglers "
                              "are cancelled and reported as structured "
                              "failures (default: unbounded)")
        sub.add_argument("--retries", type=int, default=None,
                         help="retry budget per work unit after a worker "
                              "crash or task error (default: 2)")

    def add_trace_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--trace", default=None, metavar="OUT.json",
                         help="write a chrome://tracing / Perfetto trace of "
                              "the execution: request phases, pool work "
                              "units (re-parented from worker processes) "
                              "and simulator phases")

    def add_strict_flag(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--strict", action="store_true",
                         help="fail fast: re-raise request errors instead of "
                              "emitting a kind=\"error\" report with exit "
                              "code 1")

    list_parser = subparsers.add_parser(
        "list", help="list networks, GPUs and experiments")
    add_format_flag(list_parser)
    list_parser.set_defaults(func=_cmd_list)

    exp_parser = subparsers.add_parser(
        "experiment", help="run one paper table/figure experiment")
    exp_parser.add_argument("experiment_id", choices=available_experiments())
    exp_parser.add_argument("--gpus", nargs="+", default=None, metavar="GPU",
                            help="override the experiment's GPU(s)")
    exp_parser.add_argument("--networks", nargs="+", default=None,
                            metavar="NET",
                            help="override the evaluated network(s)")
    exp_parser.add_argument("--batch", type=int, default=None,
                            help="override the mini-batch size")
    exp_parser.add_argument("--max-ctas", type=int, default=None,
                            help="override the exactly-simulated CTA cap")
    exp_parser.add_argument("--layers-per-network", type=int, default=None,
                            help="override the layers validated per network")
    add_simulation_flags(exp_parser)
    add_strict_flag(exp_parser)
    add_format_flag(exp_parser)
    exp_parser.set_defaults(func=_cmd_experiment)

    val_parser = subparsers.add_parser(
        "validate",
        help="run the model-vs-simulator validation for one GPU")
    val_parser.add_argument("--gpu", default="titanxp")
    val_parser.add_argument("--batch", type=int, default=16)
    val_parser.add_argument("--max-ctas", type=int, default=90,
                            help="CTAs simulated exactly per layer (<=0 = all)")
    val_parser.add_argument("--layers-per-network", type=int, default=4,
                            help="layers per network (<=0 = all unique layers)")
    val_parser.add_argument("--networks", nargs="+", default=None,
                            metavar="NET",
                            help="restrict the population to these networks")
    add_simulation_flags(val_parser)
    add_trace_flag(val_parser)
    add_strict_flag(val_parser)
    add_format_flag(val_parser)
    val_parser.set_defaults(func=_cmd_validate)

    est_parser = subparsers.add_parser(
        "estimate", help="estimate a network's conv layers on a GPU")
    est_parser.add_argument("--network", required=True)
    est_parser.add_argument("--gpu", default="titanxp")
    est_parser.add_argument("--batch", type=int, default=256)
    est_parser.add_argument("--unique", action="store_true",
                            help="only evaluate unique layer configurations")
    est_parser.add_argument("--paper-subset", action="store_true",
                            help="restrict to the layers shown in the paper's "
                                 "figures")
    add_pass_flag(est_parser)
    add_trace_flag(est_parser)
    add_strict_flag(est_parser)
    add_format_flag(est_parser)
    est_parser.set_defaults(func=_cmd_estimate)

    sweep_parser = subparsers.add_parser(
        "sweep",
        help="model-only sweep over networks x GPUs x batch sizes")
    sweep_parser.add_argument("--networks", nargs="+",
                              default=["alexnet", "vgg16", "googlenet",
                                       "resnet152"], metavar="NET")
    sweep_parser.add_argument("--gpus", nargs="+",
                              default=["titanxp", "v100"], metavar="GPU")
    sweep_parser.add_argument("--batches", nargs="+", type=int,
                              default=[64, 256], metavar="B")
    sweep_parser.add_argument("--all-layers", action="store_true",
                              help="evaluate every conv layer, not just the "
                                   "unique configurations")
    sweep_parser.add_argument("--paper-subset",
                              action=argparse.BooleanOptionalAction,
                              default=True,
                              help="use the paper-subset network variants "
                                   "(default; --no-paper-subset for the "
                                   "full networks)")
    add_pass_flag(sweep_parser)
    add_trace_flag(sweep_parser)
    add_strict_flag(sweep_parser)
    add_format_flag(sweep_parser)
    sweep_parser.set_defaults(func=_cmd_sweep)

    dse_parser = subparsers.add_parser(
        "dse",
        help="design-space exploration: search GPU designs x workloads and "
             "report the Pareto frontier")
    dse_parser.add_argument("--gpu", default="titanxp",
                            help="baseline GPU the design multipliers scale")
    dse_parser.add_argument("--networks", nargs="+", default=["resnet152"],
                            metavar="NET")
    dse_parser.add_argument("--batches", nargs="+", type=int, default=[256],
                            metavar="B")
    dse_parser.add_argument("--axis", dest="axes", action="append",
                            default=None, metavar="KEY=V1,V2,...",
                            help="add a search axis (repeatable), e.g. "
                                 "--axis num_sm=1,2,4 --axis cta_tile=128,256; "
                                 "without axes the stock 162-point grid runs")
    dse_parser.add_argument("--driver", choices=driver_names(),
                            default="grid",
                            help="search strategy: exhaustive grid, seeded "
                                 "random sampling, or cheap-first successive "
                                 "halving")
    dse_parser.add_argument("--budget", type=int, default=None,
                            help="evaluation budget (required for "
                                 "random/halving; caps grid)")
    dse_parser.add_argument("--seed", type=int, default=0,
                            help="seed for the random/halving drivers")
    dse_parser.add_argument("--objectives", nargs="+",
                            default=["throughput", "dram", "cost"],
                            metavar="OBJ",
                            help="Pareto objectives: throughput, time, dram, "
                                 "cost")
    dse_parser.add_argument("--store", default=None, metavar="JSONL",
                            help="resumable result store; rerunning skips "
                                 "already-evaluated points")
    dse_parser.add_argument("--all-layers", action="store_true",
                            help="evaluate every conv layer, not just unique "
                                 "configurations")
    dse_parser.add_argument("--confirm-top", type=int, default=0, metavar="N",
                            help="simulator-confirm the N best frontier "
                                 "points (0 = analytic model only)")
    dse_parser.add_argument("--eval-mode", choices=("batch", "task"),
                            default="batch",
                            help="point evaluation: vectorized "
                                 "array-of-points batches (default) or the "
                                 "scalar per-point reference pipeline; "
                                 "results are bit-identical")
    add_pass_flag(dse_parser)
    add_simulation_flags(dse_parser)
    add_trace_flag(dse_parser)
    add_strict_flag(dse_parser)
    add_format_flag(dse_parser)
    dse_parser.set_defaults(func=_cmd_dse)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve the estimation API over HTTP (one shared session; "
             "identical concurrent requests coalesce onto one execution)")
    serve_parser.add_argument("--host", default="127.0.0.1",
                              help="interface to bind (default: loopback)")
    serve_parser.add_argument("--port", type=int, default=8421,
                              help="TCP port (0 = OS-assigned)")
    serve_parser.add_argument("--max-memo", type=int, default=1024,
                              metavar="N",
                              help="completed reports memoized server-wide "
                                   "(0 disables the request memo)")
    add_simulation_flags(serve_parser)
    serve_parser.set_defaults(func=_cmd_serve)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
