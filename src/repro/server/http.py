"""Dependency-free asyncio HTTP/1.1 server for the ASGI application.

The estimation service's app (:mod:`repro.server.app`) is a standard ASGI 3
callable, so any ASGI server can host it.  This module provides the one the
repository ships with — a small :mod:`asyncio` ``start_server``-based
HTTP/1.1 implementation — so ``repro serve`` works with nothing beyond the
standard library.  It supports exactly what the service needs:

* request parsing with ``Content-Length`` bodies (plus ``Expect:
  100-continue`` for curl-friendly large POSTs),
* fixed-length responses with keep-alive, and
* ``Transfer-Encoding: chunked`` streaming for endpoints that send bodies
  incrementally (the NDJSON job event stream).

Two entry points:

* :func:`run_app` — blocking foreground serve with SIGINT/SIGTERM handlers
  that close the session pool cleanly.  Used by ``repro serve``.
* :class:`ServerThread` — context manager running the loop on a background
  thread.  Used by tests and benchmarks to exercise the real socket path
  in-process.
"""

from __future__ import annotations

import asyncio
import contextlib
import signal
import socket
import threading
from typing import Callable, Optional, Tuple

from ..obs.log import get_logger

_log = get_logger("server.http")

#: request-line + headers larger than this are rejected outright.
MAX_HEADER_BYTES = 64 * 1024

#: request bodies larger than this are rejected with 413.
MAX_BODY_BYTES = 16 * 1024 * 1024

_STATUS_PHRASES = {
    200: "OK", 202: "Accepted", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 409: "Conflict", 413: "Payload Too Large",
    500: "Internal Server Error", 503: "Service Unavailable",
}


def _phrase(status: int) -> str:
    return _STATUS_PHRASES.get(status, "Unknown")


class _Connection:
    """One client connection: parse requests, bridge each to the ASGI app."""

    def __init__(self, app, reader: asyncio.StreamReader,
                 writer: asyncio.StreamWriter) -> None:
        self.app = app
        self.reader = reader
        self.writer = writer

    async def serve(self) -> None:
        try:
            while await self._one_request():
                pass
        except (ConnectionError, asyncio.IncompleteReadError,
                asyncio.LimitOverrunError):
            pass  # client went away mid-request; nothing to answer
        finally:
            with contextlib.suppress(ConnectionError):
                self.writer.close()
                await self.writer.wait_closed()

    async def _one_request(self) -> bool:
        """Serve one request; True when the connection should be kept alive."""
        head = await self._read_head()
        if head is None:
            return False
        request_line, headers = head
        try:
            method, target, version = request_line.split(" ", 2)
        except ValueError:
            await self._send_plain(400, "malformed request line")
            return False
        path, _, query = target.partition("?")
        body, ok = await self._read_body(headers)
        if not ok:
            return False
        keep_alive = (version.strip() != "HTTP/1.0"
                      and headers.get("connection", "").lower() != "close")
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": method.upper(),
            "path": path,
            "raw_path": target.encode("latin-1"),
            "query_string": query.encode("latin-1"),
            "headers": [(name.encode("latin-1"), value.encode("latin-1"))
                        for name, value in headers.items()],
            "server": self.writer.get_extra_info("sockname"),
            "client": self.writer.get_extra_info("peername"),
        }
        responder = _Responder(self.writer, keep_alive)
        try:
            await self.app(scope, _receiver(body), responder.send)
        except Exception:
            # the app catches its own errors; this guards the bridge itself.
            _log.exception("unhandled error while serving %s %s",
                           scope["method"], path)
            if not responder.started:
                await self._send_plain(500, "internal server error")
            return False
        await responder.finalize()
        return keep_alive and responder.completed

    async def _read_head(self) -> Optional[Tuple[str, "dict[str, str]"]]:
        try:
            raw = await self.reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None  # clean EOF between requests
        except asyncio.LimitOverrunError:
            await self._send_plain(400, "headers too large")
            return None
        if len(raw) > MAX_HEADER_BYTES:
            await self._send_plain(400, "headers too large")
            return None
        lines = raw.decode("latin-1").split("\r\n")
        headers: "dict[str, str]" = {}
        for line in lines[1:]:
            if not line:
                continue
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return lines[0], headers

    async def _read_body(self, headers: "dict[str, str]") -> Tuple[bytes, bool]:
        length_text = headers.get("content-length", "0")
        try:
            length = int(length_text)
        except ValueError:
            await self._send_plain(400, "bad content-length")
            return b"", False
        if length > MAX_BODY_BYTES:
            await self._send_plain(413, "request body too large")
            return b"", False
        if "100-continue" in headers.get("expect", "").lower():
            self.writer.write(b"HTTP/1.1 100 Continue\r\n\r\n")
            await self.writer.drain()
        if length == 0:
            return b"", True
        try:
            return await self.reader.readexactly(length), True
        except asyncio.IncompleteReadError:
            return b"", False

    async def _send_plain(self, status: int, message: str) -> None:
        body = (message + "\n").encode("utf-8")
        self.writer.write(
            f"HTTP/1.1 {status} {_phrase(status)}\r\n"
            f"content-type: text/plain\r\n"
            f"content-length: {len(body)}\r\n"
            f"connection: close\r\n\r\n".encode("latin-1") + body)
        await self.writer.drain()


def _receiver(body: bytes):
    """An ASGI ``receive`` yielding the buffered body, then disconnect."""
    messages = [{"type": "http.request", "body": body, "more_body": False}]

    async def receive():
        if messages:
            return messages.pop(0)
        return {"type": "http.disconnect"}

    return receive


class _Responder:
    """ASGI ``send`` callable writing HTTP/1.1 to the stream writer.

    Responses with a ``content-length`` header are written as-is; without
    one the body is streamed with chunked transfer-encoding (how the NDJSON
    event stream stays open while a job runs).
    """

    def __init__(self, writer: asyncio.StreamWriter, keep_alive: bool) -> None:
        self.writer = writer
        self.keep_alive = keep_alive
        self.started = False
        self.completed = False
        self.chunked = False

    async def send(self, message) -> None:
        if message["type"] == "http.response.start":
            headers = [(name.decode("latin-1"), value.decode("latin-1"))
                       for name, value in message.get("headers", [])]
            has_length = any(name.lower() == "content-length"
                             for name, _ in headers)
            self.chunked = not has_length
            if self.chunked:
                headers.append(("transfer-encoding", "chunked"))
            headers.append(("connection",
                            "keep-alive" if self.keep_alive else "close"))
            status = message["status"]
            head = [f"HTTP/1.1 {status} {_phrase(status)}"]
            head.extend(f"{name}: {value}" for name, value in headers)
            self.writer.write(("\r\n".join(head) + "\r\n\r\n")
                              .encode("latin-1"))
            self.started = True
            await self.writer.drain()
            return
        if message["type"] == "http.response.body":
            body = message.get("body", b"")
            if self.chunked:
                if body:
                    self.writer.write(f"{len(body):x}\r\n".encode("latin-1")
                                      + body + b"\r\n")
                if not message.get("more_body", False):
                    self.writer.write(b"0\r\n\r\n")
                    self.completed = True
            else:
                self.writer.write(body)
                if not message.get("more_body", False):
                    self.completed = True
            await self.writer.drain()

    async def finalize(self) -> None:
        if self.started and not self.completed and self.chunked:
            self.writer.write(b"0\r\n\r\n")
            self.completed = True
            await self.writer.drain()


async def _serve(app, host: str, port: int,
                 ready: Optional[Callable[[str, int], None]],
                 stop: asyncio.Event) -> None:
    async def handle(reader, writer):
        await _Connection(app, reader, writer).serve()

    server = await asyncio.start_server(handle, host, port,
                                        limit=MAX_HEADER_BYTES)
    bound = server.sockets[0].getsockname()
    if ready is not None:
        ready(bound[0], bound[1])
    # drive the app's lifespan protocol around the serving window so the
    # session pool is closed exactly once on shutdown.
    lifespan = _Lifespan(app)
    await lifespan.startup()
    try:
        async with server:
            await stop.wait()
    finally:
        await lifespan.shutdown()


class _Lifespan:
    """Minimal driver for the ASGI lifespan protocol."""

    def __init__(self, app) -> None:
        self.app = app
        self._to_app: "asyncio.Queue[dict]" = asyncio.Queue()
        self._complete = asyncio.Event()
        self._task: Optional[asyncio.Task] = None

    async def startup(self) -> None:
        async def receive():
            return await self._to_app.get()

        async def send(message):
            self._complete.set()

        self._task = asyncio.get_running_loop().create_task(
            self.app({"type": "lifespan", "asgi": {"version": "3.0"}},
                     receive, send))
        await self._to_app.put({"type": "lifespan.startup"})
        await self._complete.wait()

    async def shutdown(self) -> None:
        if self._task is None:
            return
        self._complete.clear()
        await self._to_app.put({"type": "lifespan.shutdown"})
        await self._complete.wait()
        await self._task


def run_app(app, host: str = "127.0.0.1", port: int = 8421) -> int:
    """Serve ``app`` in the foreground until SIGINT/SIGTERM; returns 0.

    Prints a parseable ``listening on http://host:port`` line once the
    socket is bound, then blocks.  On signal, stops accepting, drives the
    app's lifespan shutdown (closing the session's worker pool) and returns.
    """
    async def main() -> None:
        stop = asyncio.Event()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            loop.add_signal_handler(signum, stop.set)

        def ready(bound_host: str, bound_port: int) -> None:
            # the parseable readiness line stays on stdout for scripts;
            # diagnostics go through the logger (stderr, REPRO_LOG level).
            print(f"listening on http://{bound_host}:{bound_port}",
                  flush=True)
            _log.info("serving on http://%s:%s", bound_host, bound_port)

        await _serve(app, host, port, ready, stop)
        _log.info("shutdown complete")

    asyncio.run(main())
    return 0


class ServerThread:
    """Run the server on a background thread; for tests and benchmarks.

    ::

        with ServerThread(create_app(session)) as server:
            conn = http.client.HTTPConnection(server.host, server.port)
            ...

    Binding to port 0 picks a free port; :attr:`host`/:attr:`port` report
    the bound address once ``__enter__`` returns.
    """

    def __init__(self, app, host: str = "127.0.0.1", port: int = 0) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._error: Optional[BaseException] = None

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, daemon=True,
                                        name="repro-server")
        self._thread.start()
        if not self._ready.wait(timeout=30.0):
            raise RuntimeError("server thread failed to start in time")
        if self._error is not None:
            raise RuntimeError("server thread failed") from self._error
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def _run(self) -> None:
        async def main() -> None:
            self._stop = asyncio.Event()
            self._loop = asyncio.get_running_loop()

            def ready(host: str, port: int) -> None:
                self.host, self.port = host, port
                self._ready.set()

            await _serve(self.app, self.host, self.port, ready, self._stop)

        try:
            asyncio.run(main())
        except BaseException as exc:  # surface bind errors to __enter__
            self._error = exc
            self._ready.set()

    def stop(self) -> None:
        """Stop serving and join the thread (idempotent)."""
        if self._loop is not None and self._stop is not None:
            with contextlib.suppress(RuntimeError):
                self._loop.call_soon_threadsafe(self._stop.set)
        if self._thread is not None:
            self._thread.join(timeout=30.0)
            self._thread = None

    @property
    def base_url(self) -> str:
        return f"http://{self.host}:{self.port}"


def pick_free_port(host: str = "127.0.0.1") -> int:
    """An OS-assigned free TCP port (for subprocess server tests)."""
    with socket.socket() as probe:
        probe.bind((host, 0))
        return probe.getsockname()[1]
