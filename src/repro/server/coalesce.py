"""Server-wide request memo with in-flight coalescing.

The long-lived :class:`~repro.api.Session` behind the service already
dedupes *work units* (per-layer simulations, DSE point evaluations) across
requests through its ``structural_key``-based memo, in front of the on-disk
sim cache.  This module adds the request-level layer above it:

* a bounded LRU **memo** of completed reports keyed by the request's content
  key (see :func:`repro.server.schemas.parse_body`) — a repeated identical
  request costs one dictionary lookup, zero model evaluations; and
* **coalescing** of concurrent identical requests: the first arrival starts
  the (thread-offloaded) execution, every later arrival awaits the same
  in-flight future, and when the execution finishes — or fails — all waiters
  observe the same report.  N concurrent identical requests therefore
  execute exactly once, which the fault-injection suite pins with a
  ``times=1`` ticket at the ``"serve"`` seam.

Error-kind reports propagate to every coalesced waiter but are *not*
memoized: a transient failure (worker crash, timeout) must not poison the
cache for later retries.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Dict, Optional

from ..api.report import Report
from ..obs.metrics import StatsView


class CoalesceStats(StatsView):
    """Counters describing what the request cache absorbed.

    A registry-backed view (``repro_coalesce_*`` counters in ``registry``,
    merged into the server's ``GET /metrics``); attribute API unchanged.
    """

    _AREA = "coalesce"
    _FIELDS = {
        "memo_hits":
            "requests answered from the completed-report memo",
        "coalesced":
            "requests that piggybacked on an identical in-flight execution",
        "executed":
            "requests that actually executed",
        "evictions":
            "memo entries dropped by the LRU bound",
    }


@dataclass
class CoalescingCache:
    """Keyed report memo + single-flight execution for identical requests.

    Single-event-loop use only (the service runs one loop); the blocking
    work itself happens in worker threads via the awaitable the caller
    passes in, so the loop stays responsive while requests execute.
    """

    #: completed reports kept (LRU); 0 disables memoization entirely.
    max_entries: int = 1024
    stats: CoalesceStats = field(default_factory=CoalesceStats)
    _memo: "OrderedDict[str, Report]" = field(default_factory=OrderedDict)
    _inflight: Dict[str, "asyncio.Future[Report]"] = field(
        default_factory=dict)

    def lookup(self, key: str) -> Optional[Report]:
        """The memoized report for ``key``, refreshing its LRU position."""
        report = self._memo.get(key)
        if report is not None:
            self._memo.move_to_end(key)
            self.stats.memo_hits += 1
        return report

    async def run(self, key: str,
                  execute: Callable[[], Awaitable[Report]]) -> Report:
        """Return ``key``'s report, executing at most once concurrently.

        ``execute`` is awaited only by the first concurrent caller; everyone
        else shares its outcome.  If the execution raises, every waiter sees
        the exception; if it returns an error-kind report, every waiter gets
        that report and nothing is memoized.
        """
        memoized = self.lookup(key)
        if memoized is not None:
            return memoized
        inflight = self._inflight.get(key)
        if inflight is not None:
            self.stats.coalesced += 1
            # shield: one waiter's cancellation must not cancel the shared
            # execution out from under the other waiters.
            return await asyncio.shield(inflight)
        future: "asyncio.Future[Report]" = (
            asyncio.get_running_loop().create_future())
        self._inflight[key] = future
        self.stats.executed += 1
        try:
            report = await execute()
        except BaseException as exc:
            if not future.cancelled():
                future.set_exception(exc)
                # without a waiter the exception would be logged as never
                # retrieved; mark it consumed — the raise below reports it.
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(report)
            if report.kind != "error":
                self._remember(key, report)
            return report
        finally:
            self._inflight.pop(key, None)

    def _remember(self, key: str, report: Report) -> None:
        if self.max_entries <= 0:
            return
        self._memo[key] = report
        self._memo.move_to_end(key)
        while len(self._memo) > self.max_entries:
            self._memo.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        """Drop every memoized report (in-flight executions are unaffected)."""
        self._memo.clear()

    def __len__(self) -> int:
        return len(self._memo)
