"""Estimation-as-a-service: the async HTTP layer over :mod:`repro.api`.

One long-lived :class:`~repro.api.Session` behind an ASGI application
(:func:`create_app`), served either by the bundled dependency-free asyncio
HTTP server (:func:`run_app`, ``repro serve``) or by any third-party ASGI
server.  Request bodies deserialize into the existing typed request
dataclasses; responses are ``Report`` JSON bit-identical to the CLI's
``--format json`` output.  Identical concurrent requests coalesce onto a
single execution, completed reports are memoized server-wide, and long
sweeps/DSE runs become pollable jobs with NDJSON progress streams.
"""

from .app import ReproApp, create_app
from .coalesce import CoalesceStats, CoalescingCache
from .http import ServerThread, pick_free_port, run_app
from .jobs import Job, JobManager
from .schemas import PARSERS, BadRequest, ParsedRequest, parse_body

__all__ = [
    "BadRequest",
    "CoalesceStats",
    "CoalescingCache",
    "Job",
    "JobManager",
    "PARSERS",
    "ParsedRequest",
    "ReproApp",
    "ServerThread",
    "create_app",
    "parse_body",
    "pick_free_port",
    "run_app",
]
