"""Async job manager: long requests become pollable, streamable jobs.

A sweep over many networks or a thousand-point design-space exploration can
run for minutes; holding an HTTP response open that long serves nobody.
Any POST route accepts ``"job": true`` in its body, turning the request into
a *job*: the POST returns ``202`` with a job id immediately, the request
executes on a worker thread, ``GET /v1/jobs/{id}`` polls its status, and
``GET /v1/jobs/{id}/events`` streams NDJSON progress lines — one per
completed sweep combination or fan-out work unit, bridged from the
context-local :func:`repro.api.observe_progress` hook — until the terminal
``done`` event.

Jobs coalesce exactly like synchronous requests: submitting a key that is
already running returns the *same* job (same id, same event stream), and the
execution itself goes through the server's coalescing cache, so a job and a
concurrent synchronous request for the same content share one execution.

Everything here runs on one event loop; the only cross-thread entry point is
:meth:`Job.post_threadsafe`, which worker threads use to publish progress.
"""

from __future__ import annotations

import asyncio
import itertools
from typing import (AsyncIterator, Awaitable, Callable, Dict, List, Optional,
                    Tuple)

from ..api.report import Report

#: finished jobs kept for polling before the oldest are dropped.
MAX_FINISHED_JOBS = 256


class Job:
    """One background request: status, result report, progress event log."""

    def __init__(self, job_id: str, route: str, key: str) -> None:
        self.job_id = job_id
        self.route = route
        self.key = key
        self.status = "running"  # -> "done" | "error"
        self.report: Optional[Report] = None
        #: chrome-trace payload captured when submitted with "trace": true.
        self.trace: Optional[Dict[str, object]] = None
        self.events: List[Dict[str, object]] = []
        self._changed = asyncio.Event()
        self._loop = asyncio.get_running_loop()

    @property
    def finished(self) -> bool:
        return self.status != "running"

    def post(self, event: Dict[str, object]) -> None:
        """Append one event (event-loop thread only) and wake subscribers."""
        self.events.append(event)
        self._changed.set()

    def post_threadsafe(self, event: Dict[str, object]) -> None:
        """Publish one progress event from a worker thread."""
        self._loop.call_soon_threadsafe(self.post, event)

    def finish(self, report: Report) -> None:
        """Record the terminal report and emit the ``done`` event."""
        self.report = report
        self.status = "error" if report.kind == "error" else "done"
        self.post({"event": "done", "job_id": self.job_id,
                   "status": self.status, "kind": report.kind,
                   "title": report.title})

    def describe(self) -> Dict[str, object]:
        """Poll payload: status plus where to fetch events and the report."""
        payload: Dict[str, object] = {
            "job_id": self.job_id,
            "route": self.route,
            "key": self.key,
            "status": self.status,
            "events": len(self.events),
            "events_url": f"/v1/jobs/{self.job_id}/events",
        }
        if self.finished:
            payload["report_url"] = f"/v1/jobs/{self.job_id}/report"
        return payload

    async def stream_events(self) -> AsyncIterator[Dict[str, object]]:
        """Yield every event from the start, live until the terminal one.

        Replays the backlog first, so a subscriber attaching after
        completion still sees the full history.
        """
        index = 0
        while True:
            while index < len(self.events):
                event = self.events[index]
                index += 1
                yield event
                if event.get("event") == "done":
                    return
            self._changed.clear()
            # re-check before sleeping: a post between the drain above and
            # the clear would otherwise be missed until the next event.
            if index < len(self.events):
                continue
            await self._changed.wait()


#: the execution a job runs: takes the job (for progress posting), returns
#: the final report.  Exceptions are converted to error reports here.
JobExecutor = Callable[[Job], Awaitable[Report]]


class JobManager:
    """Owns every job of one server: submission, coalescing, retention."""

    def __init__(self, max_finished: int = MAX_FINISHED_JOBS) -> None:
        self._jobs: "Dict[str, Job]" = {}
        self._running_by_key: Dict[str, Job] = {}
        self._ids = itertools.count(1)
        self.max_finished = max_finished

    def submit(self, route: str, key: str,
               execute: JobExecutor) -> Tuple[Job, bool]:
        """Start (or join) the job for ``key``.

        Returns ``(job, coalesced)``: when a job with the same content key is
        still running, that job is returned instead of starting a duplicate.
        """
        existing = self._running_by_key.get(key)
        if existing is not None and not existing.finished:
            return existing, True
        job = Job(f"job-{next(self._ids):06d}", route, key)
        self._jobs[job.job_id] = job
        self._running_by_key[key] = job
        job.post({"event": "started", "job_id": job.job_id, "route": route})
        asyncio.get_running_loop().create_task(self._run(job, execute))
        return job, False

    async def _run(self, job: Job, execute: JobExecutor) -> None:
        try:
            report = await execute(job)
        except Exception as exc:  # defense: executors normally self-report
            report = Report.from_error(exc)
        job.finish(report)
        if self._running_by_key.get(job.key) is job:
            del self._running_by_key[job.key]
        self._trim()

    def _trim(self) -> None:
        finished = [job_id for job_id, job in self._jobs.items()
                    if job.finished]
        for job_id in finished[:max(0, len(finished) - self.max_finished)]:
            del self._jobs[job_id]

    @property
    def running(self) -> int:
        """Jobs currently executing (the ``repro_jobs_active`` gauge)."""
        return len(self._running_by_key)

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def describe_all(self) -> List[Dict[str, object]]:
        return [job.describe() for job in self._jobs.values()]

    def __len__(self) -> int:
        return len(self._jobs)
