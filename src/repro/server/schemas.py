"""JSON request bodies <-> typed API requests, with structured 400 errors.

The service exposes exactly the request types the library already has
(:class:`EstimateRequest`, :class:`SweepRequest`, :class:`ValidateRequest`,
:class:`DseRequest`, :class:`ExperimentRequest`); this module is the thin,
strict deserialization layer in front of them.  Strict means:

* unknown body fields are rejected (a typo'd ``"bacth"`` is a 400, not a
  silently-default batch);
* unknown network / GPU / experiment ids are rejected *at parse time*, so
  the client gets a 400 naming the id instead of a 500 from deep inside the
  executor;
* every rejection raises :class:`BadRequest`, which the app maps onto an
  HTTP 400 whose body has the same structured shape as a
  ``Report(kind="error")``.

Each parse also produces the request's *content key*: a stable SHA-1 over
the canonical (normalized) request payload.  The key is what the server-wide
coalescing cache dedupes on — two bodies that normalize to the same request
(``"AlexNet"`` vs ``"alexnet"``, reordered fields, default vs explicit
values) share one execution and one memo slot, the request-level analogue of
the session's ``structural_key``-based work-unit keys.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Sequence, Tuple

from ..api.requests import (DseRequest, EstimateRequest, ExperimentRequest,
                            Request, SweepRequest, ValidateRequest)
from ..dse.space import AXIS_KEYS, Axis, SearchSpace, default_space, grid
from ..experiments.registry import available_experiments
from ..gpu.devices import get_device
from ..networks.registry import available_networks


class BadRequest(ValueError):
    """A request body the service refuses: malformed, unknown ids, bad types."""


@dataclass(frozen=True)
class ParsedRequest:
    """One deserialized request plus its coalescing identity."""

    #: the route's typed request, ready for ``Session.run``.
    request: Request
    #: stable content key of the normalized request (sha1 hex digest).
    key: str
    #: run asynchronously as a job instead of inline (body field ``"job"``).
    as_job: bool
    #: record a deep execution trace on the job (body field ``"trace"``);
    #: only valid together with ``"job": true``.
    with_trace: bool = False


# ----------------------------------------------------------------------
# Field coercion helpers (every failure is a BadRequest naming the field)
# ----------------------------------------------------------------------

def _check_fields(body: Mapping[str, object], allowed: Sequence[str],
                  route: str) -> None:
    if not isinstance(body, Mapping):
        raise BadRequest(
            f"{route}: request body must be a JSON object, "
            f"got {type(body).__name__}")
    unknown = sorted(set(body) - set(allowed) - {"job", "trace"})
    if unknown:
        raise BadRequest(
            f"{route}: unknown field(s) {unknown}; "
            f"accepted fields are {sorted(allowed)} "
            f"(plus \"job\" and \"trace\")")


def _bool(body: Mapping[str, object], field: str, default: bool,
          route: str) -> bool:
    value = body.get(field, default)
    if not isinstance(value, bool):
        raise BadRequest(f"{route}: field {field!r} must be a boolean, "
                         f"got {value!r}")
    return value


def _int(body: Mapping[str, object], field: str, default: Optional[int],
         route: str) -> Optional[int]:
    value = body.get(field, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequest(f"{route}: field {field!r} must be an integer, "
                         f"got {value!r}")
    return value


def _float(body: Mapping[str, object], field: str,
           route: str) -> Optional[float]:
    value = body.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequest(f"{route}: field {field!r} must be a number, "
                         f"got {value!r}")
    return float(value)


def _job_flags(body: Mapping[str, object], route: str) -> Tuple[bool, bool]:
    """The shared ``"job"``/``"trace"`` execution flags of every route.

    A deep trace is recorded per *job* (attached to its poll payload), so
    ``"trace": true`` on a synchronous request is a 400 — synchronous
    responses already carry the per-phase ``meta["timing"]`` breakdown.
    """
    as_job = _bool(body, "job", False, route)
    with_trace = _bool(body, "trace", False, route)
    if with_trace and not as_job:
        raise BadRequest(
            f"{route}: \"trace\" requires \"job\": true — synchronous "
            f"responses carry meta[\"timing\"] instead; submit a job and "
            f"poll /v1/jobs/{{id}} for the chrome trace")
    return as_job, with_trace


def _str(body: Mapping[str, object], field: str, default: Optional[str],
         route: str) -> Optional[str]:
    value = body.get(field, default)
    if value is None:
        return None
    if not isinstance(value, str):
        raise BadRequest(f"{route}: field {field!r} must be a string, "
                         f"got {value!r}")
    return value


def _str_list(body: Mapping[str, object], field: str,
              route: str) -> Optional[Tuple[str, ...]]:
    value = body.get(field)
    if value is None:
        return None
    if isinstance(value, str):
        value = [value]
    if (not isinstance(value, Sequence)
            or not all(isinstance(item, str) for item in value)
            or not value):
        raise BadRequest(f"{route}: field {field!r} must be a non-empty "
                         f"list of strings, got {value!r}")
    return tuple(value)


def _int_list(body: Mapping[str, object], field: str,
              route: str) -> Optional[Tuple[int, ...]]:
    value = body.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or isinstance(value, int):
        value = [value]
    if (not isinstance(value, Sequence) or not value
            or not all(isinstance(item, int) and not isinstance(item, bool)
                       for item in value)):
        raise BadRequest(f"{route}: field {field!r} must be a non-empty "
                         f"list of integers, got {value!r}")
    return tuple(value)


# ----------------------------------------------------------------------
# Registry validation (400 for unknown ids, never a deep 500)
# ----------------------------------------------------------------------

def _check_network(name: str, route: str) -> str:
    key = name.strip().lower()
    known = available_networks()
    if key not in known:
        raise BadRequest(f"{route}: unknown network {name!r}; "
                         f"known networks: {known}")
    return key


def _check_gpu(name: str, route: str) -> str:
    key = name.strip().lower()
    try:
        get_device(key)
    except KeyError as exc:
        raise BadRequest(f"{route}: {exc.args[0]}") from None
    return key


def _check_experiment(name: str, route: str) -> str:
    key = name.strip().lower()
    known = available_experiments()
    if key not in known:
        raise BadRequest(f"{route}: unknown experiment {name!r}; "
                         f"known experiments: {known}")
    return key


# ----------------------------------------------------------------------
# Per-route parsers
# ----------------------------------------------------------------------

def _wrap_construction(route: str, build) -> Request:
    """Constructor ``ValueError``/``TypeError`` (bad batch, ...) -> 400."""
    try:
        return build()
    except BadRequest:
        raise
    except (ValueError, TypeError, KeyError) as exc:
        raise BadRequest(f"{route}: {exc}") from exc


def parse_estimate(body: Mapping[str, object]) -> ParsedRequest:
    route = "estimate"
    fields = ("network", "gpu", "batch", "unique", "paper_subset", "passes")
    _check_fields(body, fields, route)
    network = _str(body, "network", None, route)
    if network is None:
        raise BadRequest(f"{route}: field 'network' is required")
    request = _wrap_construction(route, lambda: EstimateRequest(
        network=_check_network(network, route),
        gpu=_check_gpu(_str(body, "gpu", "titanxp", route), route),
        batch=_int(body, "batch", 256, route),
        unique=_bool(body, "unique", False, route),
        paper_subset=_bool(body, "paper_subset", False, route),
        passes=_str(body, "passes", "forward", route),
    ))
    canonical = {
        "route": route, "network": request.network, "gpu": request.gpu,
        "batch": request.batch, "unique": request.unique,
        "paper_subset": request.paper_subset, "passes": request.passes,
    }
    return ParsedRequest(request, _content_key(canonical),
                         *_job_flags(body, route))


def parse_sweep(body: Mapping[str, object]) -> ParsedRequest:
    route = "sweep"
    fields = ("networks", "gpus", "batches", "unique", "paper_subset",
              "passes")
    _check_fields(body, fields, route)
    networks = _str_list(body, "networks", route) or (
        "alexnet", "vgg16", "googlenet", "resnet152")
    gpus = _str_list(body, "gpus", route) or ("titanxp", "v100")
    request = _wrap_construction(route, lambda: SweepRequest(
        networks=tuple(_check_network(name, route) for name in networks),
        gpus=tuple(_check_gpu(name, route) for name in gpus),
        batches=_int_list(body, "batches", route) or (64, 256),
        unique=_bool(body, "unique", True, route),
        paper_subset=_bool(body, "paper_subset", True, route),
        passes=_str(body, "passes", "forward", route),
    ))
    canonical = {
        "route": route, "networks": list(request.networks),
        "gpus": list(request.gpus), "batches": list(request.batches),
        "unique": request.unique, "paper_subset": request.paper_subset,
        "passes": request.passes,
    }
    return ParsedRequest(request, _content_key(canonical),
                         *_job_flags(body, route))


def parse_validate(body: Mapping[str, object]) -> ParsedRequest:
    route = "validate"
    fields = ("gpu", "batch", "max_ctas", "layers_per_network", "networks",
              "timeout", "retries")
    _check_fields(body, fields, route)
    networks = _str_list(body, "networks", route)
    request = _wrap_construction(route, lambda: ValidateRequest(
        gpu=_check_gpu(_str(body, "gpu", "titanxp", route), route),
        batch=_int(body, "batch", 32, route),
        max_ctas=_int(body, "max_ctas", 180, route),
        layers_per_network=_int(body, "layers_per_network", 4, route),
        networks=(tuple(_check_network(name, route) for name in networks)
                  if networks is not None else None),
        timeout=_float(body, "timeout", route),
        retries=_int(body, "retries", None, route),
    ))
    canonical = {
        "route": route, "gpu": request.gpu, "batch": request.batch,
        "max_ctas": request.max_ctas,
        "layers_per_network": request.layers_per_network,
        "networks": list(request.networks) if request.networks else None,
        "timeout": request.timeout, "retries": request.retries,
    }
    return ParsedRequest(request, _content_key(canonical),
                         *_job_flags(body, route))


def parse_experiment(body: Mapping[str, object]) -> ParsedRequest:
    route = "experiment"
    fields = ("experiment", "gpus", "networks", "batch", "max_ctas",
              "layers_per_network", "timeout", "retries")
    _check_fields(body, fields, route)
    experiment = _str(body, "experiment", None, route)
    if experiment is None:
        raise BadRequest(f"{route}: field 'experiment' is required")
    gpus = _str_list(body, "gpus", route)
    networks = _str_list(body, "networks", route)
    request = _wrap_construction(route, lambda: ExperimentRequest(
        experiment=_check_experiment(experiment, route),
        gpus=(tuple(_check_gpu(name, route) for name in gpus)
              if gpus is not None else None),
        networks=(tuple(_check_network(name, route) for name in networks)
                  if networks is not None else None),
        batch=_int(body, "batch", None, route),
        max_ctas=_int(body, "max_ctas", None, route),
        layers_per_network=_int(body, "layers_per_network", None, route),
        timeout=_float(body, "timeout", route),
        retries=_int(body, "retries", None, route),
    ))
    canonical = {
        "route": route, "experiment": request.experiment,
        "gpus": list(request.gpus) if request.gpus else None,
        "networks": list(request.networks) if request.networks else None,
        "batch": request.batch, "max_ctas": request.max_ctas,
        "layers_per_network": request.layers_per_network,
        "timeout": request.timeout, "retries": request.retries,
    }
    return ParsedRequest(request, _content_key(canonical),
                         *_job_flags(body, route))


def _dse_space(body: Mapping[str, object], networks: Tuple[str, ...],
               batches: Tuple[int, ...], passes: str,
               route: str) -> Tuple[SearchSpace, Dict[str, object]]:
    """Build the search space the same way the CLI does from ``--axis``.

    Returns the space plus its canonical descriptor for the content key.
    """
    raw_axes = body.get("axes")
    if raw_axes is None:
        space = default_space(networks=networks, batches=batches,
                              passes=passes)
        return space, {"axes": None}
    if not isinstance(raw_axes, Mapping) or not raw_axes:
        raise BadRequest(
            f"{route}: field 'axes' must be a non-empty object mapping axis "
            f"keys (one of {list(AXIS_KEYS)}) to value lists")
    axes = []
    for key, values in raw_axes.items():
        if isinstance(values, (str, int, float)):
            values = [values]
        if not isinstance(values, Sequence) or not values:
            raise BadRequest(f"{route}: axis {key!r} must map to a non-empty "
                             f"list of values")
        try:
            axes.append(Axis(str(key).strip().lower(), tuple(values)))
        except (ValueError, TypeError) as exc:
            raise BadRequest(f"{route}: bad axis {key!r}: {exc}") from exc
    keys = {ax.key for ax in axes}
    if "network" in keys:
        for ax in axes:
            if ax.key == "network":
                for name in ax.values:
                    _check_network(name, route)
    if len(networks) > 1 and "network" not in keys:
        axes.append(Axis("network", networks))
    if len(batches) > 1 and "batch" not in keys:
        axes.append(Axis("batch", batches))
    space = grid(axes, network=networks[0], batch=batches[0], passes=passes)
    descriptor = {"axes": {ax.key: list(ax.values) for ax in axes}}
    return space, descriptor


def parse_dse(body: Mapping[str, object]) -> ParsedRequest:
    route = "dse"
    fields = ("gpu", "networks", "batches", "axes", "driver", "budget",
              "seed", "objectives", "unique", "confirm_top", "passes",
              "timeout", "retries", "eval_mode")
    _check_fields(body, fields, route)
    networks = tuple(_check_network(name, route) for name in
                     (_str_list(body, "networks", route) or ("resnet152",)))
    batches = _int_list(body, "batches", route) or (256,)
    passes = _str(body, "passes", "forward", route)
    space, space_descriptor = _wrap_construction(
        route, lambda: _dse_space(body, networks, batches, passes, route))
    request = _wrap_construction(route, lambda: DseRequest(
        space=space,
        gpu=_check_gpu(_str(body, "gpu", "titanxp", route), route),
        driver=_str(body, "driver", "grid", route),
        budget=_int(body, "budget", None, route),
        seed=_int(body, "seed", 0, route),
        objectives=tuple(_str_list(body, "objectives", route)
                         or ("throughput", "dram", "cost")),
        unique=_bool(body, "unique", True, route),
        confirm_top=_int(body, "confirm_top", 0, route),
        timeout=_float(body, "timeout", route),
        retries=_int(body, "retries", None, route),
        eval_mode=_str(body, "eval_mode", "batch", route),
    ))
    canonical = {
        "route": route, "gpu": request.gpu, "networks": list(networks),
        "batches": list(batches), "passes": passes,
        "driver": request.driver, "budget": request.budget,
        "seed": request.seed, "objectives": list(request.objectives),
        "unique": request.unique, "confirm_top": request.confirm_top,
        "timeout": request.timeout, "retries": request.retries,
        "eval_mode": request.eval_mode,
    }
    canonical.update(space_descriptor)
    return ParsedRequest(request, _content_key(canonical),
                         *_job_flags(body, route))


#: route name -> parser, the app's dispatch table for POST bodies.
PARSERS = {
    "estimate": parse_estimate,
    "sweep": parse_sweep,
    "validate": parse_validate,
    "experiment": parse_experiment,
    "dse": parse_dse,
}


def parse_body(route: str, raw: bytes) -> ParsedRequest:
    """Decode and parse one POST body for ``route``; failures are 400s."""
    parser = PARSERS.get(route)
    if parser is None:
        raise BadRequest(f"unknown request route {route!r}; "
                         f"expected one of {sorted(PARSERS)}")
    if not raw:
        body: object = {}
    else:
        try:
            body = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(
                f"{route}: request body is not valid JSON: {exc}") from exc
    if not isinstance(body, Mapping):
        raise BadRequest(f"{route}: request body must be a JSON object, "
                         f"got {type(body).__name__}")
    return parser(body)


def _content_key(canonical: Mapping[str, object]) -> str:
    """Stable coalescing key: sha1 of the sorted canonical payload."""
    payload = json.dumps(canonical, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()
