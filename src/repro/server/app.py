"""The estimation service's ASGI application.

:func:`create_app` wraps one long-lived :class:`~repro.api.Session` in a
standard ASGI 3 callable — servable by the bundled dependency-free asyncio
HTTP server (:mod:`repro.server.http`), or by uvicorn/hypercorn when they
are installed (``uvicorn --factory repro.server:create_app`` works out of
the box; no third-party framework is required or imported).

Routes
------

============================== ========================================
``GET  /healthz``              liveness probe
``GET  /v1/stats``             ``SessionStats`` + request-cache counters
``GET  /v1/networks``          network registry (+ paper-subset variants)
``GET  /v1/gpus``              GPU registry with aliases
``GET  /v1/experiments``       experiment registry
``POST /v1/estimate``          :class:`EstimateRequest`
``POST /v1/sweep``             :class:`SweepRequest`
``POST /v1/validate``          :class:`ValidateRequest`
``POST /v1/experiment``        :class:`ExperimentRequest`
``POST /v1/dse``               :class:`DseRequest`
``GET  /v1/jobs``              list jobs
``GET  /v1/jobs/{id}``         poll one job
``GET  /v1/jobs/{id}/report``  a finished job's report (raw body)
``GET  /v1/jobs/{id}/events``  NDJSON progress stream (chunked)
============================== ========================================

A synchronous POST responds with ``Report.to_json(indent=2)`` plus a
trailing newline — byte-identical to ``repro <cmd> --format json`` for the
same request.  With ``"job": true`` in the body the POST returns ``202`` and
a job id instead.  Every failure — malformed body, unknown id, failed
execution — is a structured ``kind="error"`` report body with a 4xx/5xx
status, never a bare traceback page.
"""

from __future__ import annotations

import asyncio
import json
import time
from http import HTTPStatus
from typing import Dict, Optional

from .. import faults
from ..api.progress import observe_progress
from ..api.report import Report
from ..api.session import Session
from ..experiments.registry import all_experiment_specs
from ..gpu.devices import device_aliases
from ..networks.registry import available_networks, paper_subset_networks
from ..obs import metrics as obs_metrics
from ..obs import spans as obs_spans
from ..resilience import SessionClosedError
from .coalesce import CoalescingCache
from .jobs import Job, JobManager
from .schemas import PARSERS, BadRequest, ParsedRequest, parse_body

#: error types whose failures are the client's fault (HTTP 400).
CLIENT_ERROR_TYPES = ("BadRequest", "ValueError", "KeyError", "TypeError")


class ReproApp:
    """ASGI 3 application: one session, one request cache, one job manager."""

    def __init__(self, session: Session, *, max_memo: int = 1024) -> None:
        self.session = session
        self.cache = CoalescingCache(max_entries=max_memo)
        self.jobs: Optional[JobManager] = None  # bound to the serving loop
        self.requests_served = 0
        self.registry = obs_metrics.MetricsRegistry()
        self._requests_total = self.registry.counter(
            "repro_server_requests", "HTTP requests received")
        self._jobs_submitted = self.registry.counter(
            "repro_jobs_submitted", "background jobs started")
        self.registry.gauge(
            "repro_jobs_active", "jobs currently executing",
            fn=lambda: self.jobs.running if self.jobs is not None else 0)
        self.registry.gauge(
            "repro_jobs_tracked", "jobs retained for polling",
            fn=lambda: len(self.jobs) if self.jobs is not None else 0)

    # -- ASGI entry point ------------------------------------------------

    async def __call__(self, scope, receive, send) -> None:
        if scope["type"] == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope["type"] != "http":  # pragma: no cover - websockets etc.
            return
        if self.jobs is None:
            self.jobs = JobManager()
        self.requests_served += 1
        self._requests_total.inc()
        started = time.perf_counter()
        try:
            await self._dispatch(scope, receive, send)
        except BadRequest as exc:
            await _send_error(send, HTTPStatus.BAD_REQUEST, exc)
        except SessionClosedError as exc:
            await _send_error(send, HTTPStatus.SERVICE_UNAVAILABLE, exc)
        finally:
            self.registry.histogram(
                "repro_server_request_seconds",
                "HTTP request latency by route",
                labels={"route": _route_label(scope["path"])},
            ).observe(time.perf_counter() - started)

    async def _lifespan(self, receive, send) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                self.session.close()
                await send({"type": "lifespan.shutdown.complete"})
                return

    # -- routing ---------------------------------------------------------

    async def _dispatch(self, scope, receive, send) -> None:
        method: str = scope["method"]
        path: str = scope["path"].rstrip("/") or "/"
        get_routes = {
            "/healthz": lambda: {"status": "ok"},
            "/v1/stats": self._stats_payload,
            "/v1/networks": lambda: _registry_payload(path),
            "/v1/gpus": lambda: _registry_payload(path),
            "/v1/experiments": lambda: _registry_payload(path),
            "/v1/jobs": lambda: {"jobs": self.jobs.describe_all()},
        }
        if path == "/metrics":
            if not await self._require(method, "GET", path, send):
                body = self._metrics_text().encode("utf-8")
                await _send_bytes(
                    send, HTTPStatus.OK, body,
                    "text/plain; version=0.0.4; charset=utf-8")
            return
        builder = get_routes.get(path)
        if builder is not None:
            if not await self._require(method, "GET", path, send):
                await _send_json(send, HTTPStatus.OK, builder())
            return
        if path.startswith("/v1/jobs/"):
            if await self._require(method, "GET", path, send):
                return
            await self._dispatch_job(path, send)
            return
        route = path[len("/v1/"):] if path.startswith("/v1/") else None
        if route in PARSERS:
            if await self._require(method, "POST", path, send):
                return
            body = await _read_body(receive)
            parsed = parse_body(route, body)
            if parsed.as_job:
                await self._respond_job(route, parsed, send)
            else:
                await self._respond_sync(parsed, send)
            return
        await _send_error(
            send, HTTPStatus.NOT_FOUND,
            BadRequest(f"no route {scope['path']!r}; see /metrics, /v1/stats, "
                       f"/v1/networks, /v1/gpus, /v1/experiments, "
                       f"/v1/jobs and POST /v1/{{{'|'.join(sorted(PARSERS))}}}"))

    async def _require(self, method: str, expected: str, path: str,
                       send) -> bool:
        """405 unless the route's method matches; True when already handled."""
        if method == expected or (expected == "GET" and method == "HEAD"):
            return False
        await _send_error(
            send, HTTPStatus.METHOD_NOT_ALLOWED,
            BadRequest(f"method {method} is not allowed on {path}; "
                       f"use {expected}"))
        return True

    async def _dispatch_job(self, path: str, send) -> None:
        parts = path.split("/")  # ["", "v1", "jobs", id, sub?]
        job = self.jobs.get(parts[3]) if len(parts) in (4, 5) else None
        if job is None or (len(parts) == 5
                           and parts[4] not in ("report", "events")):
            await _send_error(send, HTTPStatus.NOT_FOUND,
                              BadRequest(f"no such job at {path!r}"))
            return
        if len(parts) == 4:
            payload = job.describe()
            if job.finished:
                payload["report"] = job.report.to_dict()
                if job.trace is not None:
                    payload["trace"] = job.trace
            await _send_json(send, HTTPStatus.OK, payload)
            return
        if parts[4] == "report":
            if not job.finished:
                await _send_error(
                    send, HTTPStatus.CONFLICT,
                    BadRequest(f"job {job.job_id} is still running; poll "
                               f"/v1/jobs/{job.job_id} or stream its events"))
                return
            status = (HTTPStatus.OK if job.status == "done"
                      else _error_status(job.report))
            await _send_report(send, status, job.report)
            return
        await _stream_events(send, job)

    # -- execution (coalesced, thread-offloaded) -------------------------

    def _execute(self, parsed: ParsedRequest) -> Report:
        """Run one request on a worker thread; failures become reports.

        The ``"serve"`` fault seam fires exactly once per *execution* —
        coalesced and memoized requests never reach it, which is what the
        exactly-once tests pin with a ``times=1`` ticket.
        """
        faults.fire("serve",
                    f"{type(parsed.request).__name__} {parsed.key}")
        try:
            return self.session.run(parsed.request)
        except SessionClosedError:
            raise
        except Exception as exc:
            # same shape (and bytes) as the CLI's isolated error report.
            return Report.from_error(exc, request=parsed.request)

    async def _respond_sync(self, parsed: ParsedRequest, send) -> None:
        report = await self.cache.run(
            parsed.key,
            lambda: asyncio.to_thread(self._execute, parsed))
        status = (HTTPStatus.OK if report.kind != "error"
                  else _error_status(report))
        await _send_report(send, status, report)

    async def _respond_job(self, route: str, parsed: ParsedRequest,
                           send) -> None:
        def make_executor():
            async def execute(job: Job) -> Report:
                def work() -> Report:
                    with observe_progress(_progress_bridge(job)):
                        if not parsed.with_trace:
                            return self._execute(parsed)
                        with obs_spans.collect_trace(deep=True) as trace:
                            report = self._execute(parsed)
                        job.trace = trace.to_chrome()
                        return report
                if parsed.with_trace:
                    # a traced job always executes for real: a memoized or
                    # coalesced answer would have no spans to attach.
                    return await asyncio.to_thread(work)
                return await self.cache.run(
                    parsed.key, lambda: asyncio.to_thread(work))
            return execute

        job, coalesced = self.jobs.submit(route, parsed.key, make_executor())
        if not coalesced:
            self._jobs_submitted.inc()
        payload = dict(job.describe())
        payload["coalesced"] = coalesced
        await _send_json(send, HTTPStatus.ACCEPTED, payload)

    # -- payload builders ------------------------------------------------

    def _metrics_text(self) -> str:
        """Prometheus text exposition over every registry of the stack."""
        return obs_metrics.render_prometheus([
            self.registry,
            self.session.stats.registry,
            self.cache.stats.registry,
        ])

    def _stats_payload(self) -> Dict[str, object]:
        session = self.session
        stats = session.stats
        return {
            "session": stats.as_dict(),
            "sim_cache": {
                "hits": stats.sim_cache_hits,
                "misses": stats.sim_cache_misses,
            },
            "dse": {
                "points": stats.dse_points,
                "memo_hits": stats.dse_memo_hits,
            },
            "server": {
                "requests_served": self.requests_served,
                "jobs": len(self.jobs) if self.jobs is not None else 0,
                "request_cache": self.cache.stats.as_dict(),
                "memo_entries": len(self.cache),
            },
            "policy": {
                "jobs": session.jobs,
                "vectorized": session.vectorized,
                "precision": session.precision,
                "timeout": session.timeout,
                "retries": session.retries,
                "sim_cache_dir": (str(session.sim_cache_dir)
                                  if session.sim_cache_dir else None),
            },
        }


def _progress_bridge(job: Job):
    """A progress callback publishing ``progress`` events onto ``job``."""
    def push(event: Dict[str, object]) -> None:
        payload: Dict[str, object] = {"event": "progress"}
        payload.update(event)
        job.post_threadsafe(payload)
    return push


#: fixed GET routes that label the latency histogram by their own path.
_STATIC_ROUTES = frozenset({
    "/", "/healthz", "/metrics", "/v1/stats", "/v1/networks", "/v1/gpus",
    "/v1/experiments", "/v1/jobs",
})


def _route_label(path: str) -> str:
    """A bounded-cardinality route label (job ids collapse to ``{id}``)."""
    path = path.rstrip("/") or "/"
    if path in _STATIC_ROUTES:
        return path
    if path.startswith("/v1/jobs/"):
        sub = path.split("/")[4:5]
        return f"/v1/jobs/{{id}}/{sub[0]}" if sub else "/v1/jobs/{id}"
    route = path[len("/v1/"):] if path.startswith("/v1/") else None
    if route in PARSERS:
        return path
    return "other"


def _registry_payload(path: str) -> Dict[str, object]:
    if path == "/v1/networks":
        return {"networks": available_networks(),
                "paper_subset_variants": paper_subset_networks()}
    if path == "/v1/gpus":
        return {"gpus": [{"name": name, "aliases": list(aliases)}
                         for name, aliases in device_aliases().items()]}
    return {"experiments": [{"id": spec.experiment_id, "title": spec.title,
                             "fast": spec.fast,
                             "uses_validation": spec.uses_validation}
                            for spec in all_experiment_specs()]}


def _error_status(report: Report) -> HTTPStatus:
    """4xx for caller mistakes, 5xx for execution failures."""
    if report.meta.get("error_type") in CLIENT_ERROR_TYPES:
        return HTTPStatus.BAD_REQUEST
    return HTTPStatus.INTERNAL_SERVER_ERROR


# ----------------------------------------------------------------------
# ASGI send/receive helpers
# ----------------------------------------------------------------------

async def _read_body(receive) -> bytes:
    chunks = []
    while True:
        message = await receive()
        if message["type"] == "http.disconnect":
            raise BadRequest("client disconnected before the body arrived")
        chunks.append(message.get("body", b""))
        if not message.get("more_body", False):
            return b"".join(chunks)


async def _send_bytes(send, status: HTTPStatus, body: bytes,
                      content_type: str) -> None:
    await send({
        "type": "http.response.start",
        "status": int(status),
        "headers": [
            (b"content-type", content_type.encode("ascii")),
            (b"content-length", str(len(body)).encode("ascii")),
        ],
    })
    await send({"type": "http.response.body", "body": body,
                "more_body": False})


async def _send_json(send, status: HTTPStatus, payload: Dict[str, object]
                     ) -> None:
    body = (json.dumps(payload, indent=2) + "\n").encode("utf-8")
    await _send_bytes(send, status, body, "application/json")


async def _send_report(send, status: HTTPStatus, report: Report) -> None:
    """The report body: ``to_json(indent=2)`` + newline, as the CLI prints."""
    body = (report.to_json(indent=2) + "\n").encode("utf-8")
    await _send_bytes(send, status, body, "application/json")


async def _send_error(send, status: HTTPStatus, exc: Exception) -> None:
    await _send_report(send, status, Report.from_error(exc))


async def _stream_events(send, job: Job) -> None:
    """NDJSON chunked stream: replay history, then follow until ``done``."""
    await send({
        "type": "http.response.start",
        "status": int(HTTPStatus.OK),
        "headers": [(b"content-type", b"application/x-ndjson")],
    })
    async for event in job.stream_events():
        line = (json.dumps(event) + "\n").encode("utf-8")
        await send({"type": "http.response.body", "body": line,
                    "more_body": True})
    await send({"type": "http.response.body", "body": b"",
                "more_body": False})


def create_app(session: Optional[Session] = None, *,
               max_memo: int = 1024) -> ReproApp:
    """Build the service app around ``session`` (a fresh one by default)."""
    return ReproApp(session if session is not None else Session(),
                    max_memo=max_memo)
