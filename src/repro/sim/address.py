"""Physical address mapping of the convolution tensors.

The simulator places each GEMM workload's M-side (``a``) operand tensor at
address 0 and its N-side (``b``) operand tensor immediately after it, aligned
to a cache line (:class:`WorkloadLayout`).  For the forward pass that is the
IFmap tensor (BCHW layout, the performance-efficient ordering the paper
assumes) followed by the filter tensor (KCRS layout) — exactly the seed's
:class:`TensorLayout`, which is kept as the forward-pass view.  Zero-padded
positions are not backed by memory: the implicit-GEMM kernel predicates those
loads away, so the address generator returns ``INVALID_ADDRESS`` for them and
the trace simply omits the access.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.layer import ConvLayerConfig
from ..core.workload import GemmWorkload

#: marker for predicated-off (padding / out-of-range) accesses.
INVALID_ADDRESS = np.int64(-1)


def _align_up(value: int, alignment: int) -> int:
    return ((value + alignment - 1) // alignment) * alignment


@dataclass(frozen=True)
class TensorLayout:
    """Byte-address layout of one layer's IFmap and filter tensors."""

    layer: ConvLayerConfig
    line_bytes: int = 128

    @property
    def dtype_bytes(self) -> int:
        return self.layer.dtype_bytes

    @property
    def ifmap_base(self) -> int:
        return 0

    @property
    def ifmap_bytes(self) -> int:
        return self.layer.ifmap_elements * self.dtype_bytes

    @property
    def filter_base(self) -> int:
        return _align_up(self.ifmap_bytes, self.line_bytes)

    @property
    def filter_bytes(self) -> int:
        return self.layer.filter_elements * self.dtype_bytes

    @property
    def total_bytes(self) -> int:
        return self.filter_base + self.filter_bytes

    # ------------------------------------------------------------------
    # IFmap addresses (BCHW)
    # ------------------------------------------------------------------
    def ifmap_addresses(self, batch: np.ndarray, channel: np.ndarray,
                        row: np.ndarray, col: np.ndarray) -> np.ndarray:
        """Byte addresses of IFmap elements; invalid for padded positions.

        ``row``/``col`` are coordinates in the *unpadded* feature map; callers
        pass ``h*stride - pad + r`` style values, so negative or >= Hi/Wi
        coordinates denote zero padding and map to :data:`INVALID_ADDRESS`.
        """
        layer = self.layer
        valid = ((row >= 0) & (row < layer.in_height)
                 & (col >= 0) & (col < layer.in_width)
                 & (batch >= 0) & (batch < layer.batch))
        index = (((batch * layer.in_channels + channel) * layer.in_height + row)
                 * layer.in_width + col)
        addresses = self.ifmap_base + index.astype(np.int64) * self.dtype_bytes
        return np.where(valid, addresses, INVALID_ADDRESS)

    # ------------------------------------------------------------------
    # Filter addresses (KCRS: output channel, input channel, row, col)
    # ------------------------------------------------------------------
    def filter_addresses(self, out_channel: np.ndarray,
                         k_index: np.ndarray) -> np.ndarray:
        """Byte addresses of filter elements addressed by GEMM coordinates.

        ``k_index`` is the GEMM K coordinate, i.e. the flattened
        (input channel, filter row, filter col) index, which is exactly the
        KCRS inner layout, so the address is simply ``n * K + k``.
        """
        layer = self.layer
        k_total = layer.in_channels * layer.filter_height * layer.filter_width
        valid = ((out_channel >= 0) & (out_channel < layer.out_channels)
                 & (k_index >= 0) & (k_index < k_total))
        index = out_channel.astype(np.int64) * k_total + k_index.astype(np.int64)
        addresses = self.filter_base + index * self.dtype_bytes
        return np.where(valid, addresses, INVALID_ADDRESS)


@dataclass(frozen=True)
class WorkloadLayout:
    """Byte-address layout of one GEMM workload's two input operand tensors.

    The A-operand tensor sits at address 0 and the B-operand tensor follows,
    aligned to a cache line.  For a forward workload this reproduces
    :class:`TensorLayout` byte for byte (A = IFmap, B = filter).
    """

    workload: GemmWorkload
    line_bytes: int = 128

    @property
    def dtype_bytes(self) -> int:
        return self.workload.dtype_bytes

    @property
    def a_base(self) -> int:
        return 0

    @property
    def a_bytes(self) -> int:
        return self.workload.a.tensor_elements * self.dtype_bytes

    @property
    def b_base(self) -> int:
        return _align_up(self.a_bytes, self.line_bytes)

    @property
    def b_bytes(self) -> int:
        return self.workload.b.tensor_elements * self.dtype_bytes

    @property
    def total_bytes(self) -> int:
        return self.b_base + self.b_bytes

    # forward-pass vocabulary aliases (the paper's naming).
    @property
    def ifmap_base(self) -> int:
        return self.a_base

    @property
    def filter_base(self) -> int:
        return self.b_base
