"""DRAM channel model: byte accounting plus a load-dependent latency curve.

The simulator only needs two things from DRAM: how many bytes crossed the
channel (traffic accounting, Fig. 11/20) and how the access turnaround latency
grows as the offered load approaches the effective channel bandwidth
(Fig. 18).  The latency curve uses an M/D/1-style queueing delay on top of the
unloaded pipeline latency, which reproduces the flat-then-exponential shape
the paper measures with its micro-benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..gpu.spec import GpuSpec


@dataclass
class DramChannel:
    """Accounting model of the GPU's DRAM channels."""

    gpu: GpuSpec
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def read(self, num_bytes: float) -> None:
        if num_bytes < 0:
            raise ValueError("cannot read a negative number of bytes")
        self.bytes_read += num_bytes

    def write(self, num_bytes: float) -> None:
        if num_bytes < 0:
            raise ValueError("cannot write a negative number of bytes")
        self.bytes_written += num_bytes

    @property
    def total_bytes(self) -> float:
        return self.bytes_read + self.bytes_written

    def reset(self) -> None:
        self.bytes_read = 0.0
        self.bytes_written = 0.0

    # ------------------------------------------------------------------
    # Latency model (Fig. 18)
    # ------------------------------------------------------------------
    #: queueing-delay weight relative to the unloaded latency; calibrated so
    #: the saturated latency is ~4-5x the unloaded latency, matching the
    #: knee of the paper's measured curves (Fig. 18).
    QUEUE_WEIGHT = 0.2

    def latency_cycles(self, offered_bandwidth: float,
                       utilization_cap: float = 0.98) -> float:
        """Turnaround latency (cycles) at a given offered bandwidth (bytes/s).

        Below ~70% utilization the latency stays at the unloaded pipeline
        value; as the offered load approaches the effective bandwidth the
        queueing delay grows as ``rho^2 / (1 - rho)`` (an M/D/1-style knee
        scaled by :data:`QUEUE_WEIGHT`), reproducing the flat-then-exponential
        shape of the measured curve.
        """
        if offered_bandwidth < 0:
            raise ValueError("offered bandwidth must be non-negative")
        base = self.gpu.lat_dram_cycles
        peak = self.gpu.dram_bw
        if peak <= 0:
            return base
        rho = min(offered_bandwidth / peak, utilization_cap)
        if rho <= 0:
            return base
        queueing = base * self.QUEUE_WEIGHT * rho * rho / (1.0 - rho)
        return base + queueing

    def transfer_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` at the effective channel bandwidth."""
        if num_bytes < 0:
            raise ValueError("cannot transfer a negative number of bytes")
        return num_bytes / self.gpu.dram_bw
