"""Trace-driven GPU memory-hierarchy simulator (the "measured" substrate)."""

from .address import INVALID_ADDRESS, TensorLayout
from .cache import CacheStats, LruCache, SetAssociativeCache
from .dram import DramChannel
from .engine import ConvLayerSimulator, SimResult, SimTraffic, SimulatorConfig
from .im2col import Im2colTraceGenerator, TileAccess
from .microbench import DramLatencyCurve, LatencyPoint, measure_dram_latency_curve
from .scheduler import CtaScheduler, Wave, cta_order

__all__ = [
    "TensorLayout",
    "INVALID_ADDRESS",
    "LruCache",
    "SetAssociativeCache",
    "CacheStats",
    "DramChannel",
    "Im2colTraceGenerator",
    "TileAccess",
    "CtaScheduler",
    "Wave",
    "cta_order",
    "ConvLayerSimulator",
    "SimulatorConfig",
    "SimResult",
    "SimTraffic",
    "DramLatencyCurve",
    "LatencyPoint",
    "measure_dram_latency_curve",
]
