"""Im2col tile address generation and warp-level coalescing.

For each CTA main-loop iteration the GEMM kernel loads one ``blkM x blkK``
IFmap-matrix tile and one ``blkN x blkK`` filter-matrix tile from global
memory.  :class:`Im2colTraceGenerator` produces, for a given CTA coordinate
and K offset, the byte addresses of those tiles (implicitly, without ever
materializing the replicated im2col matrix), the number of L1 requests the
warps issue after coalescing, and the set of memory sectors the tile touches.

Thread-to-data mapping follows Section IV-A of the paper:

* IFmap tiles are loaded column by column; each warp of 32 threads loads 32
  consecutive rows of one column, and the loads coalesce into L1 requests of
  ``gpu.l1_request_bytes``.
* Filter tiles are loaded with ``32 / blkK`` columns per warp (each thread
  loads one element), so each warp gathers several distant ``blkK``-element
  segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..core.layer import ConvLayerConfig
from ..core.tiling import CtaTile
from ..gpu.spec import GpuSpec, WARP_SIZE
from .address import INVALID_ADDRESS, TensorLayout


@dataclass(frozen=True)
class TileAccess:
    """Memory accesses of one input tile during one main-loop iteration."""

    #: number of coalesced L1 requests issued by the warps (one per distinct
    #: ``gpu.l1_request_bytes`` block touched by a warp).
    l1_requests: int
    #: number of distinct 32-byte sectors touched per warp request, summed
    #: over all warps (what a sectored memory system actually fetches).
    l1_sectors: int
    #: unique sector addresses (sector index, not bytes) touched by the tile.
    sectors: np.ndarray
    #: number of elements actually loaded (excludes predicated-off padding).
    elements: int

    @property
    def unique_sector_count(self) -> int:
        return int(self.sectors.size)

    def fetch_bytes(self, accounting: str, request_bytes: int,
                    sector_bytes: int) -> float:
        """L1 traffic of this tile under the chosen accounting granularity."""
        if accounting == "request":
            return float(self.l1_requests * request_bytes)
        if accounting == "sector":
            return float(self.l1_sectors * sector_bytes)
        raise ValueError(f"unknown L1 accounting mode {accounting!r}")


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted unique values via an explicit sort (faster than np.unique's
    hash-based integer path for these small, heavily repeated key arrays)."""
    if values.size == 0:
        return values.astype(np.int64, copy=True)
    ordered = np.sort(values, kind="stable")
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    keep[1:] = ordered[1:] != ordered[:-1]
    return ordered[keep]


def _count_grouped_blocks(addresses: np.ndarray, group_ids: np.ndarray,
                          block_bytes: int) -> int:
    """Count unique (warp group, aligned block) pairs among valid accesses."""
    valid = addresses != INVALID_ADDRESS
    if not np.any(valid):
        return 0
    block_addr = addresses[valid] // block_bytes
    groups = group_ids[valid].astype(np.int64)
    # Pack (group, block) into one key; block addresses fit well below 2**40.
    keys = groups * (1 << 40) + block_addr
    return int(np.unique(keys).size)


def _unique_sectors(addresses: np.ndarray, sector_bytes: int) -> np.ndarray:
    valid = addresses != INVALID_ADDRESS
    if not np.any(valid):
        return np.empty(0, dtype=np.int64)
    return np.unique(addresses[valid] // sector_bytes)


@dataclass(frozen=True)
class Im2colTraceGenerator:
    """Generates the memory accesses of a layer's blocked im2col GEMM."""

    layer: ConvLayerConfig
    tile: CtaTile
    gpu: GpuSpec

    def __post_init__(self) -> None:
        object.__setattr__(self, "_layout", TensorLayout(self.layer,
                                                         self.gpu.line_bytes))

    @property
    def layout(self) -> TensorLayout:
        return self._layout

    # ------------------------------------------------------------------
    # GEMM coordinate helpers
    # ------------------------------------------------------------------
    def _m_to_image_coords(self, m: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map GEMM row indices to (batch, output row, output col)."""
        layer = self.layer
        per_image = layer.out_height * layer.out_width
        batch = m // per_image
        rem = m % per_image
        out_row = rem // layer.out_width
        out_col = rem % layer.out_width
        return batch, out_row, out_col

    def _k_to_filter_coords(self, k: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map GEMM column indices to (input channel, filter row, filter col)."""
        layer = self.layer
        per_channel = layer.filter_height * layer.filter_width
        channel = k // per_channel
        rem = k % per_channel
        f_row = rem // layer.filter_width
        f_col = rem % layer.filter_width
        return channel, f_row, f_col

    # ------------------------------------------------------------------
    # Tile address generation
    # ------------------------------------------------------------------
    def ifmap_tile_addresses(self, cta_m: int, k_offset: int) -> np.ndarray:
        """Byte addresses of the (blkM x blkK) IFmap tile of one main loop.

        Rows beyond M and columns beyond K, as well as zero-padded input
        positions, are marked :data:`INVALID_ADDRESS`.
        """
        layer = self.layer
        tile = self.tile
        gemm = layer.gemm_shape()

        m_index = cta_m * tile.blk_m + np.arange(tile.blk_m)
        k_index = k_offset + np.arange(tile.blk_k)
        m_grid, k_grid = np.meshgrid(m_index, k_index, indexing="ij")
        in_range = (m_grid < gemm.m) & (k_grid < gemm.k)

        batch, out_row, out_col = self._m_to_image_coords(np.minimum(m_grid, gemm.m - 1))
        channel, f_row, f_col = self._k_to_filter_coords(np.minimum(k_grid, gemm.k - 1))

        in_row = out_row * layer.stride - layer.padding + f_row
        in_col = out_col * layer.stride - layer.padding + f_col
        addresses = self.layout.ifmap_addresses(batch, channel, in_row, in_col)
        return np.where(in_range, addresses, INVALID_ADDRESS)

    def filter_tile_addresses(self, cta_n: int, k_offset: int) -> np.ndarray:
        """Byte addresses of the (blkN x blkK) filter tile of one main loop."""
        layer = self.layer
        tile = self.tile
        gemm = layer.gemm_shape()

        n_index = cta_n * tile.blk_n + np.arange(tile.blk_n)
        k_index = k_offset + np.arange(tile.blk_k)
        n_grid, k_grid = np.meshgrid(n_index, k_index, indexing="ij")
        in_range = (n_grid < gemm.n) & (k_grid < gemm.k)
        addresses = self.layout.filter_addresses(n_grid, k_grid)
        return np.where(in_range, addresses, INVALID_ADDRESS)

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------
    def _build_access(self, addresses: np.ndarray,
                      group_ids: np.ndarray) -> TileAccess:
        requests = _count_grouped_blocks(addresses, group_ids,
                                         self.gpu.l1_request_bytes)
        warp_sectors = _count_grouped_blocks(addresses, group_ids,
                                             self.gpu.sector_bytes)
        sectors = _unique_sectors(addresses, self.gpu.sector_bytes)
        elements = int(np.count_nonzero(addresses != INVALID_ADDRESS))
        return TileAccess(l1_requests=requests, l1_sectors=warp_sectors,
                          sectors=sectors, elements=elements)

    def ifmap_tile_access(self, cta_m: int, k_offset: int) -> TileAccess:
        """Coalesced accesses of one IFmap tile (column-major warp mapping)."""
        addresses = self.ifmap_tile_addresses(cta_m, k_offset)
        rows, cols = addresses.shape
        row_group = np.arange(rows) // WARP_SIZE
        col_ids = np.arange(cols)
        # group id = (column, row group): each warp covers 32 rows of one column.
        group_ids = (col_ids[np.newaxis, :] * (rows // WARP_SIZE + 1)
                     + row_group[:, np.newaxis])
        return self._build_access(addresses, np.broadcast_to(group_ids,
                                                             addresses.shape))

    def filter_tile_access(self, cta_n: int, k_offset: int) -> TileAccess:
        """Coalesced accesses of one filter tile (blkK-major warp mapping)."""
        addresses = self.filter_tile_addresses(cta_n, k_offset)
        flat = addresses.reshape(-1)  # n-major, k-minor: matches thread order
        lane = np.arange(flat.size)
        group_ids = lane // WARP_SIZE
        return self._build_access(flat, group_ids)

    # ------------------------------------------------------------------
    # Batched generation (vectorized engine fast path)
    # ------------------------------------------------------------------
    def _ifmap_group_ids(self) -> np.ndarray:
        rows, cols = self.tile.blk_m, self.tile.blk_k
        row_group = np.arange(rows) // WARP_SIZE
        col_ids = np.arange(cols)
        return (col_ids[np.newaxis, :] * (rows // WARP_SIZE + 1)
                + row_group[:, np.newaxis])

    def ifmap_tile_batch(self, cta_ms: Sequence[int],
                         k_offsets: Sequence[int]) -> "TileAccessBatch":
        """All (cta_m, k_offset) IFmap tiles of the cross product, batched.

        Tile index ``mi * len(k_offsets) + ki`` corresponds to
        ``(cta_ms[mi], k_offsets[ki])``.  Results are identical to the scalar
        :meth:`ifmap_tile_access`, but one address computation and one sort
        serve the whole batch, which is what makes exact trace generation
        tractable.
        """
        cta_ms = np.asarray(cta_ms, dtype=np.int64)
        k_offsets = np.asarray(k_offsets, dtype=np.int64)
        num_tiles = cta_ms.size * k_offsets.size
        if num_tiles == 0:
            return TileAccessBatch.empty()
        layer = self.layer
        tile = self.tile
        gemm = layer.gemm_shape()
        layout = self.layout

        # The BCHW im2col byte address separates into an outer sum of a pure
        # M-axis part and a pure K-axis part:
        #   element index = batch*C*H*W + (out_row*s - p)*W + (out_col*s - p)
        #                 + channel*H*W + f_row*W + f_col
        # so every division/modulo runs on the small per-axis coordinate
        # vectors and only cheap adds/compares touch the full lattice.
        # int32 only when the M-part + K-part sum cannot overflow.
        coord_dtype = (np.int32 if layout.total_bytes
                       < np.iinfo(np.int32).max // 2 else np.int64)

        # M axis: (num_cta_m * blk_m) flat coordinate vectors.
        m_values = (cta_ms[:, np.newaxis] * tile.blk_m
                    + np.arange(tile.blk_m)).ravel()
        m_ok = m_values < gemm.m
        m_clamped = np.minimum(m_values, gemm.m - 1)
        batch, out_row, out_col = self._m_to_image_coords(m_clamped)
        row_m = (out_row * layer.stride - layer.padding).astype(coord_dtype)
        col_m = (out_col * layer.stride - layer.padding).astype(coord_dtype)
        plane = layer.in_height * layer.in_width
        base_m = ((batch * layer.in_channels * plane + row_m * layer.in_width
                   + col_m) * self.layer.dtype_bytes).astype(coord_dtype)
        m_ok &= (batch >= 0) & (batch < layer.batch)

        # K axis: (num_k_offsets * blk_k) flat coordinate vectors.
        k_values = (k_offsets[:, np.newaxis] + np.arange(tile.blk_k)).ravel()
        k_ok = k_values < gemm.k
        channel, f_row, f_col = self._k_to_filter_coords(
            np.minimum(k_values, gemm.k - 1))
        row_k = f_row.astype(coord_dtype)
        col_k = f_col.astype(coord_dtype)
        base_k = ((channel * plane + f_row * layer.in_width + f_col)
                  * self.layer.dtype_bytes).astype(coord_dtype)

        # Outer combination over the (M axis, K axis) lattice.  Addresses stay
        # in the narrow dtype; the key builder upcasts only when necessary.
        row = row_m[:, np.newaxis] + row_k[np.newaxis, :]
        col = col_m[:, np.newaxis] + col_k[np.newaxis, :]
        valid = ((row >= 0) & (row < layer.in_height)
                 & (col >= 0) & (col < layer.in_width)
                 & (m_ok[:, np.newaxis] & k_ok[np.newaxis, :]))
        addresses = np.where(
            valid,
            base_m[:, np.newaxis] + base_k[np.newaxis, :]
            + coord_dtype(layout.ifmap_base),
            coord_dtype(INVALID_ADDRESS))

        # (num_cta_m, blk_m, num_k, blk_k) -> (num_cta_m, num_k, blk_m, blk_k)
        addresses = addresses.reshape(cta_ms.size, tile.blk_m,
                                      k_offsets.size, tile.blk_k) \
            .transpose(0, 2, 1, 3).reshape(num_tiles, -1)
        return self._build_access_batch(addresses,
                                        self._ifmap_group_ids().ravel())

    def filter_tile_batch(self, cta_ns: Sequence[int],
                          k_offsets: Sequence[int]) -> "TileAccessBatch":
        """All (cta_n, k_offset) filter tiles of the cross product, batched."""
        cta_ns = np.asarray(cta_ns, dtype=np.int64)
        k_offsets = np.asarray(k_offsets, dtype=np.int64)
        num_tiles = cta_ns.size * k_offsets.size
        if num_tiles == 0:
            return TileAccessBatch.empty()
        tile = self.tile
        gemm = self.layer.gemm_shape()

        n_grid = (cta_ns[:, np.newaxis] * tile.blk_n
                  + np.arange(tile.blk_n))[:, np.newaxis, :, np.newaxis]
        k_grid = (k_offsets[:, np.newaxis]
                  + np.arange(tile.blk_k))[np.newaxis, :, np.newaxis, :]
        in_range = (n_grid < gemm.n) & (k_grid < gemm.k)
        addresses = self.layout.filter_addresses(
            np.broadcast_to(n_grid, in_range.shape),
            np.broadcast_to(k_grid, in_range.shape))
        addresses = np.where(in_range, addresses, INVALID_ADDRESS)
        flat = addresses.reshape(num_tiles, -1)
        lane_groups = np.arange(flat.shape[1]) // WARP_SIZE
        return self._build_access_batch(flat, lane_groups)

    def ifmap_tile_access_batch(self, cta_ms: Sequence[int],
                                k_offset: int) -> List[TileAccess]:
        """Batched :meth:`ifmap_tile_access` over many CTA rows at once."""
        return self.ifmap_tile_batch(cta_ms, [k_offset]).tiles()

    def filter_tile_access_batch(self, cta_ns: Sequence[int],
                                 k_offset: int) -> List[TileAccess]:
        """Batched :meth:`filter_tile_access` over many CTA columns at once."""
        return self.filter_tile_batch(cta_ns, [k_offset]).tiles()

    def _build_access_batch(self, addresses: np.ndarray,
                            group_ids: np.ndarray) -> "TileAccessBatch":
        """Coalescing counts and unique sectors for a (tiles, elements) batch.

        ``group_ids`` is the shared per-element warp-group row (identical for
        every tile of the batch).  Tiles are folded into the dedup keys so one
        sort covers the whole batch; per-tile counts fall out of a
        ``bincount`` and per-tile sector arrays out of run boundaries in the
        sorted unique keys.  Invalid (predicated-off) accesses are mapped to
        negative sentinel keys and dropped after the sort, avoiding any
        boolean-mask gathers over the full lattice.
        """
        gpu = self.gpu
        num_tiles = addresses.shape[0]
        valid = addresses != INVALID_ADDRESS
        elements = np.count_nonzero(valid, axis=1)
        num_invalid = addresses.size - int(elements.sum())

        groups = np.asarray(group_ids, dtype=np.int64)[np.newaxis, :]
        group_span = int(groups.max()) + 1 if groups.size else 1

        def dedup(keys: np.ndarray) -> np.ndarray:
            """Sorted unique valid keys (drops the negative sentinel run)."""
            keys = np.where(valid, keys, -1)
            keys = np.sort(keys, axis=None)[num_invalid:]
            if keys.size == 0:
                return keys
            keep = np.empty(keys.size, dtype=bool)
            keep[0] = True
            keep[1:] = keys[1:] != keys[:-1]
            return keys[keep]

        # Sectors: one sorted pass over the lattice yields the per-warp
        # sector count (tile, group, sector triples), the unique tile sector
        # lists, and — because L1 request blocks are whole multiples of
        # sectors — the coalesced L1 request count as well.  Keys are built
        # in int32 whenever the combined span fits (int32 sorts are ~2x
        # faster than int64 ones).
        sector_values = addresses // gpu.sector_bytes
        sector_span = int(sector_values.max()) + 1 if sector_values.size else 1
        key_dtype = (np.int32 if num_tiles * sector_span * group_span
                     < np.iinfo(np.int32).max else np.int64)
        tile_base = np.arange(num_tiles, dtype=key_dtype)[:, np.newaxis]
        triple_keys = dedup(
            (tile_base * sector_span
             + sector_values.astype(key_dtype, copy=False))
            * group_span + groups.astype(key_dtype))
        pair_keys = triple_keys // group_span
        warp_sectors = np.bincount(pair_keys // sector_span,
                                   minlength=num_tiles)
        keep = np.empty(pair_keys.size, dtype=bool)
        if pair_keys.size:
            keep[0] = True
            keep[1:] = pair_keys[1:] != pair_keys[:-1]
        unique_pairs = pair_keys[keep]
        unique_tile = unique_pairs // sector_span
        offsets = np.searchsorted(unique_tile, np.arange(num_tiles + 1))

        # L1 requests: unique (tile, warp group, request block) — derived
        # from the deduplicated sector triples when the request size is a
        # multiple of the sector size (it always is on real devices).
        if gpu.l1_request_bytes % gpu.sector_bytes == 0:
            ratio = gpu.l1_request_bytes // gpu.sector_bytes
            t_tile = triple_keys // (sector_span * group_span)
            t_group = triple_keys % group_span
            t_block = (triple_keys // group_span) % sector_span // ratio
            block_span = sector_span // ratio + 1
            request_keys = _sorted_unique(
                (t_tile * group_span + t_group) * block_span + t_block)
        else:  # pragma: no cover - no current GpuSpec hits this
            request_blocks = (addresses // gpu.l1_request_bytes) \
                .astype(np.int64, copy=False)
            block_span = (int(request_blocks.max()) + 1
                          if request_blocks.size else 1)
            request_keys = dedup(
                (tile_base.astype(np.int64) * group_span + groups)
                * block_span + request_blocks)
        requests = np.bincount(request_keys // (group_span * block_span),
                               minlength=num_tiles)

        return TileAccessBatch(
            l1_requests=requests,
            l1_sectors=warp_sectors,
            elements=elements,
            sectors=unique_pairs % sector_span,
            offsets=offsets,
        )


@dataclass(frozen=True)
class TileAccessBatch:
    """Struct-of-arrays form of many :class:`TileAccess` records.

    ``sectors[offsets[i]:offsets[i + 1]]`` are tile ``i``'s unique sectors;
    the scalar fields line up by tile index.  The vectorized engine consumes
    these arrays directly instead of materializing per-tile objects.
    """

    l1_requests: np.ndarray
    l1_sectors: np.ndarray
    elements: np.ndarray
    sectors: np.ndarray
    offsets: np.ndarray

    @staticmethod
    def empty() -> "TileAccessBatch":
        zero = np.zeros(0, dtype=np.int64)
        return TileAccessBatch(zero, zero, zero, zero,
                               np.zeros(1, dtype=np.int64))

    @property
    def num_tiles(self) -> int:
        return int(self.l1_requests.size)

    def tile_sectors(self, index: int) -> np.ndarray:
        return self.sectors[self.offsets[index]:self.offsets[index + 1]]

    def tile(self, index: int) -> TileAccess:
        return TileAccess(
            l1_requests=int(self.l1_requests[index]),
            l1_sectors=int(self.l1_sectors[index]),
            sectors=self.tile_sectors(index),
            elements=int(self.elements[index]),
        )

    def tiles(self) -> List[TileAccess]:
        return [self.tile(index) for index in range(self.num_tiles)]
