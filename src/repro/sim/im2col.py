"""GEMM tile address generation and warp-level coalescing, per workload.

For each CTA main-loop iteration the GEMM kernel loads one ``blkM x blkK``
A-operand tile and one ``blkN x blkK`` B-operand tile from global memory.
:class:`GemmTraceGenerator` produces, for a given CTA coordinate and K offset
of any training-pass workload (forward, dgrad or wgrad), the byte addresses of
those tiles (implicitly, without ever materializing the replicated im2col
matrix), the number of L1 requests the warps issue after coalescing, and the
set of memory sectors the tile touches.  The three passes differ only in how
GEMM coordinates map to tensor addresses:

* **forward** — A is the im2col IFmap matrix (M rows are output positions, K
  columns are filter offsets), B is the KCRS filter matrix.
* **dgrad** — A is the output-gradient matrix ``dO`` (M rows are output
  positions, K columns are output channels), B is the transposed filter.
* **wgrad** — A is ``dO^T`` (M rows are output channels, K columns are output
  positions), B is the im2col IFmap matrix entered on the N side (N columns
  are filter offsets, K rows are output positions).

Every mapping decomposes into a sum of a pure own-axis part and a pure K-axis
part, so tile addresses are built with one outer add over small per-axis
coordinate vectors — the property the batched fast path exploits.

Thread-to-data mapping follows Section IV-A of the paper:

* A tiles are loaded column by column; each warp of 32 threads loads 32
  consecutive rows of one column, and the loads coalesce into L1 requests of
  ``gpu.l1_request_bytes``.
* B tiles are loaded with ``32 / blkK`` columns per warp (each thread loads
  one element), so each warp gathers several distant ``blkK``-element
  segments.

:class:`Im2colTraceGenerator` is the forward-pass view with the paper's
IFmap/filter vocabulary; it accepts a :class:`ConvLayerConfig` directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..core.layer import ConvLayerConfig, LayerConfig
from ..core.tiling import CtaTile
from ..core.workload import GemmWorkload, as_workload
from ..gpu.spec import GpuSpec, WARP_SIZE
from .address import INVALID_ADDRESS, WorkloadLayout


@dataclass(frozen=True)
class TileAccess:
    """Memory accesses of one input tile during one main-loop iteration."""

    #: number of coalesced L1 requests issued by the warps (one per distinct
    #: ``gpu.l1_request_bytes`` block touched by a warp).
    l1_requests: int
    #: number of distinct 32-byte sectors touched per warp request, summed
    #: over all warps (what a sectored memory system actually fetches).
    l1_sectors: int
    #: unique sector addresses (sector index, not bytes) touched by the tile.
    sectors: np.ndarray
    #: number of elements actually loaded (excludes predicated-off padding).
    elements: int

    @property
    def unique_sector_count(self) -> int:
        return int(self.sectors.size)

    def fetch_bytes(self, accounting: str, request_bytes: int,
                    sector_bytes: int) -> float:
        """L1 traffic of this tile under the chosen accounting granularity."""
        if accounting == "request":
            return float(self.l1_requests * request_bytes)
        if accounting == "sector":
            return float(self.l1_sectors * sector_bytes)
        raise ValueError(f"unknown L1 accounting mode {accounting!r}")


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """Sorted unique values via an explicit sort (faster than np.unique's
    hash-based integer path for these small, heavily repeated key arrays)."""
    if values.size == 0:
        return values.astype(np.int64, copy=True)
    ordered = np.sort(values, kind="stable")
    keep = np.empty(ordered.size, dtype=bool)
    keep[0] = True
    keep[1:] = ordered[1:] != ordered[:-1]
    return ordered[keep]


def _count_grouped_blocks(addresses: np.ndarray, group_ids: np.ndarray,
                          block_bytes: int) -> int:
    """Count unique (warp group, aligned block) pairs among valid accesses."""
    valid = addresses != INVALID_ADDRESS
    if not np.any(valid):
        return 0
    block_addr = addresses[valid] // block_bytes
    groups = group_ids[valid].astype(np.int64)
    # Pack (group, block) into one key; block addresses fit well below 2**40.
    keys = groups * (1 << 40) + block_addr
    return int(np.unique(keys).size)


def _unique_sectors(addresses: np.ndarray, sector_bytes: int) -> np.ndarray:
    valid = addresses != INVALID_ADDRESS
    if not np.any(valid):
        return np.empty(0, dtype=np.int64)
    return np.unique(addresses[valid] // sector_bytes)


#: per-axis address decomposition of one operand: byte offsets relative to
#: the operand's base, optional feature-map (row, col) parts for the
#: padding-predication bounds check, and the in-range mask.
AxisParts = Tuple[np.ndarray, Optional[np.ndarray], Optional[np.ndarray],
                  np.ndarray]


@dataclass(frozen=True)
class GemmTraceGenerator:
    """Generates the memory accesses of one blocked GEMM workload."""

    workload: GemmWorkload
    tile: CtaTile
    gpu: GpuSpec

    def __post_init__(self) -> None:
        object.__setattr__(self, "_layout",
                           WorkloadLayout(self.workload, self.gpu.line_bytes))

    @property
    def layout(self) -> WorkloadLayout:
        return self._layout

    @property
    def layer(self) -> LayerConfig:
        return self.workload.layer

    # ------------------------------------------------------------------
    # GEMM coordinate helpers
    # ------------------------------------------------------------------
    def _position_to_image_coords(self, values: np.ndarray
                                  ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map output-position indices to (batch, output row, output col)."""
        layer = self.layer
        per_image = layer.out_height * layer.out_width
        batch = values // per_image
        rem = values % per_image
        out_row = rem // layer.out_width
        out_col = rem % layer.out_width
        return batch, out_row, out_col

    def _offset_to_filter_coords(self, values: np.ndarray
                                 ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map filter-offset indices to (input channel, filter row, col)."""
        layer = self.layer
        per_channel = layer.filter_height * layer.filter_width
        channel = values // per_channel
        rem = values % per_channel
        f_row = rem // layer.filter_width
        f_col = rem % layer.filter_width
        return channel, f_row, f_col

    # ------------------------------------------------------------------
    # Per-axis address parts (byte offsets relative to the operand base)
    # ------------------------------------------------------------------
    def _coord_dtype(self):
        # int32 only when the own-part + K-part sum cannot overflow; int32
        # sorts are ~2x faster than int64 ones downstream.
        return (np.int32 if self.layout.total_bytes
                < np.iinfo(np.int32).max // 2 else np.int64)

    def _im2col_position_parts(self, values: np.ndarray, extent: int,
                               channels: int) -> AxisParts:
        """Output-position axis of an im2col operand (forward A rows)."""
        layer = self.layer
        dtype = self._coord_dtype()
        ok = values < extent
        clamped = np.minimum(values, extent - 1)
        batch, out_row, out_col = self._position_to_image_coords(clamped)
        row = (out_row * layer.stride - layer.padding).astype(dtype)
        col = (out_col * layer.stride - layer.padding).astype(dtype)
        plane = layer.in_height * layer.in_width
        base = ((batch * channels * plane + row * layer.in_width + col)
                * layer.dtype_bytes).astype(dtype)
        ok = ok & (batch >= 0) & (batch < layer.batch)
        return base, row, col, ok

    def _im2col_offset_parts(self, values: np.ndarray, extent: int) -> AxisParts:
        """Filter-offset axis of an im2col operand (forward A columns)."""
        layer = self.layer
        dtype = self._coord_dtype()
        ok = values < extent
        channel, f_row, f_col = self._offset_to_filter_coords(
            np.minimum(values, extent - 1))
        plane = layer.in_height * layer.in_width
        base = ((channel * plane + f_row * layer.in_width + f_col)
                * layer.dtype_bytes).astype(dtype)
        return base, f_row.astype(dtype), f_col.astype(dtype), ok

    def _ofmap_position_parts(self, values: np.ndarray, extent: int) -> AxisParts:
        """Output-position axis of the dO matrix (dgrad A rows, wgrad A cols)."""
        layer = self.layer
        dtype = self._coord_dtype()
        ok = values < extent
        batch, out_row, out_col = self._position_to_image_coords(
            np.minimum(values, extent - 1))
        plane = layer.out_height * layer.out_width
        base = ((batch * layer.out_channels * plane
                 + out_row * layer.out_width + out_col)
                * layer.dtype_bytes).astype(dtype)
        return base, None, None, ok

    def _ofmap_channel_parts(self, values: np.ndarray, extent: int) -> AxisParts:
        """Output-channel axis of the dO matrix (dgrad A cols, wgrad A rows)."""
        layer = self.layer
        dtype = self._coord_dtype()
        ok = values < extent
        plane = layer.out_height * layer.out_width
        base = (np.minimum(values, extent - 1) * plane
                * layer.dtype_bytes).astype(dtype)
        return base, None, None, ok

    def _matrix_parts(self, values: np.ndarray, extent: int,
                      pitch: int) -> AxisParts:
        """Dense row-major matrix axis: offset = value * pitch elements."""
        dtype = self._coord_dtype()
        ok = values < extent
        base = (np.minimum(values, extent - 1) * pitch
                * self.layer.dtype_bytes).astype(dtype)
        return base, None, None, ok

    # ------------------------------------------------------------------
    # Dense (linear / batched-GEMM) decomposition
    # ------------------------------------------------------------------
    def _grouped_matrix_parts(self, values: np.ndarray, rows: int, pitch: int,
                              padded_rows: int,
                              group_elements: int) -> AxisParts:
        """Row axis of a [groups, rows, pitch-major] dense operand tensor.

        Own-axis coordinates of a batched workload run over a per-instance
        padded extent of ``padded_rows`` (= CTAs per instance x block size),
        so instance ``g`` owns values ``[g * padded_rows, (g+1) *
        padded_rows)``; rows past the instance's real extent are
        predicated off.
        """
        dtype = self._coord_dtype()
        if self.workload.groups > 1 and group_elements:
            group = values // padded_rows
            row = values % padded_rows
            ok = row < rows
            base = ((group * group_elements + np.minimum(row, rows - 1) * pitch)
                    * self.workload.dtype_bytes).astype(dtype)
            return base, None, None, ok
        ok = values < rows
        base = (np.minimum(values, rows - 1) * pitch
                * self.workload.dtype_bytes).astype(dtype)
        return base, None, None, ok

    def _dense_parts(self, operand: str, axis: str,
                     values: np.ndarray) -> AxisParts:
        """Address parts of a dense workload's operand along one axis.

        Every pass's A operand backs a row-major ``[groups, m, k]`` tensor and
        every B operand a ``[groups, n, k]`` tensor (see the dense lowering in
        :mod:`repro.core.workload`); only the (pitch, contiguity) binding of
        the GEMM axes differs per pass:

        * **forward** — a: addr = m*K + k; b: addr = n*K + k.
        * **dgrad** — a = dY: addr = m*K + k (K is the forward N); b = W
          entered transposed: addr = k*N + n.
        * **wgrad** — a = dY^T: addr = k*M + m; b = X on the N side:
          addr = k*N + n.
        """
        gemm = self.workload.gemm
        pass_kind = self.workload.pass_kind
        if axis == "k":
            # Per-instance reduction axis: never carries the instance index.
            pitch = {"forward": {"a": 1, "b": 1},
                     "dgrad": {"a": 1, "b": gemm.n},
                     "wgrad": {"a": gemm.m, "b": gemm.n}}[pass_kind][operand]
            return self._grouped_matrix_parts(values, gemm.k, pitch,
                                              padded_rows=gemm.k,
                                              group_elements=0)
        tile = self.tile
        if operand == "a":
            own_pitch = {"forward": gemm.k, "dgrad": gemm.k,
                         "wgrad": 1}[pass_kind]
            rows, blk = gemm.m, tile.blk_m
            group_elements = gemm.m * gemm.k
        else:
            own_pitch = gemm.k if pass_kind == "forward" else 1
            rows, blk = gemm.n, tile.blk_n
            group_elements = gemm.n * gemm.k
        padded = -(-rows // blk) * blk
        return self._grouped_matrix_parts(values, rows, own_pitch,
                                          padded_rows=padded,
                                          group_elements=group_elements)

    def _operand_parts(self, operand: str, axis: str,
                       values: np.ndarray) -> AxisParts:
        """Address parts of one operand along ``axis`` ("own" or "k")."""
        if self.workload.layout == "dense":
            return self._dense_parts(operand, axis, values)
        layer = self.layer
        gemm = self.workload.gemm
        pass_kind = self.workload.pass_kind
        if pass_kind == "forward":
            if operand == "a":
                if axis == "own":
                    return self._im2col_position_parts(values, gemm.m,
                                                       layer.in_channels)
                return self._im2col_offset_parts(values, gemm.k)
            if axis == "own":  # filter matrix: address = n * K + k
                return self._matrix_parts(values, gemm.n, gemm.k)
            return self._matrix_parts(values, gemm.k, 1)
        if pass_kind == "dgrad":
            if operand == "a":
                if axis == "own":
                    return self._ofmap_position_parts(values, gemm.m)
                return self._ofmap_channel_parts(values, gemm.k)
            if axis == "own":  # transposed filter: address = k * N + n
                return self._matrix_parts(values, gemm.n, 1)
            return self._matrix_parts(values, gemm.k, gemm.n)
        if pass_kind == "wgrad":
            if operand == "a":
                if axis == "own":
                    return self._ofmap_channel_parts(values, gemm.m)
                return self._ofmap_position_parts(values, gemm.k)
            if axis == "own":
                return self._im2col_offset_parts(values, gemm.n)
            return self._im2col_position_parts(values, gemm.k,
                                               layer.in_channels)
        raise ValueError(f"unknown pass kind {pass_kind!r}")

    def _operand_bounds(self, operand: str) -> Optional[Tuple[int, int]]:
        """Feature-map bounds predicating an operand's loads, if any."""
        spec = self.workload.a if operand == "a" else self.workload.b
        if spec.l1_pattern == "im2col" or spec.l2_reuse == "sliding":
            return (self.layer.in_height, self.layer.in_width)
        return None

    def _operand_base(self, operand: str) -> int:
        return self.layout.a_base if operand == "a" else self.layout.b_base

    # ------------------------------------------------------------------
    # Tile address generation
    # ------------------------------------------------------------------
    def _tile_addresses(self, operand: str, own_values: np.ndarray,
                        k_values: np.ndarray) -> np.ndarray:
        """Byte addresses of one (own x K) tile; predicated-off -> INVALID."""
        base_o, row_o, col_o, ok_o = self._operand_parts(operand, "own",
                                                         own_values)
        base_k, row_k, col_k, ok_k = self._operand_parts(operand, "k", k_values)
        valid = ok_o[:, np.newaxis] & ok_k[np.newaxis, :]
        bounds = self._operand_bounds(operand)
        if bounds is not None:
            height, width = bounds
            row = row_o[:, np.newaxis] + row_k[np.newaxis, :]
            col = col_o[:, np.newaxis] + col_k[np.newaxis, :]
            valid &= (row >= 0) & (row < height) & (col >= 0) & (col < width)
        addresses = (base_o[:, np.newaxis].astype(np.int64)
                     + base_k[np.newaxis, :] + self._operand_base(operand))
        return np.where(valid, addresses, INVALID_ADDRESS)

    def a_tile_addresses(self, cta_m: int, k_offset: int) -> np.ndarray:
        """Byte addresses of the (blkM x blkK) A tile of one main loop.

        Rows beyond M and columns beyond K, as well as zero-padded input
        positions, are marked :data:`INVALID_ADDRESS`.
        """
        own = cta_m * self.tile.blk_m + np.arange(self.tile.blk_m)
        k = k_offset + np.arange(self.tile.blk_k)
        return self._tile_addresses("a", own, k)

    def b_tile_addresses(self, cta_n: int, k_offset: int) -> np.ndarray:
        """Byte addresses of the (blkN x blkK) B tile of one main loop."""
        own = cta_n * self.tile.blk_n + np.arange(self.tile.blk_n)
        k = k_offset + np.arange(self.tile.blk_k)
        return self._tile_addresses("b", own, k)

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------
    def _build_access(self, addresses: np.ndarray,
                      group_ids: np.ndarray) -> TileAccess:
        requests = _count_grouped_blocks(addresses, group_ids,
                                         self.gpu.l1_request_bytes)
        warp_sectors = _count_grouped_blocks(addresses, group_ids,
                                             self.gpu.sector_bytes)
        sectors = _unique_sectors(addresses, self.gpu.sector_bytes)
        elements = int(np.count_nonzero(addresses != INVALID_ADDRESS))
        return TileAccess(l1_requests=requests, l1_sectors=warp_sectors,
                          sectors=sectors, elements=elements)

    def _a_group_ids(self) -> np.ndarray:
        """Warp map of the A tile, following the operand's contiguity axis.

        Conv forward and dgrad A operands are contiguous along M, so each warp
        covers 32 rows of one column (the paper's column-major mapping).  The
        conv wgrad A operand (dO^T) is contiguous along K: the kernel streams
        32/blkK row segments per warp and transposes through shared memory —
        the same lane mapping the B-tile loads use — which is the load
        stream the lowering's ``contiguous`` L1 pattern models.

        Dense workloads follow the same rule by contiguity: the forward/dgrad
        A matrices are row-major along K (blkK-segment loads, matching the
        lowering's ``gather`` pattern) while the wgrad A matrix (dY^T) is
        contiguous along its own axis (fully coalesced column loads,
        ``contiguous``).
        """
        rows, cols = self.tile.blk_m, self.tile.blk_k
        if self.workload.layout == "dense":
            segment_major = self.workload.pass_kind != "wgrad"
        else:
            segment_major = (self.workload.a.l1_pattern == "contiguous"
                             and self.workload.pass_kind == "wgrad")
        if segment_major:
            return (np.arange(rows * cols) // WARP_SIZE).reshape(rows, cols)
        row_group = np.arange(rows) // WARP_SIZE
        col_ids = np.arange(cols)
        return (col_ids[np.newaxis, :] * (rows // WARP_SIZE + 1)
                + row_group[:, np.newaxis])

    def a_tile_access(self, cta_m: int, k_offset: int) -> TileAccess:
        """Coalesced accesses of one A tile (column-major warp mapping)."""
        addresses = self.a_tile_addresses(cta_m, k_offset)
        group_ids = self._a_group_ids()
        return self._build_access(addresses, np.broadcast_to(group_ids,
                                                             addresses.shape))

    def b_tile_access(self, cta_n: int, k_offset: int) -> TileAccess:
        """Coalesced accesses of one B tile (blkK-major warp mapping)."""
        addresses = self.b_tile_addresses(cta_n, k_offset)
        flat = addresses.reshape(-1)  # n-major, k-minor: matches thread order
        lane = np.arange(flat.size)
        group_ids = lane // WARP_SIZE
        return self._build_access(flat, group_ids)

    # ------------------------------------------------------------------
    # Batched generation (vectorized engine fast path)
    # ------------------------------------------------------------------
    def _tile_batch(self, operand: str, blk_own: int,
                    coords: Sequence[int],
                    k_offsets: Sequence[int]) -> "TileAccessBatch":
        """All (coord, k_offset) tiles of the cross product, batched.

        Tile index ``ci * len(k_offsets) + ki`` corresponds to
        ``(coords[ci], k_offsets[ki])``.  Results are identical to the scalar
        per-tile methods, but one address computation and one sort serve the
        whole batch, which is what makes exact trace generation tractable.
        The per-axis decomposition keeps every division/modulo on the small
        per-axis coordinate vectors; only cheap adds/compares touch the full
        lattice.
        """
        coords = np.asarray(coords, dtype=np.int64)
        k_offsets = np.asarray(k_offsets, dtype=np.int64)
        num_tiles = coords.size * k_offsets.size
        if num_tiles == 0:
            return TileAccessBatch.empty()
        tile = self.tile
        blk_k = tile.blk_k

        own_values = (coords[:, np.newaxis] * blk_own
                      + np.arange(blk_own)).ravel()
        k_values = (k_offsets[:, np.newaxis] + np.arange(blk_k)).ravel()
        base_o, row_o, col_o, ok_o = self._operand_parts(operand, "own",
                                                         own_values)
        base_k, row_k, col_k, ok_k = self._operand_parts(operand, "k",
                                                         k_values)

        # Outer combination over the (own axis, K axis) lattice.  Addresses
        # stay in the narrow dtype; the key builder upcasts only if necessary.
        valid = ok_o[:, np.newaxis] & ok_k[np.newaxis, :]
        bounds = self._operand_bounds(operand)
        if bounds is not None:
            height, width = bounds
            row = row_o[:, np.newaxis] + row_k[np.newaxis, :]
            col = col_o[:, np.newaxis] + col_k[np.newaxis, :]
            valid &= (row >= 0) & (row < height) & (col >= 0) & (col < width)
        coord_dtype = base_o.dtype.type
        addresses = np.where(
            valid,
            base_o[:, np.newaxis] + base_k[np.newaxis, :]
            + coord_dtype(self._operand_base(operand)),
            coord_dtype(INVALID_ADDRESS))

        # (ncoords, blk_own, nk, blk_k) -> (ncoords, nk, blk_own, blk_k)
        addresses = addresses.reshape(coords.size, blk_own,
                                      k_offsets.size, blk_k) \
            .transpose(0, 2, 1, 3).reshape(num_tiles, -1)
        if operand == "a":
            group_ids = self._a_group_ids().ravel()
        else:
            group_ids = np.arange(blk_own * blk_k) // WARP_SIZE
        return self._build_access_batch(addresses, group_ids)

    def a_tile_batch(self, cta_ms: Sequence[int],
                     k_offsets: Sequence[int]) -> "TileAccessBatch":
        """All (cta_m, k_offset) A tiles of the cross product, batched."""
        return self._tile_batch("a", self.tile.blk_m, cta_ms, k_offsets)

    def b_tile_batch(self, cta_ns: Sequence[int],
                     k_offsets: Sequence[int]) -> "TileAccessBatch":
        """All (cta_n, k_offset) B tiles of the cross product, batched."""
        return self._tile_batch("b", self.tile.blk_n, cta_ns, k_offsets)

    def a_tile_access_batch(self, cta_ms: Sequence[int],
                            k_offset: int) -> List[TileAccess]:
        """Batched :meth:`a_tile_access` over many CTA rows at once."""
        return self.a_tile_batch(cta_ms, [k_offset]).tiles()

    def b_tile_access_batch(self, cta_ns: Sequence[int],
                            k_offset: int) -> List[TileAccess]:
        """Batched :meth:`b_tile_access` over many CTA columns at once."""
        return self.b_tile_batch(cta_ns, [k_offset]).tiles()

    def _build_access_batch(self, addresses: np.ndarray,
                            group_ids: np.ndarray) -> "TileAccessBatch":
        """Coalescing counts and unique sectors for a (tiles, elements) batch.

        ``group_ids`` is the shared per-element warp-group row (identical for
        every tile of the batch).  Tiles are folded into the dedup keys so one
        sort covers the whole batch; per-tile counts fall out of a
        ``bincount`` and per-tile sector arrays out of run boundaries in the
        sorted unique keys.  Invalid (predicated-off) accesses are mapped to
        negative sentinel keys and dropped after the sort, avoiding any
        boolean-mask gathers over the full lattice.
        """
        gpu = self.gpu
        num_tiles = addresses.shape[0]
        valid = addresses != INVALID_ADDRESS
        elements = np.count_nonzero(valid, axis=1)
        num_invalid = addresses.size - int(elements.sum())

        groups = np.asarray(group_ids, dtype=np.int64)[np.newaxis, :]
        group_span = int(groups.max()) + 1 if groups.size else 1

        def dedup(keys: np.ndarray) -> np.ndarray:
            """Sorted unique valid keys (drops the negative sentinel run)."""
            keys = np.where(valid, keys, -1)
            keys = np.sort(keys, axis=None)[num_invalid:]
            if keys.size == 0:
                return keys
            keep = np.empty(keys.size, dtype=bool)
            keep[0] = True
            keep[1:] = keys[1:] != keys[:-1]
            return keys[keep]

        # Sectors: one sorted pass over the lattice yields the per-warp
        # sector count (tile, group, sector triples), the unique tile sector
        # lists, and — because L1 request blocks are whole multiples of
        # sectors — the coalesced L1 request count as well.  Keys are built
        # in int32 whenever the combined span fits (int32 sorts are ~2x
        # faster than int64 ones).
        sector_values = addresses // gpu.sector_bytes
        sector_span = int(sector_values.max()) + 1 if sector_values.size else 1
        key_dtype = (np.int32 if num_tiles * sector_span * group_span
                     < np.iinfo(np.int32).max else np.int64)
        tile_base = np.arange(num_tiles, dtype=key_dtype)[:, np.newaxis]
        triple_keys = dedup(
            (tile_base * sector_span
             + sector_values.astype(key_dtype, copy=False))
            * group_span + groups.astype(key_dtype))
        pair_keys = triple_keys // group_span
        warp_sectors = np.bincount(pair_keys // sector_span,
                                   minlength=num_tiles)
        keep = np.empty(pair_keys.size, dtype=bool)
        if pair_keys.size:
            keep[0] = True
            keep[1:] = pair_keys[1:] != pair_keys[:-1]
        unique_pairs = pair_keys[keep]
        unique_tile = unique_pairs // sector_span
        offsets = np.searchsorted(unique_tile, np.arange(num_tiles + 1))

        # L1 requests: unique (tile, warp group, request block) — derived
        # from the deduplicated sector triples when the request size is a
        # multiple of the sector size (it always is on real devices).
        if gpu.l1_request_bytes % gpu.sector_bytes == 0:
            ratio = gpu.l1_request_bytes // gpu.sector_bytes
            t_tile = triple_keys // (sector_span * group_span)
            t_group = triple_keys % group_span
            t_block = (triple_keys // group_span) % sector_span // ratio
            block_span = sector_span // ratio + 1
            request_keys = _sorted_unique(
                (t_tile * group_span + t_group) * block_span + t_block)
        else:  # pragma: no cover - no current GpuSpec hits this
            request_blocks = (addresses // gpu.l1_request_bytes) \
                .astype(np.int64, copy=False)
            block_span = (int(request_blocks.max()) + 1
                          if request_blocks.size else 1)
            request_keys = dedup(
                (tile_base.astype(np.int64) * group_span + groups)
                * block_span + request_blocks)
        requests = np.bincount(request_keys // (group_span * block_span),
                               minlength=num_tiles)

        return TileAccessBatch(
            l1_requests=requests,
            l1_sectors=warp_sectors,
            elements=elements,
            sectors=unique_pairs % sector_span,
            offsets=offsets,
        )


class Im2colTraceGenerator(GemmTraceGenerator):
    """Forward-pass trace generator with the paper's IFmap/filter vocabulary.

    Accepts a :class:`ConvLayerConfig` (lowered to its forward workload) for
    backward compatibility with the seed API; the ``ifmap_*``/``filter_*``
    methods alias the generic A/B-operand ones.
    """

    def __init__(self, layer: Union[ConvLayerConfig, GemmWorkload],
                 tile: CtaTile, gpu: GpuSpec) -> None:
        super().__init__(workload=as_workload(layer), tile=tile, gpu=gpu)

    ifmap_tile_addresses = GemmTraceGenerator.a_tile_addresses
    filter_tile_addresses = GemmTraceGenerator.b_tile_addresses
    ifmap_tile_access = GemmTraceGenerator.a_tile_access
    filter_tile_access = GemmTraceGenerator.b_tile_access
    ifmap_tile_batch = GemmTraceGenerator.a_tile_batch
    filter_tile_batch = GemmTraceGenerator.b_tile_batch
    ifmap_tile_access_batch = GemmTraceGenerator.a_tile_access_batch
    filter_tile_access_batch = GemmTraceGenerator.b_tile_access_batch


@dataclass(frozen=True)
class TileAccessBatch:
    """Struct-of-arrays form of many :class:`TileAccess` records.

    ``sectors[offsets[i]:offsets[i + 1]]`` are tile ``i``'s unique sectors;
    the scalar fields line up by tile index.  The vectorized engine consumes
    these arrays directly instead of materializing per-tile objects.
    """

    l1_requests: np.ndarray
    l1_sectors: np.ndarray
    elements: np.ndarray
    sectors: np.ndarray
    offsets: np.ndarray

    @staticmethod
    def empty() -> "TileAccessBatch":
        zero = np.zeros(0, dtype=np.int64)
        return TileAccessBatch(zero, zero, zero, zero,
                               np.zeros(1, dtype=np.int64))

    @property
    def num_tiles(self) -> int:
        return int(self.l1_requests.size)

    def tile_sectors(self, index: int) -> np.ndarray:
        return self.sectors[self.offsets[index]:self.offsets[index + 1]]

    def tile(self, index: int) -> TileAccess:
        return TileAccess(
            l1_requests=int(self.l1_requests[index]),
            l1_sectors=int(self.l1_sectors[index]),
            sectors=self.tile_sectors(index),
            elements=int(self.elements[index]),
        )

    def tiles(self) -> List[TileAccess]:
        return [self.tile(index) for index in range(self.num_tiles)]
