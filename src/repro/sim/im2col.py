"""Im2col tile address generation and warp-level coalescing.

For each CTA main-loop iteration the GEMM kernel loads one ``blkM x blkK``
IFmap-matrix tile and one ``blkN x blkK`` filter-matrix tile from global
memory.  :class:`Im2colTraceGenerator` produces, for a given CTA coordinate
and K offset, the byte addresses of those tiles (implicitly, without ever
materializing the replicated im2col matrix), the number of L1 requests the
warps issue after coalescing, and the set of memory sectors the tile touches.

Thread-to-data mapping follows Section IV-A of the paper:

* IFmap tiles are loaded column by column; each warp of 32 threads loads 32
  consecutive rows of one column, and the loads coalesce into L1 requests of
  ``gpu.l1_request_bytes``.
* Filter tiles are loaded with ``32 / blkK`` columns per warp (each thread
  loads one element), so each warp gathers several distant ``blkK``-element
  segments.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..core.layer import ConvLayerConfig
from ..core.tiling import CtaTile
from ..gpu.spec import GpuSpec, WARP_SIZE
from .address import INVALID_ADDRESS, TensorLayout


@dataclass(frozen=True)
class TileAccess:
    """Memory accesses of one input tile during one main-loop iteration."""

    #: number of coalesced L1 requests issued by the warps (one per distinct
    #: ``gpu.l1_request_bytes`` block touched by a warp).
    l1_requests: int
    #: number of distinct 32-byte sectors touched per warp request, summed
    #: over all warps (what a sectored memory system actually fetches).
    l1_sectors: int
    #: unique sector addresses (sector index, not bytes) touched by the tile.
    sectors: np.ndarray
    #: number of elements actually loaded (excludes predicated-off padding).
    elements: int

    @property
    def unique_sector_count(self) -> int:
        return int(self.sectors.size)

    def fetch_bytes(self, accounting: str, request_bytes: int,
                    sector_bytes: int) -> float:
        """L1 traffic of this tile under the chosen accounting granularity."""
        if accounting == "request":
            return float(self.l1_requests * request_bytes)
        if accounting == "sector":
            return float(self.l1_sectors * sector_bytes)
        raise ValueError(f"unknown L1 accounting mode {accounting!r}")


def _count_grouped_blocks(addresses: np.ndarray, group_ids: np.ndarray,
                          block_bytes: int) -> int:
    """Count unique (warp group, aligned block) pairs among valid accesses."""
    valid = addresses != INVALID_ADDRESS
    if not np.any(valid):
        return 0
    block_addr = addresses[valid] // block_bytes
    groups = group_ids[valid].astype(np.int64)
    # Pack (group, block) into one key; block addresses fit well below 2**40.
    keys = groups * (1 << 40) + block_addr
    return int(np.unique(keys).size)


def _unique_sectors(addresses: np.ndarray, sector_bytes: int) -> np.ndarray:
    valid = addresses != INVALID_ADDRESS
    if not np.any(valid):
        return np.empty(0, dtype=np.int64)
    return np.unique(addresses[valid] // sector_bytes)


@dataclass(frozen=True)
class Im2colTraceGenerator:
    """Generates the memory accesses of a layer's blocked im2col GEMM."""

    layer: ConvLayerConfig
    tile: CtaTile
    gpu: GpuSpec

    def __post_init__(self) -> None:
        object.__setattr__(self, "_layout", TensorLayout(self.layer,
                                                         self.gpu.line_bytes))

    @property
    def layout(self) -> TensorLayout:
        return self._layout

    # ------------------------------------------------------------------
    # GEMM coordinate helpers
    # ------------------------------------------------------------------
    def _m_to_image_coords(self, m: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map GEMM row indices to (batch, output row, output col)."""
        layer = self.layer
        per_image = layer.out_height * layer.out_width
        batch = m // per_image
        rem = m % per_image
        out_row = rem // layer.out_width
        out_col = rem % layer.out_width
        return batch, out_row, out_col

    def _k_to_filter_coords(self, k: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map GEMM column indices to (input channel, filter row, filter col)."""
        layer = self.layer
        per_channel = layer.filter_height * layer.filter_width
        channel = k // per_channel
        rem = k % per_channel
        f_row = rem // layer.filter_width
        f_col = rem % layer.filter_width
        return channel, f_row, f_col

    # ------------------------------------------------------------------
    # Tile address generation
    # ------------------------------------------------------------------
    def ifmap_tile_addresses(self, cta_m: int, k_offset: int) -> np.ndarray:
        """Byte addresses of the (blkM x blkK) IFmap tile of one main loop.

        Rows beyond M and columns beyond K, as well as zero-padded input
        positions, are marked :data:`INVALID_ADDRESS`.
        """
        layer = self.layer
        tile = self.tile
        gemm = layer.gemm_shape()

        m_index = cta_m * tile.blk_m + np.arange(tile.blk_m)
        k_index = k_offset + np.arange(tile.blk_k)
        m_grid, k_grid = np.meshgrid(m_index, k_index, indexing="ij")
        in_range = (m_grid < gemm.m) & (k_grid < gemm.k)

        batch, out_row, out_col = self._m_to_image_coords(np.minimum(m_grid, gemm.m - 1))
        channel, f_row, f_col = self._k_to_filter_coords(np.minimum(k_grid, gemm.k - 1))

        in_row = out_row * layer.stride - layer.padding + f_row
        in_col = out_col * layer.stride - layer.padding + f_col
        addresses = self.layout.ifmap_addresses(batch, channel, in_row, in_col)
        return np.where(in_range, addresses, INVALID_ADDRESS)

    def filter_tile_addresses(self, cta_n: int, k_offset: int) -> np.ndarray:
        """Byte addresses of the (blkN x blkK) filter tile of one main loop."""
        layer = self.layer
        tile = self.tile
        gemm = layer.gemm_shape()

        n_index = cta_n * tile.blk_n + np.arange(tile.blk_n)
        k_index = k_offset + np.arange(tile.blk_k)
        n_grid, k_grid = np.meshgrid(n_index, k_index, indexing="ij")
        in_range = (n_grid < gemm.n) & (k_grid < gemm.k)
        addresses = self.layout.filter_addresses(n_grid, k_grid)
        return np.where(in_range, addresses, INVALID_ADDRESS)

    # ------------------------------------------------------------------
    # Coalescing
    # ------------------------------------------------------------------
    def _build_access(self, addresses: np.ndarray,
                      group_ids: np.ndarray) -> TileAccess:
        requests = _count_grouped_blocks(addresses, group_ids,
                                         self.gpu.l1_request_bytes)
        warp_sectors = _count_grouped_blocks(addresses, group_ids,
                                             self.gpu.sector_bytes)
        sectors = _unique_sectors(addresses, self.gpu.sector_bytes)
        elements = int(np.count_nonzero(addresses != INVALID_ADDRESS))
        return TileAccess(l1_requests=requests, l1_sectors=warp_sectors,
                          sectors=sectors, elements=elements)

    def ifmap_tile_access(self, cta_m: int, k_offset: int) -> TileAccess:
        """Coalesced accesses of one IFmap tile (column-major warp mapping)."""
        addresses = self.ifmap_tile_addresses(cta_m, k_offset)
        rows, cols = addresses.shape
        row_group = np.arange(rows) // WARP_SIZE
        col_ids = np.arange(cols)
        # group id = (column, row group): each warp covers 32 rows of one column.
        group_ids = (col_ids[np.newaxis, :] * (rows // WARP_SIZE + 1)
                     + row_group[:, np.newaxis])
        return self._build_access(addresses, np.broadcast_to(group_ids,
                                                             addresses.shape))

    def filter_tile_access(self, cta_n: int, k_offset: int) -> TileAccess:
        """Coalesced accesses of one filter tile (blkK-major warp mapping)."""
        addresses = self.filter_tile_addresses(cta_n, k_offset)
        flat = addresses.reshape(-1)  # n-major, k-minor: matches thread order
        lane = np.arange(flat.size)
        group_ids = lane // WARP_SIZE
        return self._build_access(flat, group_ids)
